// cmdare_campaign: run a named Monte-Carlo campaign on the parallel
// experiment engine and print/export its streaming aggregates.
//
//   cmdare_campaign --list
//   cmdare_campaign lifetime
//   cmdare_campaign speed --jobs 4 --replicas 64 --csv speed.csv
//   cmdare_campaign lifetime --jobs 1 --csv a.csv   # byte-identical to
//   cmdare_campaign lifetime --jobs 8 --csv b.csv   # ... this one
//
// The aggregate CSV is deterministic for a given (spec, seed) at any
// --jobs value; wall-clock and the progress line are the only things
// that change with thread count.
//
// Long sweeps are crash-resumable: `--journal PATH` appends every
// completed replica to PATH (flushed, so a kill loses at most one torn
// trailing line), and re-running with `--resume` replays the journaled
// replicas and executes only the rest — the final CSV is byte-identical
// to an uninterrupted run at any --jobs.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/pool.hpp"
#include "scenario/catalog.hpp"
#include "scenario/sweep.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cmdare;

namespace {

void print_catalog() {
  util::Table table({"name", "cells", "replicas", "description"});
  for (const scenario::NamedCampaign& c : scenario::named_campaigns()) {
    table.add_row({c.name, std::to_string(exp::cell_count(c.spec)),
                   std::to_string(c.spec.replicas), c.description});
  }
  for (const scenario::NamedScenarioSweep& s : scenario::named_sweeps()) {
    table.add_row({s.name, std::to_string(scenario::expand(s.sweep).size()),
                   std::to_string(s.sweep.replicas), s.description});
  }
  table.set_title("Available campaigns:");
  table.render(std::cout);
}

bool is_sweep(const std::string& name) {
  for (const scenario::NamedScenarioSweep& s : scenario::named_sweeps()) {
    if (s.name == name) return true;
  }
  return false;
}

exp::RunOptions make_options(int jobs, bool quiet,
                             const std::string& journal_path, bool resume) {
  exp::RunOptions options;
  options.jobs = jobs;
  options.journal_path = journal_path;
  options.resume = resume;
  if (!quiet) {
    options.on_progress = [](const exp::Progress& p) {
      // Serialized by the engine; one carriage-return line.
      if (p.replicas_done % 16 == 0 || p.replicas_done == p.replicas_total) {
        std::fprintf(stderr, "\r%zu/%zu replicas (%zu/%zu cells, %zu failed)",
                     p.replicas_done, p.replicas_total, p.cells_done,
                     p.cells_total, p.replicas_failed);
        if (p.replicas_done == p.replicas_total) std::fprintf(stderr, "\n");
      }
    };
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name;
  bool list = false;
  bool quiet = false;
  int jobs = 0;
  int replicas = 0;
  std::uint64_t seed = 0;
  bool seed_set = false;
  std::string seed_text;
  std::string csv_path;
  std::string journal_path;
  bool resume = false;

  util::ArgParser args("cmdare_campaign",
                       "Run a named Monte-Carlo campaign from the catalog.");
  args.add_positional("name", "campaign to run (see --list)", &name,
                      /*required=*/false);
  args.add_flag("list", "print the campaign catalog and exit", &list);
  args.add_int("jobs", "N",
               "worker threads (default: hardware concurrency; 1 = serial)",
               &jobs);
  args.add_int("replicas", "N", "replicas per cell (default: the spec's)",
               &replicas);
  args.add_value("seed", "S", "campaign seed (default: the spec's)",
                 &seed_text);
  args.add_value("csv", "PATH", "write the aggregate CSV to PATH", &csv_path);
  args.add_value("journal", "PATH",
                 "append every completed replica to PATH (crash journal)",
                 &journal_path);
  args.add_flag("resume",
                "replay the --journal file and run only the missing replicas",
                &resume);
  args.add_flag("quiet", "suppress the progress line", &quiet);

  std::string error;
  if (!args.parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 args.help_text().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::fputs(args.help_text().c_str(), stdout);
    return 0;
  }
  if (list || name == "-l") {
    print_catalog();
    return 0;
  }
  if (name.empty()) {
    std::fputs(args.help_text().c_str(), stdout);
    std::printf("\n");
    print_catalog();
    return 1;
  }
  if (!seed_text.empty()) {
    seed = std::strtoull(seed_text.c_str(), nullptr, 10);
    seed_set = true;
  }
  if (resume && journal_path.empty()) {
    std::fprintf(stderr, "error: --resume needs --journal PATH\n");
    return 1;
  }

  if (is_sweep(name)) {
    const scenario::NamedScenarioSweep& named = scenario::sweep_by_name(name);
    scenario::ScenarioSweep sweep = named.sweep;
    if (replicas > 0) sweep.replicas = replicas;
    if (seed_set) sweep.seed = seed;

    scenario::ScenarioCampaignResult result;
    try {
      result = scenario::run_scenario_campaign(
          sweep, make_options(jobs, quiet, journal_path, resume),
          named.replica);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }

    util::Table table = result.summary_table();
    table.set_title("Sweep \"" + sweep.name + "\" (seed " +
                    std::to_string(sweep.seed) + ", " +
                    std::to_string(sweep.replicas) + " replicas/cell):");
    table.render(std::cout);
    std::printf("\n%zu replicas over %zu cells in %s on %d thread(s)\n",
                result.progress.replicas_total, result.progress.cells_total,
                util::format_duration(result.wall_seconds).c_str(),
                result.jobs_used);

    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
        return 1;
      }
      result.write_csv(out);
      std::printf("aggregates written to %s\n", csv_path.c_str());
    }
    return 0;
  }

  exp::CampaignSpec spec;
  exp::ReplicaFn replica;
  try {
    const scenario::NamedCampaign& named = scenario::campaign_by_name(name);
    spec = named.spec;
    replica = named.replica;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    print_catalog();
    return 1;
  }

  if (replicas > 0) spec.replicas = replicas;
  if (seed_set) spec.seed = seed;

  exp::CampaignResult result;
  try {
    result = exp::run_campaign(
        spec, replica, make_options(jobs, quiet, journal_path, resume));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  util::Table table = result.summary_table();
  table.set_title("Campaign \"" + spec.name + "\" (seed " +
                  std::to_string(spec.seed) + ", " +
                  std::to_string(spec.replicas) + " replicas/cell):");
  table.render(std::cout);
  std::printf("\n%zu replicas over %zu cells in %s on %d thread(s)",
              result.progress.replicas_total, result.progress.cells_total,
              util::format_duration(result.wall_seconds).c_str(),
              result.jobs_used);
  if (result.total_failures() > 0) {
    std::printf(" — %zu FAILED", result.total_failures());
  }
  std::printf("\n");

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 1;
    }
    result.write_csv(out);
    std::printf("aggregates written to %s\n", csv_path.c_str());
  }
  return 0;
}
