// cmdare_campaign: run a named Monte-Carlo campaign on the parallel
// experiment engine and print/export its streaming aggregates.
//
//   cmdare_campaign --list
//   cmdare_campaign lifetime
//   cmdare_campaign speed --jobs 4 --replicas 64 --csv speed.csv
//   cmdare_campaign lifetime --jobs 1 --csv a.csv   # byte-identical to
//   cmdare_campaign lifetime --jobs 8 --csv b.csv   # ... this one
//
// The aggregate CSV is deterministic for a given (spec, seed) at any
// --jobs value; wall-clock and the progress line are the only things
// that change with thread count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cmdare/campaigns.hpp"
#include "exp/pool.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cmdare;

namespace {

void print_usage() {
  std::printf(
      "usage: cmdare_campaign <name> [options]\n"
      "       cmdare_campaign --list\n"
      "options:\n"
      "  --jobs N      worker threads (default: hardware concurrency; 1 = "
      "serial)\n"
      "  --replicas N  replicas per cell (default: the spec's)\n"
      "  --seed S      campaign seed (default: the spec's)\n"
      "  --csv PATH    write the aggregate CSV to PATH\n"
      "  --quiet       suppress the progress line\n");
}

void print_catalog() {
  util::Table table({"name", "cells", "replicas", "description"});
  for (const core::NamedCampaign& c : core::named_campaigns()) {
    table.add_row({c.name, std::to_string(exp::cell_count(c.spec)),
                   std::to_string(c.spec.replicas), c.description});
  }
  table.set_title("Available campaigns:");
  table.render(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    std::printf("\n");
    print_catalog();
    return 1;
  }
  const std::string name = argv[1];
  if (name == "--list" || name == "-l") {
    print_catalog();
    return 0;
  }
  if (name == "--help" || name == "-h") {
    print_usage();
    return 0;
  }

  exp::CampaignSpec spec;
  exp::ReplicaFn replica;
  try {
    const core::NamedCampaign& named = core::campaign_by_name(name);
    spec = named.spec;
    replica = named.replica;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    print_catalog();
    return 1;
  }

  exp::RunOptions options;
  std::string csv_path;
  bool quiet = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      options.jobs = std::atoi(next_value("--jobs"));
    } else if (arg == "--replicas") {
      spec.replicas = std::atoi(next_value("--replicas"));
    } else if (arg == "--seed") {
      spec.seed = std::strtoull(next_value("--seed"), nullptr, 10);
    } else if (arg == "--csv") {
      csv_path = next_value("--csv");
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "error: unknown option %s\n", arg.c_str());
      print_usage();
      return 1;
    }
  }

  if (!quiet) {
    options.on_progress = [](const exp::Progress& p) {
      // Serialized by the engine; one carriage-return line.
      if (p.replicas_done % 16 == 0 || p.replicas_done == p.replicas_total) {
        std::fprintf(stderr, "\r%zu/%zu replicas (%zu/%zu cells, %zu failed)",
                     p.replicas_done, p.replicas_total, p.cells_done,
                     p.cells_total, p.replicas_failed);
        if (p.replicas_done == p.replicas_total) std::fprintf(stderr, "\n");
      }
    };
  }

  exp::CampaignResult result;
  try {
    result = exp::run_campaign(spec, replica, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  util::Table table = result.summary_table();
  table.set_title("Campaign \"" + spec.name + "\" (seed " +
                  std::to_string(spec.seed) + ", " +
                  std::to_string(spec.replicas) + " replicas/cell):");
  table.render(std::cout);
  std::printf("\n%zu replicas over %zu cells in %s on %d thread(s)",
              result.progress.replicas_total, result.progress.cells_total,
              util::format_duration(result.wall_seconds).c_str(),
              result.jobs_used);
  if (result.total_failures() > 0) {
    std::printf(" — %zu FAILED", result.total_failures());
  }
  std::printf("\n");

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 1;
    }
    result.write_csv(out);
    std::printf("aggregates written to %s\n", csv_path.c_str());
  }
  return 0;
}
