// Bottleneck detection & mitigation (Section VI-B): grow a P100 cluster,
// compare measured speed against the composed per-worker prediction, flag
// the parameter-server bottleneck when the deficit exceeds 6.7% after a
// 30-second warmup, and mitigate by restarting with a second PS — first
// offline (sweep), then closed-loop with the CM-DARE controller.
#include <cstdio>

#include "cmdare/bottleneck.hpp"
#include "cmdare/controller.hpp"
#include "cmdare/measurement.hpp"
#include "cmdare/profiler.hpp"
#include "cmdare/speed_modeling.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "util/strings.hpp"

using namespace cmdare;

namespace {

double run_and_measure(const nn::CnnModel& model, int workers, int ps_count,
                       core::PerformanceProfiler* profiler,
                       std::uint64_t seed) {
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 1500L * workers;
  config.ps_count = ps_count;
  train::TrainingSession session(sim, model, config, util::Rng(seed));
  if (profiler) profiler->attach(session);
  for (const auto& w : train::worker_mix(0, workers, 0)) {
    session.add_worker(w);
  }
  sim.run();
  return session.trace().mean_speed(200, config.max_steps);
}

}  // namespace

int main() {
  const nn::CnnModel model = nn::resnet32();

  // Offline: build the per-GPU speed model from historical measurements.
  util::Rng rng(31);
  const auto measurements =
      core::measure_step_times(nn::all_models(), {cloud::GpuType::kP100},
                               rng, 800);
  util::Rng train_rng(32);
  const auto predictor = core::StepTimePredictor::train(measurements,
                                                        train_rng);
  const double per_worker =
      predictor.predict_speed(cloud::GpuType::kP100, model.gflops());
  std::printf("predicted single-P100 speed for %s: %.2f steps/s\n",
              model.name().c_str(), per_worker);

  const core::BottleneckDetector detector;  // 30 s warmup, 6.7% threshold
  std::printf("\n%-10s %-12s %-12s %-10s %s\n", "workers", "predicted",
              "measured", "deficit", "verdict");

  std::uint64_t seed = 33;
  for (int n : {2, 4, 6, 8}) {
    core::PerformanceProfiler profiler;
    run_and_measure(model, n, 1, &profiler, seed++);
    const double predicted = n * per_worker;
    const auto report = detector.check(predicted, profiler);
    std::printf("%-10d %-12.2f %-12.2f %-10s %s\n", n,
                report.predicted_speed, report.measured_speed,
                (std::to_string(static_cast<int>(
                     100.0 * report.deficit_fraction + 0.5)) +
                 "%")
                    .c_str(),
                report.flagged ? "PS BOTTLENECK" : "ok");

    if (report.flagged) {
      // Mitigation: restart the session with two parameter servers
      // (TensorFlow cannot add a PS live; the restart costs ~10 s).
      const double mitigated = run_and_measure(model, n, 2, nullptr, seed++);
      std::printf(
          "           -> restarted with 2 PS: %.2f steps/s (+%.1f%%), "
          "restart overhead ~10 s\n",
          mitigated, 100.0 * (mitigated / report.measured_speed - 1.0));
    }
  }

  // Closed loop: the CM-DARE controller watches a live transient run and
  // performs the mitigation itself.
  std::printf("\nclosed-loop controller on 8x transient P100, 60K steps:\n");
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(40));
  core::RunConfig run_config;
  run_config.session.max_steps = 60000;
  run_config.workers = train::worker_mix(0, 8, 0);
  core::TransientTrainingRun run(provider, model, run_config, util::Rng(41));
  core::Controller controller(run, predictor);
  run.start();
  controller.start();
  sim.run();
  std::printf(
      "  finished %ld steps in %s with %d mitigation(s); final cluster has "
      "%d parameter servers (%d restarts, ~10 s each)\n",
      run.completed_steps(), util::format_duration(run.elapsed_seconds()).c_str(),
      controller.mitigations(), run.current_ps_count(), run.restarts());
  for (const auto& r : controller.reports()) {
    if (r.flagged) {
      std::printf(
          "  flagged: predicted %.1f vs measured %.1f steps/s (deficit "
          "%.0f%%)\n",
          r.predicted_speed, r.measured_speed, 100.0 * r.deficit_fraction);
    }
  }
  return 0;
}
