// Heterogeneous cluster planning (Section VI-A): given a training job,
// predict speed and end-to-end time — including expected revocations from
// empirical lifetime CDFs (Equations 4 and 5) — for several candidate
// cluster shapes, then verify one prediction against a full simulation.
#include <cstdio>
#include <iostream>

#include <cmath>

#include "cloud/revocation.hpp"
#include "cmdare/checkpoint_modeling.hpp"
#include "cmdare/hetero.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "stats/ecdf.hpp"
#include "train/session.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cmdare;

int main() {
  const nn::CnnModel model = nn::resnet32();
  constexpr double kSteps = 64000;
  constexpr long kCkptInterval = 4000;

  // Offline modeling phase (the paper's "historical measurement data").
  util::Rng rng(51);
  const auto step_measurements = core::measure_step_times(
      nn::all_models(),
      {cloud::GpuType::kK80, cloud::GpuType::kP100, cloud::GpuType::kV100},
      rng, 800);
  util::Rng train_rng(52);
  const auto speed_model =
      core::StepTimePredictor::train(step_measurements, train_rng);
  util::Rng ckpt_rng(53);
  const auto ckpt_model = core::CheckpointTimePredictor::train(
      core::measure_checkpoint_times(nn::all_models(), ckpt_rng, 5),
      ckpt_rng);

  // Empirical lifetime CDF per GPU type in us-central1 (Figure 8 data).
  const cloud::RevocationModel revocations;
  util::Rng life_rng(54);
  const auto lifetime_cdf = [&](cloud::GpuType gpu) {
    std::vector<double> lifetimes;
    for (int i = 0; i < 2000; ++i) {
      const auto age = revocations.sample_revocation_age_seconds(
          cloud::Region::kUsCentral1, gpu, cloud::kReferenceLaunchLocalHour,
          life_rng);
      lifetimes.push_back(age.value_or(cloud::kMaxTransientLifetimeSeconds));
    }
    return stats::Ecdf(lifetimes);
  };
  const stats::Ecdf k80_cdf = lifetime_cdf(cloud::GpuType::kK80);
  const stats::Ecdf p100_cdf = lifetime_cdf(cloud::GpuType::kP100);
  const stats::Ecdf v100_cdf = lifetime_cdf(cloud::GpuType::kV100);

  util::Table table({"cluster (K80,P100,V100)", "speed (steps/s)",
                     "compute", "ckpt", "E[revocations]", "revoke ovh",
                     "total time"});
  const int shapes[][3] = {{2, 0, 0}, {4, 0, 0}, {0, 2, 0},
                           {2, 1, 1}, {0, 0, 2}, {1, 1, 0}};
  for (const auto& s : shapes) {
    const auto workers = train::worker_mix(s[0], s[1], s[2]);
    const double speed =
        core::predict_cluster_speed(speed_model, workers, model.gflops());

    core::TrainingTimeParams params;
    params.total_steps = kSteps;
    params.checkpoint_interval_steps = kCkptInterval;
    params.checkpoint_seconds = ckpt_model.predict_seconds(model);
    params.provision_seconds = 90.0;
    params.replacement_seconds = cloud::cold_replacement_seconds(model);

    std::vector<const stats::Ecdf*> cdfs;
    for (int i = 0; i < s[0]; ++i) cdfs.push_back(&k80_cdf);
    for (int i = 0; i < s[1]; ++i) cdfs.push_back(&p100_cdf);
    for (int i = 0; i < s[2]; ++i) cdfs.push_back(&v100_cdf);

    const auto est = core::estimate_training_time(speed, params, cdfs);
    table.add_row({train::describe_mix(workers),
                   util::format_double(speed, 2),
                   util::format_duration(est.compute_seconds),
                   util::format_duration(est.checkpoint_seconds),
                   util::format_double(est.expected_revocations, 2),
                   util::format_duration(est.revocation_seconds),
                   util::format_duration(est.total_seconds)});
  }
  table.set_title("ResNet-32, N_w = 64K steps, I_c = 4K (us-central1):");
  table.render(std::cout);

  // Validate the (2,1,1) speed prediction against a simulation.
  const auto workers = train::worker_mix(2, 1, 1);
  const double predicted =
      core::predict_cluster_speed(speed_model, workers, model.gflops());
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 8000;
  train::TrainingSession session(sim, model, config, util::Rng(55));
  for (const auto& w : workers) session.add_worker(w);
  sim.run();
  const double simulated = session.trace().mean_speed(200, 8000);
  std::printf(
      "\nvalidation — (2,1,1) predicted %.2f vs simulated %.2f steps/s "
      "(%.1f%% error)\n",
      predicted, simulated,
      100.0 * std::abs(predicted - simulated) / simulated);
  return 0;
}
