// Transient campaign: the same training job run in every region offering
// K80s, showing how regional revocation behaviour (Table V / Figure 8)
// changes wall-clock time, revocation count, and cost.
//
// This is the paper's core scenario: long-running training on revocable
// servers with CM-DARE's automatic replacement keeping the session alive.
#include <cstdio>
#include <iostream>

#include "cmdare/resource_manager.hpp"
#include "nn/model_zoo.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cmdare;

int main() {
  // ~8 hours of 4-worker K80 training: long enough for revocations.
  constexpr long kSteps = 500000;

  util::Table table({"region", "elapsed", "revocations", "replacements",
                     "checkpoints", "cost (transient)", "Table V revoke %"});

  for (cloud::Region region :
       {cloud::Region::kUsEast1, cloud::Region::kUsCentral1,
        cloud::Region::kUsWest1, cloud::Region::kEuropeWest1}) {
    simcore::Simulator sim;
    cloud::CloudProvider provider(sim, util::Rng(21));
    cloud::ObjectStore storage(sim, util::Rng(22));

    core::RunConfig config;
    config.session.max_steps = kSteps;
    config.session.checkpoint_interval_steps = 4000;
    config.workers = train::worker_mix(4, 0, 0, region);

    core::TransientTrainingRun run(provider, nn::resnet15(), config,
                                   util::Rng(23), &storage);
    run.start();
    sim.run();

    const auto& target =
        cloud::revocation_target(region, cloud::GpuType::kK80);
    table.add_row(
        {cloud::region_name(region),
         util::format_duration(run.elapsed_seconds()),
         std::to_string(run.revocations_seen()),
         std::to_string(run.replacements_requested()),
         std::to_string(run.session().trace().checkpoints().size()),
         "$" + util::format_double(run.cost_so_far(), 2),
         util::format_double(100.0 * target.revoked_fraction, 1) + "%"});
  }

  table.set_title(
      "ResNet-15, 4x transient K80 + 1 PS, 500K steps, ckpt every 4K:");
  table.render(std::cout);
  std::printf(
      "\nChurny regions (europe-west1) cost replacement downtime; calm ones "
      "(us-west1) run nearly revocation-free. CM-DARE's immediate-"
      "replacement policy keeps every run alive to completion.\n");
  return 0;
}
