// Transient campaign: the same training job run in every region offering
// K80s, showing how regional revocation behaviour (Table V / Figure 8)
// changes wall-clock time, revocation count, and cost.
//
// This is the paper's core scenario: long-running training on revocable
// servers with CM-DARE's automatic replacement keeping the session alive.
// One base ScenarioSpec describes the job; each region is a one-field
// edit via scenario::set_field — the same mechanism scenario_runner's
// --set and --sweep flags use.
#include <cstdio>
#include <iostream>
#include <string>

#include "cloud/revocation.hpp"
#include "scenario/harness.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cmdare;

int main() {
  // ~8 hours of 4-worker K80 training: long enough for revocations.
  scenario::ScenarioSpec base;
  base.name = "transient-campaign";
  base.kind = scenario::HarnessKind::kRun;
  base.seed = 21;
  base.model = "resnet-15";
  base.max_steps = 500000;
  base.checkpoint_interval_steps = 4000;

  util::Table table({"region", "elapsed", "revocations", "replacements",
                     "checkpoints", "cost (transient)", "Table V revoke %"});

  for (cloud::Region region :
       {cloud::Region::kUsEast1, cloud::Region::kUsCentral1,
        cloud::Region::kUsWest1, cloud::Region::kEuropeWest1}) {
    scenario::ScenarioSpec spec = base;
    const std::string workers =
        std::string("4 x K80 @ ") + cloud::region_name(region);
    if (auto error = scenario::set_field(spec, "workers", workers)) {
      std::fprintf(stderr, "error: %s\n", error->c_str());
      return 1;
    }

    scenario::SimHarness harness(spec);
    const scenario::ScenarioResult result = harness.run();

    const auto& target =
        cloud::revocation_target(region, cloud::GpuType::kK80);
    table.add_row(
        {cloud::region_name(region),
         util::format_duration(result.elapsed_seconds),
         std::to_string(result.revocations),
         std::to_string(result.replacements),
         std::to_string(
             harness.training_run()->session().trace().checkpoints().size()),
         "$" + util::format_double(result.cost_usd, 2),
         util::format_double(100.0 * target.revoked_fraction, 1) + "%"});
  }

  table.set_title(
      "ResNet-15, 4x transient K80 + 1 PS, 500K steps, ckpt every 4K:");
  table.render(std::cout);
  std::printf(
      "\nChurny regions (europe-west1) cost replacement downtime; calm ones "
      "(us-west1) run nearly revocation-free. CM-DARE's immediate-"
      "replacement policy keeps every run alive to completion.\n");
  return 0;
}
