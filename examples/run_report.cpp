// run_report: fold a run ledger (JSONL) into the analysis report.
//
//   scenario_runner scenarios/resilience.scn --ledger run.jsonl
//   run_report run.jsonl                 # text report to stdout
//   run_report run.jsonl --csv out.csv   # plus the metric,value CSV
//
// The input is whatever obs::write_ledger_jsonl produced — a single
// run's ledger or a merged campaign ledger (scopes are analyzed
// independently and summed). Truncated or malformed lines are reported
// to stderr with their 1-based line number and the exit code is
// non-zero; the analysis still runs on the lines that survived unless
// --strict asked for an immediate abort.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/analyze.hpp"
#include "obs/ledger.hpp"
#include "util/args.hpp"

using namespace cmdare;

int main(int argc, char** argv) {
  std::string path;
  std::string csv_path;
  bool strict = false;

  util::ArgParser args("run_report",
                       "Analyze a run ledger (JSONL) into recovery "
                       "timelines and the Eq. 4 cost decomposition.");
  args.add_positional("ledger.jsonl", "ledger file to analyze", &path);
  args.add_value("csv", "PATH", "also write the metric,value CSV to PATH",
                 &csv_path);
  args.add_flag("strict",
                "abort before analysis on any unparseable ledger line "
                "(the exit code is non-zero either way)",
                &strict);

  std::string error;
  if (!args.parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 args.help_text().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::fputs(args.help_text().c_str(), stdout);
    return 0;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  // Diagnostics are already line-numbered ("line N: ..."); prefixing the
  // path makes them grep-able across files. A ledger with any bad line —
  // a truncated final record, malformed JSON, an unknown kind — always
  // exits non-zero so pipelines notice, but the report still covers the
  // surviving lines unless --strict aborts first.
  const obs::LedgerParseResult parsed = obs::parse_ledger_jsonl(buffer.str());
  for (const std::string& diagnostic : parsed.errors) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), diagnostic.c_str());
  }
  if (strict && !parsed.ok()) return 1;
  if (parsed.ledger.empty()) {
    std::fprintf(stderr, "error: %s contains no ledger events\n", path.c_str());
    return 1;
  }

  const obs::analyze::LedgerAnalysis analysis =
      obs::analyze::analyze_ledger(parsed.ledger);
  obs::analyze::write_report(analysis, std::cout);

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
      return 1;
    }
    obs::analyze::write_analysis_csv(analysis, out);
    std::printf("analysis CSV written to %s\n", csv_path.c_str());
  }
  return parsed.ok() ? 0 : 1;
}
