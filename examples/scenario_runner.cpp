// scenario_runner: load a declarative scenario file and run it.
//
//   scenario_runner scenarios/resilience.scn
//   scenario_runner scenarios/quickstart.scn --set max_steps=5000
//   scenario_runner scenarios/resilience.scn --sweep fault_rate=0,0.1,0.2 \
//       --replicas 8 --jobs 4 --csv degradation.csv
//   scenario_runner scenarios/quickstart.scn --print   # canonical form
//   scenario_runner scenarios/resilience.scn --ledger run.jsonl --report
//   scenario_runner scenarios/supervise.scn --metrics supervise.
//
// A plain run wires the spec through SimHarness and prints the result
// table. With --sweep axes it becomes a Monte-Carlo campaign on the
// parallel engine (deterministic CSV at any --jobs value).
//
// Observability flags (both modes; they force telemetry on):
//   --ledger PATH   write the run ledger (merged across replicas for a
//                   sweep) as JSONL to PATH
//   --report        fold the ledger through obs::analyze and print the
//                   recovery-timeline / cost-decomposition report
//   --metrics PFX   print registry series whose name starts with PFX as
//                   CSV (kind,name,labels,field,value)
//
// Discovery:
//   --list          print the named-campaign catalog plus every checked-in
//                   scenarios/*.scn file with a one-line description
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/analyze.hpp"
#include "scenario/catalog.hpp"
#include "scenario/harness.hpp"
#include "scenario/sweep.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

using namespace cmdare;

namespace {

/// Emits the requested observability artifacts from a run's (or merged
/// campaign's) telemetry bundle. Returns 0 on success.
int emit_observability(obs::Telemetry* telemetry, const std::string& ledger_path,
                       bool report, const std::string& metrics_prefix) {
  if (!telemetry) {
    std::fprintf(stderr, "error: no telemetry captured for this run\n");
    return 1;
  }
  if (!ledger_path.empty()) {
    std::ofstream out(ledger_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", ledger_path.c_str());
      return 1;
    }
    obs::write_ledger_jsonl(telemetry->ledger, out);
    std::printf("ledger (%zu events) written to %s\n",
                telemetry->ledger.size(), ledger_path.c_str());
  }
  if (report) {
    const obs::analyze::LedgerAnalysis analysis =
        obs::analyze::analyze_ledger(telemetry->ledger);
    obs::analyze::write_report(analysis, std::cout);
  }
  if (!metrics_prefix.empty()) {
    util::CsvWriter writer(std::cout);
    writer.write_row({"kind", "name", "labels", "field", "value"});
    for (const obs::SnapshotRow& row :
         telemetry->registry.snapshot(metrics_prefix)) {
      writer.write_row({row.kind, row.name, obs::format_labels(row.labels),
                        row.field, util::format_double(row.value, 6)});
    }
  }
  return 0;
}

/// First `# ...` comment line of a .scn file, as its catalog description.
std::string scn_description(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = std::string(util::trim(line));
    if (trimmed.empty()) continue;
    if (trimmed[0] != '#') break;  // spec body reached: no description
    const std::string text = std::string(util::trim(trimmed.substr(1)));
    if (!text.empty()) return text;
  }
  return "";
}

/// `--list`: the named campaign/sweep catalog, then every checked-in
/// scenarios/*.scn (searched relative to the working directory).
int print_catalog_listing() {
  util::Table campaigns({"campaign", "cells", "replicas", "description"});
  for (const scenario::NamedCampaign& c : scenario::named_campaigns()) {
    campaigns.add_row({c.name, std::to_string(exp::cell_count(c.spec)),
                       std::to_string(c.spec.replicas), c.description});
  }
  for (const scenario::NamedScenarioSweep& s : scenario::named_sweeps()) {
    campaigns.add_row({s.name,
                       std::to_string(scenario::expand(s.sweep).size()),
                       std::to_string(s.sweep.replicas), s.description});
  }
  campaigns.set_title("Named campaigns (run with cmdare_campaign <name>):");
  campaigns.render(std::cout);

  const std::filesystem::path dir = "scenarios";
  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".scn") files.push_back(entry.path());
  }
  if (ec) {
    std::printf("\n(no %s directory here — run from the repo root to list "
                "checked-in scenario files)\n",
                dir.string().c_str());
    return 0;
  }
  std::sort(files.begin(), files.end());
  util::Table scenarios({"file", "description"});
  for (const std::filesystem::path& file : files) {
    scenarios.add_row({file.string(), scn_description(file)});
  }
  scenarios.set_title("Scenario files (run with scenario_runner <file>):");
  std::printf("\n");
  scenarios.render(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> sets;
  std::vector<std::string> sweeps;
  int replicas = 1;
  int jobs = 0;
  std::string seed_text;
  std::string csv_path;
  std::string ledger_path;
  bool report = false;
  std::string metrics_prefix;
  bool print_only = false;
  bool quiet = false;
  bool list = false;

  util::ArgParser args("scenario_runner",
                       "Run a declarative scenario (.scn) file.");
  args.add_positional("spec.scn", "scenario file to run", &path,
                      /*required=*/false);
  args.add_repeated("set", "key=value", "override one spec field", &sets);
  args.add_repeated("sweep", "key=v1,v2,...",
                    "sweep a spec field (turns the run into a campaign)",
                    &sweeps);
  args.add_int("replicas", "N", "campaign replicas per cell (default 1)",
               &replicas);
  args.add_int("jobs", "N", "campaign worker threads (default: hardware)",
               &jobs);
  args.add_value("seed", "S", "override the spec's seed", &seed_text);
  args.add_value("csv", "PATH", "write campaign aggregates to PATH",
                 &csv_path);
  args.add_value("ledger", "PATH", "write the run ledger as JSONL to PATH",
                 &ledger_path);
  args.add_flag("report", "print the ledger analysis report", &report);
  args.add_value("metrics", "PREFIX",
                 "print registry metrics matching PREFIX as CSV",
                 &metrics_prefix);
  args.add_flag("print", "print the canonical spec text and exit",
                &print_only);
  args.add_flag("quiet", "suppress the campaign progress line", &quiet);
  args.add_flag("list",
                "list named campaigns and checked-in scenario files, then exit",
                &list);

  std::string error;
  if (!args.parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 args.help_text().c_str());
    return 1;
  }
  if (args.help_requested()) {
    std::fputs(args.help_text().c_str(), stdout);
    return 0;
  }
  if (list) return print_catalog_listing();
  if (path.empty()) {
    std::fprintf(stderr, "error: missing spec.scn (or pass --list)\n%s",
                 args.help_text().c_str());
    return 1;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  scenario::ParseResult parsed = scenario::parse(buffer.str());
  if (!parsed.ok()) {
    for (const scenario::Diagnostic& d : parsed.diagnostics) {
      if (d.line > 0) {
        std::fprintf(stderr, "%s:%d: %s\n", path.c_str(), d.line,
                     d.message.c_str());
      } else {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), d.message.c_str());
      }
    }
    return 1;
  }
  scenario::ScenarioSpec spec = parsed.spec;

  for (const std::string& set : sets) {
    const std::size_t eq = set.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: --set wants key=value, got \"%s\"\n",
                   set.c_str());
      return 1;
    }
    if (auto err = scenario::set_field(spec, set.substr(0, eq),
                                       set.substr(eq + 1))) {
      std::fprintf(stderr, "error: --set %s: %s\n", set.c_str(), err->c_str());
      return 1;
    }
  }
  if (!seed_text.empty()) {
    spec.seed = std::strtoull(seed_text.c_str(), nullptr, 10);
  }

  if (print_only) {
    std::fputs(scenario::serialize(spec).c_str(), stdout);
    return 0;
  }

  const bool wants_obs =
      !ledger_path.empty() || report || !metrics_prefix.empty();
  if (wants_obs) spec.telemetry = true;

  if (!sweeps.empty()) {
    scenario::ScenarioSweep sweep;
    sweep.name = spec.name;
    sweep.base = spec;
    sweep.replicas = replicas < 1 ? 1 : replicas;
    sweep.seed = spec.seed;
    for (const std::string& axis_text : sweeps) {
      const std::size_t eq = axis_text.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr,
                     "error: --sweep wants key=v1,v2,..., got \"%s\"\n",
                     axis_text.c_str());
        return 1;
      }
      scenario::SweepAxis axis;
      axis.key = axis_text.substr(0, eq);
      axis.values = util::split(axis_text.substr(eq + 1), ',');
      sweep.axes.push_back(std::move(axis));
    }

    exp::RunOptions options;
    options.jobs = jobs;
    options.capture_telemetry = wants_obs;
    if (!quiet) {
      options.on_progress = [](const exp::Progress& p) {
        if (p.replicas_done % 16 == 0 || p.replicas_done == p.replicas_total) {
          std::fprintf(stderr, "\r%zu/%zu replicas (%zu failed)",
                       p.replicas_done, p.replicas_total, p.replicas_failed);
          if (p.replicas_done == p.replicas_total) std::fprintf(stderr, "\n");
        }
      };
    }

    scenario::ScenarioCampaignResult result;
    try {
      result = scenario::run_scenario_campaign(sweep, options);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }

    util::Table table = result.summary_table();
    table.set_title("Scenario campaign \"" + sweep.name + "\" (seed " +
                    std::to_string(sweep.seed) + ", " +
                    std::to_string(sweep.replicas) + " replicas/cell):");
    table.render(std::cout);
    std::printf("\n%zu replicas over %zu cells in %s on %d thread(s)\n",
                result.progress.replicas_total, result.cells.size(),
                util::format_duration(result.wall_seconds).c_str(),
                result.jobs_used);
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", csv_path.c_str());
        return 1;
      }
      result.write_csv(out);
      std::printf("aggregates written to %s\n", csv_path.c_str());
    }
    if (wants_obs) {
      const int rc = emit_observability(result.telemetry.get(), ledger_path,
                                        report, metrics_prefix);
      if (rc != 0) return rc;
    }
    return 0;
  }

  try {
    scenario::SimHarness harness(spec);
    const scenario::ScenarioResult result = harness.run();
    util::Table table = result.table();
    table.set_title("Scenario \"" + spec.name + "\" (kind " +
                    scenario::harness_kind_name(spec.kind) + ", seed " +
                    std::to_string(spec.seed) + "):");
    table.render(std::cout);
    if (wants_obs) {
      const int rc = emit_observability(harness.telemetry(), ledger_path,
                                        report, metrics_prefix);
      if (rc != 0) return rc;
    }
    return result.finished ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
