// Resilience demo: a training run on an adversarial cloud.
//
// A FaultInjector with a 20% uniform fault rate sits under both the cloud
// provider and the object store: instance requests hit launch errors and
// a one-hour capacity stockout covering the launch window, checkpoint
// uploads fail or crawl, restores find corrupt blobs, and some
// revocations arrive with no preemption notice. The TransientTrainingRun
// rides it out with capped-exponential-backoff launch retries, the
// region/GPU/on-demand fallback ladder, checkpoint retry-then-abandon,
// and stale-checkpoint recovery — and still finishes training.
//
// The adversarial cloud is declared as a ScenarioSpec (the same scenario
// is checked in as scenarios/resilience.scn); SimHarness does the wiring
// the old hand-rolled version of this file used to do, with the same RNG
// fork labels, so seed 2020 reproduces the pre-scenario-layer run
// bit-for-bit (pinned by tests/scenario_harness_test.cpp).
//
// Output: a run summary plus the faults.* / resilience.* / storage.*
// counters recorded by the telemetry layer.
#include <cstdio>

#include "obs/obs.hpp"
#include "scenario/harness.hpp"
#include "util/strings.hpp"

using namespace cmdare;

int main() {
  // 20% of every fault class, plus a stockout that swallows the initial
  // launch window for us-central1 K80s — the run must climb the fallback
  // ladder to place its workers at all.
  scenario::ScenarioSpec spec;
  spec.name = "resilience-demo";
  spec.kind = scenario::HarnessKind::kRun;
  spec.seed = 2020;
  spec.model = "resnet-15";
  spec.workers = {{3, cloud::GpuType::kK80, cloud::Region::kUsCentral1, true}};
  spec.max_steps = 2000;
  spec.checkpoint_interval_steps = 200;
  spec.horizon_hours = 48.0;
  spec.faults = faults::FaultPlan::uniform(0.2);
  faults::StockoutWindow stockout;
  stockout.region = cloud::Region::kUsCentral1;
  stockout.gpu = cloud::GpuType::kK80;
  stockout.start_s = 0.0;
  stockout.end_s = 3600.0;
  spec.faults.stockouts.push_back(stockout);
  spec.telemetry = true;

  scenario::SimHarness harness(spec);
  const scenario::ScenarioResult result = harness.run();

  const core::TransientTrainingRun& run = *harness.training_run();
  std::printf("run %s: %ld/%ld steps in %s, $%s\n",
              result.finished ? "finished" : "DID NOT FINISH",
              result.completed_steps, run.target_steps(),
              result.finished
                  ? util::format_duration(result.elapsed_seconds).c_str()
                  : "-",
              util::format_double(result.cost_usd, 2).c_str());
  std::printf(
      "  launch retries %d | fallbacks %d | slots abandoned %d\n"
      "  revocations %d (abrupt %d, notices %d) | checkpoints durable %zu\n",
      result.launch_retries, result.fallbacks, result.slots_abandoned,
      result.revocations, result.abrupt_kills, result.notices,
      result.checkpoint_blobs);

  std::printf("\nfault / resilience counters:\n");
  static const std::vector<std::string> kPrefixes = {
      "faults.", "resilience.", "cloud.request_failures", "storage.",
      "train.checkpoints_abandoned"};
  for (const obs::SnapshotRow& row :
       harness.telemetry()->registry.snapshot(kPrefixes)) {
    if (row.kind != "counter") continue;
    const std::string labels = obs::format_labels(row.labels);
    std::printf("  %s%s%s%s = %.0f\n", row.name.c_str(),
                labels.empty() ? "" : "{", labels.c_str(),
                labels.empty() ? "" : "}", row.value);
  }
  return result.finished ? 0 : 1;
}
