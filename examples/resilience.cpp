// Resilience demo: a training run on an adversarial cloud.
//
// A FaultInjector with a 20% uniform fault rate sits under both the cloud
// provider and the object store: instance requests hit launch errors and
// a one-hour capacity stockout covering the launch window, checkpoint
// uploads fail or crawl, restores find corrupt blobs, and some
// revocations arrive with no preemption notice. The TransientTrainingRun
// rides it out with capped-exponential-backoff launch retries, the
// region/GPU/on-demand fallback ladder, checkpoint retry-then-abandon,
// and stale-checkpoint recovery — and still finishes training.
//
// Output: a run summary plus the faults.* / resilience.* / storage.*
// counters recorded by the telemetry layer.
#include <cstdio>

#include "cloud/provider.hpp"
#include "cloud/storage.hpp"
#include "cmdare/resource_manager.hpp"
#include "faults/faults.hpp"
#include "nn/model_zoo.hpp"
#include "obs/obs.hpp"
#include "util/strings.hpp"

using namespace cmdare;

int main() {
  obs::ScopedTelemetry telemetry;

  // 20% of every fault class, plus a stockout that swallows the initial
  // launch window for us-central1 K80s — the run must climb the fallback
  // ladder to place its workers at all.
  faults::FaultPlan plan = faults::FaultPlan::uniform(0.2);
  faults::StockoutWindow stockout;
  stockout.region = cloud::Region::kUsCentral1;
  stockout.gpu = cloud::GpuType::kK80;
  stockout.start_s = 0.0;
  stockout.end_s = 3600.0;
  plan.stockouts.push_back(stockout);

  util::Rng rng(2020);
  faults::FaultInjector injector(plan, rng.fork("faults"));

  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, rng.fork("cloud"));
  provider.set_fault_injector(&injector);
  cloud::ObjectStore store(sim, rng.fork("store"));
  store.set_fault_injector(&injector);

  core::RunConfig config;
  config.session.max_steps = 2000;
  config.session.checkpoint_interval_steps = 200;
  config.workers = train::worker_mix(3, 0, 0);
  core::TransientTrainingRun run(provider, nn::resnet15(), config,
                                 rng.fork("run"), &store);
  run.start();
  sim.run_until(48 * 3600.0);

  std::printf("run %s: %ld/%ld steps in %s, $%s\n",
              run.finished() ? "finished" : "DID NOT FINISH",
              run.completed_steps(), run.target_steps(),
              run.finished()
                  ? util::format_duration(run.elapsed_seconds()).c_str()
                  : "-",
              util::format_double(run.cost_so_far(), 2).c_str());
  std::printf(
      "  launch retries %d | fallbacks %d | slots abandoned %d\n"
      "  revocations %d (abrupt %d, notices %d) | checkpoints durable %zu\n",
      run.launch_retries(), run.fallbacks_taken(), run.slots_abandoned(),
      run.revocations_seen(), run.abrupt_kills_seen(), run.notices_seen(),
      store.blob_count());

  std::printf("\nfault / resilience counters:\n");
  for (const obs::SnapshotRow& row : telemetry->registry.snapshot()) {
    if (row.kind != "counter") continue;
    if (row.name.rfind("faults.", 0) != 0 &&
        row.name.rfind("resilience.", 0) != 0 &&
        row.name.rfind("cloud.request_failures", 0) != 0 &&
        row.name.rfind("storage.", 0) != 0 &&
        row.name.rfind("train.checkpoints_abandoned", 0) != 0) {
      continue;
    }
    const std::string labels = obs::format_labels(row.labels);
    std::printf("  %s%s%s%s = %.0f\n", row.name.c_str(),
                labels.empty() ? "" : "{", labels.c_str(),
                labels.empty() ? "" : "}", row.value);
  }
  return run.finished() ? 0 : 1;
}
