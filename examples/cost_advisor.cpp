// Cost advisor: the practitioner question behind the paper — which
// cluster configuration trains my model fastest / cheapest, and is
// transient worth the revocation risk? Sweeps GPU type, worker count, and
// tenancy, simulating each configuration end-to-end (including
// revocations and replacements for transient clusters).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "cmdare/resource_manager.hpp"
#include "nn/model_zoo.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace cmdare;

namespace {

struct Plan {
  std::string label;
  double hours;
  double cost;
  int revocations;
};

Plan simulate(const nn::CnnModel& model, cloud::GpuType gpu, int workers,
              bool transient, long steps, std::uint64_t seed) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(seed));

  core::RunConfig config;
  config.session.max_steps = steps;
  config.session.checkpoint_interval_steps = 4000;
  for (int i = 0; i < workers; ++i) {
    train::WorkerSpec spec;
    spec.gpu = gpu;
    spec.region = cloud::Region::kUsCentral1;
    spec.transient = transient;
    spec.label = std::string(cloud::gpu_name(gpu)) + "-" + std::to_string(i);
    config.workers.push_back(spec);
  }

  core::TransientTrainingRun run(provider, model, config, util::Rng(seed + 1));
  run.start();
  sim.run();

  Plan plan;
  plan.label = std::to_string(workers) + "x " + cloud::gpu_name(gpu) +
               (transient ? " transient" : " on-demand");
  plan.hours = run.elapsed_seconds() / 3600.0;
  plan.cost = run.cost_so_far();
  plan.revocations = run.revocations_seen();
  return plan;
}

}  // namespace

int main() {
  const nn::CnnModel model = nn::resnet32();
  constexpr long kSteps = 256000;  // ~1.5-8 h depending on the cluster

  std::vector<Plan> plans;
  std::uint64_t seed = 60;
  for (cloud::GpuType gpu : cloud::kAllGpuTypes) {
    for (int workers : {1, 2, 4}) {
      for (bool transient : {true, false}) {
        plans.push_back(
            simulate(model, gpu, workers, transient, kSteps, seed += 2));
      }
    }
  }
  std::sort(plans.begin(), plans.end(),
            [](const Plan& a, const Plan& b) { return a.cost < b.cost; });

  util::Table table(
      {"configuration", "time (h)", "cost ($)", "revocations", "$/1K steps"});
  for (const Plan& p : plans) {
    table.add_row({p.label, util::format_double(p.hours, 2),
                   util::format_double(p.cost, 2),
                   std::to_string(p.revocations),
                   util::format_double(p.cost / (kSteps / 1000.0), 4)});
  }
  table.set_title("ResNet-32, 256K steps, us-central1 (sorted by cost):");
  table.render(std::cout);

  std::printf(
      "\nTransient clusters are ~3x cheaper per GPU-hour; revocations add "
      "replacement time but rarely change the cost ranking. Bigger "
      "clusters buy time, not efficiency, once the PS bottleneck nears "
      "(Figure 4).\n");
  return 0;
}
