// Supervision demo: a training run that must notice its own failures.
//
// Every revocation on this cloud is an abrupt kill — the preemption
// notice never arrives, so the control plane's usual revocation callback
// carries no replacement signal. The supervision layer closes the gap:
// workers emit sim-time heartbeats, a sweep flags the ones that went
// silent past the timeout, and only then does the replacement machinery
// run. Detection latency is therefore a real, measured part of every
// recovery (revocation -> replacement running), not an assumption.
//
// On top of detection the demo turns on the rest of the loop: the hazard
// estimator decays the calibrated prior into live per-(region, GPU)
// revocation rates, the adaptive controller re-plans the checkpoint
// interval against them every 30 simulated minutes, replacement launches
// are ordered by health score, and each replacement is hedged (two
// launches, loser cancelled, both billed).
//
// The same scenario is checked in as scenarios/supervise.scn.
//
// Output: a run summary plus the supervise.* counters recorded by the
// telemetry layer.
#include <cstdio>

#include "obs/obs.hpp"
#include "scenario/harness.hpp"
#include "util/strings.hpp"

using namespace cmdare;

int main() {
  scenario::ScenarioSpec spec;
  spec.name = "supervise-demo";
  spec.kind = scenario::HarnessKind::kRun;
  spec.seed = 2031;
  spec.model = "resnet-15";
  // europe-west1 K80s die young (>50% revoked within two hours), so a
  // multi-hour run exercises detection repeatedly without any injected
  // hazard inflation.
  spec.workers = {
      {3, cloud::GpuType::kK80, cloud::Region::kEuropeWest1, true}};
  spec.max_steps = 200000;
  spec.checkpoint_interval_steps = 2000;
  spec.horizon_hours = 24.0;
  spec.faults.abrupt_kill_rate = 1.0;
  spec.supervision.enabled = true;
  spec.supervision.heartbeat.period_s = 15.0;
  spec.supervision.heartbeat.timeout_s = 120.0;
  spec.supervision.checkpoint.retune_period_s = 1800.0;
  spec.supervision.score_replacement = true;
  spec.supervision.hedged_replacement = true;
  spec.telemetry = true;

  scenario::SimHarness harness(spec);
  const scenario::ScenarioResult result = harness.run();

  const core::TransientTrainingRun& run = *harness.training_run();
  std::printf("run %s: %ld/%ld steps in %s, $%s\n",
              result.finished ? "finished" : "DID NOT FINISH",
              result.completed_steps, run.target_steps(),
              util::format_duration(result.elapsed_seconds).c_str(),
              util::format_double(result.cost_usd, 2).c_str());
  std::printf(
      "  revocations %d (all abrupt: %d) | detections %d "
      "(false positives %d)\n"
      "  detection latency p99 %ss | mean recovery %ss\n"
      "  interval retunes %d | hedges cancelled %d | fenced workers %d\n",
      result.revocations, result.abrupt_kills, result.detections,
      result.false_detections,
      util::format_double(result.detection_latency_p99, 1).c_str(),
      util::format_double(result.mean_recovery_seconds, 1).c_str(),
      result.interval_retunes, result.hedges_cancelled,
      result.fenced_workers);

  std::printf("\nsupervision counters:\n");
  static const std::vector<std::string> kPrefixes = {"supervise."};
  for (const obs::SnapshotRow& row :
       harness.telemetry()->registry.snapshot(kPrefixes)) {
    if (row.kind != "counter" && row.kind != "gauge") continue;
    const std::string labels = obs::format_labels(row.labels);
    std::printf("  %s%s%s%s = %.0f\n", row.name.c_str(),
                labels.empty() ? "" : "{", labels.c_str(),
                labels.empty() ? "" : "}", row.value);
  }
  return 0;
}
