// Quickstart: simulate training ResNet-32 on a small transient GPU
// cluster with CM-DARE's resource manager, and print what happened.
//
// The whole experiment is one declarative ScenarioSpec; SimHarness wires
// the simulator, cloud provider, object store, and training run from it.
// The same scenario lives in scenarios/quickstart.scn and can be run as
//   ./build/examples/scenario_runner scenarios/quickstart.scn
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "scenario/harness.hpp"
#include "util/strings.hpp"

using namespace cmdare;

int main() {
  // Train ResNet-32 for 20K steps on two transient K80 workers in
  // us-central1, checkpointing every 4K steps, replacing revoked workers
  // immediately (CM-DARE's default policy).
  scenario::ScenarioSpec spec;
  spec.name = "quickstart";
  spec.kind = scenario::HarnessKind::kRun;
  spec.seed = 7;
  spec.model = "resnet-32";
  spec.workers = {{2, cloud::GpuType::kK80, cloud::Region::kUsCentral1, true}};
  spec.max_steps = 20000;
  spec.checkpoint_interval_steps = 4000;

  scenario::SimHarness harness(spec);
  harness.training_run()->on_complete = [&] {
    std::printf("training finished at simulated t = %s\n",
                util::format_duration(harness.simulator().now()).c_str());
  };
  const scenario::ScenarioResult result = harness.run();

  const core::TransientTrainingRun& run = *harness.training_run();
  const auto& trace = run.session().trace();
  std::printf("\nmodel: %s\n", run.session().model().summary().c_str());
  std::printf("cluster: %d transient worker(s) + %d parameter server(s)\n",
              spec.workers[0].count, spec.ps_count);
  std::printf("steps completed: %ld\n", result.completed_steps);
  std::printf("mean speed (post-warmup): %.2f steps/s\n",
              trace.mean_speed(100, spec.max_steps));
  std::printf("checkpoints saved: %zu (to object storage: %zu blobs)\n",
              trace.checkpoints().size(), result.checkpoint_blobs);
  std::printf("revocations: %d, replacements requested: %d\n",
              result.revocations, result.replacements);
  std::printf("elapsed: %s, total cost: $%.2f\n",
              util::format_duration(result.elapsed_seconds).c_str(),
              result.cost_usd);
  return 0;
}
