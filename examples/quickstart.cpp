// Quickstart: simulate training ResNet-32 on a small transient GPU
// cluster with CM-DARE's resource manager, and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "cmdare/resource_manager.hpp"
#include "nn/model_zoo.hpp"
#include "util/strings.hpp"

using namespace cmdare;

int main() {
  // A simulated cloud: one Simulator drives instance lifecycles,
  // revocations, training steps, and checkpoint uploads.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(7));
  cloud::ObjectStore storage(sim, util::Rng(8));

  // Train ResNet-32 for 20K steps on two transient K80 workers in
  // us-central1, checkpointing every 4K steps, replacing revoked workers
  // immediately (CM-DARE's default policy).
  core::RunConfig config;
  config.session.max_steps = 20000;
  config.session.checkpoint_interval_steps = 4000;
  config.workers = train::worker_mix(2, 0, 0, cloud::Region::kUsCentral1);

  core::TransientTrainingRun run(provider, nn::resnet32(), config,
                                 util::Rng(9), &storage);
  run.on_complete = [&] {
    std::printf("training finished at simulated t = %s\n",
                util::format_duration(sim.now()).c_str());
  };
  run.start();
  sim.run();

  const auto& trace = run.session().trace();
  std::printf("\nmodel: %s\n", run.session().model().summary().c_str());
  std::printf("cluster: %s transient workers + %d parameter server(s)\n",
              train::describe_mix(config.workers).c_str(),
              config.session.ps_count);
  std::printf("steps completed: %ld\n", run.session().global_step());
  std::printf("mean speed (post-warmup): %.2f steps/s\n",
              trace.mean_speed(100, 20000));
  std::printf("checkpoints saved: %zu (to object storage: %zu blobs)\n",
              trace.checkpoints().size(), storage.blob_count());
  std::printf("revocations: %d, replacements requested: %d\n",
              run.revocations_seen(), run.replacements_requested());
  std::printf("elapsed: %s, total cost: $%.2f\n",
              util::format_duration(run.elapsed_seconds()).c_str(),
              run.cost_so_far());
  return 0;
}
