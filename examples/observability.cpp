// Cross-layer telemetry demo: a revocation-heavy vanilla-TensorFlow
// session instrumented end to end.
//
// Four transient K80 workers train ResNet-15 behind two parameter-server
// shards while the cloud provider revokes instances underneath them;
// replacement workers reuse the revoked chief's IP, so every chief loss
// forces a recompute from the last checkpoint (Section V-E, Figure 11).
// With telemetry installed, every layer records into the shared Tracer /
// Registry: worker compute spans, PS queue waits and applies, checkpoint
// uploads, instance startups, revocation instants, and rollbacks.
//
// The session itself comes from a ScenarioSpec (kind = session) — the
// harness owns the simulator/provider/store wiring and this file only
// keeps the cluster glue that maps cloud instances to session workers.
//
// Outputs (in the working directory):
//   trace.json   — open in chrome://tracing or ui.perfetto.dev
//   trace.jsonl  — one JSON record per line, for jq / pandas
//   metrics.csv  — flattened metrics snapshot
// plus the engine profile (per-tag event counts) on stdout.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>

#include "nn/model_zoo.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/sim_profiler.hpp"
#include "scenario/harness.hpp"
#include "train/replacement.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace cmdare;

namespace {

// Wires cloud instances to session workers: an instance joins the session
// when it reaches RUNNING, and a revoked instance's worker is revoked and
// replaced. Vanilla TF: a replacement for the *chief* reuses its IP and
// triggers the rollback.
struct ClusterGlue {
  simcore::Simulator* sim;
  cloud::CloudProvider* provider;
  train::TrainingSession* session;
  nn::CnnModel model;
  util::Rng rng;
  std::map<cloud::InstanceId, std::optional<train::WorkerId>> placements;

  void launch(bool reuse_chief_ip) {
    cloud::InstanceRequest request;
    request.gpu = cloud::GpuType::kK80;
    request.region = cloud::Region::kEuropeWest1;  // churniest (Table V)
    request.transient = true;
    request.context = reuse_chief_ip
                          ? cloud::RequestContext::kImmediateAfterRevocation
                          : cloud::RequestContext::kNormal;

    cloud::InstanceCallbacks callbacks;
    callbacks.on_running = [this, reuse_chief_ip](cloud::InstanceId id) {
      if (session->finished()) return;
      train::WorkerSpec spec;
      spec.gpu = cloud::GpuType::kK80;
      spec.region = cloud::Region::kEuropeWest1;
      const double join_delay =
          train::sample_cold_replacement_seconds(model, rng);
      placements[id] = session->add_worker(spec, join_delay, reuse_chief_ip);
    };
    callbacks.on_revoked = [this](cloud::InstanceId id) {
      if (session->finished()) return;
      const auto worker = placements[id];
      bool was_chief = false;
      if (worker) {
        was_chief = session->checkpoint_owner() == *worker;
        session->revoke_worker(*worker);
      }
      launch(/*reuse_chief_ip=*/was_chief);
    };
    placements[provider->request_instance(request, std::move(callbacks))] =
        std::nullopt;
  }
};

}  // namespace

int main() {
  // Install telemetry for the whole run; everything below records into it.
  obs::ScopedTelemetry telemetry;

  // A bare vanilla-TF session with no pre-placed workers: the glue below
  // drives membership from cloud instance lifecycles instead.
  scenario::ScenarioSpec spec;
  spec.name = "observability";
  spec.kind = scenario::HarnessKind::kSession;
  spec.seed = 31;
  spec.model = "resnet-15";
  spec.ps_count = 2;
  spec.checkpoint_interval_steps = 250;
  spec.max_steps = 40000;
  spec.ft_mode = train::FaultToleranceMode::kVanillaTf;
  spec.horizon_hours = 24.0;

  scenario::SimHarness harness(spec);
  simcore::Simulator& sim = harness.simulator();
  train::TrainingSession& session = *harness.session();

  obs::SimProfiler profiler;
  sim.set_observer(&profiler);
  util::set_log_time_source([&sim] { return sim.now(); });

  ClusterGlue glue{&sim, &harness.provider(), &session, nn::resnet15(),
                   util::Rng(34), {}};
  for (int i = 0; i < 4; ++i) glue.launch(false);

  // Force one chief revocation even if the hazard model spares it, so the
  // trace always shows a vanilla-TF rollback.
  sim.schedule_after(600.0, [&] {
    if (session.finished()) return;
    if (const auto chief = session.checkpoint_owner()) {
      session.revoke_worker(*chief);
      glue.launch(/*reuse_chief_ip=*/true);
    }
  }, "demo.forced_revocation");

  harness.run();

  // --- dump everything the run recorded ---
  {
    std::ofstream out("trace.json");
    obs::write_chrome_trace(telemetry->tracer, out);
  }
  {
    std::ofstream out("trace.jsonl");
    obs::write_trace_jsonl(telemetry->tracer, out);
  }
  {
    std::ofstream out("metrics.csv");
    telemetry->registry.write_csv(out);
  }

  std::printf("finished:     %s (global step %ld of %ld)\n",
              session.finished() ? "yes" : "no", session.global_step(),
              spec.max_steps);
  std::printf("rollbacks:    %.0f\n",
              telemetry->registry.counter("train.rollbacks_total").value());
  std::printf("revocations:  %.0f\n",
              telemetry->registry
                  .counter("train.worker_revocations_total")
                  .value());
  std::printf("checkpoints:  %zu\n", session.trace().checkpoints().size());
  // The filtered snapshot keeps the summary focused on training health.
  std::printf("train counters:\n");
  for (const obs::SnapshotRow& row :
       telemetry->registry.snapshot(std::string_view("train."))) {
    if (row.kind != "counter") continue;
    const std::string labels = obs::format_labels(row.labels);
    std::printf("  %s%s%s%s = %.0f\n", row.name.c_str(),
                labels.empty() ? "" : "{", labels.c_str(),
                labels.empty() ? "" : "}", row.value);
  }
  std::printf("trace spans:  %zu on %zu tracks (+%zu instants)\n",
              telemetry->tracer.spans().size(),
              telemetry->tracer.track_names().size(),
              telemetry->tracer.instants().size());
  std::printf("wrote trace.json, trace.jsonl, metrics.csv\n\n");

  telemetry->registry.write_text(std::cout);
  std::printf("\n");
  profiler.write_report(std::cout);
  std::printf(
      "\nLoad trace.json in chrome://tracing (or ui.perfetto.dev) to see "
      "compute spans stall at each revocation and the rollback recompute "
      "after the chief is replaced.\n");

  util::set_log_time_source(nullptr);
  sim.set_observer(nullptr);
  return 0;
}
