#!/usr/bin/env bash
# CI entry point: tier-1 (full build + full ctest) plus the fault-label
# suite rebuilt under AddressSanitizer.
#
#   scripts/ci.sh            # both stages
#   scripts/ci.sh --tier1    # tier-1 only
#   scripts/ci.sh --asan     # ASan faults stage only
#
# Build trees: build/ (tier-1) and build-asan/ (sanitized), both rooted
# at the repo top so incremental reruns are cheap.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=true
run_asan=true
case "${1:-}" in
  --tier1) run_asan=false ;;
  --asan) run_tier1=false ;;
  "") ;;
  *)
    echo "usage: scripts/ci.sh [--tier1|--asan]" >&2
    exit 2
    ;;
esac

jobs="$(nproc 2>/dev/null || echo 4)"

if $run_tier1; then
  echo "=== tier-1: full build + ctest ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

if $run_asan; then
  echo "=== asan: faults label under AddressSanitizer ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMDARE_SANITIZE=address
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan -L faults --output-on-failure -j "$jobs"
fi

echo "CI OK"
