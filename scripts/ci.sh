#!/usr/bin/env bash
# CI entry point: tier-1 (full build + full ctest), the fault/supervise/
# obs/fleet/simcore/exp/ckpt label suites rebuilt under AddressSanitizer,
# and the concurrency-heavy tests (obs, campaign engine, journal resume,
# supervised sweeps, fleet campaigns) under ThreadSanitizer. The simcore label rides along in
# the ASan/UBSan stages because the event engine hands out arena slots
# with generation-checked handles — lifetime bugs there are exactly what
# the sanitizers exist to catch. The perf-snapshot gate (--bench) is explicit
# only: it re-runs bench_snapshot against the checked-in BENCH_*.json
# and fails on a regression beyond the tolerance band.
#
#   scripts/ci.sh            # tier-1 + asan + tsan + ubsan
#   scripts/ci.sh --tier1    # tier-1 only
#   scripts/ci.sh --asan     # ASan stage only
#   scripts/ci.sh --tsan     # TSan stage only
#   scripts/ci.sh --ubsan    # UBSan stage only
#   scripts/ci.sh --bench    # perf-snapshot regression gate only
#
# Build trees: build/ (tier-1 + bench), build-asan/, build-tsan/, and
# build-ubsan/ (sanitized), all rooted at the repo top so incremental
# reruns are cheap.
set -euo pipefail

cd "$(dirname "$0")/.."

run_tier1=true
run_asan=true
run_tsan=true
run_ubsan=true
run_bench=false
case "${1:-}" in
  --tier1) run_asan=false; run_tsan=false; run_ubsan=false ;;
  --asan) run_tier1=false; run_tsan=false; run_ubsan=false ;;
  --tsan) run_tier1=false; run_asan=false; run_ubsan=false ;;
  --ubsan) run_tier1=false; run_asan=false; run_tsan=false ;;
  --bench)
    run_tier1=false; run_asan=false; run_tsan=false; run_ubsan=false
    run_bench=true
    ;;
  "") ;;
  *)
    echo "usage: scripts/ci.sh [--tier1|--asan|--tsan|--ubsan|--bench]" >&2
    exit 2
    ;;
esac

jobs="$(nproc 2>/dev/null || echo 4)"

if $run_tier1; then
  echo "=== tier-1: full build + ctest ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs"
  ctest --test-dir build --output-on-failure -j "$jobs"
fi

if $run_asan; then
  echo "=== asan: faults + supervise + obs + fleet + simcore + exp + ckpt labels under AddressSanitizer ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMDARE_SANITIZE=address
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan -L 'faults|supervise|obs|fleet|simcore|exp|ckpt' \
    --output-on-failure -j "$jobs"
fi

if $run_tsan; then
  echo "=== tsan: concurrency-heavy tests under ThreadSanitizer ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMDARE_SANITIZE=thread
  cmake --build build-tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
    -R '^(ObsConcurrency|ThreadPool|Campaign|CampaignSpec|CampaignJournal|HeartbeatDetector|HazardEstimator|AdaptiveCheckpointController|SupervisedRun|DetectionCampaign|FleetCampaign|StormCampaign)\.'
fi

if $run_ubsan; then
  echo "=== ubsan: faults + supervise + simcore + exp + ckpt labels under UndefinedBehaviorSanitizer ==="
  cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMDARE_SANITIZE=undefined
  cmake --build build-ubsan -j "$jobs"
  ctest --test-dir build-ubsan -L 'faults|supervise|simcore|exp|ckpt' \
    --output-on-failure -j "$jobs"
fi

if $run_bench; then
  echo "=== bench: perf-snapshot regression gate ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "$jobs" --target bench_snapshot
  ./build/bench/bench_snapshot --check BENCH_micro.json \
    --check BENCH_speed.json --check BENCH_fleet.json
fi

echo "CI OK"
