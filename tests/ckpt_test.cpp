// Checkpoint data plane: tier-aware placement, end-to-end manifest
// integrity, generational restore fallback orderings, and the
// golden-pinned ckpt campaign (CSV + merged ledger byte-identical across
// job counts).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "ckpt/manifest.hpp"
#include "ckpt/plane.hpp"
#include "cloud/storage.hpp"
#include "cloud/tier.hpp"
#include "exp/campaign.hpp"
#include "faults/faults.hpp"
#include "obs/analyze.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "scenario/catalog.hpp"
#include "scenario/harness.hpp"
#include "scenario/sweep.hpp"
#include "simcore/simulator.hpp"
#include "util/rng.hpp"

namespace cmdare {
namespace {

using ckpt::CheckpointPlane;
using ckpt::PlaneConfig;
using ckpt::PlannedWrite;
using cloud::ObjectStore;
using cloud::StorageTier;

constexpr std::uint64_t kFullBytes = 90'000'000;  // ~ResNet checkpoint

PlaneConfig small_config() {
  PlaneConfig config;
  config.enabled = true;
  config.delta_ratio = 0.1;
  config.max_delta_chain = 2;
  config.max_generations = 2;
  return config;
}

/// Plans, uploads and commits the checkpoint at `step` through the plane,
/// exactly like the session's checkpoint hot path.
PlannedWrite commit_checkpoint(simcore::Simulator& sim, ObjectStore& store,
                               CheckpointPlane& plane, long step) {
  const PlannedWrite write = plane.plan_write(step, kFullBytes);
  store.upload(write.key, write.bytes, [] {}, nullptr, write.tier);
  sim.run();
  plane.commit_write(write);
  return write;
}

/// Overwrites `key` with a different byte count: the durable blob no
/// longer matches its manifest record, so verification sees "truncated".
void corrupt_blob(simcore::Simulator& sim, ObjectStore& store,
                  const std::string& key) {
  store.upload(key, store.blob_size(key) / 2 + 1, [] {});
  sim.run();
}

void advance_to(simcore::Simulator& sim, double when) {
  sim.schedule_after(when - sim.now(), [] {}, "test.advance");
  sim.run();
}

TEST(CkptPlane, ConfigValidation) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(1));
  PlaneConfig bad_ratio = small_config();
  bad_ratio.delta_ratio = 0.0;
  EXPECT_THROW(CheckpointPlane(sim, store, bad_ratio), std::invalid_argument);
  bad_ratio.delta_ratio = 1.5;
  EXPECT_THROW(CheckpointPlane(sim, store, bad_ratio), std::invalid_argument);
  PlaneConfig bad_chain = small_config();
  bad_chain.max_delta_chain = 0;
  EXPECT_THROW(CheckpointPlane(sim, store, bad_chain), std::invalid_argument);
  PlaneConfig bad_gens = small_config();
  bad_gens.max_generations = 0;
  EXPECT_THROW(CheckpointPlane(sim, store, bad_gens), std::invalid_argument);
}

TEST(CkptPlane, BaseDeltaPlanningAndTierPlacement) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(2));
  CheckpointPlane plane(sim, store, small_config());

  // First checkpoint: a full base on the regional tier.
  const PlannedWrite base1 = commit_checkpoint(sim, store, plane, 10);
  EXPECT_TRUE(base1.is_base);
  EXPECT_FALSE(base1.compaction);
  EXPECT_EQ(base1.key, "ckpt/g1/base-10");
  EXPECT_EQ(base1.bytes, kFullBytes);
  EXPECT_EQ(store.blob_tier(base1.key), StorageTier::kRegional);

  // Deltas ride the local cache tier at delta_ratio of the full size.
  const PlannedWrite delta1 = commit_checkpoint(sim, store, plane, 20);
  EXPECT_FALSE(delta1.is_base);
  EXPECT_EQ(delta1.key, "ckpt/g1/delta-20");
  EXPECT_EQ(delta1.bytes, kFullBytes / 10);
  EXPECT_EQ(store.blob_tier(delta1.key), StorageTier::kLocal);
  const PlannedWrite delta2 = commit_checkpoint(sim, store, plane, 30);
  EXPECT_FALSE(delta2.is_base);

  // Chain full (max_delta_chain=2): the next write compacts into a new
  // base and the superseded generation is demoted to cold storage.
  const PlannedWrite base2 = commit_checkpoint(sim, store, plane, 40);
  EXPECT_TRUE(base2.is_base);
  EXPECT_TRUE(base2.compaction);
  EXPECT_EQ(base2.key, "ckpt/g2/base-40");
  EXPECT_EQ(store.blob_tier(base1.key), StorageTier::kCold);
  EXPECT_EQ(store.blob_tier(delta1.key), StorageTier::kCold);
  EXPECT_EQ(store.blob_tier(delta2.key), StorageTier::kCold);
  EXPECT_EQ(store.blob_tier(base2.key), StorageTier::kRegional);

  EXPECT_EQ(plane.base_writes(), 2u);
  EXPECT_EQ(plane.delta_writes(), 2u);
  EXPECT_EQ(plane.compactions(), 1u);
  ASSERT_EQ(plane.generations().size(), 2u);
  EXPECT_EQ(plane.generations()[0].newest_step(), 30);
  EXPECT_EQ(plane.generations()[1].newest_step(), 40);

  // A third generation trims the manifest to max_generations=2.
  commit_checkpoint(sim, store, plane, 50);
  commit_checkpoint(sim, store, plane, 60);
  commit_checkpoint(sim, store, plane, 70);
  ASSERT_EQ(plane.generations().size(), 2u);
  EXPECT_EQ(plane.generations()[0].id, 2u);
  EXPECT_EQ(plane.generations()[1].id, 3u);

  // Every transfer accrued tier dollars into the store's ledger.
  EXPECT_GT(plane.tier_cost_usd(), 0.0);
}

TEST(CkptPlane, VerifiedRestorePromotesGenerationToLocal) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(3));
  CheckpointPlane plane(sim, store, small_config());
  const PlannedWrite base = commit_checkpoint(sim, store, plane, 10);
  const PlannedWrite delta = commit_checkpoint(sim, store, plane, 20);

  EXPECT_EQ(plane.restorable_step(), 20);
  EXPECT_EQ(plane.verified_restores(), 1u);
  EXPECT_EQ(plane.quarantines(), 0u);
  EXPECT_EQ(plane.cold_restarts(), 0u);
  // The restore fast path pulls the whole generation into the local cache.
  EXPECT_EQ(store.blob_tier(base.key), StorageTier::kLocal);
  EXPECT_EQ(store.blob_tier(delta.key), StorageTier::kLocal);
}

TEST(CkptPlane, CorruptNewestGenerationFallsBackToOlder) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(4));
  CheckpointPlane plane(sim, store, small_config());
  // Generation 1 (base 10, deltas 20/30) then generation 2 (base 40).
  commit_checkpoint(sim, store, plane, 10);
  commit_checkpoint(sim, store, plane, 20);
  commit_checkpoint(sim, store, plane, 30);
  const PlannedWrite base2 = commit_checkpoint(sim, store, plane, 40);

  corrupt_blob(sim, store, base2.key);
  EXPECT_EQ(plane.restorable_step(), 30);  // newest *verified* generation
  EXPECT_EQ(plane.quarantines(), 1u);
  EXPECT_EQ(plane.verified_restores(), 1u);
  EXPECT_TRUE(plane.generations().back().quarantined);
  EXPECT_FALSE(plane.generations().front().quarantined);
}

TEST(CkptPlane, BrokenDeltaChainQuarantinesWholeGeneration) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(5));
  PlaneConfig config = small_config();
  config.max_delta_chain = 3;
  CheckpointPlane plane(sim, store, config);
  // Generation 1 (base 10, deltas 20/30/40) then generation 2 with a
  // full chain of its own: base 50 + deltas 60, 70, 80.
  commit_checkpoint(sim, store, plane, 10);
  commit_checkpoint(sim, store, plane, 20);
  commit_checkpoint(sim, store, plane, 30);
  commit_checkpoint(sim, store, plane, 40);
  commit_checkpoint(sim, store, plane, 50);
  commit_checkpoint(sim, store, plane, 60);
  const PlannedWrite middle = commit_checkpoint(sim, store, plane, 70);
  commit_checkpoint(sim, store, plane, 80);

  // One broken middle link invalidates step 80 too: the whole generation
  // is quarantined even though its base and newest delta are intact, and
  // restore falls back to generation 1's newest step.
  corrupt_blob(sim, store, middle.key);
  EXPECT_EQ(plane.restorable_step(), 40);
  EXPECT_EQ(plane.quarantines(), 1u);
  EXPECT_TRUE(plane.generations().back().quarantined);
}

TEST(CkptPlane, AllGenerationsCorruptMeansCleanColdRestart) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(6));
  CheckpointPlane plane(sim, store, small_config());
  const PlannedWrite base1 = commit_checkpoint(sim, store, plane, 10);
  commit_checkpoint(sim, store, plane, 20);
  commit_checkpoint(sim, store, plane, 30);
  const PlannedWrite base2 = commit_checkpoint(sim, store, plane, 40);

  corrupt_blob(sim, store, base1.key);
  corrupt_blob(sim, store, base2.key);
  EXPECT_EQ(plane.restorable_step(), 0);
  EXPECT_EQ(plane.cold_restarts(), 1u);
  EXPECT_EQ(plane.quarantines(), 2u);
  EXPECT_EQ(plane.verified_restores(), 0u);

  // After a cold restart the next checkpoint opens a fresh generation:
  // every quarantined chain is dead, never appended to.
  const PlannedWrite next = plane.plan_write(5, kFullBytes);
  EXPECT_TRUE(next.is_base);
  EXPECT_EQ(next.key, "ckpt/g3/base-5");
}

TEST(CkptPlane, TornWriteAndBitRotDrawsAreDetectedOnRestore) {
  // Torn write: fewer bytes durable than the manifest records.
  {
    simcore::Simulator sim;
    ObjectStore store(sim, util::Rng(7));
    faults::FaultPlan plan;
    plan.torn_write_rate = 1.0;
    faults::FaultInjector injector(plan, util::Rng(7));
    CheckpointPlane plane(sim, store, small_config(), &injector);
    commit_checkpoint(sim, store, plane, 10);
    EXPECT_EQ(plane.restorable_step(), 0);
    EXPECT_EQ(plane.quarantines(), 1u);
    EXPECT_EQ(plane.cold_restarts(), 1u);
  }
  // Bit rot: stored checksum drifts from the manifest checksum.
  {
    simcore::Simulator sim;
    ObjectStore store(sim, util::Rng(8));
    faults::FaultPlan plan;
    plan.bit_rot_rate = 1.0;
    faults::FaultInjector injector(plan, util::Rng(8));
    CheckpointPlane plane(sim, store, small_config(), &injector);
    commit_checkpoint(sim, store, plane, 10);
    EXPECT_EQ(plane.restorable_step(), 0);
    EXPECT_EQ(plane.quarantines(), 1u);
    EXPECT_EQ(plane.cold_restarts(), 1u);
  }
}

TEST(CkptPlane, TierOutageSkipsGenerationWithoutQuarantine) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(9));
  faults::FaultPlan plan;
  faults::TierOutageWindow window;
  window.tier = StorageTier::kRegional;
  window.start_s = 1000.0;
  window.end_s = 2000.0;
  plan.tier_outages.push_back(window);
  faults::FaultInjector injector(plan, util::Rng(9));
  CheckpointPlane plane(sim, store, small_config(), &injector);

  // Generation 1 (demoted to cold when gen 2's base lands) and
  // generation 2 whose base lives on the struck regional tier.
  commit_checkpoint(sim, store, plane, 10);
  commit_checkpoint(sim, store, plane, 20);
  commit_checkpoint(sim, store, plane, 30);
  commit_checkpoint(sim, store, plane, 40);

  // Inside the outage the newest generation is dark, not corrupt: the
  // restore skips it without quarantining and lands on generation 1.
  advance_to(sim, 1500.0);
  EXPECT_EQ(plane.restorable_step(), 30);
  EXPECT_EQ(plane.quarantines(), 0u);
  EXPECT_EQ(plane.verified_restores(), 1u);
  EXPECT_FALSE(plane.generations().back().quarantined);

  // After the window the generation verifies as if nothing happened.
  advance_to(sim, 2500.0);
  EXPECT_EQ(plane.restorable_step(), 40);
  EXPECT_EQ(plane.quarantines(), 0u);
  EXPECT_EQ(plane.verified_restores(), 2u);
}

std::string detail_value(const obs::LedgerEvent& event, const std::string& key) {
  for (const auto& [k, v] : event.detail) {
    if (k == key) return v;
  }
  return "";
}

TEST(CkptPlane, LedgerEventsAndAnalyzerRollup) {
  obs::ScopedTelemetry telemetry;
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(10));
  CheckpointPlane plane(sim, store, small_config());
  commit_checkpoint(sim, store, plane, 10);
  commit_checkpoint(sim, store, plane, 20);
  commit_checkpoint(sim, store, plane, 30);
  const PlannedWrite base2 = commit_checkpoint(sim, store, plane, 40);

  corrupt_blob(sim, store, base2.key);
  EXPECT_EQ(plane.restorable_step(), 30);  // quarantine + depth-1 fallback
  corrupt_blob(sim, store, "ckpt/g1/base-10");
  EXPECT_EQ(plane.restorable_step(), 0);  // everything bad: cold restart

  const obs::Ledger& ledger = telemetry->ledger;
  std::optional<obs::LedgerEvent> quarantine;
  std::optional<obs::LedgerEvent> verified;
  std::optional<obs::LedgerEvent> cold;
  std::optional<obs::LedgerEvent> compact;
  for (const obs::LedgerEvent& event : ledger.events()) {
    switch (event.kind) {
      case obs::LedgerEventKind::kCkptQuarantine:
        if (!quarantine) quarantine = event;
        break;
      case obs::LedgerEventKind::kCkptRestore:
        if (detail_value(event, "result") == "verified") verified = event;
        if (detail_value(event, "result") == "cold_restart") cold = event;
        break;
      case obs::LedgerEventKind::kCkptCompact:
        compact = event;
        break;
      default:
        break;
    }
  }
  ASSERT_TRUE(quarantine.has_value());
  EXPECT_EQ(detail_value(*quarantine, "reason"), "truncated");
  EXPECT_EQ(detail_value(*quarantine, "generation"), "2");
  ASSERT_TRUE(verified.has_value());
  EXPECT_EQ(detail_value(*verified, "depth"), "1");
  EXPECT_EQ(verified->step, 30);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(detail_value(*cold, "depth"), "2");
  EXPECT_EQ(cold->step, -1);
  ASSERT_TRUE(compact.has_value());  // the gen-2 base was a compaction

  // Serialize -> parse -> analyze: the report carries the plane section.
  std::ostringstream jsonl;
  obs::write_ledger_jsonl(ledger, jsonl);
  const obs::LedgerParseResult parsed = obs::parse_ledger_jsonl(jsonl.str());
  ASSERT_TRUE(parsed.ok());
  const obs::analyze::LedgerAnalysis analysis =
      obs::analyze::analyze_ledger(parsed.ledger);
  EXPECT_EQ(analysis.ckpt.quarantines, 2u);
  EXPECT_EQ(analysis.ckpt.quarantines_truncated, 2u);
  EXPECT_EQ(analysis.ckpt.verified_restores, 1u);
  EXPECT_EQ(analysis.ckpt.fallback_restores, 1u);
  EXPECT_EQ(analysis.ckpt.cold_restarts, 1u);
  EXPECT_EQ(analysis.ckpt.max_fallback_depth, 2u);
  EXPECT_EQ(analysis.ckpt.compactions, 1u);
  std::ostringstream report;
  obs::analyze::write_report(analysis, report);
  EXPECT_NE(report.str().find("Checkpoint data plane"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Harness integration and the golden-pinned ckpt campaign.
// ---------------------------------------------------------------------------

/// The catalog's ckpt scenario shrunk for tests: shorter run, compressed
/// storm, same tiers/rates.
scenario::ScenarioSpec shrunk_ckpt_scenario() {
  scenario::ScenarioSpec spec = scenario::ckpt_scenario();
  spec.max_steps = 100000;
  spec.checkpoint_interval_steps = 4000;
  spec.horizon_hours = 6.0;
  spec.faults.storms[0].start_s = 1800.0;
  spec.faults.storms[0].end_s = 3600.0;
  spec.faults.tier_outages[0].start_s = 3600.0;
  spec.faults.tier_outages[0].end_s = 5400.0;
  return spec;
}

TEST(CkptScenario, HarnessRunsThePlaneEndToEnd) {
  scenario::ScenarioSpec spec = shrunk_ckpt_scenario();
  scenario::SimHarness harness(spec);
  const scenario::ScenarioResult result = harness.run();
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.completed_steps, 100000);
  EXPECT_GT(result.ckpt_base_writes, 0u);
  EXPECT_GT(result.ckpt_delta_writes, 0u);
  EXPECT_GT(result.ckpt_tier_cost_usd, 0.0);
  // The storm guarantees chief-killing revocations, so the restore path
  // ran: every restore either verified a generation or cold-restarted.
  EXPECT_GT(result.revocations, 0);
  EXPECT_GT(result.ckpt_verified_restores + result.ckpt_cold_restarts, 0u);
}

TEST(CkptScenario, DisabledPlaneLeavesLegacyPathUntouched) {
  scenario::ScenarioSpec spec = shrunk_ckpt_scenario();
  spec.ckpt.enabled = false;
  scenario::SimHarness harness(spec);
  const scenario::ScenarioResult result = harness.run();
  EXPECT_GT(result.checkpoint_blobs, 0u);
  EXPECT_EQ(result.ckpt_base_writes, 0u);
  EXPECT_EQ(result.ckpt_delta_writes, 0u);
  EXPECT_EQ(result.ckpt_verified_restores, 0u);
  EXPECT_EQ(result.ckpt_cold_restarts, 0u);
  EXPECT_EQ(result.ckpt_tier_cost_usd, 0.0);
}

scenario::ScenarioSweep shrunk_ckpt_sweep(int replicas) {
  scenario::ScenarioSweep sweep = scenario::sweep_by_name("ckpt").sweep;
  sweep.name = "ckpt-golden";
  sweep.base = shrunk_ckpt_scenario();
  sweep.axes = {
      {"ckpt.enabled", {"false", "true"}},
      {"ckpt.bit_rot_rate", {"0", "0.25"}},
  };
  sweep.replicas = replicas;
  sweep.seed = 1111;
  return sweep;
}

scenario::ScenarioCampaignResult run_ckpt_sweep(int replicas, int jobs,
                                                bool telemetry) {
  exp::RunOptions options;
  options.jobs = jobs;
  options.capture_telemetry = telemetry;
  return run_scenario_campaign(shrunk_ckpt_sweep(replicas), options,
                               scenario::sweep_by_name("ckpt").replica);
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(CkptCampaign, CsvAndMergedLedgerByteIdenticalAcrossJobCounts) {
  const auto render = [](int jobs) {
    const scenario::ScenarioCampaignResult result =
        run_ckpt_sweep(/*replicas=*/1, jobs, /*telemetry=*/true);
    std::ostringstream csv;
    result.write_csv(csv);
    std::ostringstream ledger;
    obs::write_ledger_jsonl(result.telemetry->ledger, ledger);
    return std::pair<std::string, std::string>(csv.str(), ledger.str());
  };
  const auto [csv1, ledger1] = render(1);
  const auto [csv4, ledger4] = render(4);
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(ledger1, ledger4);
  // Byte-pins of the jobs=1 rendering (captured at introduction): the
  // full texts are too large to inline, so pin size + FNV-1a instead.
  EXPECT_EQ(csv1.size(), 5798u);
  EXPECT_EQ(fnv1a(csv1), 1251098968202069101ull);
  EXPECT_EQ(ledger1.size(), 71264u);
  EXPECT_EQ(fnv1a(ledger1), 14828602336848495821ull);
  // The data plane's machinery is visible in the merged ledger.
  EXPECT_NE(ledger1.find("\"kind\":\"ckpt_compact\""), std::string::npos);
  EXPECT_NE(ledger1.find("\"kind\":\"ckpt_restore\""), std::string::npos);
}

TEST(CkptCampaign, RotPressureDrivesQuarantinesInTheEnabledArm) {
  const scenario::ScenarioCampaignResult result =
      run_ckpt_sweep(/*replicas=*/2, /*jobs=*/2, /*telemetry=*/false);
  // First axis slowest: cells are {off, on} x {rot 0, rot 0.25}.
  ASSERT_EQ(result.cells.size(), 4u);
  const auto mean = [&](std::size_t cell, const char* metric) {
    return result.aggregates[cell].metrics.at(metric).running.mean();
  };
  // Disabled arm never touches the plane.
  EXPECT_EQ(mean(0, "ckpt_base_writes"), 0.0);
  EXPECT_EQ(mean(1, "ckpt_base_writes"), 0.0);
  // Enabled arm writes generations in both cells...
  EXPECT_GT(mean(2, "ckpt_base_writes"), 0.0);
  EXPECT_GT(mean(3, "ckpt_base_writes"), 0.0);
  // ...and only the corrupted cell quarantines.
  EXPECT_EQ(mean(2, "ckpt_quarantines"), 0.0);
  EXPECT_GT(mean(3, "ckpt_quarantines"), 0.0);
}

}  // namespace
}  // namespace cmdare
