#include <gtest/gtest.h>

#include <cmath>

#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/pca.hpp"
#include "util/rng.hpp"

namespace cmdare::ml {
namespace {

TEST(LinearRegression, RecoversExactLinearRelation) {
  Dataset d({"x"});
  for (double x = 0.0; x <= 5.0; x += 1.0) d.add({x}, 3.0 * x + 2.0);
  LinearRegression reg;
  reg.fit(d);
  EXPECT_NEAR(reg.coefficient(0), 3.0, 1e-9);
  EXPECT_NEAR(reg.intercept(), 2.0, 1e-9);
  EXPECT_NEAR(reg.predict(std::vector<double>{10.0}), 32.0, 1e-8);
}

TEST(LinearRegression, RecoversMultivariateRelation) {
  Dataset d({"a", "b"});
  util::Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const double a = rng.uniform(0, 10);
    const double b = rng.uniform(-5, 5);
    d.add({a, b}, 2.0 * a - 1.5 * b + 0.7);
  }
  LinearRegression reg;
  reg.fit(d);
  EXPECT_NEAR(reg.coefficient(0), 2.0, 1e-8);
  EXPECT_NEAR(reg.coefficient(1), -1.5, 1e-8);
  EXPECT_NEAR(reg.intercept(), 0.7, 1e-8);
}

TEST(LinearRegression, MinimizesSquaredErrorOnNoisyData) {
  Dataset d({"x"});
  util::Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 1);
    d.add({x}, 4.0 * x + 1.0 + rng.normal(0.0, 0.05));
  }
  LinearRegression reg;
  reg.fit(d);
  EXPECT_NEAR(reg.coefficient(0), 4.0, 0.1);
  EXPECT_NEAR(reg.intercept(), 1.0, 0.05);
}

TEST(LinearRegression, ValidatesUsage) {
  LinearRegression reg;
  EXPECT_THROW(reg.predict(std::vector<double>{1.0}), std::logic_error);
  Dataset d({"x"});
  d.add({1.0}, 1.0);
  EXPECT_THROW(reg.fit(d), std::invalid_argument);  // n <= p+1
  d.add({2.0}, 2.0);
  reg.fit(d);
  EXPECT_THROW(reg.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(LinearRegression, HandlesCollinearFeaturesViaRidgeFallback) {
  Dataset d({"a", "b"});
  for (double x = 0.0; x < 6.0; x += 1.0) d.add({x, 2.0 * x}, x);
  LinearRegression reg;
  EXPECT_NO_THROW(reg.fit(d));
  // Prediction must still follow the relation y = x even if coefficients
  // are not unique.
  EXPECT_NEAR(reg.predict(std::vector<double>{3.0, 6.0}), 3.0, 1e-3);
}

TEST(LinearRegression, CloneIsUnfitted) {
  Dataset d({"x"});
  d.add({0.0}, 0.0);
  d.add({1.0}, 1.0);
  LinearRegression reg;
  reg.fit(d);
  auto clone = reg.clone_unfitted();
  EXPECT_THROW(clone->predict(std::vector<double>{1.0}), std::logic_error);
}

TEST(FitUnivariate, MatchesClosedForm) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};
  const UnivariateFit fit = fit_univariate(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-10);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-10);
}

TEST(Pca, FindsDominantDirection) {
  // Points spread along (1, 1) with tiny orthogonal noise.
  Dataset d({"a", "b"});
  util::Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    const double t = rng.normal(0.0, 3.0);
    const double noise = rng.normal(0.0, 0.05);
    d.add({t + noise, t - noise}, 0.0);
  }
  Pca pca;
  pca.fit(d, 2);
  // First component explains almost all variance.
  EXPECT_GT(pca.explained_variance_ratio(0), 0.99);
  // Its direction is (1,1)/sqrt(2) up to sign: projections of (1,1)
  // should have magnitude sqrt(2).
  const auto proj = pca.transform(std::vector<double>{1.0, 1.0});
  EXPECT_NEAR(std::abs(proj[0]), std::sqrt(2.0), 0.05);
}

TEST(Pca, CentersData) {
  Dataset d({"a"});
  d.add({10.0}, 0.0);
  d.add({12.0}, 0.0);
  Pca pca;
  pca.fit(d, 1);
  const auto at_mean = pca.transform(std::vector<double>{11.0});
  EXPECT_NEAR(at_mean[0], 0.0, 1e-12);
}

TEST(Pca, Validates) {
  Dataset d({"a", "b"});
  d.add({1.0, 2.0}, 0.0);
  Pca pca;
  EXPECT_THROW(pca.fit(d, 1), std::invalid_argument);  // need 2 examples
  d.add({2.0, 3.0}, 0.0);
  EXPECT_THROW(pca.fit(d, 0), std::invalid_argument);
  EXPECT_THROW(pca.fit(d, 3), std::invalid_argument);
  EXPECT_THROW(pca.transform(std::vector<double>{1.0, 2.0}),
               std::logic_error);
}

TEST(PcaRegression, FitsThroughProjection) {
  // Target depends on the sum of features; PCA to 1 component keeps it.
  Dataset d({"a", "b", "c"});
  util::Rng rng(10);
  for (int i = 0; i < 60; ++i) {
    const double t = rng.uniform(0, 10);
    d.add({t, 2 * t, 3 * t}, 5.0 * t + 1.0);
  }
  PcaRegression reg(1);
  reg.fit(d);
  const auto preds = reg.predict_all(d);
  EXPECT_LT(mean_absolute_error(d.targets(), preds), 1e-6);
}

TEST(PcaRegression, TwoComponentVariantWorksOnCorrelatedFeatures) {
  Dataset d({"sd", "sm", "si"});
  util::Rng rng(12);
  for (int i = 0; i < 40; ++i) {
    const double size = rng.uniform(1, 100);
    const double tensors = rng.uniform(10, 400);
    d.add({size, 0.1 + 0.002 * tensors, 0.001 * tensors},
          3.6 + size / 38.0);
  }
  PcaRegression reg(2);
  reg.fit(d);
  const auto preds = reg.predict_all(d);
  EXPECT_LT(mean_absolute_error(d.targets(), preds), 0.05);
  EXPECT_EQ(reg.pca().component_count(), 2u);
}

}  // namespace
}  // namespace cmdare::ml
