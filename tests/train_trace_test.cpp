#include <gtest/gtest.h>

#include "train/cluster.hpp"
#include "train/trace.hpp"

namespace cmdare::train {
namespace {

TEST(Trace, RecordsAndQueriesGlobalSteps) {
  TrainingTrace trace;
  trace.record_global_step(1, 0.5);
  trace.record_global_step(2, 1.0);
  trace.record_global_step(3, 1.5);
  EXPECT_EQ(trace.max_global_step(), 3);
  EXPECT_DOUBLE_EQ(trace.time_of_step(2), 1.0);
  EXPECT_THROW(trace.time_of_step(0), std::out_of_range);
  EXPECT_THROW(trace.time_of_step(4), std::out_of_range);
}

TEST(Trace, TryTimeOfStepReturnsNulloptInsteadOfThrowing) {
  TrainingTrace trace;
  trace.record_global_step(1, 0.5);
  // A recording jump leaves step 2 unreached (sentinel) but step 3 set.
  trace.record_global_step(3, 1.5);
  EXPECT_EQ(trace.try_time_of_step(1), 0.5);
  EXPECT_FALSE(trace.try_time_of_step(0).has_value());
  EXPECT_FALSE(trace.try_time_of_step(2).has_value());  // never reached
  EXPECT_EQ(trace.try_time_of_step(3), 1.5);
  EXPECT_FALSE(trace.try_time_of_step(4).has_value());
  EXPECT_FALSE(trace.try_time_of_step(40000).has_value());
  EXPECT_THROW(trace.time_of_step(2), std::out_of_range);
  // value_or gives callers a clean "finished or bound" expression.
  EXPECT_DOUBLE_EQ(trace.try_time_of_step(40000).value_or(-1.0), -1.0);
}

TEST(Trace, RollbackOverwritesStepTimes) {
  TrainingTrace trace;
  trace.record_global_step(1, 1.0);
  trace.record_global_step(2, 2.0);
  // Rollback: step 2 recomputed later.
  trace.record_global_step(2, 9.0);
  EXPECT_DOUBLE_EQ(trace.time_of_step(2), 9.0);
}

TEST(Trace, SpeedPerWindowUniformSteps) {
  TrainingTrace trace;
  for (long s = 1; s <= 400; ++s) {
    trace.record_global_step(s, 0.1 * static_cast<double>(s));
  }
  const auto speeds = trace.speed_per_window(100);
  ASSERT_EQ(speeds.size(), 4u);
  for (double v : speeds) EXPECT_NEAR(v, 10.0, 1e-9);
}

TEST(Trace, MeanSpeedBetweenSteps) {
  TrainingTrace trace;
  for (long s = 1; s <= 100; ++s) {
    trace.record_global_step(s, 0.5 * static_cast<double>(s));
  }
  EXPECT_NEAR(trace.mean_speed(20, 100), 2.0, 1e-9);
  EXPECT_THROW(trace.mean_speed(50, 50), std::invalid_argument);
}

TEST(Trace, WorkerIntervalsDiscardWarmup) {
  TrainingTrace trace;
  // Worker 0: 5 steps at t = 1..5.
  for (int i = 1; i <= 5; ++i) trace.record_worker_step(0, i);
  const auto all = trace.worker_step_intervals(0, 0);
  EXPECT_EQ(all.size(), 4u);
  const auto discarded = trace.worker_step_intervals(0, 2);
  EXPECT_EQ(discarded.size(), 2u);
  EXPECT_DOUBLE_EQ(discarded[0], 1.0);
  EXPECT_THROW(trace.worker_step_intervals(1, 0), std::out_of_range);
}

TEST(Trace, EventsAndCheckpointsAccumulate) {
  TrainingTrace trace;
  trace.record_event(
      SessionEvent{SessionEventType::kWorkerJoined, 1.0, 0, 0, "w0"});
  CheckpointEvent c;
  c.at_step = 100;
  c.started = 5.0;
  c.finished = 8.5;
  trace.record_checkpoint(c);
  EXPECT_EQ(trace.events().size(), 1u);
  ASSERT_EQ(trace.checkpoints().size(), 1u);
  EXPECT_DOUBLE_EQ(trace.checkpoints()[0].duration(), 3.5);
}

TEST(Trace, ValidatesStepNumbers) {
  TrainingTrace trace;
  EXPECT_THROW(trace.record_global_step(0, 1.0), std::invalid_argument);
  EXPECT_THROW(trace.speed_per_window(0), std::invalid_argument);
}

TEST(Cluster, WorkerMixBuildsPaperTuples) {
  const auto workers = worker_mix(2, 1, 1);
  ASSERT_EQ(workers.size(), 4u);
  EXPECT_EQ(workers[0].gpu, cloud::GpuType::kK80);
  EXPECT_EQ(workers[2].gpu, cloud::GpuType::kP100);
  EXPECT_EQ(workers[3].gpu, cloud::GpuType::kV100);
  EXPECT_EQ(describe_mix(workers), "(2, 1, 1)");
}

TEST(Cluster, DescribeEmptyMix) {
  EXPECT_EQ(describe_mix({}), "(0, 0, 0)");
}

TEST(Cluster, WorkerLabelsAreUnique) {
  const auto workers = worker_mix(3, 0, 0);
  EXPECT_NE(workers[0].label, workers[1].label);
  EXPECT_NE(workers[1].label, workers[2].label);
}

}  // namespace
}  // namespace cmdare::train
