#include <gtest/gtest.h>

#include "cloud/network.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "stats/descriptive.hpp"
#include "train/session.hpp"

namespace cmdare {
namespace {

TEST(Network, SameRegionUsesFabricLatency) {
  for (cloud::Region r : cloud::kAllRegions) {
    EXPECT_DOUBLE_EQ(cloud::region_rtt_seconds(r, r),
                     cloud::kIntraRegionRttSeconds);
  }
}

TEST(Network, RttIsSymmetric) {
  for (cloud::Region a : cloud::kAllRegions) {
    for (cloud::Region b : cloud::kAllRegions) {
      EXPECT_DOUBLE_EQ(cloud::region_rtt_seconds(a, b),
                       cloud::region_rtt_seconds(b, a));
    }
  }
}

TEST(Network, DistanceOrdering) {
  // Continental < transatlantic < transpacific.
  const double us = cloud::region_rtt_seconds(cloud::Region::kUsEast1,
                                              cloud::Region::kUsWest1);
  const double atlantic = cloud::region_rtt_seconds(
      cloud::Region::kUsEast1, cloud::Region::kEuropeWest1);
  const double pacific = cloud::region_rtt_seconds(
      cloud::Region::kEuropeWest1, cloud::Region::kAsiaEast1);
  EXPECT_LT(us, atlantic);
  EXPECT_LT(atlantic, pacific);
  EXPECT_GT(us, 0.01);
  EXPECT_LT(pacific, 0.5);
}

double single_worker_step_ms(cloud::Region worker_region,
                             cloud::Region ps_region, const char* model,
                             cloud::GpuType gpu, std::uint64_t seed) {
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 1500;
  config.ps_region = ps_region;
  train::TrainingSession session(sim, nn::model_by_name(model), config,
                                 util::Rng(seed));
  train::WorkerSpec spec;
  spec.gpu = gpu;
  spec.region = worker_region;
  session.add_worker(spec);
  sim.run();
  return stats::mean(session.trace().worker_step_intervals(0, 100)) * 1000.0;
}

TEST(Network, SameRegionTrainingUnchanged) {
  // The paper's methodology (worker and PS co-located): step time is the
  // Table I anchor.
  const double ms =
      single_worker_step_ms(cloud::Region::kUsCentral1,
                            cloud::Region::kUsCentral1, "resnet-32",
                            cloud::GpuType::kK80, 1);
  EXPECT_NEAR(ms, 219.3, 4.0);
}

TEST(Network, CrossRegionLatencyBoundForFastModels) {
  // V100 ResNet-15 computes in ~36.5 ms; with the PS across the Pacific
  // (~120 ms RTT from us-west1 to asia-east1) the worker is latency-bound:
  // step interval ~ RTT + PS service, not compute.
  const double local =
      single_worker_step_ms(cloud::Region::kUsWest1, cloud::Region::kUsWest1,
                            "resnet-15", cloud::GpuType::kV100, 2);
  const double remote =
      single_worker_step_ms(cloud::Region::kUsWest1,
                            cloud::Region::kAsiaEast1, "resnet-15",
                            cloud::GpuType::kV100, 3);
  EXPECT_NEAR(local, 36.5, 2.0);
  EXPECT_GT(remote, 115.0);
  EXPECT_LT(remote, 145.0);
}

TEST(Network, CrossRegionBarelyAffectsSlowModels) {
  // K80 Shake-Shake Big computes for ~1.43 s; a 95 ms transatlantic RTT
  // hides entirely behind the pipelined compute.
  const double local =
      single_worker_step_ms(cloud::Region::kUsEast1, cloud::Region::kUsEast1,
                            "shake-shake-big", cloud::GpuType::kK80, 4);
  const double remote =
      single_worker_step_ms(cloud::Region::kUsEast1,
                            cloud::Region::kEuropeWest1, "shake-shake-big",
                            cloud::GpuType::kK80, 5);
  EXPECT_NEAR(remote, local, local * 0.02);
}

}  // namespace
}  // namespace cmdare
