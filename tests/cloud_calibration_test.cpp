#include <gtest/gtest.h>

#include "cloud/calibration.hpp"
#include "cloud/gpu.hpp"
#include "nn/checkpoint_size.hpp"
#include "nn/model_zoo.hpp"
#include "stats/descriptive.hpp"

namespace cmdare::cloud {
namespace {

TEST(GpuCatalog, ThreeTypesWithPaperCapacities) {
  EXPECT_DOUBLE_EQ(gpu_spec(GpuType::kK80).tflops, 4.11);
  EXPECT_DOUBLE_EQ(gpu_spec(GpuType::kP100).tflops, 9.53);
  EXPECT_DOUBLE_EQ(gpu_spec(GpuType::kV100).tflops, 14.13);
}

TEST(GpuCatalog, TransientCheaperThanOnDemand) {
  for (GpuType gpu : kAllGpuTypes) {
    const GpuSpec& spec = gpu_spec(gpu);
    EXPECT_LT(spec.transient_price, spec.on_demand_price);
    // Preemptible GPUs were roughly 70% off.
    EXPECT_LT(spec.transient_price / spec.on_demand_price, 0.5);
  }
}

TEST(GpuCatalog, NameRoundTrip) {
  for (GpuType gpu : kAllGpuTypes) {
    EXPECT_EQ(gpu_from_name(gpu_name(gpu)), gpu);
  }
  EXPECT_THROW(gpu_from_name("TPU"), std::invalid_argument);
}

TEST(StepCompute, AnchorsReproduceTableI) {
  // Mean step time = 1000 / (paper steps-per-second).
  const struct {
    const char* model;
    double k80, p100, v100;  // steps/s from Table I
  } rows[] = {
      {"resnet-15", 9.46, 21.16, 27.38},
      {"resnet-32", 4.56, 12.19, 15.61},
      {"shake-shake-small", 2.58, 6.99, 8.80},
      {"shake-shake-big", 0.70, 1.98, 2.18},
  };
  for (const auto& row : rows) {
    const nn::CnnModel model = nn::model_by_name(row.model);
    EXPECT_NEAR(mean_step_compute_ms(GpuType::kK80, model), 1000.0 / row.k80,
                1000.0 / row.k80 * 0.005)
        << row.model;
    EXPECT_NEAR(mean_step_compute_ms(GpuType::kP100, model),
                1000.0 / row.p100, 1000.0 / row.p100 * 0.005)
        << row.model;
    EXPECT_NEAR(mean_step_compute_ms(GpuType::kV100, model),
                1000.0 / row.v100, 1000.0 / row.v100 * 0.005)
        << row.model;
  }
}

TEST(StepCompute, FasterGpuIsFasterOnEveryModel) {
  for (const auto& model : nn::all_models()) {
    const double k80 = mean_step_compute_ms(GpuType::kK80, model);
    const double p100 = mean_step_compute_ms(GpuType::kP100, model);
    const double v100 = mean_step_compute_ms(GpuType::kV100, model);
    EXPECT_GT(k80, p100) << model.name();
    EXPECT_GT(p100, v100) << model.name();
  }
}

TEST(StepCompute, CurveMonotoneInComplexityWithinFamily) {
  // For custom ResNets, more GFLOPs must mean more time on every GPU.
  const nn::CnnModel small = nn::make_resnet("s", 3, 16);
  const nn::CnnModel mid = nn::make_resnet("m", 5, 24);
  const nn::CnnModel large = nn::make_resnet("l", 9, 48);
  for (GpuType gpu : kAllGpuTypes) {
    EXPECT_LT(mean_step_compute_ms(gpu, small),
              mean_step_compute_ms(gpu, mid));
    EXPECT_LT(mean_step_compute_ms(gpu, mid),
              mean_step_compute_ms(gpu, large));
  }
}

TEST(StepCompute, ShakeShakeLessEfficientPerFlop) {
  // At equal complexity, the branchy Shake-Shake family is slower.
  const GpuComputeCurve& curve = gpu_compute_curve(GpuType::kP100);
  EXPECT_GT(curve.shake_shake_factor, 1.0);
}

TEST(StepCompute, WarmupDecaysToUnity) {
  EXPECT_GT(warmup_factor(0), 2.0);
  EXPECT_GT(warmup_factor(10), warmup_factor(50));
  EXPECT_LT(warmup_factor(100), 1.03);  // why the paper discards 100 steps
  EXPECT_LT(warmup_factor(500), 1.0001);
  EXPECT_THROW(warmup_factor(-1), std::invalid_argument);
}

TEST(StepCompute, SampledNoiseMatchesCovTarget) {
  util::Rng rng(21);
  const nn::CnnModel model = nn::resnet32();
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(
        sample_step_compute_seconds(GpuType::kK80, model, 1000, rng));
  }
  EXPECT_NEAR(stats::mean(samples), 0.2193, 0.002);
  EXPECT_NEAR(stats::coefficient_of_variation(samples), kStepTimeCov,
              0.005);
}

TEST(PsService, ScalesWithModelSizeAndShards) {
  const double r32 = ps_update_service_seconds(nn::resnet32(), 1);
  const double r15 = ps_update_service_seconds(nn::resnet15(), 1);
  EXPECT_GT(r32, r15);
  EXPECT_NEAR(ps_update_service_seconds(nn::resnet32(), 2), r32 / 2.0,
              1e-12);
  EXPECT_THROW(ps_update_service_seconds(nn::resnet32(), 0),
               std::invalid_argument);
}

TEST(PsService, ResNet32CapacityNearCalibrationTarget) {
  // Table III knees: single-PS capacity for ResNet-32 ~42 updates/s.
  const double capacity = 1.0 / ps_update_service_seconds(nn::resnet32(), 1);
  EXPECT_NEAR(capacity, 42.0, 3.0);
}

TEST(Checkpoint, ResNet32DurationMatchesPaperAnchor) {
  // Section IV-B: 3.84 +/- 0.25 s for ResNet-32.
  const auto sizes = nn::checkpoint_sizes(nn::resnet32());
  EXPECT_NEAR(mean_checkpoint_seconds(sizes.total_bytes()), 3.84, 0.25);
}

TEST(Checkpoint, DurationIncreasesWithSize) {
  const auto small = nn::checkpoint_sizes(nn::resnet15());
  const auto big = nn::checkpoint_sizes(nn::shake_shake_big());
  EXPECT_LT(mean_checkpoint_seconds(small.total_bytes()),
            mean_checkpoint_seconds(big.total_bytes()));
}

TEST(Checkpoint, SampledCovInFigure5Range) {
  util::Rng rng(31);
  const auto sizes = nn::checkpoint_sizes(nn::resnet32());
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    samples.push_back(sample_checkpoint_seconds(sizes.total_bytes(), rng));
  }
  const double cov = stats::coefficient_of_variation(samples);
  EXPECT_GT(cov, 0.018);
  EXPECT_LT(cov, 0.073);
}

TEST(Replacement, WarmStartAnchorsToFigure10) {
  // ResNet-15 warm start: ~14.8 s.
  EXPECT_NEAR(warm_replacement_seconds(nn::resnet15()), 14.8, 0.5);
}

TEST(Replacement, ColdStartAnchorsToFigure10) {
  // ResNet-15 cold start: ~75.6 s.
  EXPECT_NEAR(cold_replacement_seconds(nn::resnet15()), 75.6, 1.0);
}

TEST(Replacement, ShakeShakeBigCostsAbout15SecondsMore) {
  const double delta = cold_replacement_seconds(nn::shake_shake_big()) -
                       cold_replacement_seconds(nn::resnet15());
  EXPECT_NEAR(delta, 15.0, 3.0);
}

TEST(Replacement, ColdAlwaysExceedsWarm) {
  for (const auto& model : nn::all_models()) {
    EXPECT_GT(cold_replacement_seconds(model),
              warm_replacement_seconds(model));
  }
}

TEST(Replacement, GraphSetupGrowsWithModel) {
  EXPECT_LT(graph_setup_seconds(nn::resnet15()),
            graph_setup_seconds(nn::shake_shake_big()));
}

}  // namespace
}  // namespace cmdare::cloud
