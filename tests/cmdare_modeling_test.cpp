#include <gtest/gtest.h>

#include "cmdare/checkpoint_modeling.hpp"
#include "cmdare/speed_modeling.hpp"
#include "nn/model_zoo.hpp"

namespace cmdare::core {
namespace {

class ModelingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng(42);
    step_measurements_ = new std::vector<StepTimeMeasurement>(
        measure_step_times(nn::all_models(),
                           {cloud::GpuType::kK80, cloud::GpuType::kP100},
                           rng, 700));
    util::Rng ckpt_rng(43);
    ckpt_measurements_ = new std::vector<CheckpointMeasurement>(
        measure_checkpoint_times(nn::all_models(), ckpt_rng, 5));
  }
  static void TearDownTestSuite() {
    delete step_measurements_;
    delete ckpt_measurements_;
    step_measurements_ = nullptr;
    ckpt_measurements_ = nullptr;
  }

  static std::vector<StepTimeMeasurement>* step_measurements_;
  static std::vector<CheckpointMeasurement>* ckpt_measurements_;
};

std::vector<StepTimeMeasurement>* ModelingTest::step_measurements_ = nullptr;
std::vector<CheckpointMeasurement>* ModelingTest::ckpt_measurements_ =
    nullptr;

TEST_F(ModelingTest, TableIIProtocolProducesEightRows) {
  util::Rng rng(1);
  const auto evals = evaluate_step_time_models(*step_measurements_, rng);
  EXPECT_EQ(evals.size(), 8u);
  for (const auto& e : evals) {
    EXPECT_GT(e.kfold_mae, 0.0) << e.name;
    EXPECT_GT(e.test_mae, 0.0) << e.name;
  }
}

TEST_F(ModelingTest, GpuSpecificModelsBeatGpuAgnostic) {
  // Table II's headline: GPU-specific models achieve lower error.
  util::Rng rng(2);
  const auto evals = evaluate_step_time_models(*step_measurements_, rng);
  double best_agnostic = 1e9, best_specific = 1e9;
  for (const auto& e : evals) {
    if (e.name.find("GPU-agnostic") != std::string::npos) {
      best_agnostic = std::min(best_agnostic, e.test_mae);
    } else {
      best_specific = std::min(best_specific, e.test_mae);
    }
  }
  EXPECT_LT(best_specific, best_agnostic);
}

TEST_F(ModelingTest, RbfSvrIsBestPerGpuFamily) {
  // Canonical experiment seed (the same protocol bench_table2 prints).
  // With only 20 models, fine-grained model ordering is sensitive to the
  // random split; the cross-seed robustness test below covers variation.
  util::Rng rng(1);
  const auto evals = evaluate_step_time_models(*step_measurements_, rng);
  const auto find = [&](const std::string& name) {
    for (const auto& e : evals) {
      if (e.name == name) return e;
    }
    throw std::logic_error("missing eval: " + name);
  };
  // RBF beats plain univariate OLS for both GPU-specific families.
  EXPECT_LT(find("SVR RBF Kernel, K80").kfold_mae,
            find("Univariate, K80").kfold_mae);
  EXPECT_LT(find("SVR RBF Kernel, P100").kfold_mae,
            find("Univariate, P100").kfold_mae);
}

TEST_F(ModelingTest, GpuSpecificMapeBelowPaperBallpark) {
  // Paper: K80 RBF-SVR test MAPE 9.02% (the paper quotes MAPE for the
  // K80 RBF model and the P100 polynomial model only). MAPE on P100 is
  // dominated by the very fast models (tens of ms), so it gets more
  // headroom. Canonical experiment seed, as in bench_table2.
  util::Rng rng(1);
  const auto evals = evaluate_step_time_models(*step_measurements_, rng);
  for (const auto& e : evals) {
    if (e.name == "SVR RBF Kernel, K80") {
      EXPECT_LT(e.test_mape, 20.0);
    }
    if (e.name == "SVR RBF Kernel, P100") {
      EXPECT_LT(e.test_mape, 40.0);
    }
  }
}

TEST_F(ModelingTest, RbfSvrRobustAcrossSeeds) {
  // Across independent split/fold seeds the K80 RBF SVR should beat the
  // K80 univariate OLS in k-fold MAE in the majority of runs.
  int wins = 0;
  for (std::uint64_t seed : {2, 3, 4}) {
    util::Rng rng(seed);
    const auto evals = evaluate_step_time_models(*step_measurements_, rng);
    double rbf = 0.0, uni = 0.0;
    for (const auto& e : evals) {
      if (e.name == "SVR RBF Kernel, K80") rbf = e.kfold_mae;
      if (e.name == "Univariate, K80") uni = e.kfold_mae;
    }
    if (rbf < uni) ++wins;
  }
  EXPECT_GE(wins, 2);
}

TEST_F(ModelingTest, PredictorInterpolatesUnseenComplexities) {
  // Train on all models except resnet-32, then predict it.
  std::vector<StepTimeMeasurement> train_set;
  StepTimeMeasurement held_out;
  bool found = false;
  for (const auto& m : *step_measurements_) {
    if (m.model == "resnet-32" && m.gpu == cloud::GpuType::kK80) {
      held_out = m;
      found = true;
    }
    if (m.model != "resnet-32") train_set.push_back(m);
  }
  ASSERT_TRUE(found);
  util::Rng rng(5);
  const StepTimePredictor predictor = StepTimePredictor::train(train_set, rng);
  const double predicted =
      predictor.predict_step_seconds(cloud::GpuType::kK80, held_out.gflops);
  EXPECT_NEAR(predicted, held_out.mean_step_seconds,
              held_out.mean_step_seconds * 0.15);
}

TEST_F(ModelingTest, PredictorSpeedIsInverseOfStepTime) {
  util::Rng rng(6);
  const StepTimePredictor predictor =
      StepTimePredictor::train(*step_measurements_, rng);
  const double step =
      predictor.predict_step_seconds(cloud::GpuType::kP100, 1.5);
  EXPECT_NEAR(predictor.predict_speed(cloud::GpuType::kP100, 1.5),
              1.0 / step, 1e-12);
}

TEST_F(ModelingTest, PredictorRejectsUntrainedGpu) {
  util::Rng rng(7);
  const StepTimePredictor predictor =
      StepTimePredictor::train(*step_measurements_, rng);
  EXPECT_TRUE(predictor.supports(cloud::GpuType::kK80));
  EXPECT_FALSE(predictor.supports(cloud::GpuType::kV100));  // not measured
  EXPECT_THROW(predictor.predict_step_seconds(cloud::GpuType::kV100, 1.0),
               std::invalid_argument);
}

TEST_F(ModelingTest, TableIvProtocolProducesFourRows) {
  util::Rng rng(8);
  const auto evals = evaluate_checkpoint_models(*ckpt_measurements_, rng);
  ASSERT_EQ(evals.size(), 4u);
  EXPECT_EQ(evals[0].name, "Univariate");
  EXPECT_EQ(evals[3].name, "SVR RBF kernel");
}

TEST_F(ModelingTest, CheckpointSvrCompetitive) {
  // Table IV: the RBF SVR yields the best k-fold MAE; require it to be at
  // least competitive with the univariate OLS in our reproduction.
  util::Rng rng(9);
  const auto evals = evaluate_checkpoint_models(*ckpt_measurements_, rng);
  EXPECT_LT(evals[3].kfold_mae, evals[0].kfold_mae * 1.1);
}

TEST_F(ModelingTest, CheckpointMapeNearPaperHeadline) {
  // Paper: 5.38% test MAPE for the SVR; allow generous headroom.
  util::Rng rng(10);
  const auto evals = evaluate_checkpoint_models(*ckpt_measurements_, rng);
  EXPECT_LT(evals[3].test_mape, 12.0);
}

TEST_F(ModelingTest, CheckpointPredictorAccurateOnTrainingModels) {
  util::Rng rng(11);
  const CheckpointTimePredictor predictor =
      CheckpointTimePredictor::train(*ckpt_measurements_, rng);
  for (const auto& m : *ckpt_measurements_) {
    const double predicted = predictor.predict_seconds_for_mb(m.total_mb);
    EXPECT_NEAR(predicted, m.mean_seconds, m.mean_seconds * 0.15) << m.model;
  }
}

TEST_F(ModelingTest, CheckpointPredictorWorksFromModel) {
  util::Rng rng(12);
  const CheckpointTimePredictor predictor =
      CheckpointTimePredictor::train(*ckpt_measurements_, rng);
  const double seconds = predictor.predict_seconds(nn::resnet32());
  EXPECT_NEAR(seconds, 3.84, 0.6);  // paper's measured ResNet-32 value
}

TEST(Modeling, EvaluateRejectsEmptyInput) {
  util::Rng rng(13);
  EXPECT_THROW(evaluate_step_time_models({}, rng), std::invalid_argument);
  EXPECT_THROW(evaluate_checkpoint_models({}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cmdare::core
