#include "simcore/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cmdare::simcore {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.schedule_after(1.0, chain);
  };
  sim.schedule_after(1.0, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // already cancelled
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  EventHandle handle = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilAdvancesTimeWithoutEvents) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(100.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, RunUntilRejectsPastDeadline) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_THROW(sim.run_until(5.0), std::invalid_argument);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RejectsInvalidSchedules) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(6.0, nullptr), std::invalid_argument);
  EXPECT_THROW(
      sim.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
      std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
}

TEST(Simulator, CountsFiredEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulator, CancelledEventsDoNotAdvanceClockInRunUntil) {
  Simulator sim;
  EventHandle handle = sim.schedule_at(50.0, [] {});
  handle.cancel();
  sim.schedule_at(80.0, [] {});
  EXPECT_EQ(sim.run_until(60.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 60.0);
}

TEST(Simulator, CancelReleasesSlotImmediately) {
  Simulator sim;
  // Cancellation is tombstone-free: the arena slot is released on the
  // spot, so queued_events() (live count) drops immediately.
  std::vector<EventHandle> handles;
  for (double t : {1.0, 2.0, 3.0}) {
    handles.push_back(sim.schedule_at(t, [] {}));
  }
  EXPECT_EQ(sim.queued_events(), 3u);
  handles[0].cancel();
  handles[2].cancel();
  EXPECT_EQ(sim.queued_events(), 1u);  // only the live event counts
  EXPECT_EQ(sim.run(), 1u);            // only the live event fires
  EXPECT_EQ(sim.queued_events(), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // clock never visits cancelled times
}

TEST(Simulator, CancelThenRescheduleReusesArenaSlot) {
  Simulator sim;
  bool old_fired = false;
  bool new_fired = false;
  EventHandle stale = sim.schedule_at(1.0, [&] { old_fired = true; });
  const std::size_t slots_before = sim.arena_slots();
  ASSERT_TRUE(stale.cancel());
  // The released slot is re-leased by the next schedule; the stale handle
  // must report not-pending via the generation check, not alias the new
  // event.
  EventHandle fresh = sim.schedule_at(2.0, [&] { new_fired = true; });
  EXPECT_EQ(sim.arena_slots(), slots_before);  // slot recycled, not grown
  EXPECT_FALSE(stale.pending());
  EXPECT_FALSE(stale.cancel());  // must not cancel the new occupant
  EXPECT_TRUE(fresh.pending());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

TEST(Simulator, HandleFromFiredEventStaysInertAfterSlotReuse) {
  Simulator sim;
  EventHandle fired_handle = sim.schedule_at(1.0, [] {});
  sim.run();
  // The fired event's slot is back on the free list; a new event re-leases
  // it with a bumped generation.
  EventHandle fresh = sim.schedule_at(2.0, [] {});
  EXPECT_FALSE(fired_handle.pending());
  EXPECT_FALSE(fired_handle.cancel());
  EXPECT_TRUE(fresh.pending());
  EXPECT_EQ(sim.run(), 1u);
}

TEST(Simulator, CancelHeavyChurnKeepsLiveOrderIntact) {
  Simulator sim;
  // Oracle check: schedule a deterministic pseudo-random event set, cancel
  // a large subset (some before the run, some from inside callbacks), and
  // assert the engine's fire log equals the (when, sequence)-sorted live
  // set — cancellation must never reorder surviving events.
  constexpr int kEvents = 500;
  std::vector<EventHandle> handles;
  std::vector<double> times;
  std::vector<int> fire_log;
  std::uint64_t lcg = 0x243f6a8885a308d3ull;
  for (int i = 0; i < kEvents; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Coarse grid so equal times (sequence ties) are common.
    const double when = static_cast<double>((lcg >> 33) % 97);
    times.push_back(when);
    handles.push_back(
        sim.schedule_at(when, [&fire_log, i] { fire_log.push_back(i); }));
  }
  std::vector<bool> cancelled(kEvents, false);
  for (int i = 0; i < kEvents; i += 3) {  // pre-run cancellations
    handles[i].cancel();
    cancelled[i] = true;
  }
  // Mid-run churn: at t=40, cancel every 7th event still pending.
  sim.schedule_at(40.0, [&] {
    for (int i = 0; i < kEvents; i += 7) {
      if (handles[i].cancel()) cancelled[i] = true;
    }
  });
  sim.run();

  std::vector<int> expected;
  for (int i = 0; i < kEvents; ++i) {
    // The mid-run canceller only reaches events strictly after t=40 (same
    // time + later sequence has already fired when it runs).
    const bool killed_mid_run = i % 7 == 0 && i % 3 != 0 && times[i] > 40.0;
    if (i % 3 == 0 || killed_mid_run) continue;
    expected.push_back(i);
  }
  std::stable_sort(expected.begin(), expected.end(), [&](int a, int b) {
    return times[a] < times[b];  // stable: sequence order preserved on ties
  });
  EXPECT_EQ(fire_log, expected);
}

TEST(Simulator, RunUntilLandsExactlyOnBucketBoundary) {
  Simulator sim;
  // 65 events spanning [0, 64] make the re-bucketed near tier exactly one
  // second per bucket, so integer deadlines land exactly on bucket
  // boundaries; events at the boundary (when == deadline) must fire.
  std::vector<double> fired;
  for (int i = 0; i <= 64; ++i) {
    sim.schedule_at(static_cast<double>(i),
                    [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(32.0), 33u);  // 0..32 inclusive
  EXPECT_DOUBLE_EQ(sim.now(), 32.0);
  EXPECT_DOUBLE_EQ(fired.back(), 32.0);
  EXPECT_EQ(sim.run_until(32.0), 0u);  // idempotent at the boundary
  EXPECT_EQ(sim.run(), 32u);           // 33..64
  EXPECT_DOUBLE_EQ(sim.now(), 64.0);
}

TEST(Simulator, ScheduleEverySelfTerminationReleasesItsSlot) {
  Simulator sim;
  int ticks = 0;
  sim.schedule_every(1.0, [&] {
    ++ticks;
    return ticks < 5;
  });
  EXPECT_EQ(sim.queued_events(), 1u);
  EXPECT_EQ(sim.run(), 5u);  // run() terminates: false reschedules nothing
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.queued_events(), 0u);
  // The recurrence's arena slot is free again: a fresh event reuses it
  // instead of growing the arena.
  const std::size_t slots_after = sim.arena_slots();
  sim.schedule_after(1.0, [] {});
  EXPECT_EQ(sim.arena_slots(), slots_after);
  sim.run();
}

namespace {

/// Records every observer callback for assertion.
struct RecordingObserver : SimObserver {
  struct Scheduled {
    SimTime when;
    std::string tag;
    std::size_t depth;
  };
  struct Fired {
    SimTime at;
    std::string tag;
    std::size_t depth;
    double wall;
  };
  std::vector<Scheduled> scheduled;
  std::vector<Fired> fired;

  void on_schedule(SimTime when, const char* tag,
                   std::size_t queue_depth) override {
    scheduled.push_back({when, tag ? tag : "(null)", queue_depth});
  }
  void on_fire(SimTime at, const char* tag, std::size_t queue_depth,
               double wall_seconds) override {
    fired.push_back({at, tag ? tag : "(null)", queue_depth, wall_seconds});
  }
};

}  // namespace

TEST(Simulator, ObserverSeesSchedulesAndFires) {
  Simulator sim;
  RecordingObserver observer;
  sim.set_observer(&observer);
  EXPECT_EQ(sim.observer(), &observer);

  sim.schedule_at(1.0, [] {}, "alpha");
  sim.schedule_at(2.0, [] {});
  sim.run();
  sim.set_observer(nullptr);
  sim.schedule_at(3.0, [] {}, "unseen");
  sim.run();

  ASSERT_EQ(observer.scheduled.size(), 2u);
  EXPECT_DOUBLE_EQ(observer.scheduled[0].when, 1.0);
  EXPECT_EQ(observer.scheduled[0].tag, "alpha");
  EXPECT_EQ(observer.scheduled[0].depth, 1u);
  EXPECT_EQ(observer.scheduled[1].depth, 2u);

  ASSERT_EQ(observer.fired.size(), 2u);
  EXPECT_DOUBLE_EQ(observer.fired[0].at, 1.0);
  EXPECT_EQ(observer.fired[0].tag, "alpha");
  EXPECT_EQ(observer.fired[0].depth, 1u);  // one event still queued
  EXPECT_EQ(observer.fired[1].tag, "(null)");
  EXPECT_EQ(observer.fired[1].depth, 0u);
  for (const auto& f : observer.fired) EXPECT_GE(f.wall, 0.0);
}

TEST(Simulator, ObserverDoesNotSeeCancelledEvents) {
  Simulator sim;
  RecordingObserver observer;
  sim.set_observer(&observer);
  EventHandle handle = sim.schedule_at(1.0, [] {}, "doomed");
  handle.cancel();
  sim.run();
  sim.set_observer(nullptr);
  EXPECT_EQ(observer.scheduled.size(), 1u);  // schedule was observed...
  EXPECT_TRUE(observer.fired.empty());       // ...but the fire never happens
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  sim.schedule_at(3.0, [&] {
    sim.schedule_after(0.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 3.0); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, ScheduleEveryFiresAtFixedPeriodUntilTickSaysStop) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_every(10.0, [&] {
    fired.push_back(sim.now());
    return fired.size() < 3;  // stop after the third tick
  });
  sim.run();  // must terminate: a false return reschedules nothing
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(fired[0], 10.0);
  EXPECT_DOUBLE_EQ(fired[1], 20.0);
  EXPECT_DOUBLE_EQ(fired[2], 30.0);
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, ScheduleEveryTicksInterleaveWithOrdinaryEvents) {
  Simulator sim;
  std::vector<std::string> order;
  sim.schedule_every(5.0, [&] {
    order.push_back("tick@" + std::to_string(static_cast<int>(sim.now())));
    return sim.now() < 14.0;
  });
  sim.schedule_at(7.0, [&] { order.push_back("event@7"); });
  sim.run();
  const std::vector<std::string> expected = {"tick@5", "event@7", "tick@10",
                                             "tick@15"};
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace cmdare::simcore
