#include "simcore/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

namespace cmdare::simcore {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.schedule_after(1.0, chain);
  };
  sim.schedule_after(1.0, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  EventHandle handle = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  EXPECT_TRUE(handle.cancel());
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());  // already cancelled
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFiringReturnsFalse) {
  Simulator sim;
  EventHandle handle = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  EXPECT_FALSE(handle.cancel());
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  EXPECT_EQ(sim.run_until(2.5), 2u);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilAdvancesTimeWithoutEvents) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(100.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, RunUntilRejectsPastDeadline) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_THROW(sim.run_until(5.0), std::invalid_argument);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RejectsInvalidSchedules) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(6.0, nullptr), std::invalid_argument);
  EXPECT_THROW(
      sim.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
      std::invalid_argument);
  EXPECT_THROW(sim.schedule_at(std::nan(""), [] {}), std::invalid_argument);
}

TEST(Simulator, CountsFiredEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_fired(), 5u);
}

TEST(Simulator, CancelledEventsDoNotAdvanceClockInRunUntil) {
  Simulator sim;
  EventHandle handle = sim.schedule_at(50.0, [] {});
  handle.cancel();
  sim.schedule_at(80.0, [] {});
  EXPECT_EQ(sim.run_until(60.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 60.0);
}

TEST(Simulator, TombstonesStayQueuedUntilPopped) {
  Simulator sim;
  // Cancellation is O(1): the entry is tombstoned in place, so
  // queued_events() still counts it until the queue pops past it.
  std::vector<EventHandle> handles;
  for (double t : {1.0, 2.0, 3.0}) {
    handles.push_back(sim.schedule_at(t, [] {}));
  }
  EXPECT_EQ(sim.queued_events(), 3u);
  handles[0].cancel();
  handles[2].cancel();
  EXPECT_EQ(sim.queued_events(), 3u);  // tombstones accumulate
  EXPECT_EQ(sim.run(), 1u);            // only the live event fires
  EXPECT_EQ(sim.queued_events(), 0u);  // pops discard the tombstones
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);    // clock never visits cancelled times
}

TEST(Simulator, CompactDropsTombstonesAndKeepsLiveOrder) {
  Simulator sim;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(
        sim.schedule_at(static_cast<double>(i + 1), [&fired, i] {
          fired.push_back(i);
        }));
  }
  for (int i = 0; i < 10; i += 2) handles[i].cancel();
  EXPECT_EQ(sim.tombstoned_events(), 5u);
  sim.compact();
  EXPECT_EQ(sim.tombstoned_events(), 0u);
  EXPECT_EQ(sim.queued_events(), 5u);  // only live entries survive
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(fired, (std::vector<int>{1, 3, 5, 7, 9}));  // order intact
}

TEST(Simulator, SchedulingCompactsWhenTombstonesDominate) {
  Simulator sim;
  // Cancel-heavy load: 8 of 10 entries tombstoned. The next schedule_at
  // notices tombstones outnumber live entries and compacts in place —
  // churny cancel-heavy campaigns must not carry dead entries forever.
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(sim.schedule_at(static_cast<double>(i + 1), [] {}));
  }
  for (int i = 0; i < 8; ++i) handles[i].cancel();
  EXPECT_EQ(sim.queued_events(), 10u);  // not compacted yet
  sim.schedule_at(100.0, [] {});
  EXPECT_EQ(sim.tombstoned_events(), 0u);
  EXPECT_EQ(sim.queued_events(), 3u);  // 2 live survivors + the new event
  EXPECT_EQ(sim.run(), 3u);
}

TEST(Simulator, CancelAfterCompactionIsSafe) {
  Simulator sim;
  EventHandle live = sim.schedule_at(5.0, [] {});
  EventHandle dead = sim.schedule_at(1.0, [] {});
  dead.cancel();
  sim.compact();
  // The compacted-away handle is inert; the surviving one still cancels.
  EXPECT_FALSE(dead.cancel());
  EXPECT_TRUE(live.cancel());
  EXPECT_EQ(sim.run(), 0u);
}

namespace {

/// Records every observer callback for assertion.
struct RecordingObserver : SimObserver {
  struct Scheduled {
    SimTime when;
    std::string tag;
    std::size_t depth;
  };
  struct Fired {
    SimTime at;
    std::string tag;
    std::size_t depth;
    double wall;
  };
  std::vector<Scheduled> scheduled;
  std::vector<Fired> fired;

  void on_schedule(SimTime when, const char* tag,
                   std::size_t queue_depth) override {
    scheduled.push_back({when, tag ? tag : "(null)", queue_depth});
  }
  void on_fire(SimTime at, const char* tag, std::size_t queue_depth,
               double wall_seconds) override {
    fired.push_back({at, tag ? tag : "(null)", queue_depth, wall_seconds});
  }
};

}  // namespace

TEST(Simulator, ObserverSeesSchedulesAndFires) {
  Simulator sim;
  RecordingObserver observer;
  sim.set_observer(&observer);
  EXPECT_EQ(sim.observer(), &observer);

  sim.schedule_at(1.0, [] {}, "alpha");
  sim.schedule_at(2.0, [] {});
  sim.run();
  sim.set_observer(nullptr);
  sim.schedule_at(3.0, [] {}, "unseen");
  sim.run();

  ASSERT_EQ(observer.scheduled.size(), 2u);
  EXPECT_DOUBLE_EQ(observer.scheduled[0].when, 1.0);
  EXPECT_EQ(observer.scheduled[0].tag, "alpha");
  EXPECT_EQ(observer.scheduled[0].depth, 1u);
  EXPECT_EQ(observer.scheduled[1].depth, 2u);

  ASSERT_EQ(observer.fired.size(), 2u);
  EXPECT_DOUBLE_EQ(observer.fired[0].at, 1.0);
  EXPECT_EQ(observer.fired[0].tag, "alpha");
  EXPECT_EQ(observer.fired[0].depth, 1u);  // one event still queued
  EXPECT_EQ(observer.fired[1].tag, "(null)");
  EXPECT_EQ(observer.fired[1].depth, 0u);
  for (const auto& f : observer.fired) EXPECT_GE(f.wall, 0.0);
}

TEST(Simulator, ObserverDoesNotSeeCancelledEvents) {
  Simulator sim;
  RecordingObserver observer;
  sim.set_observer(&observer);
  EventHandle handle = sim.schedule_at(1.0, [] {}, "doomed");
  handle.cancel();
  sim.run();
  sim.set_observer(nullptr);
  EXPECT_EQ(observer.scheduled.size(), 1u);  // schedule was observed...
  EXPECT_TRUE(observer.fired.empty());       // ...but the fire never happens
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator sim;
  sim.schedule_at(3.0, [&] {
    sim.schedule_after(0.0, [&] { EXPECT_DOUBLE_EQ(sim.now(), 3.0); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, ScheduleEveryFiresAtFixedPeriodUntilTickSaysStop) {
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_every(10.0, [&] {
    fired.push_back(sim.now());
    return fired.size() < 3;  // stop after the third tick
  });
  sim.run();  // must terminate: a false return reschedules nothing
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_DOUBLE_EQ(fired[0], 10.0);
  EXPECT_DOUBLE_EQ(fired[1], 20.0);
  EXPECT_DOUBLE_EQ(fired[2], 30.0);
  EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, ScheduleEveryTicksInterleaveWithOrdinaryEvents) {
  Simulator sim;
  std::vector<std::string> order;
  sim.schedule_every(5.0, [&] {
    order.push_back("tick@" + std::to_string(static_cast<int>(sim.now())));
    return sim.now() < 14.0;
  });
  sim.schedule_at(7.0, [&] { order.push_back("event@7"); });
  sim.run();
  const std::vector<std::string> expected = {"tick@5", "event@7", "tick@10",
                                             "tick@15"};
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace cmdare::simcore
