#include <gtest/gtest.h>

#include <cmath>

#include "cloud/revocation.hpp"
#include "stats/descriptive.hpp"

namespace cmdare::cloud {
namespace {

TEST(RevocationTargets, TwelveMeasuredCombinations) {
  EXPECT_EQ(revocation_targets().size(), 12u);
  int k80 = 0, p100 = 0, v100 = 0;
  for (const auto& t : revocation_targets()) {
    if (t.gpu == GpuType::kK80) k80 += t.servers_launched;
    if (t.gpu == GpuType::kP100) p100 += t.servers_launched;
    if (t.gpu == GpuType::kV100) v100 += t.servers_launched;
  }
  // Table V totals: 156 K80, 120 P100, 120 V100 (396 servers).
  EXPECT_EQ(k80, 156);
  EXPECT_EQ(p100, 120);
  EXPECT_EQ(v100, 120);
}

TEST(RevocationTargets, NaCombinationsRejected) {
  EXPECT_FALSE(gpu_offered_in_region(Region::kUsEast1, GpuType::kV100));
  EXPECT_FALSE(gpu_offered_in_region(Region::kEuropeWest4, GpuType::kK80));
  EXPECT_FALSE(gpu_offered_in_region(Region::kAsiaEast1, GpuType::kP100));
  EXPECT_TRUE(gpu_offered_in_region(Region::kUsCentral1, GpuType::kK80));
  EXPECT_THROW(revocation_target(Region::kUsEast1, GpuType::kV100),
               std::invalid_argument);
}

TEST(RevocationModel, CalibratedProbabilitiesHitTableV) {
  const RevocationModel model;
  for (const auto& t : revocation_targets()) {
    const double p = model.revocation_probability(
        t.region, t.gpu, kReferenceLaunchLocalHour);
    EXPECT_NEAR(p, t.revoked_fraction, 0.01)
        << region_name(t.region) << " " << gpu_name(t.gpu);
  }
}

TEST(RevocationModel, SampledFrequenciesMatchTargets) {
  const RevocationModel model;
  util::Rng rng(101);
  for (const auto& t : {revocation_target(Region::kUsWest1, GpuType::kK80),
                        revocation_target(Region::kUsEast1, GpuType::kP100),
                        revocation_target(Region::kAsiaEast1,
                                          GpuType::kV100)}) {
    int revoked = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      if (model.sample_revocation_age_seconds(t.region, t.gpu,
                                              kReferenceLaunchLocalHour, rng)) {
        ++revoked;
      }
    }
    EXPECT_NEAR(static_cast<double>(revoked) / n, t.revoked_fraction, 0.03)
        << region_name(t.region) << " " << gpu_name(t.gpu);
  }
}

TEST(RevocationModel, SampledAgesRespectLifetimeCap) {
  const RevocationModel model;
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto age = model.sample_revocation_age_seconds(
        Region::kUsCentral1, GpuType::kV100, 9.0, rng);
    if (age) {
      EXPECT_GT(*age, 0.0);
      EXPECT_LT(*age, kMaxTransientLifetimeSeconds);
    }
  }
}

TEST(RevocationModel, V100QuietWindowHasNoRevocations) {
  // Figure 9: no V100 revocations between 4 PM and 8 PM local.
  const RevocationModel model;
  for (double hour : {16.0, 17.0, 18.5, 19.9}) {
    EXPECT_DOUBLE_EQ(model.tod_weight(GpuType::kV100, hour), 0.0);
  }
  EXPECT_GT(model.tod_weight(GpuType::kV100, 9.0), 0.0);
}

TEST(RevocationModel, K80PeaksAtTenAm) {
  const RevocationModel model;
  const double peak = model.tod_weight(GpuType::kK80, 10.5);
  for (int h = 0; h < 24; ++h) {
    EXPECT_LE(model.tod_weight(GpuType::kK80, h + 0.5), peak);
  }
}

TEST(RevocationModel, EuropeWest1K80DiesYoung) {
  // Figure 8: europe-west1 K80s are mostly revoked within two hours.
  const RevocationModel model;
  util::Rng rng(55);
  int revoked = 0, early = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto age = model.sample_revocation_age_seconds(
        Region::kEuropeWest1, GpuType::kK80, 9.0, rng);
    if (age) {
      ++revoked;
      if (*age < 2.0 * 3600.0) ++early;
    }
  }
  ASSERT_GT(revoked, 0);
  // >50% of *all* launched servers revoked within two hours.
  EXPECT_GT(static_cast<double>(early) / 4000.0, 0.45);
}

TEST(RevocationModel, UsWest1K80RarelyDiesEarly) {
  // Figure 8: <5% of us-west1 K80s revoked in the first two hours.
  const RevocationModel model;
  util::Rng rng(56);
  int early = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto age = model.sample_revocation_age_seconds(
        Region::kUsWest1, GpuType::kK80, 9.0, rng);
    if (age && *age < 2.0 * 3600.0) ++early;
  }
  EXPECT_LT(static_cast<double>(early) / n, 0.05);
}

TEST(RevocationModel, MoreExpensiveGpusRevokedMore) {
  // Table V: total revocation fraction rises K80 -> P100 -> V100.
  double frac[3] = {0, 0, 0};
  int total[3] = {0, 0, 0};
  for (const auto& t : revocation_targets()) {
    frac[static_cast<int>(t.gpu)] +=
        t.revoked_fraction * t.servers_launched;
    total[static_cast<int>(t.gpu)] += t.servers_launched;
  }
  const double k80 = frac[0] / total[0];
  const double p100 = frac[1] / total[1];
  const double v100 = frac[2] / total[2];
  EXPECT_LT(k80, p100);
  EXPECT_LT(p100, v100);
  EXPECT_NEAR(k80, 0.4615, 0.01);   // 46.15%
  EXPECT_NEAR(v100, 0.575, 0.01);   // 57.5%
}

TEST(RevocationModel, HazardValidatesInput) {
  const RevocationModel model;
  EXPECT_THROW(model.tod_weight(GpuType::kK80, 24.0), std::invalid_argument);
  EXPECT_THROW(model.age_shape(Region::kUsEast1, GpuType::kK80, -1.0),
               std::invalid_argument);
  EXPECT_THROW(model.base_rate_per_hour(Region::kUsEast1, GpuType::kV100),
               std::invalid_argument);
}

TEST(RevocationModel, HazardComposesFactors) {
  const RevocationModel model;
  const double base =
      model.base_rate_per_hour(Region::kEuropeWest1, GpuType::kK80);
  // Launch at 9:00 local; at age 1 h the local hour is 10 (K80 peak) and
  // the early-age multiplier is still large.
  const double h = model.hazard_per_hour(Region::kEuropeWest1, GpuType::kK80,
                                         9.0, 1.0);
  EXPECT_NEAR(h,
              base * model.tod_weight(GpuType::kK80, 10.0) *
                  model.age_shape(Region::kEuropeWest1, GpuType::kK80, 1.0),
              1e-12);
}

TEST(RevocationModel, MeanLifetimeOrderingAcrossRegions) {
  // us-west1 K80s should live much longer (capped mean) than europe-west1
  // K80s — the Figure 8 contrast.
  const RevocationModel model;
  util::Rng rng(77);
  const auto mean_capped_lifetime = [&](Region region) {
    double sum = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      const auto age =
          model.sample_revocation_age_seconds(region, GpuType::kK80, 9.0, rng);
      sum += age.value_or(kMaxTransientLifetimeSeconds);
    }
    return sum / n / 3600.0;
  };
  const double west = mean_capped_lifetime(Region::kUsWest1);
  const double europe = mean_capped_lifetime(Region::kEuropeWest1);
  EXPECT_GT(west, 19.0);
  EXPECT_LT(europe, 12.0);
}

}  // namespace
}  // namespace cmdare::cloud
