#include <gtest/gtest.h>

#include <vector>

#include "cloud/region.hpp"
#include "cloud/startup.hpp"
#include "stats/descriptive.hpp"

namespace cmdare::cloud {
namespace {

std::vector<double> sample_totals(const StartupModel& model, GpuType gpu,
                                  bool transient, RequestContext context,
                                  int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> totals;
  totals.reserve(n);
  for (int i = 0; i < n; ++i) {
    totals.push_back(
        model.sample(gpu, Region::kUsEast1, transient, context, rng).total());
  }
  return totals;
}

TEST(Region, CatalogAndLookup) {
  EXPECT_EQ(kAllRegions.size(), 6u);
  EXPECT_STREQ(region_name(Region::kUsWest1), "us-west1");
  EXPECT_EQ(region_from_name("asia-east1"), Region::kAsiaEast1);
  EXPECT_THROW(region_from_name("mars-north1"), std::invalid_argument);
}

TEST(Region, LocalHourUsesUtcOffset) {
  // Campaign starts at 12:00 UTC; us-east1 is UTC-5 -> 07:00 local.
  EXPECT_DOUBLE_EQ(local_hour(Region::kUsEast1, 12.0, 0.0), 7.0);
  // asia-east1 is UTC+8 -> 20:00 local.
  EXPECT_DOUBLE_EQ(local_hour(Region::kAsiaEast1, 12.0, 0.0), 20.0);
}

TEST(Region, LocalHourWrapsMidnight) {
  // 22:00 UTC + 8 = 30 -> 6:00 local next day.
  EXPECT_DOUBLE_EQ(local_hour(Region::kAsiaEast1, 22.0, 0.0), 6.0);
  // Advancing 3600 s advances one hour.
  EXPECT_DOUBLE_EQ(local_hour(Region::kUsEast1, 12.0, 3600.0), 8.0);
  // us-west1 (UTC-8) before 8:00 UTC wraps backward.
  EXPECT_DOUBLE_EQ(local_hour(Region::kUsWest1, 2.0, 0.0), 18.0);
}

TEST(Startup, TransientServersStartUnder100Seconds) {
  // Figure 6's headline observation.
  const StartupModel model;
  for (GpuType gpu : kAllGpuTypes) {
    EXPECT_LT(model.mean_stages(gpu, true).total(), 100.0);
  }
}

TEST(Startup, TransientSlowerThanOnDemandByPaperGaps) {
  const StartupModel model;
  const double k80_gap = model.mean_stages(GpuType::kK80, true).total() -
                         model.mean_stages(GpuType::kK80, false).total();
  const double p100_gap = model.mean_stages(GpuType::kP100, true).total() -
                          model.mean_stages(GpuType::kP100, false).total();
  EXPECT_NEAR(k80_gap, 11.14, 2.0);    // paper: +11.14 s
  EXPECT_NEAR(p100_gap, 21.38, 2.0);   // paper: +21.38 s
}

TEST(Startup, TransientP100AboutNinePercentSlowerThanK80) {
  const StartupModel model;
  const double k80 = model.mean_stages(GpuType::kK80, true).total();
  const double p100 = model.mean_stages(GpuType::kP100, true).total();
  EXPECT_NEAR(p100 / k80 - 1.0, 0.087, 0.02);
}

TEST(Startup, StagingDominatesTheP100K80Difference) {
  const StartupModel model;
  const StartupBreakdown k80 = model.mean_stages(GpuType::kK80, false);
  const StartupBreakdown p100 = model.mean_stages(GpuType::kP100, true);
  const StartupBreakdown k80t = model.mean_stages(GpuType::kK80, true);
  const double staging_delta = p100.staging_s - k80t.staging_s;
  const double other_delta = (p100.total() - k80t.total()) - staging_delta;
  EXPECT_GT(staging_delta, other_delta);
  (void)k80;
}

TEST(Startup, SampleBreakdownStagesAllPositive) {
  const StartupModel model;
  util::Rng rng(7);
  const StartupBreakdown b = model.sample(
      GpuType::kV100, Region::kAsiaEast1, true, RequestContext::kNormal, rng);
  EXPECT_GT(b.provisioning_s, 0.0);
  EXPECT_GT(b.staging_s, 0.0);
  EXPECT_GT(b.running_s, 0.0);
  EXPECT_DOUBLE_EQ(b.total(),
                   b.provisioning_s + b.staging_s + b.running_s);
}

TEST(Startup, ImmediateRequestsAreMoreVariable) {
  // Figure 7: immediate-after-revocation requests have ~4x the CoV of
  // delayed requests (12% vs 3%) but means within ~4 s.
  const StartupModel model;
  const auto immediate =
      sample_totals(model, GpuType::kK80, true,
                    RequestContext::kImmediateAfterRevocation, 4000, 1);
  const auto delayed = sample_totals(
      model, GpuType::kK80, true, RequestContext::kDelayedAfterRevocation,
      4000, 2);
  const double cov_imm = stats::coefficient_of_variation(immediate);
  const double cov_del = stats::coefficient_of_variation(delayed);
  EXPECT_GT(cov_imm, 2.5 * cov_del);
  EXPECT_LT(cov_del, 0.06);
  EXPECT_NEAR(stats::mean(immediate), stats::mean(delayed), 4.5);
}

TEST(Startup, RegionMultipliersAreSmall) {
  const StartupModel model;
  for (Region region : kAllRegions) {
    const double mult = model.region_multiplier(region);
    EXPECT_GE(mult, 1.0);
    EXPECT_LE(mult, 1.10);
  }
}

TEST(Startup, ContextNames) {
  EXPECT_STREQ(request_context_name(RequestContext::kNormal), "normal");
  EXPECT_STREQ(
      request_context_name(RequestContext::kImmediateAfterRevocation),
      "immediate");
  EXPECT_STREQ(request_context_name(RequestContext::kDelayedAfterRevocation),
               "delayed");
}

}  // namespace
}  // namespace cmdare::cloud
