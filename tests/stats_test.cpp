#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/running.hpp"
#include "util/rng.hpp"

namespace cmdare::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Descriptive, MeanKnownValue) { EXPECT_DOUBLE_EQ(mean(kSample), 5.0); }

TEST(Descriptive, VarianceIsSampleVariance) {
  // Sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(variance(kSample), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(kSample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, CoefficientOfVariation) {
  EXPECT_NEAR(coefficient_of_variation(kSample),
              std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
}

TEST(Descriptive, MinMaxMedian) {
  EXPECT_DOUBLE_EQ(min(kSample), 2.0);
  EXPECT_DOUBLE_EQ(max(kSample), 9.0);
  EXPECT_DOUBLE_EQ(median(kSample), 4.5);
}

TEST(Descriptive, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
}

TEST(Descriptive, QuantileValidatesInput) {
  EXPECT_THROW(quantile(kSample, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(kSample, 1.1), std::invalid_argument);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Descriptive, EmptyAndShortSamplesThrow) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(variance(one), std::invalid_argument);
}

TEST(Descriptive, PerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, neg), -1.0, 1e-12);
}

TEST(Descriptive, CorrelationValidatesInput) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> flat = {5, 5, 5};
  EXPECT_THROW(pearson_correlation(xs, flat), std::invalid_argument);
  const std::vector<double> shorter = {1.0, 2.0};
  EXPECT_THROW(pearson_correlation(xs, shorter), std::invalid_argument);
}

TEST(Descriptive, SummarizeMatchesPieces) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.count, kSample.size());
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.cov(), coefficient_of_variation(kSample), 1e-12);
}

TEST(Ecdf, EvaluatesStepFunction) {
  const Ecdf f(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(2.5), 0.5);
  EXPECT_DOUBLE_EQ(f(4.0), 1.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(Ecdf, QuantileMatchesDefinition) {
  const Ecdf f(std::vector<double>{10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(f.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.26), 20.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.0), 10.0);
}

TEST(Ecdf, SampleDrawsFromSupport) {
  const Ecdf f(std::vector<double>{1.0, 5.0, 9.0});
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double v = f.sample(rng);
    EXPECT_TRUE(v == 1.0 || v == 5.0 || v == 9.0);
  }
}

TEST(Ecdf, MeanAndCurve) {
  const Ecdf f(std::vector<double>{0.0, 10.0});
  EXPECT_DOUBLE_EQ(f.mean(), 5.0);
  const auto curve = f.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().x, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().x, 10.0);
  EXPECT_DOUBLE_EQ(curve.back().f, 1.0);
}

TEST(Ecdf, RejectsEmptySample) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), std::invalid_argument);
}

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, EdgesAndFractions) {
  Histogram h(0.0, 24.0, 24);
  EXPECT_DOUBLE_EQ(h.bin_low(10), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_high(10), 11.0);
  h.add(10.5);
  h.add(10.7);
  h.add(3.0);
  EXPECT_NEAR(h.fraction(10), 2.0 / 3.0, 1e-12);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(Histogram, ValidatesConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW(h.count(2), std::out_of_range);
}

TEST(RunningStats, MatchesBatchStatistics) {
  RunningStats rs;
  for (double v : kSample) rs.add(v);
  EXPECT_EQ(rs.count(), kSample.size());
  EXPECT_NEAR(rs.mean(), mean(kSample), 1e-12);
  EXPECT_NEAR(rs.variance(), variance(kSample), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, ResetClearsState) {
  RunningStats rs;
  rs.add(1.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_THROW(rs.mean(), std::logic_error);
}

TEST(RunningStats, RequiresSamples) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), std::logic_error);
  rs.add(1.0);
  EXPECT_THROW(rs.variance(), std::logic_error);
}

TEST(RunningMeanWindow, SlidesCorrectly) {
  RunningMeanWindow w(3);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(7.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  EXPECT_EQ(w.size(), 3u);
}

TEST(RunningMeanWindow, Validates) {
  EXPECT_THROW(RunningMeanWindow(0), std::invalid_argument);
  RunningMeanWindow w(2);
  EXPECT_THROW(w.mean(), std::logic_error);
}

}  // namespace
}  // namespace cmdare::stats
