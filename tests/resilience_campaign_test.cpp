// The "resilience" campaign: degradation curves under injected faults,
// byte-identical at any --jobs value.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "scenario/catalog.hpp"

namespace cmdare::scenario {
namespace {

exp::CampaignSpec shrunk_spec() {
  // The catalog spec with a test-sized budget: 2 fault rates x 2
  // replicas, short runs.
  exp::CampaignSpec spec = campaign_by_name("resilience").spec;
  spec.replicas = 2;
  spec.fault_rates = {0.0, 0.2};
  spec.params["steps"] = 200.0;
  spec.params["checkpoint_interval_steps"] = 50.0;
  return spec;
}

TEST(ResilienceCampaign, InCatalogWithFaultRateGrid) {
  const NamedCampaign& campaign = campaign_by_name("resilience");
  EXPECT_EQ(campaign.spec.fault_rates.size(), 4u);
  EXPECT_EQ(exp::cell_count(campaign.spec), 4u);
  const auto cells = exp::expand(campaign.spec);
  EXPECT_DOUBLE_EQ(cells.front().fault_rate, 0.0);
  EXPECT_DOUBLE_EQ(cells.back().fault_rate, 0.2);
  // Fault-free cells keep the historical label; faulty ones are marked.
  EXPECT_EQ(cells.front().label(), "us-central1/K80/resnet-15/w2/h9");
  EXPECT_EQ(cells.back().label(), "us-central1/K80/resnet-15/w2/h9/f0.20");
}

TEST(ResilienceCampaign, CsvByteIdenticalAcrossJobCounts) {
  const exp::CampaignSpec spec = shrunk_spec();
  const exp::ReplicaFn replica = campaign_by_name("resilience").replica;

  exp::RunOptions serial;
  serial.jobs = 1;
  exp::RunOptions parallel;
  parallel.jobs = 4;

  std::ostringstream csv_serial;
  exp::run_campaign(spec, replica, serial).write_csv(csv_serial);
  std::ostringstream csv_parallel;
  exp::run_campaign(spec, replica, parallel).write_csv(csv_parallel);

  EXPECT_FALSE(csv_serial.str().empty());
  EXPECT_EQ(csv_serial.str(), csv_parallel.str());
  EXPECT_NE(csv_serial.str().find("fault_rate"), std::string::npos);
}

TEST(ResilienceCampaign, FaultyCellsDegradeGracefully) {
  const exp::CampaignSpec spec = shrunk_spec();
  const exp::ReplicaFn replica = campaign_by_name("resilience").replica;
  exp::RunOptions options;
  options.jobs = 2;
  const exp::CampaignResult result = exp::run_campaign(spec, replica, options);

  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.total_failures(), 0u);  // no replica threw

  const exp::CellAggregate& clean = result.aggregates[0];
  const exp::CellAggregate& faulty = result.aggregates[1];
  // Fault-free cells never retry; 20% cells must show resilience work
  // (the stockout window alone guarantees launch retries) and still
  // complete every replica within the horizon.
  EXPECT_DOUBLE_EQ(clean.metrics.at("launch_retries").running.mean(), 0.0);
  EXPECT_DOUBLE_EQ(clean.metrics.at("completed").running.mean(), 1.0);
  EXPECT_GT(faulty.metrics.at("launch_retries").running.mean(), 0.0);
  EXPECT_GT(faulty.metrics.at("faults_injected").running.mean(), 0.0);
  EXPECT_DOUBLE_EQ(faulty.metrics.at("completed").running.mean(), 1.0);
}

}  // namespace
}  // namespace cmdare::scenario
