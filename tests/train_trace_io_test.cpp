#include <gtest/gtest.h>

#include <sstream>

#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "train/session.hpp"
#include "train/trace_io.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace cmdare::train {
namespace {

TrainingTrace sample_trace() {
  simcore::Simulator sim;
  SessionConfig config;
  config.max_steps = 600;
  config.checkpoint_interval_steps = 200;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(1));
  WorkerSpec spec;
  spec.gpu = cloud::GpuType::kV100;
  spec.label = "w0";
  session.add_worker(spec);
  session.add_worker(spec);
  sim.run();
  return session.trace();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    rows.push_back(util::csv_parse_line(line));
  }
  return rows;
}

TEST(TraceIo, SpeedCsvHasOneRowPerWindow) {
  const TrainingTrace trace = sample_trace();
  std::ostringstream out;
  write_speed_csv(trace, out, 100);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 7u);  // header + 6 windows
  EXPECT_EQ(rows[0], (std::vector<std::string>{"step_end",
                                               "steps_per_second"}));
  EXPECT_EQ(rows[1][0], "100");
  EXPECT_GT(std::stod(rows[1][1]), 0.0);
}

TEST(TraceIo, WorkerStepsCsvCoversAllWorkers) {
  const TrainingTrace trace = sample_trace();
  std::ostringstream out;
  write_worker_steps_csv(trace, out);
  const auto rows = parse_csv(out.str());
  // header + one row per recorded worker step (= 600 global steps).
  EXPECT_EQ(rows.size(), 601u);
  // Times are monotone within each worker.
  double prev[2] = {0.0, 0.0};
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const int w = std::stoi(rows[r][0]);
    const double t = std::stod(rows[r][2]);
    ASSERT_TRUE(w == 0 || w == 1);
    EXPECT_GE(t, prev[w]);
    prev[w] = t;
  }
}

TEST(TraceIo, CheckpointsCsvMatchesTrace) {
  const TrainingTrace trace = sample_trace();
  std::ostringstream out;
  write_checkpoints_csv(trace, out);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), trace.checkpoints().size() + 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& c = trace.checkpoints()[r - 1];
    EXPECT_EQ(rows[r][0], std::to_string(c.at_step));
    EXPECT_NEAR(std::stod(rows[r][4]), c.duration(), 1e-3);
  }
}

TEST(TraceIo, EventsCsvQuotesDetails) {
  TrainingTrace trace;
  trace.record_event(SessionEvent{SessionEventType::kRollback, 1.5, 2, 100,
                                  "detail, with comma"});
  std::ostringstream out;
  write_events_csv(trace, out);
  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], "rollback");
  EXPECT_EQ(rows[1][4], "detail, with comma");
}

TEST(TraceIo, EventNamesCoverAllTypes) {
  EXPECT_STREQ(session_event_name(SessionEventType::kWorkerJoined),
               "worker_joined");
  EXPECT_STREQ(session_event_name(SessionEventType::kWorkerRevoked),
               "worker_revoked");
  EXPECT_STREQ(session_event_name(SessionEventType::kChiefHandover),
               "chief_handover");
  EXPECT_STREQ(session_event_name(SessionEventType::kRollback), "rollback");
  EXPECT_STREQ(session_event_name(SessionEventType::kSessionRestart),
               "session_restart");
}

TEST(TraceIo, ParseEventNameInvertsAllTypes) {
  for (const SessionEventType type :
       {SessionEventType::kWorkerJoined, SessionEventType::kWorkerRevoked,
        SessionEventType::kChiefHandover, SessionEventType::kRollback,
        SessionEventType::kSessionRestart}) {
    const auto parsed = parse_session_event_name(session_event_name(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(parse_session_event_name("no_such_event").has_value());
  EXPECT_FALSE(parse_session_event_name("").has_value());
}

TEST(TraceIo, CheckpointsRoundTrip) {
  const TrainingTrace trace = sample_trace();
  ASSERT_FALSE(trace.checkpoints().empty());
  std::ostringstream out;
  write_checkpoints_csv(trace, out);
  std::istringstream in(out.str());
  const auto loaded = read_checkpoints_csv(in);
  ASSERT_EQ(loaded.size(), trace.checkpoints().size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const auto& original = trace.checkpoints()[i];
    EXPECT_EQ(loaded[i].at_step, original.at_step);
    EXPECT_EQ(loaded[i].by_worker, original.by_worker);
    // The writer rounds to 3 decimals.
    EXPECT_NEAR(loaded[i].started, original.started, 1e-3);
    EXPECT_NEAR(loaded[i].finished, original.finished, 1e-3);
  }
}

TEST(TraceIo, EventsRoundTrip) {
  TrainingTrace trace;
  trace.record_event(SessionEvent{SessionEventType::kWorkerJoined, 0.25, 0,
                                  0, ""});
  trace.record_event(SessionEvent{SessionEventType::kWorkerRevoked, 10.0, 1,
                                  250, "instance 3"});
  trace.record_event(SessionEvent{SessionEventType::kRollback, 93.5, 2, 417,
                                  "detail, \"quoted\", with commas"});
  std::ostringstream out;
  write_events_csv(trace, out);
  std::istringstream in(out.str());
  const auto loaded = read_events_csv(in);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].type, SessionEventType::kWorkerJoined);
  EXPECT_NEAR(loaded[0].at, 0.25, 1e-3);
  EXPECT_EQ(loaded[0].detail, "");
  EXPECT_EQ(loaded[1].type, SessionEventType::kWorkerRevoked);
  EXPECT_EQ(loaded[1].worker, 1u);
  EXPECT_EQ(loaded[1].detail, "instance 3");
  EXPECT_EQ(loaded[2].type, SessionEventType::kRollback);
  EXPECT_EQ(loaded[2].global_step, 417);
  EXPECT_EQ(loaded[2].detail, "detail, \"quoted\", with commas");
}

TEST(TraceIo, ReadersRejectMalformedInput) {
  {
    std::istringstream in("wrong,header\n");
    EXPECT_THROW(read_checkpoints_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(read_events_csv(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "at_step,by_worker,started,finished,duration\nx,0,1.0,2.0,1.0\n");
    EXPECT_THROW(read_checkpoints_csv(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "type,at,worker,global_step,detail\nbogus_type,1.0,0,10,d\n");
    EXPECT_THROW(read_events_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("type,at,worker,global_step,detail\na,b\n");
    EXPECT_THROW(read_events_csv(in), std::runtime_error);
  }
}

TEST(TraceIo, ReadersAcceptCrlfAndBlankLines) {
  std::istringstream in(
      "at_step,by_worker,started,finished,duration\r\n"
      "200,0,10.5,13.25,2.75\r\n"
      "\r\n");
  const auto loaded = read_checkpoints_csv(in);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].at_step, 200);
  EXPECT_DOUBLE_EQ(loaded[0].started, 10.5);
  EXPECT_DOUBLE_EQ(loaded[0].finished, 13.25);
}

TEST(TraceIo, WorkerStepTimesAccessorValidates) {
  const TrainingTrace trace = sample_trace();
  EXPECT_EQ(trace.worker_step_times(0).size(),
            trace.worker_step_count(0));
  EXPECT_THROW(trace.worker_step_times(9), std::out_of_range);
}

}  // namespace
}  // namespace cmdare::train
