#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ml/dataset.hpp"
#include "ml/metrics.hpp"
#include "ml/scaler.hpp"

namespace cmdare::ml {
namespace {

Dataset tiny() {
  Dataset d({"x1", "x2"});
  d.add({1.0, 10.0}, 100.0);
  d.add({2.0, 20.0}, 200.0);
  d.add({3.0, 30.0}, 300.0);
  d.add({4.0, 40.0}, 400.0);
  d.add({5.0, 50.0}, 500.0);
  return d;
}

TEST(Dataset, AddAndAccess) {
  const Dataset d = tiny();
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_DOUBLE_EQ(d.x(2)[1], 30.0);
  EXPECT_DOUBLE_EQ(d.y(4), 500.0);
}

TEST(Dataset, ValidatesArity) {
  Dataset d({"x"});
  EXPECT_THROW(d.add({1.0, 2.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(d.x(0), std::out_of_range);
  EXPECT_THROW(Dataset(std::vector<std::string>{}), std::invalid_argument);
}

TEST(Dataset, FeatureColumn) {
  const Dataset d = tiny();
  EXPECT_EQ(d.feature_column(1), (std::vector<double>{10, 20, 30, 40, 50}));
  EXPECT_THROW(d.feature_column(2), std::out_of_range);
}

TEST(Dataset, Subset) {
  const Dataset d = tiny();
  const std::vector<std::size_t> idx = {4, 0};
  const Dataset s = d.subset(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.y(0), 500.0);
  EXPECT_DOUBLE_EQ(s.y(1), 100.0);
}

TEST(Dataset, SelectFeatures) {
  const Dataset d = tiny();
  const std::vector<std::size_t> features = {1};
  const Dataset s = d.select_features(features);
  EXPECT_EQ(s.feature_count(), 1u);
  EXPECT_EQ(s.feature_names()[0], "x2");
  EXPECT_DOUBLE_EQ(s.x(0)[0], 10.0);
  const std::vector<std::size_t> bad = {7};
  EXPECT_THROW(d.select_features(bad), std::out_of_range);
}

TEST(Split, PartitionsWithoutOverlapOrLoss) {
  Dataset d({"x"});
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, i);
  util::Rng rng(5);
  const TrainTestSplit split = train_test_split(d, 0.8, rng);
  EXPECT_EQ(split.train.size(), 16u);
  EXPECT_EQ(split.test.size(), 4u);
  std::set<double> seen;
  for (std::size_t i = 0; i < split.train.size(); ++i) {
    seen.insert(split.train.x(i)[0]);
  }
  for (std::size_t i = 0; i < split.test.size(); ++i) {
    EXPECT_EQ(seen.count(split.test.x(i)[0]), 0u);
    seen.insert(split.test.x(i)[0]);
  }
  EXPECT_EQ(seen.size(), 20u);
}

TEST(Split, ValidatesArguments) {
  Dataset d({"x"});
  d.add({1.0}, 1.0);
  util::Rng rng(1);
  EXPECT_THROW(train_test_split(d, 0.8, rng), std::invalid_argument);
  d.add({2.0}, 2.0);
  EXPECT_THROW(train_test_split(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(d, 1.0, rng), std::invalid_argument);
}

TEST(Split, AlwaysLeavesBothSidesNonEmpty) {
  Dataset d({"x"});
  d.add({1.0}, 1.0);
  d.add({2.0}, 2.0);
  util::Rng rng(9);
  const TrainTestSplit split = train_test_split(d, 0.99, rng);
  EXPECT_GE(split.train.size(), 1u);
  EXPECT_GE(split.test.size(), 1u);
}

TEST(KFold, FoldsPartitionIndices) {
  util::Rng rng(3);
  const auto folds = kfold_indices(23, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all;
  for (const auto& fold : folds) {
    EXPECT_GE(fold.size(), 4u);
    EXPECT_LE(fold.size(), 5u);
    for (std::size_t idx : fold) {
      EXPECT_TRUE(all.insert(idx).second) << "duplicate index";
    }
  }
  EXPECT_EQ(all.size(), 23u);
}

TEST(KFold, Validates) {
  util::Rng rng(1);
  EXPECT_THROW(kfold_indices(10, 1, rng), std::invalid_argument);
  EXPECT_THROW(kfold_indices(3, 5, rng), std::invalid_argument);
}

TEST(KFold, SplitComplementary) {
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) d.add({static_cast<double>(i)}, i);
  util::Rng rng(8);
  const auto folds = kfold_indices(10, 5, rng);
  const TrainTestSplit s = kfold_split(d, folds, 2);
  EXPECT_EQ(s.train.size() + s.test.size(), 10u);
  EXPECT_EQ(s.test.size(), folds[2].size());
  EXPECT_THROW(kfold_split(d, folds, 5), std::out_of_range);
}

TEST(MinMaxScaler, ScalesToUnitInterval) {
  Dataset d = tiny();
  MinMaxScaler scaler;
  scaler.fit(d);
  const auto lo = scaler.transform(std::vector<double>{1.0, 10.0});
  const auto hi = scaler.transform(std::vector<double>{5.0, 50.0});
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(hi[0], 1.0);
  EXPECT_DOUBLE_EQ(hi[1], 1.0);
  const auto mid = scaler.transform(std::vector<double>{3.0, 30.0});
  EXPECT_DOUBLE_EQ(mid[0], 0.5);
}

TEST(MinMaxScaler, ConstantFeatureMapsToZero) {
  Dataset d({"x"});
  d.add({5.0}, 1.0);
  d.add({5.0}, 2.0);
  MinMaxScaler scaler;
  scaler.fit(d);
  EXPECT_DOUBLE_EQ(scaler.transform(std::vector<double>{5.0})[0], 0.0);
}

TEST(MinMaxScaler, ScalarConvenience) {
  MinMaxScaler scaler;
  scaler.fit(std::vector<double>{0.0, 10.0});
  EXPECT_DOUBLE_EQ(scaler.transform_scalar(2.5), 0.25);
}

TEST(MinMaxScaler, Validates) {
  MinMaxScaler scaler;
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), std::logic_error);
  scaler.fit(std::vector<double>{1.0, 2.0});
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(ZScoreScaler, StandardizesColumns) {
  Dataset d({"x"});
  d.add({2.0}, 0.0);
  d.add({4.0}, 0.0);
  d.add({6.0}, 0.0);
  ZScoreScaler scaler;
  scaler.fit(d);
  EXPECT_DOUBLE_EQ(scaler.feature_mean(0), 4.0);
  const Dataset t = scaler.transform(d);
  EXPECT_NEAR(t.x(0)[0], -1.0, 1e-12);
  EXPECT_NEAR(t.x(1)[0], 0.0, 1e-12);
  EXPECT_NEAR(t.x(2)[0], 1.0, 1e-12);
}

TEST(Metrics, KnownValues) {
  const std::vector<double> truth = {1.0, 2.0, 4.0};
  const std::vector<double> pred = {1.5, 1.5, 5.0};
  EXPECT_NEAR(mean_absolute_error(truth, pred), (0.5 + 0.5 + 1.0) / 3, 1e-12);
  EXPECT_NEAR(mean_absolute_percentage_error(truth, pred),
              100.0 * (0.5 + 0.25 + 0.25) / 3, 1e-12);
  EXPECT_NEAR(root_mean_squared_error(truth, pred),
              std::sqrt((0.25 + 0.25 + 1.0) / 3), 1e-12);
}

TEST(Metrics, PerfectPredictionR2IsOne) {
  const std::vector<double> truth = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r_squared(truth, truth), 1.0);
}

TEST(Metrics, Validation) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(mean_absolute_error(a, b), std::invalid_argument);
  const std::vector<double> zero = {0.0};
  const std::vector<double> one = {1.0};
  EXPECT_THROW(mean_absolute_percentage_error(zero, one),
               std::invalid_argument);
  const std::vector<double> flat = {2.0, 2.0};
  EXPECT_THROW(r_squared(flat, flat), std::invalid_argument);
}

}  // namespace
}  // namespace cmdare::ml
