#include <gtest/gtest.h>

#include <set>

#include "nn/checkpoint_size.hpp"
#include "nn/layer.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"

namespace cmdare::nn {
namespace {

TEST(Layer, Conv2dFlopsAndParams) {
  // 3x3 conv, 16 -> 32 channels on a 32x32 map, stride 1:
  // FLOPs = 2 * 32*32 * 32 * 16*3*3 = 9,437,184; params = 16*32*9 = 4608.
  const Conv2d conv{16, 32, 3, 1, 32, 32, false};
  EXPECT_EQ(forward_flops(conv), 9437184u);
  EXPECT_EQ(parameter_count(conv), 4608u);
  EXPECT_EQ(tensor_count(conv), 1);
}

TEST(Layer, Conv2dStrideShrinksOutput) {
  const Conv2d s1{16, 16, 3, 1, 32, 32, false};
  const Conv2d s2{16, 16, 3, 2, 32, 32, false};
  EXPECT_EQ(forward_flops(s2) * 4, forward_flops(s1));
  EXPECT_EQ(parameter_count(s1), parameter_count(s2));
}

TEST(Layer, Conv2dBiasAddsParamsAndTensor) {
  const Conv2d no_bias{8, 8, 3, 1, 8, 8, false};
  const Conv2d bias{8, 8, 3, 1, 8, 8, true};
  EXPECT_EQ(parameter_count(bias), parameter_count(no_bias) + 8);
  EXPECT_EQ(tensor_count(bias), 2);
}

TEST(Layer, DenseFlopsAndParams) {
  const Dense dense{128, 10, true};
  EXPECT_EQ(forward_flops(dense), 2u * 128 * 10 + 10);
  EXPECT_EQ(parameter_count(dense), 128u * 10 + 10);
  EXPECT_EQ(tensor_count(dense), 2);
}

TEST(Layer, BatchNormHasFourTensors) {
  const BatchNorm bn{32, 16, 16};
  EXPECT_EQ(parameter_count(bn), 4u * 32);
  EXPECT_EQ(tensor_count(bn), 4);
  EXPECT_EQ(forward_flops(bn), 4u * 32 * 16 * 16);
}

TEST(Layer, PoolAndElementwiseHaveNoParams) {
  const Pool pool{64, 8, 8, 8, 8};
  const Elementwise ew{64, 8, 8, 3};
  EXPECT_EQ(parameter_count(pool), 0u);
  EXPECT_EQ(parameter_count(ew), 0u);
  EXPECT_EQ(tensor_count(pool), 0);
  EXPECT_EQ(forward_flops(ew), 3u * 64 * 8 * 8);
}

TEST(Layer, DescribeIsHumanReadable) {
  const Layer conv = Conv2d{3, 16, 3, 1, 32, 32};
  EXPECT_EQ(describe(conv), "conv3x3 3->16 /1 @32x32");
  const Layer dense = Dense{64, 10};
  EXPECT_EQ(describe(dense), "dense 64->10");
}

TEST(CnnModel, AggregatesLayerQuantities) {
  std::vector<Layer> layers = {Conv2d{3, 8, 3, 1, 32, 32},
                               BatchNorm{8, 32, 32}, Dense{8, 10}};
  const CnnModel model("tiny", Architecture::kCustom, std::move(layers));
  EXPECT_EQ(model.parameter_count(),
            3u * 8 * 9 + 4u * 8 + (8u * 10 + 10));
  EXPECT_EQ(model.tensor_count(), 1 + 4 + 2);
  EXPECT_EQ(model.training_flops_per_image(),
            3 * model.forward_flops_per_image());
}

TEST(CnnModel, ValidatesConstruction) {
  EXPECT_THROW(CnnModel("", Architecture::kCustom,
                        {Layer(Dense{1, 1})}),
               std::invalid_argument);
  EXPECT_THROW(CnnModel("x", Architecture::kCustom, {}),
               std::invalid_argument);
}

TEST(ModelZoo, CanonicalComplexitiesMatchTableI) {
  // Table I: 0.59, 1.54, 2.41, 21.3 GFLOPs. The layer-derived values must
  // land within 3%.
  EXPECT_NEAR(resnet15().gflops(), 0.59, 0.59 * 0.03);
  EXPECT_NEAR(resnet32().gflops(), 1.54, 1.54 * 0.03);
  EXPECT_NEAR(shake_shake_small().gflops(), 2.41, 2.41 * 0.03);
  EXPECT_NEAR(shake_shake_big().gflops(), 21.3, 21.3 * 0.03);
}

TEST(ModelZoo, CanonicalArchitectures) {
  EXPECT_EQ(resnet15().architecture(), Architecture::kResNet);
  EXPECT_EQ(shake_shake_big().architecture(), Architecture::kShakeShake);
}

TEST(ModelZoo, TwentyModelsWithUniqueNames) {
  const auto models = all_models();
  EXPECT_EQ(models.size(), 20u);
  std::set<std::string> names;
  for (const auto& m : models) names.insert(m.name());
  EXPECT_EQ(names.size(), 20u);
}

TEST(ModelZoo, CustomModelsSpanComplexityRange) {
  const auto models = custom_models();
  EXPECT_EQ(models.size(), 16u);
  double lo = 1e9, hi = 0.0;
  for (const auto& m : models) {
    lo = std::min(lo, m.gflops());
    hi = std::max(hi, m.gflops());
  }
  EXPECT_LT(lo, 0.3);   // lighter than ResNet-15
  EXPECT_GT(hi, 20.0);  // heavier than Shake-Shake Small
}

TEST(ModelZoo, DeeperResNetHasMoreFlops) {
  const CnnModel shallow = make_resnet("a", 2, 16);
  const CnnModel deep = make_resnet("b", 5, 16);
  EXPECT_GT(deep.gflops(), shallow.gflops());
  EXPECT_GT(deep.parameter_count(), shallow.parameter_count());
  EXPECT_GT(deep.tensor_count(), shallow.tensor_count());
}

TEST(ModelZoo, WiderNetworkScalesQuadratically) {
  const CnnModel narrow = make_resnet("a", 3, 16);
  const CnnModel wide = make_resnet("b", 3, 32);
  const double ratio = wide.gflops() / narrow.gflops();
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(ModelZoo, LookupByName) {
  const CnnModel m = model_by_name("resnet-32");
  EXPECT_EQ(m.name(), "resnet-32");
  EXPECT_THROW(model_by_name("alexnet"), std::invalid_argument);
}

TEST(ModelZoo, BuildersValidate) {
  EXPECT_THROW(make_resnet("x", 0, 16), std::invalid_argument);
  EXPECT_THROW(make_shake_shake("x", 4, 0), std::invalid_argument);
}

TEST(CheckpointSizes, DataFileTracksParameters) {
  const auto small = checkpoint_sizes(resnet15());
  const auto big = checkpoint_sizes(shake_shake_big());
  EXPECT_GT(big.data_bytes, small.data_bytes);
  // Data file is roughly 4 bytes per parameter.
  EXPECT_NEAR(static_cast<double>(small.data_bytes),
              4.0 * static_cast<double>(resnet15().parameter_count()),
              0.05 * static_cast<double>(small.data_bytes));
}

TEST(CheckpointSizes, IndexAndMetaTrackTensorCount) {
  const CnnModel few = make_resnet("few", 2, 16);
  const CnnModel many = make_resnet("many", 9, 16);
  const auto a = checkpoint_sizes(few);
  const auto b = checkpoint_sizes(many);
  EXPECT_GT(b.index_bytes, a.index_bytes);
  EXPECT_GT(b.meta_bytes, a.meta_bytes);
  // Same tensor count => same index/meta sizes regardless of width.
  const CnnModel wide = make_resnet("wide", 2, 64);
  const auto c = checkpoint_sizes(wide);
  EXPECT_EQ(a.index_bytes, c.index_bytes);
  EXPECT_EQ(a.meta_bytes, c.meta_bytes);
  EXPECT_GT(c.data_bytes, a.data_bytes);
}

TEST(CheckpointSizes, TotalIsSum) {
  const auto s = checkpoint_sizes(resnet32());
  EXPECT_EQ(s.total_bytes(), s.data_bytes + s.index_bytes + s.meta_bytes);
}

TEST(CnnModel, SummaryMentionsKeyFacts) {
  const std::string s = resnet32().summary();
  EXPECT_NE(s.find("resnet-32"), std::string::npos);
  EXPECT_NE(s.find("GFLOPs"), std::string::npos);
}

}  // namespace
}  // namespace cmdare::nn
