// Randomized failure injection: sessions and runs driven by random
// revocation / join / rollback schedules must never crash, deadlock, or
// violate trace invariants. Parameterized over seeds so ctest surfaces
// each scenario individually.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "cmdare/resource_manager.hpp"
#include "nn/model_zoo.hpp"
#include "obs/ledger.hpp"
#include "scenario/spec.hpp"
#include "simcore/simulator.hpp"
#include "train/session.hpp"
#include "train/sync_session.hpp"
#include "train/trace_io.hpp"
#include "util/csv.hpp"

namespace cmdare {
namespace {

class SessionFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SessionFuzz, RandomChurnKeepsInvariants) {
  const int scenario = GetParam();
  util::Rng rng(9000 + scenario);
  simcore::Simulator sim;

  train::SessionConfig config;
  config.max_steps = 3000 + static_cast<long>(rng.uniform_index(3000));
  config.checkpoint_interval_steps =
      rng.bernoulli(0.7) ? 200 + static_cast<long>(rng.uniform_index(800))
                         : 0;
  config.ps_count = 1 + static_cast<int>(rng.uniform_index(3));
  config.mode = rng.bernoulli(0.5) ? train::FaultToleranceMode::kCmDare
                                   : train::FaultToleranceMode::kVanillaTf;

  const nn::CnnModel model =
      nn::all_models()[rng.uniform_index(20)];
  train::TrainingSession session(sim, model, config,
                                 rng.fork("session"));

  // Initial cluster: 1-4 workers of random GPU types.
  const int initial = 1 + static_cast<int>(rng.uniform_index(4));
  for (int i = 0; i < initial; ++i) {
    train::WorkerSpec spec;
    spec.gpu = static_cast<cloud::GpuType>(rng.uniform_index(3));
    spec.label = "w" + std::to_string(i);
    session.add_worker(spec, rng.uniform(0.0, 60.0));
  }

  // Random churn: every 20-200 s, revoke a random active worker or add a
  // new one (randomly reusing the chief IP in vanilla mode).
  std::function<void()> churn = [&] {
    if (session.finished()) return;
    if (rng.bernoulli(0.5) && session.active_worker_count() > 0) {
      // Revoke a random active worker.
      std::vector<train::WorkerId> active;
      for (train::WorkerId w = 0; w < session.worker_count(); ++w) {
        if (session.worker_active(w)) active.push_back(w);
      }
      if (!active.empty()) {
        session.revoke_worker(active[rng.uniform_index(active.size())]);
      }
    }
    if (session.active_worker_count() < 4 && rng.bernoulli(0.8)) {
      train::WorkerSpec spec;
      spec.gpu = static_cast<cloud::GpuType>(rng.uniform_index(3));
      session.add_worker(spec, rng.uniform(0.0, 30.0),
                         rng.bernoulli(0.3));  // sometimes reuse chief IP
    }
    sim.schedule_after(rng.uniform(20.0, 200.0), churn);
  };
  sim.schedule_after(rng.uniform(20.0, 200.0), churn);

  // Bound the run; with churn adding workers back it should finish, but a
  // hostile schedule may legitimately starve it — the invariants below
  // hold either way.
  sim.run_until(24.0 * 3600.0);

  // Invariants.
  const auto& trace = session.trace();
  EXPECT_LE(session.global_step(), trace.max_global_step());
  if (config.max_steps > 0 && session.finished()) {
    EXPECT_GE(trace.max_global_step(), config.max_steps);
  }
  // Step times recorded for reached steps are positive and finite.
  for (long s = 1; s <= std::min<long>(trace.max_global_step(), 500); ++s) {
    const auto t = trace.try_time_of_step(s);
    ASSERT_TRUE(t.has_value()) << "step " << s << " missing";
    EXPECT_GE(*t, 0.0);
    EXPECT_TRUE(std::isfinite(*t));
  }
  // Checkpoints are well-formed and attributed to real workers.
  for (const auto& c : trace.checkpoints()) {
    EXPECT_GT(c.duration(), 0.0);
    EXPECT_LT(c.by_worker, session.worker_count());
    EXPECT_GE(c.at_step, 1);
  }
  // Events are time-ordered.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    EXPECT_LE(trace.events()[i - 1].at, trace.events()[i].at);
  }
  // Trace serialization never throws and produces parseable CSV.
  std::ostringstream csv;
  train::write_events_csv(trace, csv);
  std::istringstream lines(csv.str());
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(util::csv_parse_line(line).size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SessionFuzz, ::testing::Range(0, 12));

class RunFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RunFuzz, TransientRunSurvivesChurnyRegions) {
  const int scenario = GetParam();
  util::Rng rng(7000 + scenario);
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, rng.fork("provider"));

  core::RunConfig config;
  config.session.max_steps = 20000 + static_cast<long>(
                                          rng.uniform_index(40000));
  config.session.checkpoint_interval_steps = 4000;
  // Random (region, GPU) combos from the measured set.
  const auto& targets = cloud::revocation_targets();
  const int workers = 2 + static_cast<int>(rng.uniform_index(3));
  for (int i = 0; i < workers; ++i) {
    const auto& t = targets[rng.uniform_index(targets.size())];
    train::WorkerSpec spec;
    spec.gpu = t.gpu;
    spec.region = t.region;
    spec.label = "w" + std::to_string(i);
    config.workers.push_back(spec);
  }

  core::TransientTrainingRun run(provider, nn::resnet15(), config,
                                 rng.fork("run"));
  run.start();
  // Occasionally reconfigure mid-run.
  if (rng.bernoulli(0.4)) {
    sim.schedule_at(rng.uniform(600.0, 3000.0), [&] {
      run.restart_with_ps_count(2);
    });
  }
  sim.run();

  EXPECT_TRUE(run.finished());
  EXPECT_GE(run.completed_steps(), config.session.max_steps);
  EXPECT_EQ(run.replacements_requested(), run.revocations_seen());
  EXPECT_GT(run.cost_so_far(), 0.0);
  EXPECT_GT(run.elapsed_seconds(), 0.0);
  // All instances released at completion.
  for (const auto& record : provider.records()) {
    EXPECT_FALSE(record.alive());
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, RunFuzz, ::testing::Range(0, 8));

class SyncFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SyncFuzz, BarrierNeverDeadlocks) {
  util::Rng rng(8000 + GetParam());
  simcore::Simulator sim;
  train::SyncTrainingSession session(
      sim, nn::all_models()[rng.uniform_index(20)],
      1 + static_cast<int>(rng.uniform_index(2)),
      500 + static_cast<long>(rng.uniform_index(1500)), rng.fork("sync"));
  const int workers = 1 + static_cast<int>(rng.uniform_index(4));
  for (int i = 0; i < workers; ++i) {
    train::WorkerSpec spec;
    spec.gpu = static_cast<cloud::GpuType>(rng.uniform_index(3));
    session.add_worker(spec);
  }
  session.start();

  // Revoke workers at random times, but never the last one.
  std::function<void()> churn = [&] {
    if (session.finished() || session.active_worker_count() <= 1) return;
    // Picking any id is safe: revoking an already-revoked worker is a
    // no-op, and the active_worker_count() guard above keeps at least
    // one worker alive.
    session.revoke_worker(
        rng.uniform_index(static_cast<std::uint64_t>(workers)));
    sim.schedule_after(rng.uniform(5.0, 60.0), churn);
  };
  sim.schedule_after(rng.uniform(5.0, 60.0), churn);
  sim.run_until(12.0 * 3600.0);
  EXPECT_TRUE(session.finished());
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SyncFuzz, ::testing::Range(0, 8));

class SpecParseFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SpecParseFuzz, RandomBytesNeverCrashTheParser) {
  // ScenarioSpec::parse is the boundary that eats user files: any byte
  // soup must come back as diagnostics, never a throw or a crash.
  util::Rng rng(6000 + GetParam());
  for (int doc = 0; doc < 50; ++doc) {
    std::string text;
    const std::size_t length = rng.uniform_index(2000);
    text.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      if (rng.bernoulli(0.15)) {
        // Bias toward structure so parsing goes deeper than line 1:
        // newlines, separators, and real key fragments.
        static const char* kFragments[] = {
            "\n", "=", "#", " x ", " @ ", "..", ",", "workers", "kind",
            "seed", "fault_rate", "stockout", "utc_start_hour", "-", "1e",
            "true", "run", "K80", "us-central1", "*", "/", "supervise.",
            "enabled", "heartbeat_timeout_s", "retune_", "nan", "inf",
            "fleet.", "tenants", "demand", "scheduler", "round-robin",
            "cost-optimal", "capacity_", "migrate_gain", "storm", "storms",
            "kill=", "hazard=", "slow=", "elastic.", "min_workers",
            "breaker_failures", "breaker_backoff_s", "grow_hysteresis_s",
            "futility_threshold", "deadline_hours", "ckpt.", "delta_ratio",
            "max_delta_chain", "max_generations", "bit_rot_rate",
            "torn_write_rate", "tier_outage", "tier_outages", "store.tier.",
            "local", "regional", "cold", "latency_s", "bandwidth_gbps",
            "usd_per_gb"};
        text += kFragments[rng.uniform_index(std::size(kFragments))];
      } else {
        text += static_cast<char>(rng.uniform_index(256));
      }
    }
    const scenario::ParseResult result = scenario::parse(text);
    // Diagnostics must reference real lines of the input (or line 0 for
    // file-level semantic errors).
    for (const scenario::Diagnostic& d : result.diagnostics) {
      EXPECT_GE(d.line, 0);
      EXPECT_FALSE(d.message.empty());
    }
    // Whatever survived parsing must serialize, and the canonical text
    // must itself parse without per-line errors.
    const std::string canonical = scenario::serialize(result.spec);
    const scenario::ParseResult again = scenario::parse(canonical);
    for (const scenario::Diagnostic& d : again.diagnostics) {
      EXPECT_EQ(d.line, 0) << "canonical text rejected: " << d.message;
    }
    EXPECT_EQ(scenario::serialize(again.spec), canonical);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SpecParseFuzz, ::testing::Range(0, 8));

class LedgerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LedgerFuzz, RandomBytesNeverCrashTheReader) {
  // parse_ledger_jsonl eats whatever file the user hands run_report: any
  // byte soup must come back as per-line diagnostics, never a throw, and
  // every event that did parse must re-serialize and re-parse cleanly.
  util::Rng rng(7000 + GetParam());
  for (int doc = 0; doc < 50; ++doc) {
    std::string text;
    const std::size_t length = rng.uniform_index(2000);
    text.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      if (rng.bernoulli(0.2)) {
        // Bias toward JSONL structure so parsing reaches field handling:
        // braces, quoted keys, kind tokens, numbers, escapes.
        static const char* kFragments[] = {
            "\n", "{", "}", "\"", ":", ",", "\"at\"", "\"kind\"",
            "\"source\"", "\"instance\"", "\"worker\"", "\"step\"",
            "\"seconds\"", "\"usd\"", "\"detail\"", "billing",
            "launch_attempt", "revocation", "catchup_complete", "-1",
            "1e308", "0.25", "\\u00e9", "\\\"", "true", "null", "[", "]",
            "tenant_placement", "eviction", "migration",
            "tenant_complete", "breaker_transition", "elastic_shrink",
            "elastic_grow", "ckpt_quarantine", "ckpt_restore",
            "ckpt_compact"};
        text += kFragments[rng.uniform_index(std::size(kFragments))];
      } else {
        text += static_cast<char>(rng.uniform_index(256));
      }
    }
    const obs::LedgerParseResult result = obs::parse_ledger_jsonl(text);
    for (const std::string& error : result.errors) {
      EXPECT_EQ(error.find("line "), 0u) << error;
    }
    // Survivors round-trip: serialize -> parse -> serialize is stable.
    std::ostringstream out;
    obs::write_ledger_jsonl(result.ledger, out);
    const obs::LedgerParseResult again = obs::parse_ledger_jsonl(out.str());
    EXPECT_TRUE(again.ok());
    EXPECT_EQ(again.ledger.size(), result.ledger.size());
    std::ostringstream out2;
    obs::write_ledger_jsonl(again.ledger, out2);
    EXPECT_EQ(out2.str(), out.str());
  }
}

INSTANTIATE_TEST_SUITE_P(Ledgers, LedgerFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace cmdare
