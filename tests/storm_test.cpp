// Correlated failure storms + elastic degraded-mode training: the
// OutageStorm fault class and its provider-side burst/tail semantics,
// the per-pool circuit breaker, the elastic membership policy, the
// fallback-ladder exhaustion path, and the storm campaign's acceptance
// property (elastic beats 1-for-1 replacement on $/kstep AND
// time-to-target in every storm cell, byte-identically at any --jobs).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cloud/provider.hpp"
#include "faults/faults.hpp"
#include "obs/analyze.hpp"
#include "obs/ledger.hpp"
#include "scenario/catalog.hpp"
#include "scenario/harness.hpp"
#include "scenario/sweep.hpp"
#include "simcore/simulator.hpp"
#include "supervise/supervise.hpp"
#include "util/rng.hpp"

namespace cmdare {
namespace {

using cloud::GpuType;
using cloud::Region;
using supervise::BreakerState;

constexpr Region kPool = Region::kUsCentral1;
constexpr GpuType kGpu = GpuType::kK80;

// ---------------------------------------------------------------------------
// CircuitBreaker.
// ---------------------------------------------------------------------------

supervise::CircuitBreakerConfig breaker_config() {
  supervise::CircuitBreakerConfig config;
  config.open_after_failures = 3;
  config.backoff_s = 100.0;
  config.backoff_multiplier = 2.0;
  config.max_backoff_s = 400.0;
  return config;
}

TEST(CircuitBreaker, OpensAfterConsecutiveFailuresOnly) {
  supervise::CircuitBreaker breaker(breaker_config());
  breaker.record_failure(kPool, kGpu, 10.0);
  breaker.record_failure(kPool, kGpu, 20.0);
  EXPECT_EQ(breaker.state(kPool, kGpu, 20.0), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(kPool, kGpu), 2);

  // A success between failures resets the streak: no open.
  breaker.record_success(kPool, kGpu, 25.0);
  EXPECT_EQ(breaker.consecutive_failures(kPool, kGpu), 0);
  breaker.record_failure(kPool, kGpu, 30.0);
  breaker.record_failure(kPool, kGpu, 40.0);
  EXPECT_EQ(breaker.state(kPool, kGpu, 40.0), BreakerState::kClosed);

  // The third consecutive failure trips it.
  breaker.record_failure(kPool, kGpu, 50.0);
  EXPECT_EQ(breaker.state(kPool, kGpu, 50.0), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow_request(kPool, kGpu, 60.0));
  EXPECT_EQ(breaker.opens(), 1);
}

TEST(CircuitBreaker, HalfOpenProbeSequencing) {
  supervise::CircuitBreaker breaker(breaker_config());
  for (int i = 0; i < 3; ++i) breaker.record_failure(kPool, kGpu, 100.0);
  ASSERT_EQ(breaker.state(kPool, kGpu, 100.0), BreakerState::kOpen);

  // Blocked during the backoff; half-open once it lapses.
  EXPECT_FALSE(breaker.allow_request(kPool, kGpu, 150.0));
  EXPECT_EQ(breaker.state(kPool, kGpu, 199.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(kPool, kGpu, 200.0), BreakerState::kHalfOpen);

  // Exactly one probe at a time.
  EXPECT_TRUE(breaker.allow_request(kPool, kGpu, 210.0));
  EXPECT_FALSE(breaker.allow_request(kPool, kGpu, 211.0));

  // Failed probe: re-open with the backoff doubled (100 -> 200).
  breaker.record_failure(kPool, kGpu, 220.0);
  EXPECT_EQ(breaker.state(kPool, kGpu, 300.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(kPool, kGpu, 420.0), BreakerState::kHalfOpen);

  // Successful probe closes and resets the streak.
  EXPECT_TRUE(breaker.allow_request(kPool, kGpu, 430.0));
  breaker.record_success(kPool, kGpu, 440.0);
  EXPECT_EQ(breaker.state(kPool, kGpu, 440.0), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(kPool, kGpu), 0);
  EXPECT_TRUE(breaker.allow_request(kPool, kGpu, 441.0));
}

TEST(CircuitBreaker, BackoffGrowthSaturatesAtCap) {
  supervise::CircuitBreaker breaker(breaker_config());
  double now = 0.0;
  for (int i = 0; i < 3; ++i) breaker.record_failure(kPool, kGpu, now);
  // Fail four more probes: backoff 100 -> 200 -> 400 -> 400 (capped).
  for (int round = 0; round < 4; ++round) {
    now += 500.0;  // past any backoff the config can produce
    ASSERT_EQ(breaker.state(kPool, kGpu, now), BreakerState::kHalfOpen)
        << "round " << round;
    ASSERT_TRUE(breaker.allow_request(kPool, kGpu, now));
    breaker.record_failure(kPool, kGpu, now);
  }
  // Backoff is now 400 (the cap): 399 s later still open, 400 s half-open.
  EXPECT_EQ(breaker.state(kPool, kGpu, now + 399.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(kPool, kGpu, now + 400.0), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, PoolsAreIndependent) {
  supervise::CircuitBreaker breaker(breaker_config());
  for (int i = 0; i < 3; ++i) breaker.record_failure(kPool, kGpu, 0.0);
  EXPECT_EQ(breaker.state(kPool, kGpu, 0.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(kPool, GpuType::kV100, 0.0), BreakerState::kClosed);
  EXPECT_EQ(breaker.state(Region::kUsEast1, kGpu, 0.0),
            BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow_request(Region::kUsEast1, kGpu, 0.0));
}

TEST(CircuitBreaker, TransitionCallbackSeesEveryStateChange) {
  supervise::CircuitBreaker breaker(breaker_config());
  std::vector<std::pair<BreakerState, BreakerState>> seen;
  breaker.on_transition = [&](Region region, GpuType gpu, BreakerState from,
                              BreakerState to, double at) {
    EXPECT_EQ(region, kPool);
    EXPECT_EQ(gpu, kGpu);
    EXPECT_GE(at, 0.0);
    seen.emplace_back(from, to);
  };
  for (int i = 0; i < 3; ++i) breaker.record_failure(kPool, kGpu, 0.0);
  ASSERT_TRUE(breaker.allow_request(kPool, kGpu, 100.0));  // half-open probe
  breaker.record_success(kPool, kGpu, 110.0);              // closes

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0],
            std::make_pair(BreakerState::kClosed, BreakerState::kOpen));
  EXPECT_EQ(seen[1],
            std::make_pair(BreakerState::kOpen, BreakerState::kHalfOpen));
  EXPECT_EQ(seen[2],
            std::make_pair(BreakerState::kHalfOpen, BreakerState::kClosed));
  EXPECT_EQ(breaker.transitions(), 3);
  EXPECT_EQ(breaker.opens(), 1);
}

TEST(CircuitBreaker, RejectsInvalidConfig) {
  supervise::CircuitBreakerConfig config = breaker_config();
  config.open_after_failures = 0;
  EXPECT_THROW(supervise::CircuitBreaker{config}, std::invalid_argument);
  config = breaker_config();
  config.backoff_s = 0.0;
  EXPECT_THROW(supervise::CircuitBreaker{config}, std::invalid_argument);
  config = breaker_config();
  config.backoff_multiplier = 0.5;
  EXPECT_THROW(supervise::CircuitBreaker{config}, std::invalid_argument);
  config = breaker_config();
  config.max_backoff_s = config.backoff_s - 1.0;
  EXPECT_THROW(supervise::CircuitBreaker{config}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ElasticPolicy.
// ---------------------------------------------------------------------------

supervise::ElasticConfig elastic_config() {
  supervise::ElasticConfig config;
  config.enabled = true;
  config.min_workers = 2;
  config.grow_hysteresis_s = 120.0;
  config.futility_threshold = 0.5;
  config.deadline_hours = 0.0;
  return config;
}

TEST(ElasticPolicy, FloorForcesReplacement) {
  const supervise::ElasticPolicy policy(elastic_config());
  // live_workers below the floor: replace even into an open breaker.
  const auto decision = policy.on_worker_lost(
      /*breaker_allows=*/false, /*hazard_per_hour=*/50.0,
      /*replacement_overhead_s=*/600.0, /*live_workers=*/1, /*now_s=*/0.0,
      /*remaining_work_s=*/-1.0);
  EXPECT_TRUE(decision.replace);
  EXPECT_STREQ(decision.reason, "floor");
}

TEST(ElasticPolicy, DeadlineForcesReplacement) {
  supervise::ElasticConfig config = elastic_config();
  config.deadline_hours = 2.0;
  const supervise::ElasticPolicy policy(config);
  // One hour in with 90 minutes of work left against a 2 h deadline:
  // shrinking would blow the target, so replace.
  const auto urgent = policy.on_worker_lost(false, 50.0, 600.0, 4, 3600.0,
                                            5400.0);
  EXPECT_TRUE(urgent.replace);
  EXPECT_STREQ(urgent.reason, "deadline");
  // Plenty of slack: the breaker verdict prevails again.
  const auto slack = policy.on_worker_lost(false, 50.0, 600.0, 4, 3600.0,
                                           600.0);
  EXPECT_FALSE(slack.replace);
  EXPECT_STREQ(slack.reason, "breaker_open");
}

TEST(ElasticPolicy, OpenBreakerShrinks) {
  const supervise::ElasticPolicy policy(elastic_config());
  const auto decision = policy.on_worker_lost(false, 0.0, 0.0, 3, 0.0, -1.0);
  EXPECT_FALSE(decision.replace);
  EXPECT_STREQ(decision.reason, "breaker_open");
}

TEST(ElasticPolicy, UneconomicalReplacementShrinks) {
  const supervise::ElasticPolicy policy(elastic_config());
  // 6 revocations/h x 600 s overhead = 1.0 expected deaths > 0.5.
  const auto futile = policy.on_worker_lost(true, 6.0, 600.0, 3, 0.0, -1.0);
  EXPECT_FALSE(futile.replace);
  EXPECT_STREQ(futile.reason, "uneconomical");
  // 1 revocation/h x 600 s = 0.17 expected deaths: replace.
  const auto fine = policy.on_worker_lost(true, 1.0, 600.0, 3, 0.0, -1.0);
  EXPECT_TRUE(fine.replace);
  EXPECT_STREQ(fine.reason, "replace");
  // A zero threshold disables the economic gate entirely.
  supervise::ElasticConfig config = elastic_config();
  config.futility_threshold = 0.0;
  const supervise::ElasticPolicy ungated(config);
  EXPECT_TRUE(ungated.on_worker_lost(true, 1000.0, 3600.0, 3, 0.0, -1.0)
                  .replace);
}

TEST(ElasticPolicy, GrowHysteresisThrottlesRegrow) {
  supervise::ElasticPolicy policy(elastic_config());
  EXPECT_TRUE(policy.may_grow(0.0));  // no change recorded yet
  policy.note_change(1000.0);
  EXPECT_FALSE(policy.may_grow(1000.0));
  EXPECT_FALSE(policy.may_grow(1119.9));
  EXPECT_TRUE(policy.may_grow(1120.0));
}

TEST(ElasticPolicy, RegrowEconomicsMirrorsShrinkGate) {
  const supervise::ElasticPolicy policy(elastic_config());
  EXPECT_FALSE(policy.regrow_economical(6.0, 600.0));  // still futile
  EXPECT_TRUE(policy.regrow_economical(1.0, 600.0));   // hazard decayed
  EXPECT_TRUE(policy.regrow_economical(0.0, 600.0));   // no evidence
  supervise::ElasticConfig config = elastic_config();
  config.futility_threshold = 0.0;
  EXPECT_TRUE(supervise::ElasticPolicy(config).regrow_economical(1e6, 3600.0));
}

TEST(ElasticPolicy, RejectsInvalidConfig) {
  supervise::ElasticConfig config = elastic_config();
  config.min_workers = 0;
  EXPECT_THROW(supervise::ElasticPolicy{config}, std::invalid_argument);
  config = elastic_config();
  config.grow_hysteresis_s = -1.0;
  EXPECT_THROW(supervise::ElasticPolicy{config}, std::invalid_argument);
  config = elastic_config();
  config.futility_threshold = -0.5;
  EXPECT_THROW(supervise::ElasticPolicy{config}, std::invalid_argument);
  config = elastic_config();
  config.deadline_hours = -2.0;
  EXPECT_THROW(supervise::ElasticPolicy{config}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// OutageStorm plan semantics.
// ---------------------------------------------------------------------------

TEST(OutageStorm, CoversMatchesScopeAndHalfOpenWindow) {
  faults::OutageStorm storm;
  storm.region = kPool;
  storm.gpu = kGpu;
  storm.start_s = 100.0;
  storm.end_s = 200.0;
  EXPECT_TRUE(storm.covers(kPool, kGpu, 100.0));
  EXPECT_TRUE(storm.covers(kPool, kGpu, 199.9));
  EXPECT_FALSE(storm.covers(kPool, kGpu, 99.9));
  EXPECT_FALSE(storm.covers(kPool, kGpu, 200.0));
  EXPECT_FALSE(storm.covers(kPool, GpuType::kV100, 150.0));
  EXPECT_FALSE(storm.covers(Region::kUsEast1, kGpu, 150.0));
  // Wildcard GPU scope strikes the whole region.
  storm.gpu.reset();
  EXPECT_TRUE(storm.covers(kPool, GpuType::kV100, 150.0));
}

TEST(OutageStorm, InjectorRejectsInvalidStorms) {
  const auto injector_for = [](faults::OutageStorm storm) {
    faults::FaultPlan plan;
    plan.storms.push_back(storm);
    return faults::FaultInjector(plan, util::Rng(1));
  };
  faults::OutageStorm storm;
  storm.start_s = 10.0;
  storm.end_s = 5.0;
  EXPECT_THROW(injector_for(storm), std::invalid_argument);
  storm = {};
  storm.start_s = -1.0;
  EXPECT_THROW(injector_for(storm), std::invalid_argument);
  storm = {};
  storm.kill_fraction = 1.5;
  EXPECT_THROW(injector_for(storm), std::invalid_argument);
  storm = {};
  storm.hazard_multiplier = 0.5;
  EXPECT_THROW(injector_for(storm), std::invalid_argument);
  storm = {};
  storm.startup_slowdown = 0.0;
  EXPECT_THROW(injector_for(storm), std::invalid_argument);
}

TEST(StockoutWindows, OverlappingAdjacentAndZeroLengthWindows) {
  // Zero-length [t, t): covers nothing, not even its own instant.
  faults::StockoutWindow zero;
  zero.region = kPool;
  zero.gpu = kGpu;
  zero.start_s = 100.0;
  zero.end_s = 100.0;
  EXPECT_FALSE(zero.covers(kPool, kGpu, 100.0));

  // Adjacent [0,10) + [10,20) deny continuously across the seam; an
  // overlapping third window [5,15) never double-counts a decision.
  faults::StockoutWindow first = zero, second = zero, third = zero;
  first.start_s = 0.0;
  first.end_s = 10.0;
  second.start_s = 10.0;
  second.end_s = 20.0;
  third.start_s = 5.0;
  third.end_s = 15.0;
  faults::FaultPlan plan;
  plan.stockouts = {first, second, third};
  faults::FaultInjector injector(plan, util::Rng(2));
  std::uint64_t covered = 0;
  for (const double now : {0.0, 5.0, 9.9, 10.0, 15.0, 19.9, 20.0, 25.0}) {
    if (injector.stocked_out(kPool, kGpu, now)) ++covered;
  }
  EXPECT_EQ(covered, 6u);  // everything before 20.0
  EXPECT_EQ(injector.injected(faults::FaultKind::kStockout), 6u);
}

// ---------------------------------------------------------------------------
// Provider storm burst / tail / clear.
// ---------------------------------------------------------------------------

TEST(ProviderStorm, BurstRevokesTailDeniesAndClears) {
  simcore::Simulator sim;
  util::Rng rng(7);
  faults::FaultPlan plan;
  faults::OutageStorm storm;
  storm.region = kPool;
  storm.gpu = kGpu;
  storm.start_s = 600.0;
  storm.end_s = 1800.0;
  storm.kill_fraction = 1.0;
  storm.hazard_multiplier = 3.0;
  storm.startup_slowdown = 2.0;
  plan.storms.push_back(storm);
  faults::FaultInjector injector(plan, rng.fork("faults"));
  cloud::CloudProvider provider(sim, rng.fork("cloud"));
  provider.set_fault_injector(&injector);

  int revoked = 0;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_revoked = [&](cloud::InstanceId) { ++revoked; };
  cloud::InstanceRequest request;
  request.gpu = kGpu;
  request.region = kPool;
  request.transient = true;
  for (int i = 0; i < 3; ++i) provider.request_instance(request, callbacks);

  // Before the burst: pool healthy, no storm effects.
  sim.run_until(599.0);
  EXPECT_FALSE(provider.outage_active(kPool, kGpu));
  EXPECT_DOUBLE_EQ(provider.outage_hazard_multiplier(kPool, kGpu), 1.0);
  const int natural_deaths = revoked;

  // The burst abruptly revokes every still-live in-scope instance
  // (kill_fraction 1), and the tail denies requests with degraded
  // hazard/startup until end_s.
  sim.run_until(601.0);
  EXPECT_EQ(revoked, 3);
  EXPECT_EQ(provider.outage_revocations(),
            static_cast<std::uint64_t>(3 - natural_deaths));
  EXPECT_TRUE(provider.outage_active(kPool, kGpu));
  EXPECT_DOUBLE_EQ(provider.outage_hazard_multiplier(kPool, kGpu), 3.0);
  EXPECT_DOUBLE_EQ(provider.outage_startup_slowdown(kPool, kGpu), 2.0);
  EXPECT_FALSE(provider.outage_active(kPool, GpuType::kV100));

  bool denied = false;
  cloud::InstanceCallbacks denial_watch;
  denial_watch.on_request_failed = [&](cloud::InstanceId,
                                       cloud::RequestFailureReason) {
    denied = true;
  };
  provider.request_instance(request, std::move(denial_watch));
  sim.run_until(700.0);
  EXPECT_TRUE(denied);
  EXPECT_GE(provider.outage_denials(), 1u);

  // After end_s the pool clears: no outage, fresh requests succeed.
  sim.run_until(1801.0);
  EXPECT_FALSE(provider.outage_active(kPool, kGpu));
  EXPECT_DOUBLE_EQ(provider.outage_hazard_multiplier(kPool, kGpu), 1.0);
  EXPECT_DOUBLE_EQ(provider.outage_startup_slowdown(kPool, kGpu), 1.0);
  bool running = false;
  cloud::InstanceCallbacks recovery_watch;
  recovery_watch.on_running = [&](cloud::InstanceId) { running = true; };
  provider.request_instance(request, std::move(recovery_watch));
  sim.run_until(1801.0 + 600.0);
  EXPECT_TRUE(running);
}

// ---------------------------------------------------------------------------
// Fallback-ladder exhaustion (the degraded 1-for-1 path).
// ---------------------------------------------------------------------------

TEST(FallbackLadder, ExhaustedLadderAbandonsSlotCleanly) {
  // Every rung disabled and the pool stocked out for the whole horizon:
  // advance_fallback can never produce a new target, so each slot must
  // burn its launch-attempt budget, be abandoned exactly once, and leave
  // the run stalled (not crashed) at the horizon.
  scenario::ScenarioSpec spec;
  spec.name = "ladder-exhaustion";
  spec.kind = scenario::HarnessKind::kRun;
  spec.seed = 11;
  spec.model = "resnet-15";
  spec.workers = {{2, kGpu, kPool, true}};
  spec.max_steps = 5000;
  spec.horizon_hours = 2.0;
  spec.resilience.max_launch_attempts = 4;
  spec.resilience.backoff_base_seconds = 2.0;
  spec.resilience.backoff_max_seconds = 8.0;
  spec.resilience.allow_region_fallback = false;
  spec.resilience.allow_gpu_fallback = false;
  spec.resilience.allow_on_demand_fallback = false;
  faults::StockoutWindow window;
  window.region = kPool;
  window.gpu = kGpu;
  window.start_s = 0.0;
  window.end_s = 2.0 * 3600.0;
  spec.faults.stockouts.push_back(window);

  scenario::SimHarness harness(spec);
  const scenario::ScenarioResult result = harness.run();
  EXPECT_FALSE(result.finished);
  EXPECT_EQ(result.completed_steps, 0);
  EXPECT_EQ(result.slots_abandoned, 2);
  // 4 attempts per slot = 1 initial + 3 retries, for both slots.
  EXPECT_EQ(result.launch_retries, 6);
  EXPECT_EQ(result.fallbacks, 0);
}

// ---------------------------------------------------------------------------
// End-to-end elastic run and the storm campaign acceptance property.
// ---------------------------------------------------------------------------

/// The catalog's storm sweep shrunk for tests: a compressed storm window
/// over a shorter run, same pool/knobs. kill=1 makes the contrast
/// deterministic: the 1-for-1 arm loses every worker and stalls, the
/// elastic arm shrinks through the breaker and regrows after the tail.
scenario::ScenarioSweep shrunk_storm_sweep(int replicas) {
  scenario::ScenarioSweep sweep = scenario::sweep_by_name("storm").sweep;
  sweep.name = "storm-golden";
  sweep.base.max_steps = 120000;
  sweep.base.checkpoint_interval_steps = 4000;
  sweep.base.horizon_hours = 6.0;
  sweep.axes = {
      {"storms",
       {"us-central1/K80 @ 1200..3600 kill=0.7 hazard=4 slow=2",
        "us-central1/K80 @ 1200..3600 kill=1 hazard=4 slow=2"}},
      {"supervise.elastic.enabled", {"false", "true"}},
  };
  sweep.replicas = replicas;
  sweep.seed = 909;
  return sweep;
}

scenario::ScenarioCampaignResult run_storm_sweep(int replicas, int jobs,
                                                 bool telemetry) {
  exp::RunOptions options;
  options.jobs = jobs;
  options.capture_telemetry = telemetry;
  return run_scenario_campaign(shrunk_storm_sweep(replicas), options,
                               scenario::sweep_by_name("storm").replica);
}

TEST(StormScenario, ElasticRunShrinksAndRegrows) {
  scenario::ScenarioSpec spec = scenario::storm_scenario();
  spec.max_steps = 120000;
  spec.checkpoint_interval_steps = 4000;
  spec.horizon_hours = 6.0;
  spec.faults.storms[0].start_s = 1200.0;
  spec.faults.storms[0].end_s = 3600.0;
  spec.faults.storms[0].kill_fraction = 1.0;
  spec.supervision.elastic.enabled = true;

  scenario::SimHarness harness(spec);
  const scenario::ScenarioResult result = harness.run();
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.completed_steps, 120000);
  EXPECT_GT(result.elastic_shrinks, 0);
  EXPECT_GT(result.elastic_grows, 0);
  EXPECT_GT(result.breaker_opens, 0);
  EXPECT_GT(result.outage_revocations, 0u);
  EXPECT_GT(result.outage_denials, 0u);
  // Every shrink eventually regrew: no net deficit at the finish.
  EXPECT_EQ(result.elastic_shrinks, result.elastic_grows);
}

TEST(StormCampaign, ElasticBeatsOneForOneInEveryStormCell) {
  const scenario::ScenarioCampaignResult result =
      run_storm_sweep(/*replicas=*/2, /*jobs=*/2, /*telemetry=*/false);
  // First axis (storms) slowest: cells are {storm0, storm1} x
  // {1-for-1, elastic}.
  ASSERT_EQ(result.cells.size(), 4u);
  const auto mean = [&](std::size_t cell, const char* metric) {
    return result.aggregates[cell].metrics.at(metric).running.mean();
  };
  for (std::size_t storm = 0; storm < 2; ++storm) {
    const std::size_t fixed = storm * 2;      // elastic off
    const std::size_t elastic = fixed + 1;    // elastic on
    // The acceptance property: elastic wins BOTH objectives per cell.
    EXPECT_LT(mean(elastic, "time_to_target_s"),
              mean(fixed, "time_to_target_s"))
        << "storm cell " << storm;
    EXPECT_LT(mean(elastic, "usd_per_kstep"), mean(fixed, "usd_per_kstep"))
        << "storm cell " << storm;
    // The mechanism is visible in the counters: the 1-for-1 arm burns
    // its attempt budget and abandons slots, the elastic arm defers and
    // regrows through the breaker.
    EXPECT_GT(mean(fixed, "slots_abandoned"), 0.0);
    EXPECT_EQ(mean(fixed, "elastic_shrinks"), 0.0);
    EXPECT_EQ(mean(fixed, "breaker_opens"), 0.0);
    EXPECT_GT(mean(elastic, "elastic_shrinks"), 0.0);
    EXPECT_GT(mean(elastic, "elastic_grows"), 0.0);
    EXPECT_GT(mean(elastic, "breaker_opens"), 0.0);
    EXPECT_EQ(mean(elastic, "finished"), 1.0);
  }
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(StormCampaign, CsvAndMergedLedgerByteIdenticalAcrossJobCounts) {
  const auto render = [](int jobs) {
    const scenario::ScenarioCampaignResult result =
        run_storm_sweep(/*replicas=*/1, jobs, /*telemetry=*/true);
    std::ostringstream csv;
    result.write_csv(csv);
    std::ostringstream ledger;
    obs::write_ledger_jsonl(result.telemetry->ledger, ledger);
    return std::pair<std::string, std::string>(csv.str(), ledger.str());
  };
  const auto [csv1, ledger1] = render(1);
  const auto [csv4, ledger4] = render(4);
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(ledger1, ledger4);
  // Byte-pins of the jobs=1 rendering (captured at introduction): the
  // full texts are too large to inline, so pin size + FNV-1a instead.
  EXPECT_EQ(csv1.size(), 9622u);
  EXPECT_EQ(fnv1a(csv1), 3016881385912561154ull);
  EXPECT_EQ(ledger1.size(), 87001u);
  EXPECT_EQ(fnv1a(ledger1), 16053550116167599886ull);
  // The membership mechanics are visible in the merged ledger.
  EXPECT_NE(ledger1.find("\"kind\":\"breaker_transition\""),
            std::string::npos);
  EXPECT_NE(ledger1.find("\"kind\":\"elastic_shrink\""), std::string::npos);
  EXPECT_NE(ledger1.find("\"kind\":\"elastic_grow\""), std::string::npos);

  // And run_report's analysis attributes the degraded-capacity window:
  // shrink-depth integrated over time, outside the Eq. 4 identity.
  const obs::LedgerParseResult parsed = obs::parse_ledger_jsonl(ledger1);
  ASSERT_TRUE(parsed.ok());
  const obs::analyze::LedgerAnalysis analysis =
      obs::analyze::analyze_ledger(parsed.ledger);
  EXPECT_GT(analysis.elastic.shrinks, 0u);
  EXPECT_GT(analysis.elastic.grows, 0u);
  EXPECT_GT(analysis.elastic.breaker_opens, 0u);
  EXPECT_GT(analysis.elastic.degraded_slot_seconds, 0.0);
  std::ostringstream report;
  obs::analyze::write_report(analysis, report);
  EXPECT_NE(report.str().find("Elastic membership"), std::string::npos);
}

}  // namespace
}  // namespace cmdare
