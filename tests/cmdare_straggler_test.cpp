#include <gtest/gtest.h>

#include "cmdare/measurement.hpp"
#include "cmdare/straggler.hpp"
#include "stats/descriptive.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"

namespace cmdare::core {
namespace {

train::WorkerSpec p100(double performance_factor = 1.0) {
  train::WorkerSpec spec;
  spec.gpu = cloud::GpuType::kP100;
  spec.performance_factor = performance_factor;
  return spec;
}

struct Cluster {
  std::unique_ptr<simcore::Simulator> sim =
      std::make_unique<simcore::Simulator>();
  std::unique_ptr<train::TrainingSession> session;
};

Cluster run_cluster(const std::vector<train::WorkerSpec>& workers, long steps,
                  std::uint64_t seed) {
  Cluster setup;
  train::SessionConfig config;
  config.max_steps = steps;
  setup.session = std::make_unique<train::TrainingSession>(
      *setup.sim, nn::resnet32(), config, util::Rng(seed));
  for (const auto& w : workers) setup.session->add_worker(w);
  setup.sim->run();
  return setup;
}

TEST(Straggler, DegradedWorkerSlowsByItsFactor) {
  // The injection mechanism itself: a 1.3x performance factor must show
  // up as ~1.3x step time.
  const Cluster nominal = run_cluster({p100()}, 1500, 1);
  const Cluster degraded = run_cluster({p100(1.3)}, 1500, 1);
  const double t_nominal = cmdare::stats::mean(
      nominal.session->trace().worker_step_intervals(0, 100));
  const double t_degraded = cmdare::stats::mean(
      degraded.session->trace().worker_step_intervals(0, 100));
  EXPECT_NEAR(t_degraded / t_nominal, 1.3, 0.02);
}

TEST(Straggler, PeerComparisonFlagsTheSlowWorker) {
  // Three P100s keep the PS unsaturated (36.6 < 42.6 updates/s), so the
  // degraded worker's slowdown is fully visible.
  const Cluster setup = run_cluster({p100(), p100(1.25), p100()}, 5000, 2);
  const auto assessments = detect_stragglers(*setup.session);
  ASSERT_EQ(assessments.size(), 3u);
  for (const auto& a : assessments) {
    if (a.worker == 1) {
      EXPECT_TRUE(a.flagged_vs_peers) << "degraded worker not flagged";
    } else {
      EXPECT_FALSE(a.flagged_vs_peers)
          << "healthy worker " << a.worker << " falsely flagged";
    }
    ASSERT_TRUE(a.peer_median_seconds.has_value());
  }
}

TEST(Straggler, HealthyClusterHasNoFlags) {
  const Cluster setup = run_cluster({p100(), p100(), p100()}, 5000, 3);
  for (const auto& a : detect_stragglers(*setup.session)) {
    EXPECT_FALSE(a.flagged());
  }
}

TEST(Straggler, SingleWorkerHasNoPeerSignal) {
  const Cluster setup = run_cluster({p100(1.5)}, 1500, 4);
  const auto assessments = detect_stragglers(*setup.session);
  ASSERT_EQ(assessments.size(), 1u);
  EXPECT_FALSE(assessments[0].peer_median_seconds.has_value());
  EXPECT_FALSE(assessments[0].flagged_vs_peers);
}

TEST(Straggler, ModelComparisonCatchesLoneDegradedWorker) {
  util::Rng rng(5);
  const auto measurements = measure_step_times(
      nn::all_models(), {cloud::GpuType::kP100}, rng, 500);
  util::Rng train_rng(6);
  const StepTimePredictor predictor =
      StepTimePredictor::train(measurements, train_rng);

  const Cluster setup = run_cluster({p100(1.4)}, 1500, 7);
  const auto assessments =
      detect_stragglers(*setup.session, &predictor);
  ASSERT_EQ(assessments.size(), 1u);
  EXPECT_TRUE(assessments[0].flagged_vs_model);
  ASSERT_TRUE(assessments[0].predicted_seconds.has_value());

  // With the PS marked saturated the model comparison is suppressed.
  const auto suppressed =
      detect_stragglers(*setup.session, &predictor, /*ps_saturated=*/true);
  EXPECT_FALSE(suppressed[0].flagged_vs_model);
  EXPECT_FALSE(suppressed[0].predicted_seconds.has_value());
}

TEST(Straggler, PeerSignalSurvivesPsSaturation) {
  // 8 P100s saturate the PS: everyone inflates to ~196 ms, but the
  // degraded worker still stands out against its peers... only if its
  // slowdown exceeds the saturation floor. Use a strong factor.
  std::vector<train::WorkerSpec> workers(8, p100());
  workers[5] = p100(2.8);  // ~230 ms compute > 196 ms saturation floor
  Cluster setup = run_cluster(workers, 16000, 8);
  const auto assessments = detect_stragglers(*setup.session);
  bool degraded_flagged = false;
  int healthy_flagged = 0;
  for (const auto& a : assessments) {
    if (a.worker == 5) {
      degraded_flagged = a.flagged_vs_peers;
    } else if (a.flagged_vs_peers) {
      ++healthy_flagged;
    }
  }
  EXPECT_TRUE(degraded_flagged);
  EXPECT_EQ(healthy_flagged, 0);
}

TEST(Straggler, SkipsWorkersWithoutEnoughHistory) {
  Cluster setup;
  train::SessionConfig config;
  config.max_steps = 2000;
  setup.session = std::make_unique<train::TrainingSession>(
      *setup.sim, nn::resnet32(), config, util::Rng(9));
  setup.session->add_worker(p100());
  // Joins so late it cannot accumulate discard+min steps.
  setup.session->add_worker(p100(), 160.0);
  setup.sim->run();
  const auto assessments = detect_stragglers(*setup.session);
  EXPECT_EQ(assessments.size(), 1u);
  EXPECT_EQ(assessments[0].worker, 0u);
}

}  // namespace
}  // namespace cmdare::core
