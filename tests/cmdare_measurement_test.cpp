#include <gtest/gtest.h>

#include "cmdare/measurement.hpp"
#include "nn/model_zoo.hpp"

namespace cmdare::core {
namespace {

std::vector<nn::CnnModel> two_models() {
  std::vector<nn::CnnModel> models;
  models.push_back(nn::resnet15());
  models.push_back(nn::resnet32());
  return models;
}

TEST(Measurement, StepTimesCoverModelGpuGrid) {
  util::Rng rng(1);
  const auto measurements = measure_step_times(
      two_models(), {cloud::GpuType::kK80, cloud::GpuType::kP100}, rng, 400);
  ASSERT_EQ(measurements.size(), 4u);
  for (const auto& m : measurements) {
    EXPECT_GT(m.mean_step_seconds, 0.0);
    EXPECT_GT(m.steps_measured, 200);
    EXPECT_GT(m.gflops, 0.0);
    EXPECT_GT(m.gpu_tflops, 0.0);
  }
}

TEST(Measurement, StepTimesMatchGroundTruthAnchors) {
  util::Rng rng(2);
  const auto measurements =
      measure_step_times(two_models(), {cloud::GpuType::kK80}, rng, 800);
  // ResNet-32 on K80: Table I anchor 219.3 ms.
  for (const auto& m : measurements) {
    if (m.model == "resnet-32") {
      EXPECT_NEAR(m.mean_step_seconds, 0.2193, 0.005);
    }
    if (m.model == "resnet-15") {
      EXPECT_NEAR(m.mean_step_seconds, 0.1057, 0.003);
    }
  }
}

TEST(Measurement, ComputationRatioDefinition) {
  StepTimeMeasurement m;
  m.gflops = 2.0;
  m.gpu_tflops = 4.0;
  EXPECT_DOUBLE_EQ(m.computation_ratio(), 0.5);
}

TEST(Measurement, FilterGpuSelectsSubset) {
  util::Rng rng(3);
  const auto measurements = measure_step_times(
      two_models(), {cloud::GpuType::kK80, cloud::GpuType::kP100}, rng, 300);
  const auto k80 = filter_gpu(measurements, cloud::GpuType::kK80);
  EXPECT_EQ(k80.size(), 2u);
  for (const auto& m : k80) EXPECT_EQ(m.gpu, cloud::GpuType::kK80);
}

TEST(Measurement, DatasetsAreMinMaxNormalized) {
  util::Rng rng(4);
  const auto measurements = measure_step_times(
      two_models(), {cloud::GpuType::kK80, cloud::GpuType::kP100}, rng, 300);
  for (const auto& dataset :
       {step_dataset_cnorm(measurements), step_dataset_cm(measurements)}) {
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      EXPECT_GE(dataset.x(i)[0], 0.0);
      EXPECT_LE(dataset.x(i)[0], 1.0);
    }
  }
  const auto multi = step_dataset_cm_cgpu(measurements);
  EXPECT_EQ(multi.feature_count(), 2u);
}

TEST(Measurement, EmptyInputsRejected) {
  EXPECT_THROW(step_dataset_cnorm({}), std::invalid_argument);
  util::Rng rng(5);
  EXPECT_THROW(
      measure_step_times(two_models(), {cloud::GpuType::kK80}, rng, 50, 100),
      std::invalid_argument);
}

TEST(Measurement, CheckpointTimesHaveLowVariance) {
  util::Rng rng(6);
  const auto measurements =
      measure_checkpoint_times(nn::canonical_models(), rng, 5);
  ASSERT_EQ(measurements.size(), 4u);
  for (const auto& m : measurements) {
    EXPECT_EQ(m.repeats, 5);
    EXPECT_GT(m.mean_seconds, 0.0);
    EXPECT_LT(m.cov, 0.12);  // Fig. 5 reports 0.018-0.073 over 5 repeats
    EXPECT_NEAR(m.total_mb, m.data_mb + m.meta_mb + m.index_mb, 1e-9);
  }
}

TEST(Measurement, CheckpointTimeIncreasesWithSize) {
  util::Rng rng(7);
  const auto measurements =
      measure_checkpoint_times(nn::canonical_models(), rng, 5);
  const auto find = [&](const std::string& name) {
    for (const auto& m : measurements) {
      if (m.model == name) return m;
    }
    throw std::logic_error("missing model");
  };
  EXPECT_LT(find("resnet-15").mean_seconds,
            find("shake-shake-big").mean_seconds);
  EXPECT_LT(find("resnet-15").total_mb, find("shake-shake-big").total_mb);
}

TEST(Measurement, CheckpointDatasetShapes) {
  util::Rng rng(8);
  const auto measurements =
      measure_checkpoint_times(nn::canonical_models(), rng, 3);
  EXPECT_EQ(checkpoint_dataset_total(measurements).feature_count(), 1u);
  EXPECT_EQ(checkpoint_dataset_data_meta(measurements).feature_count(), 2u);
  EXPECT_EQ(checkpoint_dataset_all(measurements).feature_count(), 3u);
  EXPECT_EQ(checkpoint_dataset_all(measurements).size(), 4u);
}

TEST(Measurement, CheckpointValidatesRepeats) {
  util::Rng rng(9);
  EXPECT_THROW(measure_checkpoint_times(nn::canonical_models(), rng, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmdare::core
