#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "stats/descriptive.hpp"
#include "train/replacement.hpp"
#include "train/session.hpp"

namespace cmdare::train {
namespace {

WorkerSpec worker(cloud::GpuType gpu, const std::string& label = "w") {
  WorkerSpec spec;
  spec.gpu = gpu;
  spec.label = label;
  return spec;
}

TEST(Session, SingleK80WorkerMatchesTableISpeed) {
  simcore::Simulator sim;
  SessionConfig config;
  config.max_steps = 3000;
  TrainingSession session(sim, nn::resnet32(), config, util::Rng(1));
  session.add_worker(worker(cloud::GpuType::kK80));
  sim.run();
  EXPECT_TRUE(session.finished());
  // Table I: 4.56 steps/s for ResNet-32 on K80.
  EXPECT_NEAR(session.trace().mean_speed(100, 3000), 4.56, 0.1);
}

TEST(Session, WarmupSlowsEarlySteps) {
  simcore::Simulator sim;
  SessionConfig config;
  config.max_steps = 1000;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(2));
  session.add_worker(worker(cloud::GpuType::kK80));
  sim.run();
  const auto speeds = session.trace().speed_per_window(100);
  ASSERT_GE(speeds.size(), 5u);
  // First window (steps 0-100) is visibly slower; later windows stable.
  EXPECT_LT(speeds[0], 0.8 * speeds[4]);
  const std::vector<double> steady(speeds.begin() + 1, speeds.end());
  EXPECT_LT(stats::coefficient_of_variation(steady), 0.03);
}

TEST(Session, CompletionCallbackFiresOnce) {
  simcore::Simulator sim;
  SessionConfig config;
  config.max_steps = 200;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(3));
  int completions = 0;
  session.on_complete = [&] { ++completions; };
  session.add_worker(worker(cloud::GpuType::kV100));
  session.add_worker(worker(cloud::GpuType::kV100));
  sim.run();
  EXPECT_EQ(completions, 1);
  EXPECT_GE(session.global_step(), 200);
}

TEST(Session, PsBottleneckInflatesWorkerStepTime) {
  // 8x P100 on ResNet-32 saturate a single PS: per-worker step time
  // approaches 8x the PS service time (~188 ms), Table III.
  simcore::Simulator sim;
  SessionConfig config;
  config.max_steps = 8000;
  TrainingSession session(sim, nn::resnet32(), config, util::Rng(4));
  for (int i = 0; i < 8; ++i) session.add_worker(worker(cloud::GpuType::kP100));
  sim.run();
  const auto intervals = session.trace().worker_step_intervals(0, 100);
  const double mean_ms = stats::mean(intervals) * 1000.0;
  EXPECT_GT(mean_ms, 175.0);
  EXPECT_LT(mean_ms, 215.0);
}

TEST(Session, K80ClusterDoesNotBottleneck) {
  // Table III: K80 per-worker step time is flat through 8 workers.
  simcore::Simulator sim;
  SessionConfig config;
  config.max_steps = 8000;
  TrainingSession session(sim, nn::resnet32(), config, util::Rng(5));
  for (int i = 0; i < 8; ++i) session.add_worker(worker(cloud::GpuType::kK80));
  sim.run();
  const double mean_ms =
      stats::mean(session.trace().worker_step_intervals(0, 100)) * 1000.0;
  EXPECT_NEAR(mean_ms, 219.3, 6.0);  // single-worker compute time
}

TEST(Session, HeterogeneousClusterDoesNotSlowExistingWorkers) {
  // Section III-C third observation.
  const auto single_worker_ms = [](util::Rng rng) {
    simcore::Simulator sim;
    SessionConfig config;
    config.max_steps = 2500;
    TrainingSession session(sim, nn::resnet32(), config, rng);
    session.add_worker(worker(cloud::GpuType::kV100));
    sim.run();
    return stats::mean(session.trace().worker_step_intervals(0, 100));
  };
  const double baseline = single_worker_ms(util::Rng(6));

  simcore::Simulator sim;
  SessionConfig config;
  config.max_steps = 8000;
  TrainingSession session(sim, nn::resnet32(), config, util::Rng(7));
  const WorkerId v100 = session.add_worker(worker(cloud::GpuType::kV100));
  session.add_worker(worker(cloud::GpuType::kK80));
  session.add_worker(worker(cloud::GpuType::kK80));
  session.add_worker(worker(cloud::GpuType::kP100));
  sim.run();
  const double hetero =
      stats::mean(session.trace().worker_step_intervals(v100, 100));
  EXPECT_NEAR(hetero, baseline, baseline * 0.05);
}

TEST(Session, TwoPsShardsDoubleBottleneckCapacity) {
  const auto cluster_speed = [](int ps_count) {
    simcore::Simulator sim;
    SessionConfig config;
    config.max_steps = 8000;
    config.ps_count = ps_count;
    TrainingSession session(sim, nn::resnet32(), config, util::Rng(8));
    for (int i = 0; i < 8; ++i) {
      session.add_worker(worker(cloud::GpuType::kP100));
    }
    sim.run();
    return session.trace().mean_speed(200, 8000);
  };
  const double one_ps = cluster_speed(1);
  const double two_ps = cluster_speed(2);
  EXPECT_NEAR(one_ps, 42.0, 3.0);  // single-PS capacity for ResNet-32
  EXPECT_GT(two_ps, 1.6 * one_ps);  // Figure 12's mitigation
}

TEST(Session, CheckpointOverheadIsSequential) {
  // Section IV-B: 100 steps with checkpointing take ~T_c longer.
  const auto time_for_steps = [](long interval) {
    simcore::Simulator sim;
    SessionConfig config;
    config.max_steps = 1000;
    config.checkpoint_interval_steps = interval;
    TrainingSession session(sim, nn::resnet32(), config, util::Rng(9));
    session.add_worker(worker(cloud::GpuType::kK80));
    sim.run();
    return session.trace().time_of_step(1000);
  };
  const double without = time_for_steps(0);
  const double with_ckpt = time_for_steps(100);
  // 10 checkpoints of ~3.84 s each.
  EXPECT_NEAR(with_ckpt - without, 10 * 3.84, 6.0);
}

TEST(Session, CheckpointsRecordedAtInterval) {
  simcore::Simulator sim;
  SessionConfig config;
  config.max_steps = 1000;
  config.checkpoint_interval_steps = 250;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(10));
  session.add_worker(worker(cloud::GpuType::kV100));
  sim.run();
  const auto& checkpoints = session.trace().checkpoints();
  ASSERT_GE(checkpoints.size(), 3u);
  EXPECT_GE(checkpoints[0].at_step, 250);
  EXPECT_LT(checkpoints[0].at_step, 260);
  for (const auto& c : checkpoints) {
    EXPECT_GT(c.duration(), 0.0);
    EXPECT_EQ(c.by_worker, 0u);  // chief checkpoints
  }
}

TEST(Session, CheckpointWritesToObjectStore) {
  simcore::Simulator sim;
  cloud::ObjectStore store(sim, util::Rng(11));
  SessionConfig config;
  config.max_steps = 600;
  config.checkpoint_interval_steps = 250;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(12), &store);
  session.add_worker(worker(cloud::GpuType::kV100));
  sim.run();
  EXPECT_GE(store.blob_count(), 2u);
  EXPECT_GT(store.bytes_stored(), 0u);
}

TEST(Session, RevokedWorkerStopsContributing) {
  simcore::Simulator sim;
  SessionConfig config;
  TrainingSession session(sim, nn::resnet32(), config, util::Rng(13));
  const WorkerId a = session.add_worker(worker(cloud::GpuType::kK80));
  const WorkerId b = session.add_worker(worker(cloud::GpuType::kK80));
  sim.schedule_at(100.0, [&] { session.revoke_worker(a); });
  sim.run_until(300.0);
  EXPECT_FALSE(session.worker_active(a));
  EXPECT_TRUE(session.worker_active(b));
  EXPECT_EQ(session.active_worker_count(), 1u);
  const std::size_t steps_a = session.trace().worker_step_count(a);
  sim.run_until(400.0);
  EXPECT_EQ(session.trace().worker_step_count(a), steps_a);
  EXPECT_GT(session.trace().worker_step_count(b), 0u);
}

TEST(Session, CmDareHandsCheckpointDutyToSurvivor) {
  simcore::Simulator sim;
  SessionConfig config;
  config.checkpoint_interval_steps = 100;
  config.mode = FaultToleranceMode::kCmDare;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(14));
  const WorkerId chief = session.add_worker(worker(cloud::GpuType::kK80));
  const WorkerId other = session.add_worker(worker(cloud::GpuType::kK80));
  EXPECT_EQ(session.checkpoint_owner(), std::optional<WorkerId>(chief));
  sim.schedule_at(50.0, [&] { session.revoke_worker(chief); });
  sim.run_until(200.0);
  EXPECT_EQ(session.checkpoint_owner(), std::optional<WorkerId>(other));
  bool saw_handover = false;
  for (const auto& e : session.trace().events()) {
    if (e.type == SessionEventType::kChiefHandover) saw_handover = true;
  }
  EXPECT_TRUE(saw_handover);
  // Checkpointing continues after the handover.
  sim.run_until(400.0);
  EXPECT_FALSE(session.trace().checkpoints().empty());
}

TEST(Session, VanillaTfOrphansCheckpointingUntilIpReuse) {
  simcore::Simulator sim;
  SessionConfig config;
  config.checkpoint_interval_steps = 1000;
  config.mode = FaultToleranceMode::kVanillaTf;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(15));
  const WorkerId chief = session.add_worker(worker(cloud::GpuType::kK80));
  session.add_worker(worker(cloud::GpuType::kK80));
  sim.schedule_at(60.0, [&] { session.revoke_worker(chief); });
  sim.run_until(100.0);
  EXPECT_FALSE(session.checkpoint_owner().has_value());

  // A replacement claiming the chief's IP becomes chief and rolls back.
  const long step_before = session.global_step();
  WorkerId replacement = 0;
  sim.schedule_at(120.0, [&] {
    replacement = session.add_worker(worker(cloud::GpuType::kK80), 0.0,
                                     /*reuse_chief_ip=*/true);
  });
  sim.run_until(121.0);  // just after the rollback
  EXPECT_EQ(session.checkpoint_owner(), std::optional<WorkerId>(replacement));
  EXPECT_LT(session.global_step(), step_before);  // rolled back to last ckpt
  bool saw_rollback = false;
  for (const auto& e : session.trace().events()) {
    if (e.type == SessionEventType::kRollback) saw_rollback = true;
  }
  EXPECT_TRUE(saw_rollback);
}

TEST(Session, CmDareIpReuseDoesNotRollBack) {
  simcore::Simulator sim;
  SessionConfig config;
  config.checkpoint_interval_steps = 1000;
  config.mode = FaultToleranceMode::kCmDare;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(16));
  const WorkerId chief = session.add_worker(worker(cloud::GpuType::kK80));
  session.add_worker(worker(cloud::GpuType::kK80));
  sim.schedule_at(60.0, [&] { session.revoke_worker(chief); });
  sim.run_until(100.0);
  const long step_before = session.global_step();
  sim.schedule_at(101.0, [&] {
    session.add_worker(worker(cloud::GpuType::kK80), 0.0, true);
  });
  sim.run_until(140.0);
  EXPECT_GE(session.global_step(), step_before);
}

TEST(Session, FirstActivatedWorkerBecomesChief) {
  // Regression: workers join after staggered cold-start delays; the chief
  // must be the first worker to *activate*, not the first added —
  // otherwise checkpointing never starts.
  simcore::Simulator sim;
  SessionConfig config;
  config.checkpoint_interval_steps = 200;
  config.max_steps = 1000;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(40));
  session.add_worker(worker(cloud::GpuType::kK80), /*join_delay=*/120.0);
  const WorkerId early = session.add_worker(worker(cloud::GpuType::kK80),
                                            /*join_delay=*/40.0);
  sim.run();
  EXPECT_FALSE(session.trace().checkpoints().empty());
  EXPECT_EQ(session.trace().checkpoints().front().by_worker, early);
}

TEST(Session, CmDareReassignsChiefWhenAllWorkersDied) {
  simcore::Simulator sim;
  SessionConfig config;
  config.checkpoint_interval_steps = 100;
  config.mode = FaultToleranceMode::kCmDare;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(41));
  const WorkerId only = session.add_worker(worker(cloud::GpuType::kK80));
  sim.schedule_at(5.0, [&] { session.revoke_worker(only); });
  sim.run_until(10.0);
  EXPECT_FALSE(session.checkpoint_owner().has_value());
  const WorkerId replacement =
      session.add_worker(worker(cloud::GpuType::kK80));
  sim.run_until(50.0);
  EXPECT_EQ(session.checkpoint_owner(), std::optional<WorkerId>(replacement));
}

TEST(Session, DelayedJoinActivatesLater) {
  simcore::Simulator sim;
  SessionConfig config;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(17));
  session.add_worker(worker(cloud::GpuType::kK80));
  const WorkerId late = session.add_worker(worker(cloud::GpuType::kK80), 50.0);
  sim.run_until(25.0);
  EXPECT_FALSE(session.worker_active(late));
  sim.run_until(60.0);
  EXPECT_TRUE(session.worker_active(late));
}

TEST(Session, ValidatesConfiguration) {
  simcore::Simulator sim;
  SessionConfig bad;
  bad.ps_count = 0;
  EXPECT_THROW(TrainingSession(sim, nn::resnet15(), bad, util::Rng(1)),
               std::invalid_argument);
  SessionConfig config;
  TrainingSession session(sim, nn::resnet15(), config, util::Rng(1));
  EXPECT_THROW(session.revoke_worker(5), std::out_of_range);
  EXPECT_THROW(session.ps_shard(1), std::out_of_range);
  EXPECT_THROW(session.worker_active(0), std::out_of_range);
}

TEST(Replacement, SamplesNearCalibrationMeans) {
  util::Rng rng(18);
  std::vector<double> warm, cold;
  for (int i = 0; i < 2000; ++i) {
    warm.push_back(sample_warm_replacement_seconds(nn::resnet15(), rng));
    cold.push_back(sample_cold_replacement_seconds(nn::resnet15(), rng));
  }
  EXPECT_NEAR(stats::mean(warm), 14.8, 0.5);
  EXPECT_NEAR(stats::mean(cold), 75.6, 1.5);
}

}  // namespace
}  // namespace cmdare::train
