// Fault-injection layer: injector determinism, provider/storage injection
// sites, and the resilient control plane riding out an adversarial cloud.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "cloud/storage.hpp"
#include "cmdare/resource_manager.hpp"
#include "faults/faults.hpp"
#include "nn/model_zoo.hpp"
#include "obs/obs.hpp"
#include "simcore/simulator.hpp"
#include "train/cluster.hpp"

namespace cmdare::core {

/// Test seam (friend of TransientTrainingRun): injects fabricated
/// lifecycle events that the real provider never produces.
class TransientTrainingRunTestPeer {
 public:
  static void running(TransientTrainingRun& run, cloud::InstanceId id) {
    run.handle_running(id);
  }
  static void revoked(TransientTrainingRun& run, cloud::InstanceId id) {
    run.handle_revoked(id);
  }
  static void request_failed(TransientTrainingRun& run, cloud::InstanceId id) {
    run.handle_request_failed(id, cloud::RequestFailureReason::kLaunchError);
  }
};

namespace {

using faults::FaultInjector;
using faults::FaultKind;
using faults::FaultPlan;
using faults::StockoutWindow;

TEST(FaultPlan, UniformSetsEveryRate) {
  const FaultPlan plan = FaultPlan::uniform(0.25);
  EXPECT_DOUBLE_EQ(plan.launch_error_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.upload_error_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.upload_slowdown_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.restore_error_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.abrupt_kill_rate, 0.25);
  EXPECT_TRUE(plan.stockouts.empty());
  EXPECT_TRUE(plan.any());
  EXPECT_FALSE(FaultPlan{}.any());
}

TEST(FaultPlan, ValidatesRates) {
  FaultPlan bad;
  bad.launch_error_rate = 1.5;
  EXPECT_THROW(FaultInjector(bad, util::Rng(1)), std::invalid_argument);
  FaultPlan negative;
  negative.restore_error_rate = -0.1;
  EXPECT_THROW(FaultInjector(negative, util::Rng(1)), std::invalid_argument);
  FaultPlan slow;
  slow.upload_slowdown_rate = 0.5;
  slow.upload_slowdown_factor = 0.5;  // would *speed up* uploads
  EXPECT_THROW(FaultInjector(slow, util::Rng(1)), std::invalid_argument);
  FaultPlan window;
  window.stockouts.push_back({cloud::Region::kUsCentral1, std::nullopt,
                              100.0, 50.0});  // end < start
  EXPECT_THROW(FaultInjector(window, util::Rng(1)), std::invalid_argument);
}

TEST(FaultInjector, DeterministicPerSeed) {
  const FaultPlan plan = FaultPlan::uniform(0.5);
  FaultInjector a(plan, util::Rng(99));
  FaultInjector b(plan, util::Rng(99));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.launch_error(), b.launch_error());
    EXPECT_EQ(a.upload_error(), b.upload_error());
    EXPECT_DOUBLE_EQ(a.upload_slowdown(), b.upload_slowdown());
    EXPECT_EQ(a.restore_error(), b.restore_error());
    EXPECT_EQ(a.abrupt_kill(), b.abrupt_kill());
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
  EXPECT_GT(a.injected_total(), 0u);
}

TEST(FaultInjector, StreamsAreIndependent) {
  // Draining one fault class must not shift another class's sequence.
  const FaultPlan plan = FaultPlan::uniform(0.5);
  FaultInjector a(plan, util::Rng(7));
  FaultInjector b(plan, util::Rng(7));
  for (int i = 0; i < 100; ++i) a.launch_error();  // only in `a`
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.upload_error(), b.upload_error());
    EXPECT_EQ(a.abrupt_kill(), b.abrupt_kill());
  }
}

TEST(FaultInjector, DegenerateRatesNeverAndAlwaysFire) {
  FaultInjector off(FaultPlan{}, util::Rng(1));
  FaultInjector on(FaultPlan::uniform(1.0), util::Rng(1));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(off.launch_error());
    EXPECT_TRUE(on.launch_error());
    EXPECT_DOUBLE_EQ(off.upload_slowdown(), 1.0);
    EXPECT_DOUBLE_EQ(on.upload_slowdown(), on.plan().upload_slowdown_factor);
  }
  EXPECT_EQ(off.injected_total(), 0u);
  EXPECT_EQ(on.injected(FaultKind::kLaunchError), 50u);
}

TEST(FaultInjector, StockoutWindowMatchesRegionGpuAndTime) {
  FaultPlan plan;
  plan.stockouts.push_back({cloud::Region::kUsCentral1,
                            cloud::GpuType::kK80, 100.0, 200.0});
  plan.stockouts.push_back(
      {cloud::Region::kEuropeWest1, std::nullopt, 0.0, 50.0});
  FaultInjector injector(plan, util::Rng(1));

  // (region, GPU, time) must all match; end is exclusive.
  EXPECT_TRUE(injector.stocked_out(cloud::Region::kUsCentral1,
                                   cloud::GpuType::kK80, 100.0));
  EXPECT_TRUE(injector.stocked_out(cloud::Region::kUsCentral1,
                                   cloud::GpuType::kK80, 199.9));
  EXPECT_FALSE(injector.stocked_out(cloud::Region::kUsCentral1,
                                    cloud::GpuType::kK80, 200.0));
  EXPECT_FALSE(injector.stocked_out(cloud::Region::kUsCentral1,
                                    cloud::GpuType::kK80, 99.9));
  EXPECT_FALSE(injector.stocked_out(cloud::Region::kUsCentral1,
                                    cloud::GpuType::kP100, 150.0));
  // nullopt GPU covers every type in the region.
  EXPECT_TRUE(injector.stocked_out(cloud::Region::kEuropeWest1,
                                   cloud::GpuType::kV100, 10.0));
  EXPECT_EQ(injector.injected(FaultKind::kStockout), 3u);
}

// ---------------------------------------------------------------------------
// Provider injection site.

TEST(ProviderFaults, LaunchErrorFailsRequestAfterApiRoundTrip) {
  simcore::Simulator sim;
  FaultPlan plan;
  plan.launch_error_rate = 1.0;
  FaultInjector injector(plan, util::Rng(2));
  cloud::CloudProvider provider(sim, util::Rng(3));
  provider.set_fault_injector(&injector);

  bool running = false;
  std::optional<cloud::RequestFailureReason> failure;
  double failed_at = -1.0;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_running = [&](cloud::InstanceId) { running = true; };
  callbacks.on_request_failed = [&](cloud::InstanceId,
                                    cloud::RequestFailureReason reason) {
    failure = reason;
    failed_at = sim.now();
  };
  const cloud::InstanceId id =
      provider.request_instance({}, std::move(callbacks));
  sim.run();

  EXPECT_FALSE(running);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(*failure, cloud::RequestFailureReason::kLaunchError);
  EXPECT_DOUBLE_EQ(failed_at, cloud::kRequestFailureResponseSeconds);
  EXPECT_EQ(provider.record(id).state, cloud::InstanceState::kFailed);
  EXPECT_FALSE(provider.record(id).alive());
  EXPECT_DOUBLE_EQ(provider.instance_cost(id), 0.0);  // never billed
}

TEST(ProviderFaults, StockoutDeniesTransientButNotOnDemand) {
  simcore::Simulator sim;
  FaultPlan plan;
  plan.stockouts.push_back({cloud::Region::kUsCentral1,
                            cloud::GpuType::kK80, 0.0, 1e9});
  FaultInjector injector(plan, util::Rng(4));
  cloud::CloudProvider provider(sim, util::Rng(5));
  provider.set_fault_injector(&injector);

  std::optional<cloud::RequestFailureReason> transient_failure;
  cloud::InstanceCallbacks transient_cb;
  transient_cb.on_request_failed =
      [&](cloud::InstanceId, cloud::RequestFailureReason reason) {
        transient_failure = reason;
      };
  provider.request_instance({}, std::move(transient_cb));

  bool on_demand_running = false;
  cloud::InstanceRequest on_demand;
  on_demand.transient = false;
  cloud::InstanceCallbacks on_demand_cb;
  on_demand_cb.on_running = [&](cloud::InstanceId) {
    on_demand_running = true;
  };
  on_demand_cb.on_request_failed = [&](cloud::InstanceId,
                                       cloud::RequestFailureReason) {
    FAIL() << "on-demand request must bypass the stockout";
  };
  provider.request_instance(on_demand, std::move(on_demand_cb));
  sim.run();

  ASSERT_TRUE(transient_failure.has_value());
  EXPECT_EQ(*transient_failure, cloud::RequestFailureReason::kStockout);
  EXPECT_TRUE(on_demand_running);
}

TEST(ProviderFaults, TerminateBeforeFailureResponseCancelsCallback) {
  simcore::Simulator sim;
  FaultPlan plan;
  plan.launch_error_rate = 1.0;
  FaultInjector injector(plan, util::Rng(6));
  cloud::CloudProvider provider(sim, util::Rng(7));
  provider.set_fault_injector(&injector);

  bool failed = false;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_request_failed = [&](cloud::InstanceId,
                                    cloud::RequestFailureReason) {
    failed = true;
  };
  const cloud::InstanceId id =
      provider.request_instance({}, std::move(callbacks));
  provider.terminate(id);
  sim.run();
  EXPECT_FALSE(failed);
  EXPECT_EQ(provider.record(id).state, cloud::InstanceState::kTerminated);
}

TEST(ProviderFaults, AbruptKillSkipsPreemptionNotice) {
  simcore::Simulator sim;
  FaultPlan plan;
  plan.abrupt_kill_rate = 1.0;
  FaultInjector injector(plan, util::Rng(8));
  cloud::CloudProvider provider(sim, util::Rng(9));
  provider.set_fault_injector(&injector);

  // europe-west1 K80s revoke young (Table V), so one request suffices.
  cloud::InstanceRequest request;
  request.region = cloud::Region::kEuropeWest1;
  bool noticed = false;
  bool revoked = false;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_preemption_notice = [&](cloud::InstanceId) { noticed = true; };
  callbacks.on_revoked = [&](cloud::InstanceId) { revoked = true; };
  const cloud::InstanceId id =
      provider.request_instance(request, std::move(callbacks));
  sim.run();

  ASSERT_TRUE(revoked ||
              provider.record(id).state == cloud::InstanceState::kExpired);
  if (provider.record(id).state == cloud::InstanceState::kRevoked) {
    EXPECT_TRUE(provider.record(id).abrupt_kill);
    EXPECT_FALSE(noticed);
  }
}

// ---------------------------------------------------------------------------
// Storage injection site + bytes_stored regression.

TEST(StorageFaults, BytesStoredReplacedOnOverwrite) {
  simcore::Simulator sim;
  cloud::ObjectStore store(sim, util::Rng(10));
  store.upload("ckpt", 1000, [] {});
  sim.run();
  ASSERT_EQ(store.bytes_stored(), 1000u);
  // Overwriting must replace the old size, not leak it into the total.
  store.upload("ckpt", 400, [] {});
  sim.run();
  EXPECT_EQ(store.bytes_stored(), 400u);
  EXPECT_EQ(store.blob_count(), 1u);
  store.upload("other", 50, [] {});
  sim.run();
  EXPECT_EQ(store.bytes_stored(), 450u);
}

TEST(StorageFaults, UploadErrorLeavesNoBlob) {
  simcore::Simulator sim;
  FaultPlan plan;
  plan.upload_error_rate = 1.0;
  FaultInjector injector(plan, util::Rng(11));
  cloud::ObjectStore store(sim, util::Rng(12));
  store.set_fault_injector(&injector);

  bool done = false;
  std::string error;
  const double duration =
      store.upload("ckpt", 1 << 20, [&] { done = true; },
                   [&](const std::string& what) { error = what; });
  sim.run();
  EXPECT_GT(duration, 0.0);
  EXPECT_FALSE(done);
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(store.contains("ckpt"));
  EXPECT_EQ(store.bytes_stored(), 0u);
}

TEST(StorageFaults, SlowdownScalesUploadDuration) {
  FaultPlan plan;
  plan.upload_slowdown_rate = 1.0;
  plan.upload_slowdown_factor = 3.0;
  FaultInjector injector(plan, util::Rng(13));

  simcore::Simulator sim_a;
  cloud::ObjectStore baseline(sim_a, util::Rng(14));
  simcore::Simulator sim_b;
  cloud::ObjectStore slowed(sim_b, util::Rng(14));  // same duration stream
  slowed.set_fault_injector(&injector);

  const double base = baseline.upload("k", 1 << 20, [] {});
  const double slow = slowed.upload("k", 1 << 20, [] {});
  EXPECT_NEAR(slow, 3.0 * base, 1e-9);
  sim_a.run();
  sim_b.run();
  EXPECT_TRUE(slowed.contains("k"));  // slowed, not lost
}

TEST(StorageFaults, RestoreMissingKeyReportsError) {
  simcore::Simulator sim;
  cloud::ObjectStore store(sim, util::Rng(15));
  bool done = false;
  std::string error;
  const double duration = store.restore(
      "absent", [&](std::uint64_t) { done = true; },
      [&](const std::string& what) { error = what; });
  sim.run();
  EXPECT_DOUBLE_EQ(duration, 0.0);
  EXPECT_FALSE(done);
  EXPECT_NE(error.find("absent"), std::string::npos);
}

TEST(StorageFaults, RestoreErrorAndTryRestore) {
  simcore::Simulator sim;
  FaultPlan plan;
  plan.restore_error_rate = 1.0;
  FaultInjector injector(plan, util::Rng(16));
  cloud::ObjectStore store(sim, util::Rng(17));
  store.upload("ckpt", 2048, [] {});
  sim.run();
  ASSERT_TRUE(store.contains("ckpt"));

  store.set_fault_injector(&injector);
  bool done = false;
  std::string error;
  store.restore("ckpt", [&](std::uint64_t) { done = true; },
                [&](const std::string& what) { error = what; });
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(store.try_restore("ckpt"));

  store.set_fault_injector(nullptr);
  EXPECT_TRUE(store.try_restore("ckpt"));
  EXPECT_FALSE(store.try_restore("absent"));
}

TEST(StorageFaults, TryRestoreReportsPerKeyBytes) {
  // Regression: try_restore used to report the byte count of the last
  // blob written anywhere in the store, not the requested key's.
  simcore::Simulator sim;
  cloud::ObjectStore store(sim, util::Rng(18));
  store.upload("a", 1000, [] {});
  store.upload("b", 500, [] {});
  sim.run();
  EXPECT_EQ(store.try_restore("a"), std::optional<std::uint64_t>(1000));
  EXPECT_EQ(store.try_restore("b"), std::optional<std::uint64_t>(500));

  // An overwrite replaces the key's size; the other key is untouched.
  store.upload("a", 250, [] {});
  sim.run();
  EXPECT_EQ(store.try_restore("a"), std::optional<std::uint64_t>(250));
  EXPECT_EQ(store.try_restore("b"), std::optional<std::uint64_t>(500));
}

// ---------------------------------------------------------------------------
// Resilient control plane.

RunConfig small_run(long steps, int workers) {
  RunConfig config;
  config.session.max_steps = steps;
  config.session.checkpoint_interval_steps = 100;
  config.workers = train::worker_mix(workers, 0, 0);
  return config;
}

TEST(Resilience, RetriesThroughTransientStockout) {
  simcore::Simulator sim;
  FaultPlan plan;
  // Capacity returns after 60 s: backoff alone must ride it out without
  // reaching the fallback ladder (stockouts_before_fallback below).
  plan.stockouts.push_back({cloud::Region::kUsCentral1,
                            cloud::GpuType::kK80, 0.0, 60.0});
  FaultInjector injector(plan, util::Rng(18));
  cloud::CloudProvider provider(sim, util::Rng(19));
  provider.set_fault_injector(&injector);

  RunConfig config = small_run(500, 1);
  config.resilience.stockouts_before_fallback = 100;  // never fall back
  TransientTrainingRun run(provider, nn::resnet15(), config, util::Rng(20));
  run.start();
  sim.run();

  EXPECT_TRUE(run.finished());
  EXPECT_GT(run.launch_retries(), 0);
  EXPECT_EQ(run.fallbacks_taken(), 0);
  EXPECT_EQ(run.slots_abandoned(), 0);
}

TEST(Resilience, PersistentStockoutClimbsToAlternateRegion) {
  simcore::Simulator sim;
  FaultPlan plan;
  plan.stockouts.push_back({cloud::Region::kUsCentral1,
                            cloud::GpuType::kK80, 0.0, 1e9});
  FaultInjector injector(plan, util::Rng(21));
  cloud::CloudProvider provider(sim, util::Rng(22));
  provider.set_fault_injector(&injector);

  TransientTrainingRun run(provider, nn::resnet15(), small_run(500, 1),
                           util::Rng(23));
  run.start();
  sim.run();

  EXPECT_TRUE(run.finished());
  EXPECT_GT(run.fallbacks_taken(), 0);
  bool placed_elsewhere = false;
  for (const auto& record : provider.records()) {
    if (record.state == cloud::InstanceState::kFailed) continue;
    EXPECT_NE(record.request.region, cloud::Region::kUsCentral1);
    placed_elsewhere = true;
  }
  EXPECT_TRUE(placed_elsewhere);
}

TEST(Resilience, OnDemandRungEscapesGlobalStockout) {
  simcore::Simulator sim;
  FaultPlan plan;
  // Every region's K80 capacity is gone, forever.
  for (const cloud::Region region : cloud::kAllRegions) {
    plan.stockouts.push_back({region, cloud::GpuType::kK80, 0.0, 1e9});
  }
  FaultInjector injector(plan, util::Rng(24));
  cloud::CloudProvider provider(sim, util::Rng(25));
  provider.set_fault_injector(&injector);

  RunConfig config = small_run(500, 1);
  config.resilience.allow_gpu_fallback = false;  // force the last rung
  TransientTrainingRun run(provider, nn::resnet15(), config, util::Rng(26));
  run.start();
  sim.run();

  EXPECT_TRUE(run.finished());
  EXPECT_GE(run.fallbacks_taken(), 2);  // region rung, then on-demand
  bool on_demand_used = false;
  for (const auto& record : provider.records()) {
    if (!record.request.transient &&
        record.state != cloud::InstanceState::kFailed) {
      on_demand_used = true;
    }
  }
  EXPECT_TRUE(on_demand_used);
}

TEST(Resilience, AbandonsSlotWhenEveryRungIsClosed) {
  simcore::Simulator sim;
  FaultPlan plan;
  plan.launch_error_rate = 1.0;  // nothing can ever launch
  FaultInjector injector(plan, util::Rng(27));
  cloud::CloudProvider provider(sim, util::Rng(28));
  provider.set_fault_injector(&injector);

  RunConfig config = small_run(500, 1);
  config.resilience.max_launch_attempts = 3;
  TransientTrainingRun run(provider, nn::resnet15(), config, util::Rng(29));
  run.start();
  sim.run();  // must drain without throwing

  EXPECT_FALSE(run.finished());
  EXPECT_EQ(run.slots_abandoned(), 1);
  EXPECT_EQ(run.launch_retries(), 2);  // attempts 2 and 3
  EXPECT_EQ(run.expected_worker_count(), 0u);
}

TEST(Resilience, GracefulDegradationAtTwentyPercentFaults) {
  simcore::Simulator sim;
  FaultPlan plan = FaultPlan::uniform(0.2);
  plan.stockouts.push_back({cloud::Region::kUsCentral1,
                            cloud::GpuType::kK80, 0.0, 1800.0});
  FaultInjector injector(plan, util::Rng(30));
  cloud::CloudProvider provider(sim, util::Rng(31));
  provider.set_fault_injector(&injector);
  cloud::ObjectStore store(sim, util::Rng(32));
  store.set_fault_injector(&injector);

  TransientTrainingRun run(provider, nn::resnet15(), small_run(1000, 2),
                           util::Rng(33), &store);
  run.start();
  sim.run_until(48 * 3600.0);

  EXPECT_TRUE(run.finished());
  EXPECT_GT(run.launch_retries(), 0);
  EXPECT_GT(injector.injected_total(), 0u);
}

TEST(Resilience, DeterministicUnderInjection) {
  auto run_once = [](long& steps, double& cost, int& retries,
                     std::uint64_t& injected) {
    simcore::Simulator sim;
    FaultPlan plan = FaultPlan::uniform(0.2);
    plan.stockouts.push_back({cloud::Region::kUsCentral1,
                              cloud::GpuType::kK80, 0.0, 1800.0});
    FaultInjector injector(plan, util::Rng(34));
    cloud::CloudProvider provider(sim, util::Rng(35));
    provider.set_fault_injector(&injector);
    cloud::ObjectStore store(sim, util::Rng(36));
    store.set_fault_injector(&injector);
    TransientTrainingRun run(provider, nn::resnet15(), small_run(600, 2),
                             util::Rng(37), &store);
    run.start();
    sim.run_until(48 * 3600.0);
    steps = run.completed_steps();
    cost = run.cost_so_far();
    retries = run.launch_retries();
    injected = injector.injected_total();
  };
  long steps_a, steps_b;
  double cost_a, cost_b;
  int retries_a, retries_b;
  std::uint64_t injected_a, injected_b;
  run_once(steps_a, cost_a, retries_a, injected_a);
  run_once(steps_b, cost_b, retries_b, injected_b);
  EXPECT_EQ(steps_a, steps_b);
  EXPECT_DOUBLE_EQ(cost_a, cost_b);
  EXPECT_EQ(retries_a, retries_b);
  EXPECT_EQ(injected_a, injected_b);
}

TEST(Resilience, FaultFreeRunMatchesDetachedInjector) {
  // Attaching a zero-rate injector must not perturb a fault-free run:
  // injection sites draw per-decision, never speculatively.
  auto run_once = [](bool attach, long& steps, double& cost) {
    simcore::Simulator sim;
    FaultPlan plan;  // nothing injected
    FaultInjector injector(plan, util::Rng(38));
    cloud::CloudProvider provider(sim, util::Rng(39));
    if (attach) provider.set_fault_injector(&injector);
    TransientTrainingRun run(provider, nn::resnet15(), small_run(600, 2),
                             util::Rng(40));
    run.start();
    sim.run();
    steps = run.completed_steps();
    cost = run.cost_so_far();
  };
  long steps_a, steps_b;
  double cost_a, cost_b;
  run_once(false, steps_a, cost_a);
  run_once(true, steps_b, cost_b);
  EXPECT_EQ(steps_a, steps_b);
  EXPECT_DOUBLE_EQ(cost_a, cost_b);
}

// ---------------------------------------------------------------------------
// Late/duplicate lifecycle-event hardening (satellite of the fault layer:
// the control plane must log-and-ignore, not throw).

TEST(Resilience, IgnoresLateAndDuplicateLifecycleEvents) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(41));
  TransientTrainingRun run(provider, nn::resnet15(), small_run(300, 1),
                           util::Rng(42));
  run.start();
  sim.run();
  ASSERT_TRUE(run.finished());

  // An instance id the run never placed (requested behind its back).
  const cloud::InstanceId foreign = provider.request_instance({});
  EXPECT_NO_THROW(TransientTrainingRunTestPeer::running(run, foreign));
  EXPECT_NO_THROW(TransientTrainingRunTestPeer::revoked(run, foreign));
  EXPECT_NO_THROW(TransientTrainingRunTestPeer::request_failed(run, foreign));
  // Duplicate revocation of an instance the run does know.
  EXPECT_NO_THROW(TransientTrainingRunTestPeer::revoked(run, 0));
  EXPECT_GE(run.stale_events_ignored(), 3);
  EXPECT_EQ(run.revocations_seen(), 0);  // duplicates not double-counted
}

}  // namespace
}  // namespace cmdare::core
