// Fleet layer: market curves, provider market mechanics (finite pools,
// endogenous stockouts, reclamation), scheduler policies, and FleetSim
// end-to-end dynamics (determinism, demand-driven evictions, the
// cost-optimal scheduler's edge over round-robin).
#include <gtest/gtest.h>

#include "cloud/provider.hpp"
#include "fleet/config.hpp"
#include "fleet/fleet.hpp"
#include "fleet/market.hpp"
#include "fleet/scheduler.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "util/rng.hpp"

namespace cmdare::fleet {
namespace {

// ---------------------------------------------------------------- market

TEST(FleetMarket, PriceMultiplierFollowsConvexDemandCurve) {
  FleetConfig config;
  config.price_sensitivity = 2.0;
  config.price_exponent = 2.0;
  const FleetMarket market(config);
  EXPECT_DOUBLE_EQ(market.price_multiplier(0.0), 1.0);
  EXPECT_DOUBLE_EQ(market.price_multiplier(0.5), 1.0 + 2.0 * 0.25);
  EXPECT_DOUBLE_EQ(market.price_multiplier(1.0), 3.0);
  // Utilization clamps to [0, 1] instead of extrapolating.
  EXPECT_DOUBLE_EQ(market.price_multiplier(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(market.price_multiplier(4.0), 3.0);
}

TEST(FleetMarket, SupplyDipsAtTheLocalAfternoonPeak) {
  FleetConfig config;
  config.capacity_dip = 0.25;
  const FleetMarket market(config);
  EXPECT_NEAR(market.supply_fraction(kSupplyDipPeakLocalHour), 0.75, 1e-12);
  // Twelve hours off-peak the full supply is offered.
  EXPECT_NEAR(market.supply_fraction(kSupplyDipPeakLocalHour - 12.0), 1.0,
              1e-12);
  // In between the curve stays inside (1 - dip, 1).
  const double mid = market.supply_fraction(kSupplyDipPeakLocalHour - 6.0);
  EXPECT_GT(mid, 0.75);
  EXPECT_LT(mid, 1.0);
}

TEST(FleetMarket, CapacityAtFloorsButNeverWithdrawsAPool) {
  FleetConfig config;
  config.capacity_dip = 0.5;
  const FleetMarket market(config);
  EXPECT_EQ(market.capacity_at(12, kSupplyDipPeakLocalHour), 6);
  EXPECT_EQ(market.capacity_at(12, kSupplyDipPeakLocalHour - 12.0), 12);
  // A one-slot pool dipped by half still offers its last slot.
  EXPECT_EQ(market.capacity_at(1, kSupplyDipPeakLocalHour), 1);
}

// -------------------------------------------------------- provider market

cloud::InstanceRequest pool_request() {
  cloud::InstanceRequest request;
  request.gpu = cloud::GpuType::kK80;
  request.region = cloud::Region::kUsCentral1;
  request.transient = true;
  return request;
}

TEST(ProviderMarket, FullPoolDeniesWithEndogenousStockout) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(11));
  provider.set_pool_capacity(cloud::Region::kUsCentral1,
                             cloud::GpuType::kK80, 1);
  EXPECT_EQ(provider.pool_capacity(cloud::Region::kUsCentral1,
                                   cloud::GpuType::kK80),
            1);

  const cloud::InstanceId first = provider.request_instance(pool_request());
  EXPECT_EQ(provider.live_transient_count(cloud::Region::kUsCentral1,
                                          cloud::GpuType::kK80),
            1);

  bool denied = false;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_request_failed = [&](cloud::InstanceId,
                                    cloud::RequestFailureReason reason) {
    denied = true;
    EXPECT_EQ(reason, cloud::RequestFailureReason::kStockout);
  };
  const cloud::InstanceId second =
      provider.request_instance(pool_request(), std::move(callbacks));
  sim.run_until(sim.now() + 60.0);
  EXPECT_TRUE(denied);
  EXPECT_EQ(provider.record(second).state, cloud::InstanceState::kFailed);

  // Releasing the slot reopens the pool.
  provider.terminate(first);
  EXPECT_EQ(provider.live_transient_count(cloud::Region::kUsCentral1,
                                          cloud::GpuType::kK80),
            0);
  const cloud::InstanceId third = provider.request_instance(pool_request());
  EXPECT_TRUE(provider.record(third).alive());
}

TEST(ProviderMarket, PriceIsLockedAtRequestTime) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(12));
  const double list = provider.current_transient_price(
      cloud::Region::kUsCentral1, cloud::GpuType::kK80);
  ASSERT_GT(list, 0.0);

  provider.set_price_multiplier(cloud::Region::kUsCentral1,
                                cloud::GpuType::kK80, 2.0);
  const cloud::InstanceId id = provider.request_instance(pool_request());
  EXPECT_NEAR(provider.record(id).price_per_hour, 2.0 * list, 1e-12);

  // A later market move reprices new requests, not running instances.
  provider.set_price_multiplier(cloud::Region::kUsCentral1,
                                cloud::GpuType::kK80, 5.0);
  EXPECT_NEAR(provider.current_transient_price(cloud::Region::kUsCentral1,
                                               cloud::GpuType::kK80),
              5.0 * list, 1e-12);
  EXPECT_NEAR(provider.record(id).price_per_hour, 2.0 * list, 1e-12);
}

TEST(ProviderMarket, ReclaimRevokesImmediatelyAndFreesTheSlot) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(13));
  provider.set_pool_capacity(cloud::Region::kUsCentral1,
                             cloud::GpuType::kK80, 4);
  bool revoked = false;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_revoked = [&](cloud::InstanceId) { revoked = true; };
  const cloud::InstanceId id =
      provider.request_instance(pool_request(), std::move(callbacks));
  sim.run_until(provider.record(id).startup.total() + 0.01);
  ASSERT_EQ(provider.record(id).state, cloud::InstanceState::kRunning);

  provider.reclaim(id, "reclaim");
  EXPECT_TRUE(revoked);
  EXPECT_EQ(provider.record(id).state, cloud::InstanceState::kRevoked);
  EXPECT_EQ(provider.live_transient_count(cloud::Region::kUsCentral1,
                                          cloud::GpuType::kK80),
            0);
}

TEST(ProviderMarket, HazardSwitchLeavesOnlyTheLifetimeCap) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(14));
  provider.set_hazard_revocations(false);
  const cloud::InstanceId id = provider.request_instance(pool_request());
  sim.run();
  // No hazard draw: the 24 h transient cap is the only terminator left.
  EXPECT_EQ(provider.record(id).state, cloud::InstanceState::kExpired);
  EXPECT_NEAR(provider.record(id).running_lifetime_seconds(),
              cloud::kMaxTransientLifetimeSeconds, 1.0);
}

// -------------------------------------------------------------- scheduler

PoolQuote quote(int pool, double usd_per_step, bool affordable = true) {
  PoolQuote q;
  q.pool_index = pool;
  q.free_slots = 2;
  q.usd_per_step = usd_per_step;
  q.affordable = affordable;
  return q;
}

TEST(FleetScheduler, RoundRobinRotatesAcrossPools) {
  FleetScheduler scheduler(SchedulerPolicy::kRoundRobin);
  const std::vector<PoolQuote> quotes = {quote(0, 1.0), quote(1, 1.0),
                                         quote(2, 1.0)};
  EXPECT_EQ(quotes[scheduler.place(quotes)].pool_index, 0);
  EXPECT_EQ(quotes[scheduler.place(quotes)].pool_index, 1);
  EXPECT_EQ(quotes[scheduler.place(quotes)].pool_index, 2);
  EXPECT_EQ(quotes[scheduler.place(quotes)].pool_index, 0);  // wraps
}

TEST(FleetScheduler, RoundRobinIsPriceBlind) {
  // The naive baseline ignores affordability — it places anywhere with
  // room and learns about expensive pools via price-out.
  FleetScheduler scheduler(SchedulerPolicy::kRoundRobin);
  const std::vector<PoolQuote> quotes = {quote(0, 9.0, false),
                                         quote(1, 9.0, false)};
  EXPECT_EQ(quotes[scheduler.place(quotes)].pool_index, 0);
  EXPECT_EQ(quotes[scheduler.place(quotes)].pool_index, 1);
}

TEST(FleetScheduler, CostOptimalTakesCheapestAffordableQuote) {
  FleetScheduler scheduler(SchedulerPolicy::kCostOptimal);
  const std::vector<PoolQuote> quotes = {
      quote(0, 0.5), quote(1, 0.2, /*affordable=*/false), quote(2, 0.3)};
  EXPECT_EQ(quotes[scheduler.place(quotes)].pool_index, 2);
}

TEST(FleetScheduler, CostOptimalTiesToLowestPoolAndRefusesUnaffordable) {
  FleetScheduler scheduler(SchedulerPolicy::kCostOptimal);
  const std::vector<PoolQuote> tie = {quote(3, 0.4), quote(1, 0.4)};
  EXPECT_EQ(tie[scheduler.place(tie)].pool_index, 1);
  const std::vector<PoolQuote> priced_out = {quote(0, 0.1, false),
                                             quote(1, 0.2, false)};
  EXPECT_EQ(scheduler.place(priced_out), -1);
  EXPECT_EQ(scheduler.place({}), -1);
}

TEST(FleetScheduler, WasteRatioStartsAtOneAndGrowsWithWaste) {
  obs::analyze::CostDecomposition cost;
  EXPECT_DOUBLE_EQ(waste_ratio(cost), 1.0);
  cost.useful.seconds = 3600.0;
  cost.wasted.seconds = 3600.0;
  EXPECT_DOUBLE_EQ(waste_ratio(cost), (3600.0 * 3.0) / (3600.0 * 2.0));
}

// ----------------------------------------------------------------- config

TEST(FleetConfig, EffectiveStepsScalesDrawnWorkVolume) {
  FleetConfig config;
  EXPECT_EQ(effective_steps(config, 500), 500);
  config.demand = 2.5;
  EXPECT_EQ(effective_steps(config, 500), 1250);
  config.demand = 1e-9;
  EXPECT_EQ(effective_steps(config, 500), 1);  // floored at one step
}

TEST(FleetConfig, ValidateCatchesImpossiblePopulations) {
  FleetConfig config;
  EXPECT_TRUE(validate(config).empty());
  config.min_steps = 10;
  config.max_steps = 5;
  EXPECT_FALSE(validate(config).empty());
  config = FleetConfig{};
  config.workers_per_tenant = 10;
  config.capacity_per_pool = 12;
  config.capacity_dip = 0.25;  // dipped floor = 9 < 10 workers
  EXPECT_FALSE(validate(config).empty());
}

// ---------------------------------------------------------------- FleetSim

FleetConfig small_config() {
  // Same market regime as the checked-in fleet campaign (24-slot pools,
  // two-worker tenants) scaled down to 48 tenants so the contended cells
  // still show clear market dynamics in well under a second.
  FleetConfig config;
  config.tenants = 48;
  config.workers_per_tenant = 2;
  config.min_steps = 2000;
  config.max_steps = 8000;
  config.checkpoint_interval_steps = 200;
  config.capacity_per_pool = 24;
  config.deadline_hours = 8.0;
  return config;
}

FleetStats run_fleet(const FleetConfig& config, unsigned seed,
                     double horizon_hours = 12.0) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(seed));
  const nn::CnnModel model = nn::model_by_name("resnet-15");
  FleetSim fleet(sim, provider, config, model, util::Rng(seed));
  fleet.start();
  sim.run_until(horizon_hours * 3600.0);
  return fleet.stats();
}

TEST(FleetSim, SameSeedReproducesTheFleetExactly) {
  const FleetStats a = run_fleet(small_config(), 2020);
  const FleetStats b = run_fleet(small_config(), 2020);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.completed_steps, b.completed_steps);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.evictions_reclaim, b.evictions_reclaim);
  EXPECT_EQ(a.evictions_priceout, b.evictions_priceout);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_DOUBLE_EQ(a.cost_usd, b.cost_usd);
  EXPECT_GT(a.completed_steps, 0);
  EXPECT_GT(a.placements, 0);
}

TEST(FleetSim, EvictionsAreEndogenousAndRiseWithDemand) {
  // Measured under the price-blind baseline: cost-optimal placement
  // dodges most evictions at this scale, which is the point of the
  // comparison test below.
  FleetConfig low = small_config();
  low.scheduler = SchedulerPolicy::kRoundRobin;
  low.demand = 0.25;
  FleetConfig high = low;
  high.demand = 4.0;
  const FleetStats calm = run_fleet(low, 2020);
  const FleetStats crowded = run_fleet(high, 2020);
  // No hazard draws and no fault injector: every eviction is a market
  // outcome (reclaim or price-out).
  EXPECT_EQ(calm.evictions_other, 0);
  EXPECT_EQ(crowded.evictions_other, 0);
  EXPECT_GT(crowded.evictions_total(), calm.evictions_total());
}

TEST(FleetSim, CostOptimalBeatsRoundRobinOnDollarsPerStep) {
  FleetConfig rr = small_config();
  rr.demand = 2.0;  // contended enough that placement quality matters
  rr.scheduler = SchedulerPolicy::kRoundRobin;
  FleetConfig opt = rr;
  opt.scheduler = SchedulerPolicy::kCostOptimal;
  const FleetStats baseline = run_fleet(rr, 2020);
  const FleetStats optimal = run_fleet(opt, 2020);
  ASSERT_GT(baseline.completed_steps, 0);
  ASSERT_GT(optimal.completed_steps, 0);
  EXPECT_LT(optimal.usd_per_step(), baseline.usd_per_step());
}

TEST(FleetSim, StatsAccountEveryTenantOnce) {
  const FleetStats stats = run_fleet(small_config(), 7);
  EXPECT_EQ(stats.tenants, 48);
  EXPECT_LE(stats.finished, stats.tenants);
  EXPECT_LE(stats.deadline_hits, stats.finished);
  EXPECT_GE(stats.deadline_hit_rate(), 0.0);
  EXPECT_LE(stats.deadline_hit_rate(), 1.0);
  EXPECT_GT(stats.cost_usd, 0.0);
}

}  // namespace
}  // namespace cmdare::fleet
