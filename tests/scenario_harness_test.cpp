// SimHarness golden tests: the scenario layer must reproduce the
// hand-wired pre-refactor experiments bit-for-bit. The constants and CSV
// bodies below were captured from the repo BEFORE the scenario layer
// existed (examples/resilience.cpp at seed 2020; shrunk "resilience" and
// "speed" campaigns through the original cmdare::core replicas), so any
// drift in RNG fork labels, construction order, or observation order
// fails these tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>

#include "obs/ledger.hpp"
#include "scenario/catalog.hpp"
#include "scenario/harness.hpp"
#include "scenario/sweep.hpp"

namespace cmdare::scenario {
namespace {

/// The exact scenario examples/resilience.cpp used to hand-wire: 20%
/// uniform faults plus a one-hour K80 stockout in us-central1, three
/// transient K80 workers, 2000 steps, checkpoint every 200.
ScenarioSpec resilience_demo_spec() {
  ScenarioSpec spec;
  spec.name = "resilience-demo";
  spec.kind = HarnessKind::kRun;
  spec.seed = 2020;
  spec.model = "resnet-15";
  spec.workers = {{3, cloud::GpuType::kK80, cloud::Region::kUsCentral1, true}};
  spec.max_steps = 2000;
  spec.checkpoint_interval_steps = 200;
  spec.horizon_hours = 48.0;
  spec.faults = faults::FaultPlan::uniform(0.2);
  faults::StockoutWindow stockout;
  stockout.region = cloud::Region::kUsCentral1;
  stockout.gpu = cloud::GpuType::kK80;
  stockout.start_s = 0.0;
  stockout.end_s = 3600.0;
  spec.faults.stockouts.push_back(stockout);
  return spec;
}

TEST(SimHarness, ReproducesPreRefactorResilienceDemoAtSeed2020) {
  SimHarness harness(resilience_demo_spec());
  const ScenarioResult result = harness.run();

  // Golden values captured from the pre-scenario-layer example binary.
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.completed_steps, 2000);
  EXPECT_DOUBLE_EQ(result.elapsed_seconds, 279.17601694722356);
  EXPECT_DOUBLE_EQ(result.cost_usd, 0.03357100669575535);
  EXPECT_EQ(result.launch_retries, 6);
  EXPECT_EQ(result.fallbacks, 3);
  EXPECT_EQ(result.slots_abandoned, 0);
  EXPECT_EQ(result.revocations, 0);
  EXPECT_EQ(result.abrupt_kills, 0);
  EXPECT_EQ(result.notices, 0);
  EXPECT_EQ(result.replacements, 0);
  EXPECT_EQ(result.checkpoint_blobs, 8u);
  EXPECT_EQ(result.faults_injected, 11u);
}

TEST(SimHarness, SupervisionKeysUnsetPreserveSeed2020Goldens) {
  // Route the seed-2020 spec through the text codec — which now carries
  // every supervise.* key at its default — and through a control plane
  // that links the supervision layer. With supervise.enabled unset the
  // supervisor must not exist, no extra events may be scheduled, and the
  // run must reproduce the pre-supervision goldens bit-for-bit.
  const ParseResult parsed = parse(serialize(resilience_demo_spec()));
  ASSERT_TRUE(parsed.ok());
  ASSERT_FALSE(parsed.spec.supervision.enabled);
  ASSERT_EQ(parsed.spec, resilience_demo_spec());

  SimHarness harness(parsed.spec);
  const ScenarioResult result = harness.run();
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.completed_steps, 2000);
  EXPECT_DOUBLE_EQ(result.elapsed_seconds, 279.17601694722356);
  EXPECT_DOUBLE_EQ(result.cost_usd, 0.03357100669575535);
  EXPECT_EQ(result.launch_retries, 6);
  EXPECT_EQ(result.fallbacks, 3);
  EXPECT_EQ(result.checkpoint_blobs, 8u);
  EXPECT_EQ(result.faults_injected, 11u);
  // The supervision counters stay inert and no supervisor was built.
  EXPECT_EQ(result.detections, 0);
  EXPECT_EQ(result.false_detections, 0);
  EXPECT_EQ(result.interval_retunes, 0);
  EXPECT_EQ(result.fenced_workers, 0);
  EXPECT_EQ(result.hedges_cancelled, 0);
  EXPECT_DOUBLE_EQ(result.mean_recovery_seconds, 0.0);
  EXPECT_EQ(harness.training_run()->supervisor(), nullptr);
}

TEST(SimHarness, StormElasticKeysUnsetPreserveSeed2020Goldens) {
  // Same contract for the storm/elastic layer: the codec now carries
  // every supervise.elastic.* key at its default and emits no storms
  // line for a storm-free plan, and a control plane that links the
  // breaker and elastic policy must not disturb a run that leaves them
  // off. The seed-2020 goldens stay bit-identical.
  const std::string text = serialize(resilience_demo_spec());
  EXPECT_EQ(text.find("storms"), std::string::npos);
  EXPECT_NE(text.find("supervise.elastic.enabled = false"),
            std::string::npos);
  const ParseResult parsed = parse(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_FALSE(parsed.spec.supervision.elastic.enabled);
  ASSERT_TRUE(parsed.spec.faults.storms.empty());
  ASSERT_EQ(parsed.spec, resilience_demo_spec());

  SimHarness harness(parsed.spec);
  const ScenarioResult result = harness.run();
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.completed_steps, 2000);
  EXPECT_DOUBLE_EQ(result.elapsed_seconds, 279.17601694722356);
  EXPECT_DOUBLE_EQ(result.cost_usd, 0.03357100669575535);
  EXPECT_EQ(result.launch_retries, 6);
  EXPECT_EQ(result.fallbacks, 3);
  EXPECT_EQ(result.checkpoint_blobs, 8u);
  EXPECT_EQ(result.faults_injected, 11u);
  // The storm/elastic counters stay inert.
  EXPECT_EQ(result.elastic_shrinks, 0);
  EXPECT_EQ(result.elastic_grows, 0);
  EXPECT_EQ(result.breaker_transitions, 0);
  EXPECT_EQ(result.breaker_opens, 0);
  EXPECT_EQ(result.outage_revocations, 0u);
  EXPECT_EQ(result.outage_denials, 0u);
}

TEST(SimHarness, RefusesToRunTwice) {
  SimHarness harness(resilience_demo_spec());
  harness.run();
  EXPECT_THROW(harness.run(), std::logic_error);
  EXPECT_TRUE(harness.result().finished);
}

TEST(SimHarness, RejectsInvalidSpec) {
  ScenarioSpec spec = resilience_demo_spec();
  spec.model = "no-such-model";
  EXPECT_THROW(SimHarness{spec}, std::invalid_argument);
}

TEST(SimHarness, SessionKindRunsABareTrainingSession) {
  ScenarioSpec spec;
  spec.kind = HarnessKind::kSession;
  spec.seed = 5;
  spec.workers = {{2, cloud::GpuType::kK80, cloud::Region::kUsCentral1, true}};
  spec.max_steps = 50;
  SimHarness harness(spec);
  const ScenarioResult result = harness.run();
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.completed_steps, 50);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  EXPECT_EQ(result.revocations, 0);
  ASSERT_NE(harness.session(), nullptr);
  EXPECT_EQ(harness.session()->global_step(), 50);
}

TEST(SimHarness, SyncKindRunsTheBarrierBaseline) {
  ScenarioSpec spec;
  spec.kind = HarnessKind::kSync;
  spec.seed = 6;
  spec.workers = {{2, cloud::GpuType::kK80, cloud::Region::kUsCentral1, true}};
  spec.max_steps = 20;
  SimHarness harness(spec);
  const ScenarioResult result = harness.run();
  EXPECT_TRUE(result.finished);
  EXPECT_EQ(result.completed_steps, 20);
  ASSERT_NE(harness.sync_session(), nullptr);
}

TEST(SimHarness, CloudKindExposesACallerDrivenProvider) {
  ScenarioSpec spec;
  spec.kind = HarnessKind::kCloud;
  spec.seed = 7;
  spec.max_steps = 0;
  spec.horizon_hours = 48.0;
  SimHarness harness(spec);
  harness.provider().request_instance(
      {cloud::GpuType::kK80, cloud::Region::kEuropeWest1, true});
  const ScenarioResult result = harness.run();
  // europe-west1 K80s rarely survive 24 h (Fig. 8); at this seed the
  // instance is revoked (or expired) well inside the horizon.
  EXPECT_EQ(harness.provider().instance_count(), 1u);
  EXPECT_GT(result.cost_usd, 0.0);
}

TEST(SimHarness, TelemetryToggleInstallsABundle) {
  ScenarioSpec spec = resilience_demo_spec();
  spec.telemetry = true;
  SimHarness harness(spec);
  ASSERT_NE(harness.telemetry(), nullptr);
  harness.run();
  // The run recorded fault counters into the harness-owned bundle.
  bool saw_fault_counter = false;
  for (const obs::SnapshotRow& row : harness.telemetry()->registry.snapshot(
           std::string_view("faults."))) {
    (void)row;
    saw_fault_counter = true;
  }
  EXPECT_TRUE(saw_fault_counter);
}

// --- campaign byte-identity against pre-refactor golden CSVs ----------

constexpr const char* kResilienceGoldenCsv =
    "campaign,cell,region,gpu,model,cluster_size,launch_hour,fault_rate,"
    "metric,replicas_ok,replicas_failed,count,mean,sd,cov,min,p10,p50,p90,"
    "max\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,abrupt_kills,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,checkpoints,2,0,2,3.000000,0.000000,0.000000,3.000000,3.000000,3.000000,3.000000,3.000000\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,completed,2,0,2,1.000000,0.000000,0.000000,1.000000,1.000000,1.000000,1.000000,1.000000\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,cost_usd,2,0,2,0.016091,0.000343,0.021322,0.015848,0.015897,0.016091,0.016285,0.016334\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,fallbacks,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,faults_injected,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,launch_retries,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,makespan_s,2,0,2,171.766649,3.422155,0.019923,169.346819,169.830785,171.766649,173.702512,174.186478\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,revocations,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,0,us-central1,K80,resnet-15,2,9,0.00,slots_abandoned,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,abrupt_kills,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,checkpoints,2,0,2,3.000000,0.000000,0.000000,3.000000,3.000000,3.000000,3.000000,3.000000\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,completed,2,0,2,1.000000,0.000000,0.000000,1.000000,1.000000,1.000000,1.000000,1.000000\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,cost_usd,2,0,2,0.015807,0.000176,0.011161,0.015683,0.015708,0.015807,0.015907,0.015932\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,fallbacks,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,faults_injected,2,0,2,2.000000,1.414214,0.707107,1.000000,1.200000,2.000000,2.800000,3.000000\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,launch_retries,2,0,2,0.500000,0.707107,1.414214,0.000000,0.100000,0.500000,0.900000,1.000000\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,makespan_s,2,0,2,170.372009,2.965156,0.017404,168.275328,168.694664,170.372009,172.049355,172.468691\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,revocations,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n"
    "resilience,1,us-central1,K80,resnet-15,2,9,0.20,slots_abandoned,2,0,2,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000,0.000000\n";

constexpr const char* kSpeedGoldenCsv =
    "campaign,cell,region,gpu,model,cluster_size,launch_hour,fault_rate,"
    "metric,replicas_ok,replicas_failed,count,mean,sd,cov,min,p10,p50,p90,"
    "max\n"
    "speed,0,us-central1,K80,resnet-15,1,9,0.00,step_ms,2,0,2,106.661230,0.608365,0.005704,106.231051,106.317086,106.661230,107.005373,107.091409\n"
    "speed,0,us-central1,K80,resnet-15,1,9,0.00,steps_per_s,2,0,2,9.371635,0.051786,0.005526,9.335017,9.342340,9.371635,9.400930,9.408253\n"
    "speed,1,us-central1,K80,resnet-15,4,9,0.00,step_ms,2,0,1,109.369569,0.000000,0.000000,109.369569,109.369569,109.369569,109.369569,109.369569\n"
    "speed,1,us-central1,K80,resnet-15,4,9,0.00,steps_per_s,2,0,2,29.501167,0.062684,0.002125,29.456843,29.465708,29.501167,29.536627,29.545492\n";

std::string campaign_csv(const exp::CampaignSpec& spec,
                         const exp::ReplicaFn& replica, int jobs) {
  exp::RunOptions options;
  options.jobs = jobs;
  std::ostringstream out;
  exp::run_campaign(spec, replica, options).write_csv(out);
  return out.str();
}

TEST(ScenarioCatalog, ResilienceCampaignMatchesPreRefactorCsvAtAnyJobs) {
  exp::CampaignSpec spec = campaign_by_name("resilience").spec;
  spec.replicas = 2;
  spec.fault_rates = {0.0, 0.2};
  spec.params["steps"] = 200.0;
  spec.params["checkpoint_interval_steps"] = 50.0;
  const exp::ReplicaFn replica = campaign_by_name("resilience").replica;
  EXPECT_EQ(campaign_csv(spec, replica, 1), kResilienceGoldenCsv);
  EXPECT_EQ(campaign_csv(spec, replica, 4), kResilienceGoldenCsv);
}

TEST(ScenarioCatalog, SpeedCampaignMatchesPreRefactorCsvAtAnyJobs) {
  exp::CampaignSpec spec = campaign_by_name("speed").spec;
  spec.replicas = 2;
  spec.gpus = {cloud::GpuType::kK80};
  spec.models = {"resnet-15"};
  spec.params["steps"] = 300.0;
  const exp::ReplicaFn replica = campaign_by_name("speed").replica;
  EXPECT_EQ(campaign_csv(spec, replica, 1), kSpeedGoldenCsv);
  EXPECT_EQ(campaign_csv(spec, replica, 4), kSpeedGoldenCsv);
}

TEST(ScenarioCampaign, SweepCsvByteIdenticalAcrossJobCounts) {
  ScenarioSweep sweep;
  sweep.name = "sweep-identity";
  sweep.base.kind = HarnessKind::kSession;
  sweep.base.workers = {
      {1, cloud::GpuType::kK80, cloud::Region::kUsCentral1, true}};
  sweep.base.max_steps = 40;
  sweep.axes = {{"max_steps", {"40", "80"}},
                {"model", {"resnet-15", "resnet-32"}}};
  sweep.replicas = 2;
  sweep.seed = 31;

  const auto csv_at = [&](int jobs) {
    exp::RunOptions options;
    options.jobs = jobs;
    std::ostringstream out;
    run_scenario_campaign(sweep, options).write_csv(out);
    return out.str();
  };
  const std::string serial = csv_at(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, csv_at(4));
  // Axis values appear as CSV columns.
  EXPECT_NE(serial.find("max_steps"), std::string::npos);
  EXPECT_NE(serial.find("resnet-32"), std::string::npos);
}

TEST(ScenarioCampaign, DefaultReplicaReportsStandardMetrics) {
  ScenarioSweep sweep;
  sweep.name = "default-replica";
  sweep.base = resilience_demo_spec();
  sweep.base.max_steps = 200;
  sweep.base.checkpoint_interval_steps = 50;
  sweep.replicas = 2;
  sweep.seed = 12;

  const ScenarioCampaignResult result = run_scenario_campaign(sweep);
  ASSERT_EQ(result.cells.size(), 1u);
  const exp::CellAggregate& agg = result.aggregates[0];
  EXPECT_EQ(agg.replicas_failed, 0);
  for (const char* metric :
       {"finished", "steps", "makespan_s", "cost_usd", "revocations",
        "launch_retries", "checkpoints", "faults_injected"}) {
    EXPECT_TRUE(agg.metrics.count(metric)) << metric;
  }
  EXPECT_DOUBLE_EQ(agg.metrics.at("finished").running.mean(), 1.0);
}


// --- golden run ledger (seed 2020, shrunk resilience sweep) -----------

// Captured from the campaign below at jobs=1 when the ledger layer was
// introduced. Byte-identity across job counts is the determinism
// contract of obs::Ledger + exp::run_grid's ordered fold; any drift in
// emission sites, event ordering, serialization, or merge prefixes
// fails this pin.
constexpr const char* kGoldenLedgerJsonl = &R"LEDGER(
{"at":0,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":0,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":0,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":1,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":0,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":2,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":2,"kind":"launch_failed","source":"cell0/replica0/cloud","instance":0,"detail":{"reason":"stockout"}}
{"at":2,"kind":"launch_failed","source":"cell0/replica0/cloud","instance":1,"detail":{"reason":"stockout"}}
{"at":2,"kind":"launch_failed","source":"cell0/replica0/cloud","instance":2,"detail":{"reason":"stockout"}}
{"at":5.20879349220081,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":3,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":5.238215251214538,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":4,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":6.9864206857896125,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":5,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":7.20879349220081,"kind":"launch_failed","source":"cell0/replica0/cloud","instance":3,"detail":{"reason":"stockout"}}
{"at":7.20879349220081,"kind":"fallback","source":"cell0/replica0/run","instance":3,"detail":{"stage":"region"}}
{"at":7.238215251214538,"kind":"launch_failed","source":"cell0/replica0/cloud","instance":4,"detail":{"reason":"stockout"}}
{"at":7.238215251214538,"kind":"fallback","source":"cell0/replica0/run","instance":4,"detail":{"stage":"region"}}
{"at":8.986420685789613,"kind":"launch_failed","source":"cell0/replica0/cloud","instance":5,"detail":{"reason":"stockout"}}
{"at":8.986420685789613,"kind":"fallback","source":"cell0/replica0/run","instance":5,"detail":{"stage":"region"}}
{"at":15.735197120732833,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":6,"detail":{"gpu":"K80","region":"us-east1","transient":"true"}}
{"at":16.238606043504525,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":7,"detail":{"gpu":"K80","region":"us-east1","transient":"true"}}
{"at":17.444231562578086,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":8,"detail":{"gpu":"K80","region":"us-east1","transient":"true"}}
{"at":96.75306095854029,"kind":"launch_running","source":"cell0/replica0/cloud","instance":6,"seconds":81.01786383780745,"detail":{"gpu":"K80","region":"us-east1"}}
{"at":96.75306095854029,"kind":"assign","source":"cell0/replica0/run","instance":6,"worker":0,"seconds":82.71179948257061}
{"at":100.7593479233055,"kind":"launch_running","source":"cell0/replica0/cloud","instance":8,"seconds":83.31511636072742,"detail":{"gpu":"K80","region":"us-east1"}}
{"at":100.7593479233055,"kind":"assign","source":"cell0/replica0/run","instance":8,"worker":1,"seconds":70.85269007405456}
{"at":113.8653454068315,"kind":"launch_running","source":"cell0/replica0/cloud","instance":7,"seconds":97.62673936332696,"detail":{"gpu":"K80","region":"us-east1"}}
{"at":113.8653454068315,"kind":"assign","source":"cell0/replica0/run","instance":7,"worker":2,"seconds":69.28645462396017}
{"at":148.33078041323697,"kind":"preemption_notice","source":"cell0/replica0/cloud","instance":6,"seconds":30}
{"at":171.61203799736006,"kind":"worker_join","source":"cell0/replica0/session","worker":1,"step":0,"detail":{"label":"resnet-15"}}
{"at":178.33078041323697,"kind":"revocation","source":"cell0/replica0/cloud","instance":6,"detail":{"abrupt":"false","gpu":"K80"}}
{"at":178.33078041323697,"kind":"billing","source":"cell0/replica0/cloud","instance":6,"seconds":81.57771945469668,"usd":0.0030591644795511254,"detail":{"gpu":"K80","transient":"true"}}
{"at":178.33078041323697,"kind":"launch_attempt","source":"cell0/replica0/cloud","instance":9,"detail":{"gpu":"K80","region":"us-east1","transient":"true"}}
{"at":179.4648604411109,"kind":"worker_join","source":"cell0/replica0/session","worker":0,"step":42,"detail":{"label":"resnet-15"}}
{"at":180.14747884550195,"kind":"checkpoint_begin","source":"cell0/replica0/session","worker":1,"step":50}
{"at":183.15180003079166,"kind":"worker_join","source":"cell0/replica0/session","worker":2,"step":64,"detail":{"label":"resnet-15"}}
{"at":183.69596194400265,"kind":"upload","source":"cell0/replica0/store","seconds":3.5484830985006965,"detail":{"bytes":"2909820","key":"ckpt-step-50"}}
{"at":183.69596194400265,"kind":"checkpoint_commit","source":"cell0/replica0/session","worker":1,"step":50,"seconds":3.5484830985006965}
{"at":185.43110011648156,"kind":"checkpoint_begin","source":"cell0/replica0/session","worker":1,"step":101}
{"at":188.85282896218504,"kind":"upload","source":"cell0/replica0/store","seconds":3.421728845703484,"detail":{"bytes":"2909820","key":"ckpt-step-101"}}
{"at":188.85282896218504,"kind":"checkpoint_commit","source":"cell0/replica0/session","worker":1,"step":101,"seconds":3.421728845703484}
{"at":189.12684458570797,"kind":"checkpoint_begin","source":"cell0/replica0/session","worker":1,"step":150}
{"at":192.32045877237616,"kind":"run_complete","source":"cell0/replica0/session","step":200}
{"at":192.32045877237616,"kind":"billing","source":"cell0/replica0/run","seconds":192.32045877237616,"usd":0.01015024643520874,"detail":{"component":"ps","ps_count":"1"}}
{"at":192.32045877237616,"kind":"billing","source":"cell0/replica0/cloud","instance":7,"seconds":78.45511336554466,"usd":0.002942066751207925,"detail":{"gpu":"K80","transient":"true"}}
{"at":192.32045877237616,"kind":"billing","source":"cell0/replica0/cloud","instance":8,"seconds":91.56111084907066,"usd":0.00343354165684015,"detail":{"gpu":"K80","transient":"true"}}
{"at":192.71619966990673,"kind":"upload","source":"cell0/replica0/store","seconds":3.5893550841987576,"detail":{"bytes":"2909820","key":"ckpt-step-150"}}
{"at":192.71619966990673,"kind":"checkpoint_commit","source":"cell0/replica0/session","worker":1,"step":150,"seconds":3.5893550841987576}
{"at":0,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":0,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":0,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":1,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":0,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":2,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":2,"kind":"launch_failed","source":"cell0/replica1/cloud","instance":0,"detail":{"reason":"stockout"}}
{"at":2,"kind":"launch_failed","source":"cell0/replica1/cloud","instance":1,"detail":{"reason":"stockout"}}
{"at":2,"kind":"launch_failed","source":"cell0/replica1/cloud","instance":2,"detail":{"reason":"stockout"}}
{"at":5.016265019353369,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":3,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":5.24712246528047,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":4,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":5.253007977959837,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":5,"detail":{"gpu":"K80","region":"us-central1","transient":"true"}}
{"at":7.016265019353369,"kind":"launch_failed","source":"cell0/replica1/cloud","instance":3,"detail":{"reason":"stockout"}}
{"at":7.016265019353369,"kind":"fallback","source":"cell0/replica1/run","instance":3,"detail":{"stage":"region"}}
{"at":7.24712246528047,"kind":"launch_failed","source":"cell0/replica1/cloud","instance":4,"detail":{"reason":"stockout"}}
{"at":7.24712246528047,"kind":"fallback","source":"cell0/replica1/run","instance":4,"detail":{"stage":"region"}}
{"at":7.253007977959837,"kind":"launch_failed","source":"cell0/replica1/cloud","instance":5,"detail":{"reason":"stockout"}}
{"at":7.253007977959837,"kind":"fallback","source":"cell0/replica1/run","instance":5,"detail":{"stage":"region"}}
{"at":13.727478615610014,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":6,"detail":{"gpu":"K80","region":"us-east1","transient":"true"}}
{"at":15.172790786394943,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":7,"detail":{"gpu":"K80","region":"us-east1","transient":"true"}}
{"at":16.945231496886265,"kind":"launch_attempt","source":"cell0/replica1/cloud","instance":8,"detail":{"gpu":"K80","region":"us-east1","transient":"true"}}
{"at":79.50130612880179,"kind":"launch_running","source":"cell0/replica1/cloud","instance":6,"seconds":65.77382751319178,"detail":{"gpu":"K80","region":"us-east1"}}
{"at":79.50130612880179,"kind":"assign","source":"cell0/replica1/run","instance":6,"worker":0,"seconds":77.35404472373204}
{"at":79.52388412705176,"kind":"launch_running","source":"cell0/replica1/cloud","instance":7,"seconds":64.35109334065682,"detail":{"gpu":"K80","region":"us-east1"}}
{"at":79.52388412705176,"kind":"assign","source":"cell0/replica1/run","instance":7,"worker":1,"seconds":82.92041986859729}
{"at":123.21810445971958,"kind":"launch_running","source":"cell0/replica1/cloud","instance":8,"seconds":106.27287296283332,"detail":{"gpu":"K80","region":"us-east1"}}
{"at":123.21810445971958,"kind":"assign","source":"cell0/replica1/run","instance":8,"worker":2,"seconds":74.62013939180768}
{"at":156.85535085253383,"kind":"worker_join","source":"cell0/replica1/session","worker":0,"step":0,"detail":{"label":"resnet-15"}}
{"at":162.44430399564905,"kind":"worker_join","source":"cell0/replica1/session","worker":1,"step":27,"detail":{"label":"resnet-15"}}
{"at":164.61460796391492,"kind":"checkpoint_begin","source":"cell0/replica1/session","worker":0,"step":50}
{"at":168.39434514347244,"kind":"upload","source":"cell0/replica1/store","seconds":3.7797371795575145,"detail":{"bytes":"2909820","key":"ckpt-step-50"}}
{"at":168.39434514347244,"kind":"checkpoint_commit","source":"cell0/replica1/session","worker":0,"step":50,"seconds":3.7797371795575145}
{"at":170.25680091173274,"kind":"checkpoint_begin","source":"cell0/replica1/session","worker":0,"step":100}
{"at":173.81500536547753,"kind":"upload","source":"cell0/replica1/store","seconds":3.5582044537447928,"detail":{"bytes":"2909820","key":"ckpt-step-100"}}
{"at":173.81500536547753,"kind":"checkpoint_commit","source":"cell0/replica1/session","worker":0,"step":100,"seconds":3.5582044537447928}
{"at":175.07131755075136,"kind":"checkpoint_begin","source":"cell0/replica1/session","worker":0,"step":150}
{"at":180.494746478611,"kind":"run_complete","source":"cell0/replica1/session","step":200}
{"at":180.494746478611,"kind":"billing","source":"cell0/replica1/run","seconds":180.494746478611,"usd":0.009526111619704469,"detail":{"component":"ps","ps_count":"1"}}
{"at":180.494746478611,"kind":"billing","source":"cell0/replica1/cloud","instance":6,"seconds":100.99344034980922,"usd":0.003787254013117846,"detail":{"gpu":"K80","transient":"true"}}
{"at":180.494746478611,"kind":"billing","source":"cell0/replica1/cloud","instance":7,"seconds":100.97086235155925,"usd":0.0037864073381834724,"detail":{"gpu":"K80","transient":"true"}}
{"at":180.494746478611,"kind":"billing","source":"cell0/replica1/cloud","instance":8,"seconds":57.27664201889142,"usd":0.002147874075708429,"detail":{"gpu":"K80","transient":"true"}}
{"at":185.75053757446224,"kind":"upload_failed","source":"cell0/replica1/store","seconds":10.679220023710883,"detail":{"key":"ckpt-step-150"}}
)LEDGER"[1];

std::string golden_ledger_jsonl(int jobs) {
  ScenarioSweep sweep;
  sweep.name = "ledger-golden";
  sweep.base = resilience_demo_spec();
  sweep.base.max_steps = 200;
  sweep.base.checkpoint_interval_steps = 50;
  sweep.replicas = 2;
  sweep.seed = 2020;
  exp::RunOptions options;
  options.jobs = jobs;
  options.capture_telemetry = true;
  const ScenarioCampaignResult result = run_scenario_campaign(sweep, options);
  std::ostringstream out;
  obs::write_ledger_jsonl(result.telemetry->ledger, out);
  return out.str();
}

TEST(ScenarioLedger, GoldenLedgerByteIdenticalAtAnyJobs) {
  EXPECT_EQ(golden_ledger_jsonl(1), kGoldenLedgerJsonl);
  EXPECT_EQ(golden_ledger_jsonl(4), kGoldenLedgerJsonl);
}

TEST(ScenarioLedger, GoldenLedgerRoundTripsThroughTheReader) {
  const obs::LedgerParseResult parsed =
      obs::parse_ledger_jsonl(kGoldenLedgerJsonl);
  EXPECT_TRUE(parsed.ok());
  std::ostringstream out;
  obs::write_ledger_jsonl(parsed.ledger, out);
  EXPECT_EQ(out.str(), kGoldenLedgerJsonl);
}

// --- fleet campaign goldens (seed 2020, shrunk fleet sweep) -----------

/// The catalog's fleet sweep scaled to 32 tenants / 6 h so the four
/// contended cells finish in well under a second while keeping the
/// campaign's market regime (24-slot pools, two-worker tenants).
ScenarioSweep shrunk_fleet_sweep() {
  ScenarioSweep sweep = sweep_by_name("fleet").sweep;
  sweep.name = "fleet-golden";
  sweep.base.fleet.tenants = 32;
  sweep.base.fleet.min_steps = 2000;
  sweep.base.fleet.max_steps = 8000;
  sweep.base.fleet.checkpoint_interval_steps = 200;
  sweep.base.horizon_hours = 6.0;
  sweep.axes = {{"fleet.demand", {"0.5", "2"}},
                {"fleet.scheduler", {"round-robin", "cost-optimal"}}};
  sweep.replicas = 1;
  sweep.seed = 2020;
  return sweep;
}

ScenarioCampaignResult run_fleet_sweep(int jobs, bool telemetry) {
  exp::RunOptions options;
  options.jobs = jobs;
  options.capture_telemetry = telemetry;
  return run_scenario_campaign(shrunk_fleet_sweep(), options,
                               sweep_by_name("fleet").replica);
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(FleetCampaign, GoldenCountersAtSeed2020) {
  const ScenarioCampaignResult result = run_fleet_sweep(1, false);
  ASSERT_EQ(result.cells.size(), 4u);
  const auto counter = [&](std::size_t cell, const char* metric) {
    return static_cast<long>(
        result.aggregates[cell].metrics.at(metric).running.mean());
  };
  // Cells in axis-expansion order: demand 0.5 / 2 x scheduler
  // round-robin / cost-optimal. Counters captured at introduction; any
  // drift in tenant draws, market clearing, or scheduler choices moves
  // at least one of them.
  EXPECT_EQ(counter(0, "placements"), 43);
  EXPECT_EQ(counter(0, "evictions_priceout"), 11);
  EXPECT_EQ(counter(0, "steps"), 76670);
  EXPECT_EQ(counter(0, "tenants_finished"), 32);
  EXPECT_EQ(counter(1, "placements"), 35);
  EXPECT_EQ(counter(1, "evictions_priceout"), 3);
  EXPECT_EQ(counter(1, "steps"), 90688);
  EXPECT_EQ(counter(2, "placements"), 825);
  EXPECT_EQ(counter(2, "evictions_priceout"), 793);
  EXPECT_EQ(counter(2, "steps"), 302474);
  EXPECT_EQ(counter(2, "tenants_finished"), 30);
  EXPECT_EQ(counter(3, "placements"), 38);
  EXPECT_EQ(counter(3, "evictions_priceout"), 5);
  EXPECT_EQ(counter(3, "migrations"), 1);

  // The two acceptance properties of the fleet layer, in-sweep: demand
  // drives endogenous evictions up under either scheduler, and the
  // cost-optimal scheduler is cheaper per step than round-robin at
  // every demand level.
  const auto metric = [&](std::size_t cell, const char* name) {
    return result.aggregates[cell].metrics.at(name).running.mean();
  };
  EXPECT_GT(metric(2, "evictions_total"), metric(0, "evictions_total"));
  EXPECT_GT(metric(3, "evictions_total"), metric(1, "evictions_total"));
  EXPECT_LT(metric(1, "usd_per_kstep"), metric(0, "usd_per_kstep"));
  EXPECT_LT(metric(3, "usd_per_kstep"), metric(2, "usd_per_kstep"));
}

TEST(FleetCampaign, CsvAndMergedLedgerByteIdenticalAcrossJobCounts) {
  const auto render = [](int jobs) {
    const ScenarioCampaignResult result = run_fleet_sweep(jobs, true);
    std::ostringstream csv;
    result.write_csv(csv);
    std::ostringstream ledger;
    obs::write_ledger_jsonl(result.telemetry->ledger, ledger);
    return std::pair<std::string, std::string>(csv.str(), ledger.str());
  };
  const auto [csv1, ledger1] = render(1);
  const auto [csv4, ledger4] = render(4);
  EXPECT_EQ(csv1, csv4);
  EXPECT_EQ(ledger1, ledger4);
  // Byte-pins of the jobs=1 rendering (captured at introduction): the
  // full texts are too large to inline, so pin size + FNV-1a instead.
  EXPECT_EQ(csv1.size(), 5680u);
  EXPECT_EQ(fnv1a(csv1), 3721629711922898296ull);
  EXPECT_EQ(ledger1.size(), 839130u);
  EXPECT_EQ(fnv1a(ledger1), 1843324255589098857ull);
  // Merged fleet events carry the campaign cell/replica scope prefix,
  // which is what keeps them joinable with that replica's billing rows.
  EXPECT_NE(ledger1.find("\"source\":\"cell0/replica0/fleet\""),
            std::string::npos);
  EXPECT_NE(ledger1.find("\"kind\":\"tenant_placement\""), std::string::npos);
  EXPECT_NE(ledger1.find("\"kind\":\"eviction\""), std::string::npos);
}

}  // namespace
}  // namespace cmdare::scenario
