// ScenarioSpec text codec: lossless round-trip over every field, and
// malformed input surfacing as line-anchored diagnostics, never throws.
#include <gtest/gtest.h>

#include <string>

#include "scenario/spec.hpp"
#include "scenario/sweep.hpp"

namespace cmdare::scenario {
namespace {

ScenarioSpec minimal_valid() {
  ScenarioSpec spec;
  spec.workers = {{2, cloud::GpuType::kK80, cloud::Region::kUsCentral1, true}};
  return spec;
}

/// Every field moved off its default value (both worker-group and
/// stockout lists carry two entries to exercise the comma-joined forms).
ScenarioSpec full_spec() {
  ScenarioSpec spec;
  spec.name = "full-coverage";
  spec.kind = HarnessKind::kSession;
  spec.seed = 987654321;
  spec.model = "resnet-32";
  spec.workers = {{3, cloud::GpuType::kP100, cloud::Region::kUsEast1, true},
                  {1, cloud::GpuType::kV100, cloud::Region::kEuropeWest4,
                   false}};
  spec.ps_count = 2;
  spec.max_steps = 12345;
  spec.checkpoint_interval_steps = 500;
  spec.checkpoint_max_retries = 5;
  spec.ft_mode = train::FaultToleranceMode::kVanillaTf;
  spec.ps_region = cloud::Region::kUsWest1;
  spec.auto_replace = false;
  spec.replacement_context = cloud::RequestContext::kDelayedAfterRevocation;
  spec.resilience.max_launch_attempts = 7;
  spec.resilience.backoff_base_seconds = 2.5;
  spec.resilience.backoff_multiplier = 3.0;
  spec.resilience.backoff_max_seconds = 120.25;
  spec.resilience.backoff_jitter = 0.125;
  spec.resilience.stockouts_before_fallback = 4;
  spec.resilience.allow_region_fallback = false;
  spec.resilience.allow_gpu_fallback = false;
  spec.resilience.allow_on_demand_fallback = false;
  spec.utc_start_hour = 3.7512345;
  spec.horizon_hours = 12.5;
  spec.faults.launch_error_rate = 0.01;
  spec.faults.upload_error_rate = 0.02;
  spec.faults.upload_slowdown_rate = 0.03;
  spec.faults.upload_slowdown_factor = 4.5;
  spec.faults.restore_error_rate = 0.0425;
  spec.faults.abrupt_kill_rate = 0.05;
  faults::StockoutWindow first;
  first.region = cloud::Region::kUsEast1;
  first.gpu = cloud::GpuType::kK80;
  first.start_s = 100.5;
  first.end_s = 400.75;
  faults::StockoutWindow second;
  second.region = cloud::Region::kAsiaEast1;
  second.gpu.reset();
  second.start_s = 0.0;
  second.end_s = 50.0;
  spec.faults.stockouts = {first, second};
  faults::OutageStorm storm_a;
  storm_a.region = cloud::Region::kUsEast1;
  storm_a.gpu = cloud::GpuType::kP100;
  storm_a.start_s = 250.5;
  storm_a.end_s = 900.25;
  storm_a.kill_fraction = 0.625;
  storm_a.hazard_multiplier = 3.5;
  storm_a.startup_slowdown = 2.25;
  faults::OutageStorm storm_b;
  storm_b.region = cloud::Region::kAsiaEast1;
  storm_b.gpu.reset();
  storm_b.start_s = 0.0;
  storm_b.end_s = 75.0;
  spec.faults.storms = {storm_a, storm_b};
  spec.faults.bit_rot_rate = 0.015;
  spec.faults.torn_write_rate = 0.025;
  faults::TierOutageWindow outage_a;
  outage_a.tier = cloud::StorageTier::kCold;
  outage_a.start_s = 10.5;
  outage_a.end_s = 90.25;
  faults::TierOutageWindow outage_b;
  outage_b.tier = cloud::StorageTier::kRegional;
  outage_b.start_s = 0.0;
  outage_b.end_s = 30.0;
  spec.faults.tier_outages = {outage_a, outage_b};
  spec.ckpt.enabled = true;
  spec.ckpt.delta_ratio = 0.2;
  spec.ckpt.max_delta_chain = 6;
  spec.ckpt.max_generations = 4;
  spec.store_tiers.local.latency_s = 0.025;
  spec.store_tiers.local.bandwidth_gbps = 12.5;
  spec.store_tiers.local.usd_per_gb = 0.005;
  spec.store_tiers.regional.latency_s = 1.25;
  spec.store_tiers.regional.bandwidth_gbps = 0.45;
  spec.store_tiers.regional.usd_per_gb = 0.03;
  spec.store_tiers.cold.latency_s = 6.5;
  spec.store_tiers.cold.bandwidth_gbps = 0.05;
  spec.store_tiers.cold.usd_per_gb = 0.002;
  spec.supervision.enabled = true;
  spec.supervision.heartbeat.period_s = 7.5;
  spec.supervision.heartbeat.timeout_s = 45.25;
  spec.supervision.heartbeat.jitter = 0.25;
  spec.supervision.heartbeat.phi_threshold = 8.5;
  spec.supervision.heartbeat.sweep_period_s = 5.125;
  spec.supervision.hazard.halflife_hours = 3.5;
  spec.supervision.hazard.prior_weight_hours = 12.25;
  spec.supervision.hazard.score_halflife_hours = 1.75;
  spec.supervision.checkpoint.retune_period_s = 600.5;
  spec.supervision.checkpoint.hysteresis = 0.35;
  spec.supervision.checkpoint.min_interval_steps = 75;
  spec.supervision.score_replacement = true;
  spec.supervision.hedged_replacement = true;
  spec.supervision.elastic.enabled = true;
  spec.supervision.elastic.min_workers = 2;
  spec.supervision.elastic.breaker.open_after_failures = 4;
  spec.supervision.elastic.breaker.backoff_s = 450.5;
  spec.supervision.elastic.breaker.backoff_multiplier = 3.0;
  spec.supervision.elastic.breaker.max_backoff_s = 5400.25;
  spec.supervision.elastic.grow_hysteresis_s = 240.5;
  spec.supervision.elastic.futility_threshold = 0.75;
  spec.supervision.elastic.deadline_hours = 10.5;
  spec.fleet.tenants = 48;
  spec.fleet.demand = 1.75;
  spec.fleet.workers_per_tenant = 3;
  spec.fleet.min_steps = 600;
  spec.fleet.max_steps = 4400;
  spec.fleet.checkpoint_interval_steps = 250;
  spec.fleet.checkpoint_seconds = 12.5;
  spec.fleet.restore_seconds = 42.25;
  spec.fleet.deadline_hours = 6.5;
  spec.fleet.model_mix = true;
  spec.fleet.capacity_per_pool = 20;
  spec.fleet.price_sensitivity = 1.5;
  spec.fleet.price_exponent = 3.0;
  spec.fleet.capacity_dip = 0.375;
  spec.fleet.bid_spread = 0.75;
  spec.fleet.market_period_s = 90.5;
  spec.fleet.scheduler = fleet::SchedulerPolicy::kRoundRobin;
  spec.fleet.migrate_period_s = 1200.0;
  spec.fleet.migrate_gain = 0.3;
  spec.fleet.hazard_revocations = true;
  spec.telemetry = true;
  return spec;
}

TEST(ScenarioSpec, RoundTripMinimalSpec) {
  const ScenarioSpec spec = minimal_valid();
  const ParseResult result = parse(serialize(spec));
  EXPECT_TRUE(result.ok()) << serialize(spec);
  EXPECT_EQ(result.spec, spec);
}

TEST(ScenarioSpec, RoundTripEveryField) {
  const ScenarioSpec spec = full_spec();
  const std::string text = serialize(spec);
  const ParseResult result = parse(text);
  EXPECT_TRUE(result.ok()) << text;
  EXPECT_EQ(result.spec, spec) << text;
  // And the text form itself is a fixed point.
  EXPECT_EQ(serialize(result.spec), text);
}

TEST(ScenarioSpec, RoundTripSurvivesNoisyFormatting) {
  const ParseResult result = parse(
      "# a comment line\n"
      "  name =  noisy  \n"
      "kind=session   # trailing comment\n"
      "\n"
      "workers = 2 x k80 @ us-central1\n"
      "max_steps = 10\n");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.spec.name, "noisy");
  EXPECT_EQ(result.spec.kind, HarnessKind::kSession);
  ASSERT_EQ(result.spec.workers.size(), 1u);
  EXPECT_EQ(result.spec.workers[0].count, 2);
  EXPECT_EQ(result.spec.workers[0].gpu, cloud::GpuType::kK80);
  EXPECT_EQ(result.spec.max_steps, 10);
}

TEST(ScenarioSpec, DiagnosticsCarryLineNumbers) {
  const ParseResult result = parse(
      "kind = session\n"          // 1: fine
      "this line has no equals\n"  // 2: malformed
      "fault_rate = 2.0\n"         // 3: out of range
      "mystery_key = 1\n"          // 4: unknown key
      "max_steps = 10\n");         // 5: fine
  ASSERT_EQ(result.diagnostics.size(), 3u);
  EXPECT_EQ(result.diagnostics[0].line, 2);
  EXPECT_NE(result.diagnostics[0].message.find("key = value"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[1].line, 3);
  EXPECT_NE(result.diagnostics[1].message.find("fault_rate"),
            std::string::npos);
  EXPECT_EQ(result.diagnostics[2].line, 4);
  EXPECT_NE(result.diagnostics[2].message.find("mystery_key"),
            std::string::npos);
  // Lines that did parse still landed in the spec.
  EXPECT_EQ(result.spec.kind, HarnessKind::kSession);
  EXPECT_EQ(result.spec.max_steps, 10);
}

TEST(ScenarioSpec, SemanticValidationReportsAtLineZero) {
  // kind=run with no workers: per-line parsing succeeds, validate()
  // appends a file-level diagnostic.
  const ParseResult result = parse("kind = run\nmax_steps = 10\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.diagnostics[0].line, 0);
  EXPECT_NE(result.diagnostics[0].message.find("worker"), std::string::npos);
}

TEST(ScenarioSpec, SetFieldRejectsOutOfRangeValues) {
  ScenarioSpec spec = minimal_valid();
  EXPECT_TRUE(set_field(spec, "utc_start_hour", "24").has_value());
  EXPECT_TRUE(set_field(spec, "backoff_jitter", "1.5").has_value());
  EXPECT_TRUE(set_field(spec, "ps_count", "0").has_value());
  EXPECT_TRUE(set_field(spec, "seed", "-3").has_value());
  EXPECT_TRUE(set_field(spec, "launch_error_rate", "nope").has_value());
  EXPECT_TRUE(set_field(spec, "kind", "banana").has_value());
  EXPECT_TRUE(set_field(spec, "supervise.enabled", "maybe").has_value());
  EXPECT_TRUE(set_field(spec, "supervise.heartbeat_period_s", "0").has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.heartbeat_timeout_s", "nan").has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.heartbeat_jitter", "1.5").has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.hazard_halflife_hours", "inf").has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.retune_hysteresis", "-0.1").has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.min_interval_steps", "0").has_value());
  // None of the rejected values touched the spec.
  EXPECT_EQ(spec, minimal_valid());
}

TEST(ScenarioSpec, ValidateFlagsDegenerateSupervision) {
  // A timeout at or below the heartbeat period would flag every healthy
  // worker on the first sweep; validate() rejects it before a harness
  // ever builds the detector.
  ScenarioSpec spec = minimal_valid();
  spec.supervision.enabled = true;
  spec.supervision.heartbeat.period_s = 30.0;
  spec.supervision.heartbeat.timeout_s = 20.0;
  const auto errors = validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("heartbeat_timeout"), std::string::npos);
  // Disabled supervision skips the checks entirely (the degenerate
  // values are inert).
  spec.supervision.enabled = false;
  EXPECT_TRUE(validate(spec).empty());
}

TEST(ScenarioSpec, WorkerAndStockoutAppendForms) {
  ScenarioSpec spec = minimal_valid();
  EXPECT_FALSE(set_field(spec, "worker", "1 x V100 @ us-west1").has_value());
  ASSERT_EQ(spec.workers.size(), 2u);
  EXPECT_EQ(spec.workers[1].gpu, cloud::GpuType::kV100);
  EXPECT_EQ(spec.workers[1].region, cloud::Region::kUsWest1);

  EXPECT_FALSE(
      set_field(spec, "stockout", "us-central1/* @ 10..20").has_value());
  ASSERT_EQ(spec.faults.stockouts.size(), 1u);
  EXPECT_FALSE(spec.faults.stockouts[0].gpu.has_value());
  EXPECT_DOUBLE_EQ(spec.faults.stockouts[0].start_s, 10.0);
  EXPECT_DOUBLE_EQ(spec.faults.stockouts[0].end_s, 20.0);
}

TEST(ScenarioSpec, StormAppendFormParsesScopeAndModifiers) {
  ScenarioSpec spec = minimal_valid();
  // Wildcard scope, modifiers at their defaults.
  EXPECT_FALSE(set_field(spec, "storm", "us-central1/* @ 10..20").has_value());
  ASSERT_EQ(spec.faults.storms.size(), 1u);
  EXPECT_FALSE(spec.faults.storms[0].gpu.has_value());
  EXPECT_DOUBLE_EQ(spec.faults.storms[0].start_s, 10.0);
  EXPECT_DOUBLE_EQ(spec.faults.storms[0].end_s, 20.0);
  EXPECT_DOUBLE_EQ(spec.faults.storms[0].kill_fraction, 1.0);
  EXPECT_DOUBLE_EQ(spec.faults.storms[0].hazard_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(spec.faults.storms[0].startup_slowdown, 1.0);
  // Explicit scope and modifiers, any order.
  EXPECT_FALSE(set_field(spec, "storm",
                         "us-east1/P100 @ 100..400 slow=2 kill=0.5 hazard=3")
                   .has_value());
  ASSERT_EQ(spec.faults.storms.size(), 2u);
  EXPECT_EQ(spec.faults.storms[1].gpu, cloud::GpuType::kP100);
  EXPECT_DOUBLE_EQ(spec.faults.storms[1].kill_fraction, 0.5);
  EXPECT_DOUBLE_EQ(spec.faults.storms[1].hazard_multiplier, 3.0);
  EXPECT_DOUBLE_EQ(spec.faults.storms[1].startup_slowdown, 2.0);
}

TEST(ScenarioSpec, StormAndElasticKeysRejectOutOfRangeValues) {
  ScenarioSpec spec = minimal_valid();
  EXPECT_TRUE(set_field(spec, "storm", "garbage").has_value());
  EXPECT_TRUE(set_field(spec, "storm", "us-central1/K80 @ 10..5").has_value());
  EXPECT_TRUE(set_field(spec, "storm", "us-central1/K80 @ -5..10").has_value());
  EXPECT_TRUE(
      set_field(spec, "storm", "us-central1/K80 @ 0..10 kill=1.5").has_value());
  EXPECT_TRUE(set_field(spec, "storm", "us-central1/K80 @ 0..10 hazard=0.5")
                  .has_value());
  EXPECT_TRUE(
      set_field(spec, "storm", "us-central1/K80 @ 0..10 slow=0").has_value());
  EXPECT_TRUE(set_field(spec, "storm", "nowhere/K80 @ 0..10").has_value());
  EXPECT_TRUE(set_field(spec, "supervise.elastic.enabled", "maybe").has_value());
  EXPECT_TRUE(set_field(spec, "supervise.elastic.min_workers", "0").has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.elastic.breaker_failures", "0").has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.elastic.breaker_backoff_s", "0").has_value());
  EXPECT_TRUE(set_field(spec, "supervise.elastic.breaker_backoff_multiplier",
                        "0.5")
                  .has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.elastic.grow_hysteresis_s", "-1").has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.elastic.futility_threshold", "nan")
          .has_value());
  EXPECT_TRUE(
      set_field(spec, "supervise.elastic.deadline_hours", "-2").has_value());
  // None of the rejected values touched the spec.
  EXPECT_EQ(spec, minimal_valid());
}

TEST(ScenarioSpec, CkptKeysParseAndRoundTrip) {
  ScenarioSpec spec = minimal_valid();
  EXPECT_FALSE(set_field(spec, "ckpt.enabled", "true").has_value());
  EXPECT_FALSE(set_field(spec, "ckpt.delta_ratio", "0.25").has_value());
  EXPECT_FALSE(set_field(spec, "ckpt.max_delta_chain", "6").has_value());
  EXPECT_FALSE(set_field(spec, "ckpt.max_generations", "5").has_value());
  EXPECT_FALSE(set_field(spec, "ckpt.bit_rot_rate", "0.1").has_value());
  EXPECT_FALSE(set_field(spec, "ckpt.torn_write_rate", "0.05").has_value());
  EXPECT_TRUE(spec.ckpt.enabled);
  EXPECT_DOUBLE_EQ(spec.ckpt.delta_ratio, 0.25);
  EXPECT_EQ(spec.ckpt.max_delta_chain, 6);
  EXPECT_EQ(spec.ckpt.max_generations, 5);
  EXPECT_DOUBLE_EQ(spec.faults.bit_rot_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.faults.torn_write_rate, 0.05);

  // The appendable outage form, comma-split like stockouts.
  EXPECT_FALSE(set_field(spec, "ckpt.tier_outages",
                         "regional @ 100..200, cold @ 0..50")
                   .has_value());
  ASSERT_EQ(spec.faults.tier_outages.size(), 2u);
  EXPECT_EQ(spec.faults.tier_outages[0].tier, cloud::StorageTier::kRegional);
  EXPECT_DOUBLE_EQ(spec.faults.tier_outages[0].start_s, 100.0);
  EXPECT_DOUBLE_EQ(spec.faults.tier_outages[0].end_s, 200.0);
  EXPECT_EQ(spec.faults.tier_outages[1].tier, cloud::StorageTier::kCold);
  EXPECT_FALSE(
      set_field(spec, "ckpt.tier_outage", "local @ 5..6").has_value());
  ASSERT_EQ(spec.faults.tier_outages.size(), 3u);
  EXPECT_EQ(spec.faults.tier_outages[2].tier, cloud::StorageTier::kLocal);

  // Per-tier store model keys.
  EXPECT_FALSE(
      set_field(spec, "store.tier.local.latency_s", "0.125").has_value());
  EXPECT_FALSE(set_field(spec, "store.tier.regional.bandwidth_gbps", "0.5")
                   .has_value());
  EXPECT_FALSE(
      set_field(spec, "store.tier.cold.usd_per_gb", "0.001").has_value());
  EXPECT_DOUBLE_EQ(spec.store_tiers.local.latency_s, 0.125);
  EXPECT_DOUBLE_EQ(spec.store_tiers.regional.bandwidth_gbps, 0.5);
  EXPECT_DOUBLE_EQ(spec.store_tiers.cold.usd_per_gb, 0.001);

  // Everything survives serialize -> parse.
  const ParseResult result = parse(serialize(spec));
  EXPECT_TRUE(result.ok()) << serialize(spec);
  EXPECT_EQ(result.spec, spec);
}

TEST(ScenarioSpec, CkptKeysRejectOutOfRangeValues) {
  ScenarioSpec spec = minimal_valid();
  EXPECT_TRUE(set_field(spec, "ckpt.enabled", "maybe").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.delta_ratio", "0").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.delta_ratio", "1.5").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.delta_ratio", "nan").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.max_delta_chain", "0").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.max_generations", "0").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.bit_rot_rate", "1.5").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.bit_rot_rate", "-0.1").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.torn_write_rate", "2").has_value());
  EXPECT_TRUE(set_field(spec, "ckpt.tier_outages", "garbage").has_value());
  EXPECT_TRUE(
      set_field(spec, "ckpt.tier_outages", "orbital @ 0..10").has_value());
  EXPECT_TRUE(
      set_field(spec, "ckpt.tier_outages", "regional @ 10..5").has_value());
  EXPECT_TRUE(
      set_field(spec, "ckpt.tier_outages", "regional @ -5..5").has_value());
  EXPECT_TRUE(
      set_field(spec, "store.tier.local.latency_s", "-1").has_value());
  EXPECT_TRUE(
      set_field(spec, "store.tier.local.bandwidth_gbps", "0").has_value());
  EXPECT_TRUE(
      set_field(spec, "store.tier.regional.usd_per_gb", "-0.5").has_value());
  EXPECT_TRUE(
      set_field(spec, "store.tier.orbital.latency_s", "1").has_value());
  EXPECT_TRUE(set_field(spec, "store.tier.local.volume", "1").has_value());
  // None of the rejected values touched the spec.
  EXPECT_EQ(spec, minimal_valid());
}

TEST(ScenarioSpec, ValidateFlagsDegenerateCkptConfig) {
  ScenarioSpec spec = minimal_valid();
  spec.ckpt.enabled = true;
  spec.ckpt.delta_ratio = 2.0;
  auto errors = validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("delta_ratio"), std::string::npos);

  spec = minimal_valid();
  spec.ckpt.enabled = true;
  spec.store_tiers.cold.bandwidth_gbps = 0.0;
  errors = validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("bandwidth"), std::string::npos);

  spec = minimal_valid();
  faults::TierOutageWindow window;
  window.start_s = 50.0;
  window.end_s = 10.0;  // end < start
  spec.faults.tier_outages.push_back(window);
  errors = validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("tier outage"), std::string::npos);
}

TEST(ScenarioSpec, ValidateFlagsElasticWithoutSupervision) {
  ScenarioSpec spec = minimal_valid();
  spec.supervision.enabled = false;
  spec.supervision.elastic.enabled = true;
  const auto errors = validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("elastic"), std::string::npos);

  // Breaker backoff cap below the base backoff is rejected too.
  spec.supervision.enabled = true;
  spec.supervision.elastic.breaker.backoff_s = 600.0;
  spec.supervision.elastic.breaker.max_backoff_s = 60.0;
  const auto breaker_errors = validate(spec);
  ASSERT_FALSE(breaker_errors.empty());
  EXPECT_NE(breaker_errors[0].find("max_backoff"), std::string::npos);
}

TEST(ScenarioSpec, FaultRateShorthandSetsEveryRateKeepsWindows) {
  ScenarioSpec spec = minimal_valid();
  ASSERT_FALSE(
      set_field(spec, "stockout", "us-central1/K80 @ 0..100").has_value());
  ASSERT_FALSE(set_field(spec, "fault_rate", "0.25").has_value());
  EXPECT_DOUBLE_EQ(spec.faults.launch_error_rate, 0.25);
  EXPECT_DOUBLE_EQ(spec.faults.upload_error_rate, 0.25);
  EXPECT_DOUBLE_EQ(spec.faults.upload_slowdown_rate, 0.25);
  EXPECT_DOUBLE_EQ(spec.faults.restore_error_rate, 0.25);
  EXPECT_DOUBLE_EQ(spec.faults.abrupt_kill_rate, 0.25);
  EXPECT_EQ(spec.faults.stockouts.size(), 1u);  // shorthand keeps windows
  EXPECT_DOUBLE_EQ(spec.faults.upload_slowdown_factor, 3.0);  // untouched
}

TEST(ScenarioSpec, ValidateFlagsUnknownModel) {
  ScenarioSpec spec = minimal_valid();
  spec.model = "alexnet-9000";
  const auto errors = validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("alexnet-9000"), std::string::npos);
}

TEST(ScenarioSpec, ValidateFlagsNonTerminatingRun) {
  ScenarioSpec spec = minimal_valid();
  spec.max_steps = 0;
  spec.horizon_hours = 0.0;
  EXPECT_FALSE(validate(spec).empty());
  spec.horizon_hours = 1.0;  // a deadline makes it terminate
  EXPECT_TRUE(validate(spec).empty());
}

TEST(ScenarioSpec, FleetKindNeedsNoWorkersAndSelfTerminates) {
  // A bare fleet spec is valid: tenants drive their own placement (no
  // worker groups) and the fleet drains on its own (no horizon needed).
  const ParseResult result = parse("kind = fleet\n");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.spec.kind, HarnessKind::kFleet);
  EXPECT_TRUE(validate(result.spec).empty());
}

TEST(ScenarioSpec, FleetKeysRejectOutOfRangeValues) {
  ScenarioSpec spec = minimal_valid();
  EXPECT_TRUE(set_field(spec, "fleet.tenants", "0").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.demand", "0").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.demand", "65").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.workers_per_tenant", "0").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.min_steps", "0").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.checkpoint_seconds", "-1").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.deadline_hours", "0").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.model_mix", "maybe").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.capacity_per_pool", "0").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.capacity_dip", "1.5").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.market_period_s", "0").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.scheduler", "cheapest").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.migrate_gain", "1.5").has_value());
  EXPECT_TRUE(set_field(spec, "fleet.hazard_revocations", "2").has_value());
  // None of the rejected values touched the spec.
  EXPECT_EQ(spec, minimal_valid());
}

TEST(ScenarioSpec, ValidateFlagsFleetSemantics) {
  ScenarioSpec spec = minimal_valid();
  spec.kind = HarnessKind::kFleet;
  spec.fleet.min_steps = 100;
  spec.fleet.max_steps = 50;
  auto errors = validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("min_steps"), std::string::npos);

  spec.fleet = fleet::FleetConfig{};
  // 10 workers can never fit a 12-slot pool dipped to 9 slots.
  spec.fleet.workers_per_tenant = 10;
  spec.fleet.capacity_per_pool = 12;
  spec.fleet.capacity_dip = 0.25;
  errors = validate(spec);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("workers_per_tenant"), std::string::npos);
  // The same config under a non-fleet kind is inert.
  spec.kind = HarnessKind::kSession;
  EXPECT_TRUE(validate(spec).empty());
}

TEST(ScenarioSpec, FleetSchedulerPolicyNamesRoundTrip) {
  fleet::SchedulerPolicy policy = fleet::SchedulerPolicy::kCostOptimal;
  EXPECT_TRUE(fleet::scheduler_policy_from_name("round-robin", &policy));
  EXPECT_EQ(policy, fleet::SchedulerPolicy::kRoundRobin);
  EXPECT_STREQ(fleet::scheduler_policy_name(policy), "round-robin");
  EXPECT_TRUE(fleet::scheduler_policy_from_name("cost-optimal", &policy));
  EXPECT_EQ(policy, fleet::SchedulerPolicy::kCostOptimal);
  EXPECT_STREQ(fleet::scheduler_policy_name(policy), "cost-optimal");
  EXPECT_FALSE(fleet::scheduler_policy_from_name("greedy", &policy));
}

TEST(ScenarioSweep, ExpandTakesCartesianProductFirstAxisSlowest) {
  ScenarioSweep sweep;
  sweep.base = minimal_valid();
  sweep.axes = {{"fault_rate", {"0", "0.1"}}, {"max_steps", {"10", "20", "30"}}};
  const auto cells = expand(sweep);
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_DOUBLE_EQ(cells[0].spec.faults.launch_error_rate, 0.0);
  EXPECT_EQ(cells[0].spec.max_steps, 10);
  EXPECT_EQ(cells[2].spec.max_steps, 30);
  EXPECT_DOUBLE_EQ(cells[3].spec.faults.launch_error_rate, 0.1);
  EXPECT_EQ(cells[3].spec.max_steps, 10);
  EXPECT_EQ(cells[5].label(), "fault_rate=0.1 max_steps=30");
}

TEST(ScenarioSweep, ExpandRejectsBadAxisValues) {
  ScenarioSweep sweep;
  sweep.base = minimal_valid();
  sweep.axes = {{"fault_rate", {"0", "2.0"}}};
  EXPECT_THROW(expand(sweep), std::invalid_argument);
  sweep.axes = {{"no_such_key", {"1"}}};
  EXPECT_THROW(expand(sweep), std::invalid_argument);
  sweep.axes = {{"fault_rate", {}}};
  EXPECT_THROW(expand(sweep), std::invalid_argument);
}

}  // namespace
}  // namespace cmdare::scenario
