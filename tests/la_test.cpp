#include <gtest/gtest.h>

#include <cmath>

#include "la/eigen.hpp"
#include "la/matrix.hpp"
#include "la/solve.hpp"
#include "util/rng.hpp"

namespace cmdare::la {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, BoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(m(0, 2), std::out_of_range);
}

TEST(Matrix, IdentityAndMultiply) {
  const Matrix a = {{1, 2}, {3, 4}};
  const Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ((a * i).max_abs_diff(a), 0.0);
  const Matrix b = {{5, 6}, {7, 8}};
  const Matrix ab = a * b;
  EXPECT_DOUBLE_EQ(ab(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3) * Matrix(2, 3), std::invalid_argument);
}

TEST(Matrix, AddSubtractScale) {
  Matrix a = {{1, 2}, {3, 4}};
  const Matrix b = {{1, 1}, {1, 1}};
  EXPECT_DOUBLE_EQ((a + b)(1, 1), 5.0);
  EXPECT_DOUBLE_EQ((a - b)(0, 0), 0.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 6.0);
  EXPECT_DOUBLE_EQ((0.5 * a)(1, 0), 3.0);
}

TEST(Matrix, Transpose) {
  const Matrix a = {{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, ColumnAndToVector) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const Matrix c = Matrix::column(v);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_EQ(c.to_vector(), v);
  EXPECT_THROW(Matrix(2, 2).to_vector(), std::logic_error);
}

TEST(Matrix, FromRowsValidatesSize) {
  const std::vector<double> d = {1, 2, 3};
  EXPECT_THROW(Matrix::from_rows(2, 2, d), std::invalid_argument);
  const Matrix m = Matrix::from_rows(1, 3, d);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
}

TEST(Solve, GaussianKnownSystem) {
  const Matrix a = {{2, 1}, {1, 3}};
  const Matrix b = Matrix::column(std::vector<double>{5.0, 10.0});
  const Matrix x = solve_gaussian(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-12);
}

TEST(Solve, GaussianNeedsPivoting) {
  // Zero on the diagonal forces a row swap.
  const Matrix a = {{0, 1}, {1, 0}};
  const Matrix b = Matrix::column(std::vector<double>{2.0, 3.0});
  const Matrix x = solve_gaussian(a, b);
  EXPECT_NEAR(x(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(Solve, GaussianSingularThrows) {
  const Matrix a = {{1, 2}, {2, 4}};
  const Matrix b = Matrix::column(std::vector<double>{1.0, 2.0});
  EXPECT_THROW(solve_gaussian(a, b), std::runtime_error);
}

TEST(Solve, CholeskyMatchesGaussianOnSpd) {
  const Matrix a = {{4, 2}, {2, 3}};
  const Matrix b = Matrix::column(std::vector<double>{6.0, 5.0});
  const Matrix x1 = solve_cholesky(a, b);
  const Matrix x2 = solve_gaussian(a, b);
  EXPECT_LT(x1.max_abs_diff(x2), 1e-10);
}

TEST(Solve, CholeskyFactorReconstructs) {
  const Matrix a = {{25, 15, -5}, {15, 18, 0}, {-5, 0, 11}};
  const Matrix l = cholesky_factor(a);
  EXPECT_LT((l * l.transposed()).max_abs_diff(a), 1e-10);
  EXPECT_DOUBLE_EQ(l(0, 0), 5.0);  // classic example
}

TEST(Solve, CholeskyRejectsNonSpd) {
  const Matrix a = {{1, 2}, {2, 1}};  // indefinite
  EXPECT_THROW(cholesky_factor(a), std::runtime_error);
}

TEST(Solve, InverseTimesOriginalIsIdentity) {
  const Matrix a = {{3, 1}, {2, 5}};
  const Matrix inv = inverse(a);
  EXPECT_LT((a * inv).max_abs_diff(Matrix::identity(2)), 1e-10);
}

TEST(Solve, RandomSpdSystemsHaveSmallResidual) {
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.uniform_index(6);
    Matrix g(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.normal();
    }
    Matrix a = g.transposed() * g;
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.5;  // ensure SPD
    Matrix b(n, 1);
    for (std::size_t i = 0; i < n; ++i) b(i, 0) = rng.normal();

    const Matrix x = solve_cholesky(a, b);
    EXPECT_LT((a * x).max_abs_diff(b), 1e-8);
  }
}

TEST(Eigen, DiagonalMatrix) {
  const Matrix a = {{3, 0}, {0, 1}};
  const auto eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(Eigen, KnownSymmetricMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a = {{2, 1}, {1, 2}};
  const auto eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(Eigen, VectorsAreOrthonormal) {
  util::Rng rng(13);
  Matrix g(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) g(i, j) = rng.normal();
  }
  const Matrix a = g.transposed() * g;
  const auto eig = eigen_symmetric(a);
  const Matrix vtv = eig.vectors.transposed() * eig.vectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(4)), 1e-8);
}

TEST(Eigen, ReconstructsMatrix) {
  const Matrix a = {{4, 1, 0}, {1, 3, 1}, {0, 1, 2}};
  const auto eig = eigen_symmetric(a);
  Matrix d(3, 3);
  for (std::size_t i = 0; i < 3; ++i) d(i, i) = eig.values[i];
  const Matrix rebuilt = eig.vectors * d * eig.vectors.transposed();
  EXPECT_LT(rebuilt.max_abs_diff(a), 1e-8);
}

TEST(Eigen, ValuesSortedDescending) {
  util::Rng rng(19);
  Matrix g(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) g(i, j) = rng.normal();
  }
  const auto eig = eigen_symmetric(g.transposed() * g);
  for (std::size_t i = 1; i < eig.values.size(); ++i) {
    EXPECT_GE(eig.values[i - 1], eig.values[i]);
  }
}

TEST(Eigen, RejectsAsymmetric) {
  const Matrix a = {{1, 2}, {3, 4}};
  EXPECT_THROW(eigen_symmetric(a), std::invalid_argument);
  EXPECT_THROW(eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace cmdare::la
