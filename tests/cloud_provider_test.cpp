#include <gtest/gtest.h>

#include "cloud/provider.hpp"
#include "cloud/storage.hpp"
#include "simcore/simulator.hpp"

namespace cmdare::cloud {
namespace {

InstanceRequest k80_request(bool transient = true) {
  InstanceRequest request;
  request.gpu = GpuType::kK80;
  request.region = Region::kUsCentral1;
  request.transient = transient;
  return request;
}

TEST(Provider, InstanceWalksLifecycleStages) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(1));
  bool running = false;
  InstanceCallbacks callbacks;
  callbacks.on_running = [&](InstanceId) { running = true; };
  const InstanceId id =
      provider.request_instance(k80_request(), std::move(callbacks));

  EXPECT_EQ(provider.record(id).state, InstanceState::kProvisioning);
  const StartupBreakdown& startup = provider.record(id).startup;
  sim.run_until(startup.provisioning_s + 0.01);
  EXPECT_EQ(provider.record(id).state, InstanceState::kStaging);
  sim.run_until(startup.provisioning_s + startup.staging_s + 0.01);
  EXPECT_EQ(provider.record(id).state, InstanceState::kRunning);
  sim.run_until(startup.total() + 0.01);
  EXPECT_TRUE(running);
  EXPECT_NEAR(provider.record(id).running_at, startup.total(), 1e-9);
}

TEST(Provider, TransientInstanceEndsWithin24Hours) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(2));
  bool revoked_fired = false;
  InstanceCallbacks callbacks;
  callbacks.on_revoked = [&](InstanceId) { revoked_fired = true; };
  const InstanceId id =
      provider.request_instance(k80_request(), std::move(callbacks));
  sim.run();

  const InstanceRecord& record = provider.record(id);
  EXPECT_TRUE(record.state == InstanceState::kRevoked ||
              record.state == InstanceState::kExpired);
  EXPECT_TRUE(revoked_fired);
  EXPECT_LE(record.running_lifetime_seconds(),
            kMaxTransientLifetimeSeconds + 1.0);
}

TEST(Provider, OnDemandInstanceIsNeverRevoked) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(3));
  const InstanceId id = provider.request_instance(k80_request(false));
  sim.run();  // only lifecycle events; no revocation scheduled
  EXPECT_EQ(provider.record(id).state, InstanceState::kRunning);
  EXPECT_DOUBLE_EQ(sim.now(), provider.record(id).startup.total());
}

TEST(Provider, PreemptionNoticeLeadsRevocationBy30Seconds) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(4));
  double notice_at = -1.0, revoked_at = -1.0;
  InstanceCallbacks callbacks;
  callbacks.on_preemption_notice = [&](InstanceId) { notice_at = sim.now(); };
  callbacks.on_revoked = [&](InstanceId) { revoked_at = sim.now(); };
  provider.request_instance(k80_request(), std::move(callbacks));
  sim.run();
  ASSERT_GE(revoked_at, 0.0);
  if (notice_at >= 0.0) {  // notice skipped only for sub-30s lifetimes
    EXPECT_NEAR(revoked_at - notice_at, kPreemptionNoticeSeconds, 1e-6);
  }
}

TEST(Provider, TerminateCancelsFutureRevocation) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(5));
  bool revoked_fired = false;
  InstanceCallbacks callbacks;
  callbacks.on_revoked = [&](InstanceId) { revoked_fired = true; };
  const InstanceId id =
      provider.request_instance(k80_request(), std::move(callbacks));
  sim.schedule_at(600.0, [&] { provider.terminate(id); });
  sim.run();
  EXPECT_EQ(provider.record(id).state, InstanceState::kTerminated);
  EXPECT_FALSE(revoked_fired);
  EXPECT_DOUBLE_EQ(provider.record(id).ended_at, 600.0);
}

TEST(Provider, TerminateDuringProvisioningIsSafe) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(6));
  bool running = false;
  InstanceCallbacks callbacks;
  callbacks.on_running = [&](InstanceId) { running = true; };
  const InstanceId id =
      provider.request_instance(k80_request(), std::move(callbacks));
  sim.schedule_at(1.0, [&] { provider.terminate(id); });
  sim.run();
  EXPECT_EQ(provider.record(id).state, InstanceState::kTerminated);
  EXPECT_FALSE(running);
}

TEST(Provider, RejectsUnofferedTransientCombination) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(7));
  InstanceRequest request;
  request.gpu = GpuType::kV100;
  request.region = Region::kUsEast1;  // N/A in Table V
  request.transient = true;
  EXPECT_THROW(provider.request_instance(request), std::invalid_argument);
  // The same combination on-demand is fine.
  request.transient = false;
  EXPECT_NO_THROW(provider.request_instance(request));
}

TEST(Provider, CostAccruesOnlyWhileRunning) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(8));
  const InstanceId id = provider.request_instance(k80_request(false));
  EXPECT_DOUBLE_EQ(provider.instance_cost(id), 0.0);
  const double startup = provider.record(id).startup.total();
  sim.run_until(startup + 3600.0);  // one running hour
  EXPECT_NEAR(provider.instance_cost(id),
              gpu_spec(GpuType::kK80).on_demand_price, 1e-6);
  provider.terminate(id);
  sim.run_until(startup + 7200.0);
  EXPECT_NEAR(provider.instance_cost(id),
              gpu_spec(GpuType::kK80).on_demand_price, 1e-6);  // frozen
}

TEST(Provider, TransientCostUsesDiscountedRate) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(9));
  const InstanceId id = provider.request_instance(k80_request(true));
  const double startup = provider.record(id).startup.total();
  sim.run_until(startup + 3600.0);
  const InstanceRecord& record = provider.record(id);
  if (record.state == InstanceState::kRunning) {
    EXPECT_NEAR(provider.instance_cost(id),
                gpu_spec(GpuType::kK80).transient_price, 1e-6);
  }
  EXPECT_GE(provider.total_cost(), provider.instance_cost(id));
}

TEST(Provider, RecordLookupValidation) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(10));
  EXPECT_THROW(provider.record(0), std::out_of_range);
  EXPECT_THROW(provider.terminate(3), std::out_of_range);
}

TEST(Provider, LocalHourTracksSimTime) {
  simcore::Simulator sim;
  CloudProvider provider(sim, util::Rng(11), /*campaign_start_utc_hour=*/15.0);
  EXPECT_DOUBLE_EQ(provider.local_hour_now(Region::kUsCentral1), 9.0);
  sim.run_until(2.0 * 3600.0);
  EXPECT_DOUBLE_EQ(provider.local_hour_now(Region::kUsCentral1), 11.0);
}

TEST(ObjectStore, UploadBecomesDurableAfterDelay) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(12));
  bool done = false;
  const double duration =
      store.upload("ckpt-1", 10 * 1000 * 1000, [&] { done = true; });
  EXPECT_GT(duration, 0.0);
  EXPECT_FALSE(store.contains("ckpt-1"));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(store.contains("ckpt-1"));
  EXPECT_EQ(store.blob_size("ckpt-1"), 10u * 1000 * 1000);
  EXPECT_EQ(store.blob_count(), 1u);
  EXPECT_EQ(store.bytes_stored(), 10u * 1000 * 1000);
}

TEST(ObjectStore, OverwriteKeepsSingleBlob) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(13));
  store.upload("k", 100, nullptr);
  sim.run();  // first write durable before the overwrite starts
  store.upload("k", 200, nullptr);
  sim.run();
  EXPECT_EQ(store.blob_count(), 1u);
  EXPECT_EQ(store.blob_size("k"), 200u);
}

TEST(ObjectStore, ValidatesKey) {
  simcore::Simulator sim;
  ObjectStore store(sim, util::Rng(14));
  EXPECT_THROW(store.upload("", 1, nullptr), std::invalid_argument);
  EXPECT_THROW(store.blob_size("missing"), std::out_of_range);
}

}  // namespace
}  // namespace cmdare::cloud
