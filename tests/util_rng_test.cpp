#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace cmdare::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int matches = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++matches;
  }
  EXPECT_LT(matches, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng parent(7);
  Rng a = parent.fork("stream");
  Rng b = Rng(7).fork("stream");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForksWithDifferentNamesAreIndependent) {
  Rng parent(7);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int matches = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++matches;
  }
  EXPECT_LT(matches, 2);
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.fork("x");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, IndexForkIsDeterministic) {
  Rng parent(7);
  Rng a = parent.fork(std::uint64_t{4});
  Rng b = Rng(7).fork(std::uint64_t{4});
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, IndexForkDoesNotAdvanceParent) {
  Rng a(9);
  Rng b(9);
  (void)a.fork(std::uint64_t{12});
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, IndexForksAreMutuallyIndependent) {
  // Adjacent and distant indices, plus the same index from a different
  // parent, must all give unrelated streams.
  const Rng parent(7);
  std::vector<Rng> streams = {parent.fork(std::uint64_t{0}),
                              parent.fork(std::uint64_t{1}),
                              parent.fork(std::uint64_t{2}),
                              parent.fork(std::uint64_t{1} << 40),
                              Rng(8).fork(std::uint64_t{0})};
  for (std::size_t i = 0; i < streams.size(); ++i) {
    for (std::size_t j = i + 1; j < streams.size(); ++j) {
      Rng a = streams[i];  // copies; originals stay fresh
      Rng b = streams[j];
      int matches = 0;
      for (int k = 0; k < 100; ++k) {
        if (a.next_u64() == b.next_u64()) ++matches;
      }
      EXPECT_LT(matches, 2) << "streams " << i << " and " << j;
    }
  }
}

TEST(Rng, IndexForkChainsCompose) {
  // The campaign engine derives replica streams as
  // root.fork(cell).fork(replica); chains must be reproducible and
  // order-sensitive.
  Rng a = Rng(42).fork(std::uint64_t{3}).fork(std::uint64_t{5});
  Rng b = Rng(42).fork(std::uint64_t{3}).fork(std::uint64_t{5});
  Rng swapped = Rng(42).fork(std::uint64_t{5}).fork(std::uint64_t{3});
  EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c = Rng(42).fork(std::uint64_t{3}).fork(std::uint64_t{5});
  EXPECT_NE(c.next_u64(), swapped.next_u64());
}

TEST(Rng, IndexForkPinnedValues) {
  // Regression pins for the derived streams. These constants are part of
  // the compatibility contract: campaign results are reproducible across
  // releases and platforms only while fork(index) maps the same (state,
  // index) to the same child stream. Do not update them casually — any
  // change silently reshuffles every archived campaign.
  const Rng parent(7);
  EXPECT_EQ(parent.fork(std::uint64_t{0}).next_u64(),
            5384897853936221197ULL);
  EXPECT_EQ(parent.fork(std::uint64_t{1}).next_u64(),
            14028774968485547903ULL);
  EXPECT_EQ(parent.fork(std::uint64_t{2}).next_u64(),
            623180778139798470ULL);
  EXPECT_EQ(parent.fork(~std::uint64_t{0}).next_u64(),
            2029163858660589411ULL);
  Rng second = parent.fork(std::uint64_t{0});
  (void)second.next_u64();
  EXPECT_EQ(second.next_u64(), 168025807149836313ULL);
  EXPECT_EQ(Rng(42).fork(std::uint64_t{3}).fork(std::uint64_t{5}).next_u64(),
            13030459907268816049ULL);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(29);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeSd) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, LognormalMeanCvMatchesParameters) {
  Rng rng(31);
  const int n = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.lognormal_mean_cv(5.0, 0.2);
    EXPECT_GT(v, 0.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var) / mean, 0.2, 0.01);
}

TEST(Rng, LognormalZeroCvIsDeterministic) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(3.0, 0.0), 3.0);
}

TEST(Rng, LognormalRejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(rng.lognormal_mean_cv(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(rng.lognormal_mean_cv(1.0, -0.1), std::invalid_argument);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(41);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(43);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, PermutationContainsAllIndices) {
  Rng rng(53);
  const auto p = rng.permutation(100);
  std::set<std::size_t> unique(p.begin(), p.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(59);
  const auto p = rng.permutation(50);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 10u);
}

// --- Batch APIs: pinned stream equivalence -------------------------------
//
// fill_u64 / fill_uniform / fork_batch are *defined* as stream-equivalent
// to their scalar counterparts; callers batch draws on that basis, so a
// divergence here would silently change every seeded experiment that uses
// a batched path.

TEST(Rng, FillU64MatchesScalarStream) {
  Rng batched(2020);
  Rng scalar(2020);
  std::uint64_t out[257];
  batched.fill_u64(out, 257);
  for (std::size_t i = 0; i < 257; ++i) {
    EXPECT_EQ(out[i], scalar.next_u64()) << "draw " << i;
  }
  // States converge again: the next draws after the batch agree too.
  EXPECT_EQ(batched.next_u64(), scalar.next_u64());
}

TEST(Rng, FillUniformMatchesScalarStream) {
  Rng batched(7);
  Rng scalar(7);
  double out[100];
  batched.fill_uniform(out, 100);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], scalar.uniform()) << "draw " << i;
  }
  EXPECT_EQ(batched.uniform(), scalar.uniform());
}

TEST(Rng, FillZeroLengthIsANoOp) {
  Rng batched(11);
  Rng scalar(11);
  batched.fill_u64(nullptr, 0);
  batched.fill_uniform(nullptr, 0);
  EXPECT_EQ(batched.next_u64(), scalar.next_u64());
}

TEST(Rng, ForkBatchMatchesForkLoop) {
  const Rng parent(99);
  const auto streams = parent.fork_batch(3, 16);
  ASSERT_EQ(streams.size(), 16u);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    Rng batched = streams[i];
    Rng looped = parent.fork(static_cast<std::uint64_t>(3 + i));
    for (int d = 0; d < 8; ++d) {
      EXPECT_EQ(batched.next_u64(), looped.next_u64())
          << "stream " << i << " draw " << d;
    }
  }
}

TEST(Rng, ForkBatchDoesNotAdvanceParent) {
  Rng a(123);
  Rng b(123);
  (void)a.fork_batch(0, 32);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}
}  // namespace
}  // namespace cmdare::util
