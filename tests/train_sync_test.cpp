#include <gtest/gtest.h>

#include "cloud/calibration.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "train/session.hpp"
#include "train/sync_session.hpp"

namespace cmdare::train {
namespace {

WorkerSpec worker(cloud::GpuType gpu) {
  WorkerSpec spec;
  spec.gpu = gpu;
  spec.label = cloud::gpu_name(gpu);
  return spec;
}

TEST(SyncSession, SingleWorkerStepIsComputePlusService) {
  simcore::Simulator sim;
  SyncTrainingSession session(sim, nn::resnet32(), 1, 2000, util::Rng(1));
  session.add_worker(worker(cloud::GpuType::kK80));
  session.start();
  sim.run();
  EXPECT_TRUE(session.finished());
  // compute ~219.3 ms + PS service ~23.5 ms => ~4.1 steps/s.
  const double expected =
      1.0 / (0.2193 + cloud::ps_update_service_seconds(nn::resnet32(), 1));
  EXPECT_NEAR(session.steps_per_second(200, 2000), expected,
              expected * 0.03);
}

TEST(SyncSession, BarrierGatedBySlowestWorker) {
  simcore::Simulator sim;
  SyncTrainingSession session(sim, nn::resnet32(), 1, 1500, util::Rng(2));
  session.add_worker(worker(cloud::GpuType::kK80));   // ~219 ms
  session.add_worker(worker(cloud::GpuType::kV100));  // ~64 ms
  session.start();
  sim.run();
  // Round time ~ max(219, 64) + service: the V100 is wasted.
  const double speed = session.steps_per_second(200, 1500);
  EXPECT_NEAR(speed, 1.0 / (0.2193 + 0.0235), 0.3);
  EXPECT_NEAR(session.worker_batches_per_second(200, 1500), 2.0 * speed,
              1e-9);
}

TEST(SyncSession, AllWorkersStepInLockstep) {
  simcore::Simulator sim;
  SyncTrainingSession session(sim, nn::resnet15(), 1, 500, util::Rng(3));
  const WorkerId a = session.add_worker(worker(cloud::GpuType::kK80));
  const WorkerId b = session.add_worker(worker(cloud::GpuType::kV100));
  session.start();
  sim.run();
  // Every worker computed exactly max_steps batches.
  EXPECT_EQ(session.trace().worker_step_count(a), 500u);
  EXPECT_EQ(session.trace().worker_step_count(b), 500u);
}

TEST(SyncSession, RevocationMidRoundReleasesBarrier) {
  simcore::Simulator sim;
  SyncTrainingSession session(sim, nn::resnet32(), 1, 2000, util::Rng(4));
  const WorkerId slow = session.add_worker(worker(cloud::GpuType::kK80));
  session.add_worker(worker(cloud::GpuType::kV100));
  session.start();
  // Revoke the K80 early: the cluster should speed up to V100 pace.
  sim.schedule_at(30.0, [&] { session.revoke_worker(slow); });
  sim.run();
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.active_worker_count(), 1u);
  const double late_speed = session.steps_per_second(1500, 2000);
  EXPECT_GT(late_speed, 1.0 / (0.064 + 0.03) * 0.8);  // near V100 pace
}

TEST(SyncSession, RevokingLastStragglerDoesNotDeadlock) {
  simcore::Simulator sim;
  SyncTrainingSession session(sim, nn::resnet32(), 1, 100, util::Rng(5));
  const WorkerId slow = session.add_worker(worker(cloud::GpuType::kK80));
  session.add_worker(worker(cloud::GpuType::kV100));
  session.start();
  // Mid-round: V100 likely finished its batch, K80 still computing. The
  // revocation must release the barrier, not hang the session.
  sim.schedule_at(0.1, [&] { session.revoke_worker(slow); });
  sim.run();
  EXPECT_TRUE(session.finished());
}

TEST(SyncSession, SyncSlowerThanAsyncOnHeterogeneousCluster) {
  // The Section II design claim, as a testable invariant.
  simcore::Simulator sync_sim;
  SyncTrainingSession sync(sync_sim, nn::resnet32(), 1, 1500, util::Rng(6));
  for (const auto& w : worker_mix(2, 1, 1)) sync.add_worker(w);
  sync.start();
  sync_sim.run();
  const double sync_batches = sync.worker_batches_per_second(200, 1500);

  simcore::Simulator async_sim;
  SessionConfig config;
  config.max_steps = 6000;
  TrainingSession async(async_sim, nn::resnet32(), config, util::Rng(7));
  for (const auto& w : worker_mix(2, 1, 1)) async.add_worker(w);
  async_sim.run();
  const double async_batches = async.trace().mean_speed(200, 6000);

  EXPECT_GT(async_batches, 1.5 * sync_batches);
}

TEST(SyncSession, ValidatesUsage) {
  simcore::Simulator sim;
  EXPECT_THROW(SyncTrainingSession(sim, nn::resnet15(), 0, 10, util::Rng(8)),
               std::invalid_argument);
  EXPECT_THROW(SyncTrainingSession(sim, nn::resnet15(), 1, 0, util::Rng(8)),
               std::invalid_argument);
  SyncTrainingSession session(sim, nn::resnet15(), 1, 10, util::Rng(8));
  EXPECT_THROW(session.start(), std::logic_error);  // no workers
  session.add_worker(worker(cloud::GpuType::kK80));
  session.start();
  EXPECT_THROW(session.start(), std::logic_error);  // double start
  EXPECT_THROW(session.revoke_worker(9), std::out_of_range);
}

TEST(SyncSession, CompletionCallbackFires) {
  simcore::Simulator sim;
  SyncTrainingSession session(sim, nn::resnet15(), 2, 50, util::Rng(9));
  session.add_worker(worker(cloud::GpuType::kV100));
  int completions = 0;
  session.on_complete = [&] { ++completions; };
  session.start();
  sim.run();
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(session.global_step(), 50);
}

}  // namespace
}  // namespace cmdare::train
