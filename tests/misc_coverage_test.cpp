// Coverage for small corners not exercised elsewhere: billing across
// controller restarts, state/name helpers, and layer descriptions.
#include <gtest/gtest.h>

#include "cloud/provider.hpp"
#include "cmdare/resource_manager.hpp"
#include "nn/layer.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"

namespace cmdare {
namespace {

TEST(MiscCoverage, InstanceStateNames) {
  using cloud::InstanceState;
  EXPECT_STREQ(cloud::instance_state_name(InstanceState::kProvisioning),
               "PROVISIONING");
  EXPECT_STREQ(cloud::instance_state_name(InstanceState::kStaging),
               "STAGING");
  EXPECT_STREQ(cloud::instance_state_name(InstanceState::kRunning),
               "RUNNING");
  EXPECT_STREQ(cloud::instance_state_name(InstanceState::kTerminated),
               "TERMINATED");
  EXPECT_STREQ(cloud::instance_state_name(InstanceState::kRevoked),
               "REVOKED");
  EXPECT_STREQ(cloud::instance_state_name(InstanceState::kExpired),
               "EXPIRED");
}

TEST(MiscCoverage, ArchitectureNames) {
  EXPECT_STREQ(nn::architecture_name(nn::Architecture::kResNet), "resnet");
  EXPECT_STREQ(nn::architecture_name(nn::Architecture::kShakeShake),
               "shake-shake");
  EXPECT_STREQ(nn::architecture_name(nn::Architecture::kCustom), "custom");
}

TEST(MiscCoverage, LayerDescriptionsForAllKinds) {
  EXPECT_EQ(nn::describe(nn::Layer(nn::BatchNorm{16, 8, 8})),
            "batchnorm 16 @8x8");
  EXPECT_EQ(nn::describe(nn::Layer(nn::Pool{16, 8, 8, 8, 8})),
            "pool8 @8x8");
  EXPECT_EQ(nn::describe(nn::Layer(nn::Elementwise{16, 8, 8, 1})),
            "elementwise @8x8");
}

TEST(MiscCoverage, RunBillsParameterServersAcrossRestart) {
  // The PS bill must cover both segments — one PS before the restart, two
  // after — not just the final configuration.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(1));
  core::RunConfig config;
  config.session.max_steps = 40000;
  config.workers = train::worker_mix(0, 4, 0);
  core::TransientTrainingRun run(provider, nn::resnet32(), config,
                                 util::Rng(2));
  run.start();
  sim.schedule_at(400.0, [&] { run.restart_with_ps_count(2); });
  sim.run();
  ASSERT_TRUE(run.finished());

  // Reconstruct the expected PS bill from the timeline: 1 PS for the
  // first 400 s, 2 PS afterwards.
  const double elapsed = run.elapsed_seconds();
  const double expected_ps_cost =
      core::kPsHourlyCost * (400.0 + 2.0 * (elapsed - 400.0)) / 3600.0;
  double worker_cost = 0.0;
  for (const auto& record : provider.records()) {
    worker_cost += provider.instance_cost(record.id);
  }
  EXPECT_NEAR(run.cost_so_far() - worker_cost, expected_ps_cost,
              expected_ps_cost * 0.02);
}

TEST(MiscCoverage, RunProfilerAccumulatesAcrossRestart) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(3));
  core::RunConfig config;
  config.session.max_steps = 20000;
  config.workers = train::worker_mix(0, 4, 0);
  core::TransientTrainingRun run(provider, nn::resnet32(), config,
                                 util::Rng(4));
  run.start();
  std::size_t samples_at_restart = 0;
  sim.schedule_at(400.0, [&] {
    samples_at_restart = run.profiler().samples().size();
    run.restart_with_ps_count(2);
  });
  sim.run();
  EXPECT_GT(samples_at_restart, 0u);
  EXPECT_GT(run.profiler().samples().size(), samples_at_restart);
}

TEST(MiscCoverage, HaltedSessionIgnoresFurtherWork) {
  simcore::Simulator sim;
  train::SessionConfig config;
  train::TrainingSession session(sim, nn::resnet15(), config, util::Rng(5));
  session.add_worker(train::worker_mix(1, 0, 0)[0]);
  sim.run_until(30.0);
  const long steps = session.global_step();
  EXPECT_GT(steps, 0);
  session.halt();
  EXPECT_TRUE(session.finished());
  sim.run_until(60.0);
  EXPECT_EQ(session.global_step(), steps);
  // Adding workers after a halt is a no-op for progress.
  session.add_worker(train::worker_mix(1, 0, 0)[0]);
  sim.run_until(90.0);
  EXPECT_EQ(session.global_step(), steps);
}

TEST(MiscCoverage, ExpiredInstanceCountsAsRevokedCallback) {
  // The 24h cap fires the same on_revoked callback but with state
  // kExpired, which Table V's harness must distinguish.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(6));
  // us-west1 K80s survive to the cap ~77% of the time; find one.
  bool saw_expired = false;
  for (int i = 0; i < 20 && !saw_expired; ++i) {
    cloud::InstanceRequest request;
    request.gpu = cloud::GpuType::kK80;
    request.region = cloud::Region::kUsWest1;
    const auto id = provider.request_instance(request);
    sim.run();
    if (provider.record(id).state == cloud::InstanceState::kExpired) {
      saw_expired = true;
      EXPECT_NEAR(provider.record(id).running_lifetime_seconds(),
                  cloud::kMaxTransientLifetimeSeconds, 1.0);
    }
  }
  EXPECT_TRUE(saw_expired);
}

}  // namespace
}  // namespace cmdare
