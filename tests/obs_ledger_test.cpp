// Run-ledger tests: JSONL codec round-trips, deterministic campaign
// merges, the obs::analyze fold (recovery timelines + Eq. 4 cost
// decomposition), and the cost identity
//   useful + wasted + overhead + idle == billed
// on real scenario runs. The identity is the load-bearing guarantee: a
// cost decomposition that loses or double-counts seconds silently
// corrupts every downstream $/step figure.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/analyze.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "scenario/harness.hpp"
#include "scenario/sweep.hpp"

namespace cmdare::obs {
namespace {

LedgerEvent make_event(LedgerEventKind kind, double at,
                       const std::string& source, long long instance = -1,
                       long long worker = -1, double seconds = 0.0,
                       double usd = 0.0, LabelSet detail = {}) {
  LedgerEvent event;
  event.kind = kind;
  event.at = at;
  event.source = source;
  event.instance = instance;
  event.worker = worker;
  event.seconds = seconds;
  event.usd = usd;
  event.detail = std::move(detail);
  return event;
}

TEST(LedgerCodec, KindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(LedgerEventKind::kBilling); ++k) {
    const auto kind = static_cast<LedgerEventKind>(k);
    const std::string_view name = ledger_event_kind_name(kind);
    EXPECT_FALSE(name.empty());
    const auto back = ledger_event_kind_from_name(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(ledger_event_kind_from_name("no_such_kind").has_value());
}

TEST(LedgerCodec, JsonlRoundTripIsTheIdentity) {
  Ledger ledger;
  ledger.record(make_event(LedgerEventKind::kLaunchAttempt, 0.0, "cloud", 1,
                           -1, 0.0, 0.0, {{"gpu", "k80"}, {"region", "us"}}));
  ledger.record(make_event(LedgerEventKind::kLaunchRunning, 42.5, "cloud", 1));
  LedgerEvent with_step =
      make_event(LedgerEventKind::kCheckpointCommit, 100.25, "session", -1, 2,
                 7.5, 0.0, {{"key", "ckpt/a b\"c\\d"}});
  with_step.step = 400;
  ledger.record(with_step);
  ledger.record(make_event(LedgerEventKind::kBilling, 279.17601694722356,
                           "cloud", 3, -1, 123.456, 0.03357100669575535,
                           {{"transient", "true"}}));

  std::ostringstream out;
  write_ledger_jsonl(ledger, out);
  const std::string serial = out.str();

  const LedgerParseResult parsed = parse_ledger_jsonl(serial);
  ASSERT_TRUE(parsed.ok()) << (parsed.errors.empty() ? "" : parsed.errors[0]);
  ASSERT_EQ(parsed.ledger.size(), ledger.size());
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    const LedgerEvent& a = ledger.events()[i];
    const LedgerEvent& b = parsed.ledger.events()[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.at, b.at) << i;
    EXPECT_EQ(a.source, b.source) << i;
    EXPECT_EQ(a.instance, b.instance) << i;
    EXPECT_EQ(a.worker, b.worker) << i;
    EXPECT_EQ(a.step, b.step) << i;
    EXPECT_EQ(a.seconds, b.seconds) << i;
    EXPECT_EQ(a.usd, b.usd) << i;
    EXPECT_EQ(a.detail, b.detail) << i;
  }

  // Re-serialization reproduces the exact bytes (canonical key order,
  // omitted defaults, shortest-round-trip doubles).
  std::ostringstream again;
  write_ledger_jsonl(parsed.ledger, again);
  EXPECT_EQ(again.str(), serial);
}

TEST(LedgerCodec, DefaultFieldsAreOmitted) {
  LedgerEvent event;
  event.kind = LedgerEventKind::kRunComplete;
  event.at = 10.0;
  event.source = "session";
  const std::string line = serialize_ledger_event(event);
  EXPECT_EQ(line.find("instance"), std::string::npos) << line;
  EXPECT_EQ(line.find("worker"), std::string::npos) << line;
  EXPECT_EQ(line.find("step"), std::string::npos) << line;
  EXPECT_EQ(line.find("seconds"), std::string::npos) << line;
  EXPECT_EQ(line.find("usd"), std::string::npos) << line;
  EXPECT_EQ(line.find("detail"), std::string::npos) << line;
}

TEST(LedgerCodec, MalformedLinesBecomeDiagnosticsNotThrows) {
  const std::string text =
      serialize_ledger_event(
          make_event(LedgerEventKind::kRevocation, 5.0, "cloud", 9)) +
      "\n"
      "{not json\n"
      "\n"  // blank lines are ignored
      "{\"at\":1,\"kind\":\"no_such_kind\",\"source\":\"x\"}\n"
      "[1,2,3]\n" +
      serialize_ledger_event(
          make_event(LedgerEventKind::kExpiry, 6.0, "cloud", 10)) +
      "\n";
  const LedgerParseResult parsed = parse_ledger_jsonl(text);
  EXPECT_EQ(parsed.ledger.size(), 2u);
  EXPECT_EQ(parsed.errors.size(), 3u);
  for (const std::string& error : parsed.errors) {
    EXPECT_EQ(error.find("line "), 0u) << error;
  }
}

TEST(LedgerMerge, PrependsSourcePrefix) {
  Ledger a;
  a.record(make_event(LedgerEventKind::kRevocation, 1.0, "cloud", 1));
  Ledger b;
  b.record(make_event(LedgerEventKind::kRevocation, 2.0, "cloud", 1));
  Ledger merged;
  merged.merge(a, "replica0/");
  merged.merge(b, "replica1/");
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.events()[0].source, "replica0/cloud");
  EXPECT_EQ(merged.events()[1].source, "replica1/cloud");
}

// --- analyzer on a hand-built ledger ----------------------------------

/// One synthetic run: instance 1 starts, checkpoints once, dies; the
/// supervisor detects the death; instance 2 replaces it and catches up.
Ledger synthetic_recovery_ledger() {
  Ledger ledger;
  ledger.record(make_event(LedgerEventKind::kLaunchAttempt, 0.0, "cloud", 1));
  ledger.record(
      make_event(LedgerEventKind::kLaunchRunning, 5.0, "cloud", 1, -1, 5.0));
  // Worker 0 binds to instance 1 with a 60 s environment-setup delay.
  ledger.record(
      make_event(LedgerEventKind::kAssign, 5.0, "run", 1, 0, 60.0));
  // A 10 s checkpoint committed by worker 0 ends at t=90.
  ledger.record(make_event(LedgerEventKind::kCheckpointCommit, 90.0,
                           "session", -1, 0, 10.0));
  ledger.record(make_event(LedgerEventKind::kRevocation, 100.0, "cloud", 1));
  ledger.record(
      make_event(LedgerEventKind::kDetection, 110.0, "supervisor", 1, -1,
                 10.0));
  ledger.record(
      make_event(LedgerEventKind::kLaunchAttempt, 110.0, "cloud", 2));
  ledger.record(
      make_event(LedgerEventKind::kLaunchRunning, 140.0, "cloud", 2, -1,
                 30.0));
  ledger.record(
      make_event(LedgerEventKind::kAssign, 140.0, "run", 2, 0, 60.0));
  ledger.record(make_event(LedgerEventKind::kCatchupComplete, 140.0, "run", 2,
                           0, 100.0, 0.0, {{"replaces", "1"}}));
  // Billing: instance 1 billed [0, 100], instance 2 billed [140, 300].
  ledger.record(make_event(LedgerEventKind::kBilling, 100.0, "cloud", 1, -1,
                           100.0, 0.10));
  ledger.record(make_event(LedgerEventKind::kBilling, 300.0, "cloud", 2, -1,
                           160.0, 0.16));
  // Parameter-server billing is useful by convention.
  ledger.record(make_event(LedgerEventKind::kBilling, 300.0, "run", -1, -1,
                           300.0, 0.05, {{"component", "ps"}}));
  return ledger;
}

TEST(LedgerAnalyze, RecoveryTimelineFromSyntheticRun) {
  const analyze::LedgerAnalysis analysis =
      analyze::analyze_ledger(synthetic_recovery_ledger());

  ASSERT_EQ(analysis.recovery.incidents.size(), 1u);
  const analyze::RecoveryIncident& incident = analysis.recovery.incidents[0];
  EXPECT_EQ(incident.dead_instance, 1);
  EXPECT_EQ(incident.replacement_instance, 2);
  // catchup_complete fires at RUNNING (t=140); the worker rejoins after
  // its 60 s join delay, so the outage is [100, 200].
  EXPECT_DOUBLE_EQ(incident.rejoined_at, 200.0);
  EXPECT_DOUBLE_EQ(incident.started_at, 100.0);
  EXPECT_DOUBLE_EQ(incident.total_s, 100.0);
  EXPECT_DOUBLE_EQ(incident.detection_s, 10.0);   // death -> verdict
  EXPECT_DOUBLE_EQ(incident.request_s, 0.0);      // verdict -> attempt
  EXPECT_DOUBLE_EQ(incident.startup_s, 30.0);     // attempt -> RUNNING
  EXPECT_DOUBLE_EQ(incident.catchup_s, 60.0);     // RUNNING -> rejoined
  EXPECT_EQ(analysis.recovery.unmatched_deaths, 0u);
  EXPECT_EQ(analysis.recovery.total.count, 1u);
  EXPECT_DOUBLE_EQ(analysis.recovery.total.mean, 100.0);

  EXPECT_EQ(analysis.counts.launches, 2u);
  EXPECT_EQ(analysis.counts.revocations, 1u);
  EXPECT_EQ(analysis.counts.detections, 1u);
  EXPECT_EQ(analysis.counts.checkpoints, 1u);
  EXPECT_EQ(analysis.counts.scopes, 1u);
}

TEST(LedgerAnalyze, CostBucketsPartitionEveryBilledSecond) {
  const analyze::LedgerAnalysis analysis =
      analyze::analyze_ledger(synthetic_recovery_ledger());
  const analyze::CostDecomposition& cost = analysis.cost;

  // Instance 1, window [0,100]: 60 s join-delay idle + 10 s checkpoint
  // overhead (attributed via the worker->instance map) + 30 s useful.
  // Instance 2, window [140,300]: 60 s join-delay idle + 100 s useful.
  // PS, 300 s: useful by convention.
  EXPECT_DOUBLE_EQ(cost.idle.seconds, 120.0);
  EXPECT_DOUBLE_EQ(cost.overhead.seconds, 10.0);
  EXPECT_DOUBLE_EQ(cost.wasted.seconds, 0.0);
  EXPECT_DOUBLE_EQ(cost.useful.seconds, 430.0);
  EXPECT_DOUBLE_EQ(cost.billed_seconds, 560.0);
  EXPECT_DOUBLE_EQ(cost.billed_usd, 0.31);
  EXPECT_NEAR(cost.classified_seconds(), cost.billed_seconds, 1e-9);
  EXPECT_NEAR(cost.classified_usd(), cost.billed_usd, 1e-9);
}

TEST(LedgerAnalyze, RollbackWindowCountsAsWasted) {
  Ledger ledger;
  ledger.record(make_event(LedgerEventKind::kLaunchAttempt, 0.0, "cloud", 1));
  ledger.record(make_event(LedgerEventKind::kAssign, 0.0, "run", 1, 0, 0.0));
  // 40 s of work discarded by the rollback at t=100.
  ledger.record(
      make_event(LedgerEventKind::kRollback, 100.0, "session", -1, -1, 40.0));
  ledger.record(make_event(LedgerEventKind::kBilling, 120.0, "cloud", 1, -1,
                           120.0, 0.12));
  const analyze::LedgerAnalysis analysis = analyze::analyze_ledger(ledger);
  EXPECT_DOUBLE_EQ(analysis.cost.wasted.seconds, 40.0);
  EXPECT_DOUBLE_EQ(analysis.cost.useful.seconds, 80.0);
  EXPECT_NEAR(analysis.cost.classified_seconds(),
              analysis.cost.billed_seconds, 1e-9);
}

TEST(LedgerAnalyze, ExportsEveryMetricToRegistryAndCsv) {
  const analyze::LedgerAnalysis analysis =
      analyze::analyze_ledger(synthetic_recovery_ledger());

  Registry registry;
  analyze::export_to_registry(analysis, registry);
  bool saw_useful = false;
  bool saw_incidents = false;
  for (const SnapshotRow& row : registry.snapshot(std::string_view("analyze."))) {
    if (row.name == "analyze.cost.useful_seconds") saw_useful = true;
    if (row.name == "analyze.recovery.incidents") saw_incidents = true;
  }
  EXPECT_TRUE(saw_useful);
  EXPECT_TRUE(saw_incidents);

  std::ostringstream csv;
  analyze::write_analysis_csv(analysis, csv);
  EXPECT_NE(csv.str().find("metric,value"), std::string::npos);
  EXPECT_NE(csv.str().find("cost.billed_seconds,560"), std::string::npos);

  std::ostringstream report;
  analyze::write_report(analysis, report);
  EXPECT_NE(report.str().find("Cost decomposition"), std::string::npos);
  EXPECT_NE(report.str().find("Recovery timelines"), std::string::npos);
}

// --- cost identity on real scenario runs ------------------------------

scenario::ScenarioSpec resilience_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "ledger-resilience";
  spec.kind = scenario::HarnessKind::kRun;
  spec.seed = 2020;
  spec.model = "resnet-15";
  spec.workers = {
      {3, cloud::GpuType::kK80, cloud::Region::kUsCentral1, true}};
  spec.max_steps = 2000;
  spec.checkpoint_interval_steps = 200;
  spec.horizon_hours = 48.0;
  spec.faults = faults::FaultPlan::uniform(0.2);
  spec.telemetry = true;
  return spec;
}

scenario::ScenarioSpec supervise_spec() {
  scenario::ScenarioSpec spec;
  spec.name = "ledger-supervise";
  spec.kind = scenario::HarnessKind::kRun;
  spec.seed = 2031;
  spec.model = "resnet-15";
  spec.workers = {
      {3, cloud::GpuType::kK80, cloud::Region::kEuropeWest1, true}};
  spec.max_steps = 200000;  // unreachable: the horizon ends the run
  spec.checkpoint_interval_steps = 2000;
  spec.horizon_hours = 24.0;
  spec.faults.abrupt_kill_rate = 1.0;
  spec.supervision.enabled = true;
  spec.supervision.heartbeat.period_s = 15.0;
  spec.supervision.heartbeat.timeout_s = 120.0;
  spec.telemetry = true;
  return spec;
}

void expect_cost_identity(const scenario::ScenarioSpec& spec) {
  scenario::SimHarness harness(spec);
  const scenario::ScenarioResult result = harness.run();
  ASSERT_NE(harness.telemetry(), nullptr);
  const analyze::LedgerAnalysis analysis =
      analyze::analyze_ledger(harness.telemetry()->ledger);

  // Eq. 4 identity: the four buckets partition the billed time exactly.
  EXPECT_GT(analysis.cost.billed_seconds, 0.0);
  EXPECT_NEAR(analysis.cost.classified_seconds(),
              analysis.cost.billed_seconds, 1e-9);
  EXPECT_NEAR(analysis.cost.classified_usd(), analysis.cost.billed_usd, 1e-9);
  // Every dollar the harness reports is in the ledger (billing ticks
  // cover instances still alive at a horizon-limited collect()).
  EXPECT_NEAR(analysis.cost.billed_usd, result.cost_usd, 1e-9);
}

TEST(LedgerAnalyze, CostIdentityOnResilienceScenario) {
  expect_cost_identity(resilience_spec());
}

TEST(LedgerAnalyze, CostIdentityOnSuperviseScenario) {
  expect_cost_identity(supervise_spec());
}

TEST(LedgerAnalyze, SuperviseScenarioYieldsCompleteIncidents) {
  scenario::SimHarness harness(supervise_spec());
  harness.run();
  const analyze::LedgerAnalysis analysis =
      analyze::analyze_ledger(harness.telemetry()->ledger);
  EXPECT_GE(analysis.counts.detections, 1u);
  EXPECT_GE(analysis.recovery.incidents.size(), 1u);
  for (const analyze::RecoveryIncident& incident :
       analysis.recovery.incidents) {
    EXPECT_GT(incident.total_s, 0.0);
    // Phases never exceed the whole outage.
    EXPECT_LE(incident.detection_s + incident.request_s + incident.startup_s,
              incident.total_s + 1e-9);
  }
}

// --- campaign merge determinism ---------------------------------------

std::string campaign_ledger_jsonl(int jobs) {
  scenario::ScenarioSweep sweep;
  sweep.name = "ledger-jobs";
  sweep.base = resilience_spec();
  sweep.base.max_steps = 200;
  sweep.base.checkpoint_interval_steps = 50;
  sweep.axes = {{"fault_rate", {"0", "0.2"}}};
  sweep.replicas = 2;
  sweep.seed = 2020;

  exp::RunOptions options;
  options.jobs = jobs;
  options.capture_telemetry = true;
  const scenario::ScenarioCampaignResult result =
      scenario::run_scenario_campaign(sweep, options);
  EXPECT_NE(result.telemetry, nullptr);
  std::ostringstream out;
  write_ledger_jsonl(result.telemetry->ledger, out);
  return out.str();
}

TEST(LedgerCampaign, MergedJsonlByteIdenticalAcrossJobCounts) {
  const std::string serial = campaign_ledger_jsonl(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(campaign_ledger_jsonl(4), serial);
  EXPECT_EQ(campaign_ledger_jsonl(0), serial);  // hardware thread count
  // Replica-major source prefixes are present.
  EXPECT_NE(serial.find("cell0/replica0/"), std::string::npos);
  EXPECT_NE(serial.find("cell1/replica1/"), std::string::npos);
}

}  // namespace
}  // namespace cmdare::obs
