#include "exp/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exp/journal.hpp"
#include "exp/pool.hpp"
#include "obs/ledger.hpp"

namespace cmdare::exp {
namespace {

int hardware_jobs() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

// A cheap, fully deterministic replica: a few floating-point
// observations derived from the replica's private stream and the cell
// factors.
ReplicaResult arithmetic_replica(ReplicaContext& context) {
  ReplicaResult result;
  double acc = static_cast<double>(context.cell.index + 1);
  for (int i = 0; i < 16; ++i) {
    acc += context.rng.uniform() * context.cell.cluster_size;
    result.observe("acc", acc);
  }
  result.observe("first_uniform", context.rng.uniform());
  return result;
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "test";
  spec.seed = 7;
  spec.replicas = 64;
  spec.regions = {cloud::Region::kUsEast1, cloud::Region::kUsWest1};
  spec.gpus = {cloud::GpuType::kK80};
  spec.cluster_sizes = {1, 3};
  return spec;
}

std::string aggregate_csv(const CampaignResult& result) {
  std::ostringstream out;
  result.write_csv(out);
  return out.str();
}

TEST(CampaignSpec, ExpandTakesCartesianProductInDeclarationOrder) {
  CampaignSpec spec;
  spec.regions = {cloud::Region::kUsEast1, cloud::Region::kUsWest1};
  spec.gpus = {cloud::GpuType::kK80, cloud::GpuType::kV100};
  spec.models = {"resnet-15"};
  spec.cluster_sizes = {1, 2, 4};
  spec.launch_hours = {9};
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 12u);
  EXPECT_EQ(cell_count(spec), 12u);
  // Innermost factor (cluster size) varies fastest.
  EXPECT_EQ(cells[0].cluster_size, 1);
  EXPECT_EQ(cells[1].cluster_size, 2);
  EXPECT_EQ(cells[2].cluster_size, 4);
  EXPECT_EQ(cells[0].gpu, cloud::GpuType::kK80);
  EXPECT_EQ(cells[3].gpu, cloud::GpuType::kV100);
  EXPECT_EQ(cells[0].region, cloud::Region::kUsEast1);
  EXPECT_EQ(cells[6].region, cloud::Region::kUsWest1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(CampaignSpec, ExpandRejectsEmptyFactorsAndBadReplicaCounts) {
  CampaignSpec spec;
  spec.regions.clear();
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec = CampaignSpec{};
  spec.replicas = 0;
  EXPECT_THROW(expand(spec), std::invalid_argument);
}

TEST(Campaign, ReplicaSeedsFollowTheForkChain) {
  CampaignSpec spec = small_spec();
  spec.replicas = 3;
  RunOptions options;
  options.jobs = 1;
  const CampaignResult result =
      run_campaign(spec, arithmetic_replica, options);

  const util::Rng root(spec.seed);
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const auto& firsts = result.aggregates[c].metrics.at("first_uniform");
    ASSERT_EQ(firsts.values.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      util::Rng expected = root.fork(static_cast<std::uint64_t>(c))
                               .fork(static_cast<std::uint64_t>(r));
      // arithmetic_replica consumes 16 uniforms before recording.
      for (int i = 0; i < 16; ++i) (void)expected.uniform();
      EXPECT_DOUBLE_EQ(firsts.values[static_cast<std::size_t>(r)],
                       expected.uniform())
          << "cell " << c << " replica " << r;
    }
  }
}

TEST(Campaign, AggregateCsvIsByteIdenticalAcrossJobCounts) {
  const CampaignSpec spec = small_spec();  // 4 cells x 64 replicas
  std::vector<std::string> csvs;
  for (const int jobs : {1, 4, hardware_jobs()}) {
    RunOptions options;
    options.jobs = jobs;
    csvs.push_back(aggregate_csv(run_campaign(spec, arithmetic_replica,
                                              options)));
  }
  EXPECT_EQ(csvs[0], csvs[1]) << "--jobs 1 vs --jobs 4";
  EXPECT_EQ(csvs[0], csvs[2]) << "--jobs 1 vs --jobs hardware_concurrency";
  EXPECT_NE(csvs[0].find("test,"), std::string::npos);
}

TEST(Campaign, SameSeedSameResultDifferentSeedDifferentResult) {
  CampaignSpec spec = small_spec();
  RunOptions options;
  options.jobs = 2;
  const std::string a = aggregate_csv(run_campaign(spec, arithmetic_replica,
                                                   options));
  const std::string b = aggregate_csv(run_campaign(spec, arithmetic_replica,
                                                   options));
  EXPECT_EQ(a, b);
  spec.seed += 1;
  const std::string c = aggregate_csv(run_campaign(spec, arithmetic_replica,
                                                   options));
  EXPECT_NE(a, c);
}

TEST(Campaign, ThrowingReplicasAreIsolatedAndRecorded) {
  CampaignSpec spec = small_spec();
  spec.replicas = 8;
  const ReplicaFn replica = [](ReplicaContext& context) -> ReplicaResult {
    if (context.cell.index == 1 && (context.replica == 2 ||
                                    context.replica == 5)) {
      throw std::runtime_error("synthetic replica crash");
    }
    return arithmetic_replica(context);
  };

  std::vector<std::string> csvs;
  for (const int jobs : {1, 4}) {
    RunOptions options;
    options.jobs = jobs;
    const CampaignResult result = run_campaign(spec, replica, options);
    EXPECT_EQ(result.total_failures(), 2u);
    const CellAggregate& crashed = result.aggregates[1];
    EXPECT_EQ(crashed.replicas_failed, 2);
    EXPECT_EQ(crashed.replicas_ok, 6);
    ASSERT_EQ(crashed.failures.size(), 2u);
    EXPECT_EQ(crashed.failures[0].replica, 2);
    EXPECT_EQ(crashed.failures[1].replica, 5);
    EXPECT_EQ(crashed.failures[0].error, "synthetic replica crash");
    // Surviving replicas of the crashed cell still aggregated.
    EXPECT_EQ(crashed.metrics.at("first_uniform").values.size(), 6u);
    // Untouched cells are complete.
    EXPECT_EQ(result.aggregates[0].replicas_ok, 8);
    csvs.push_back(aggregate_csv(result));
  }
  EXPECT_EQ(csvs[0], csvs[1]) << "failures must not break determinism";
}

TEST(Campaign, ProgressIsSerializedMonotonicAndComplete) {
  const CampaignSpec spec = small_spec();  // 256 replicas
  RunOptions options;
  options.jobs = 4;
  std::size_t calls = 0;
  std::size_t last_done = 0;
  Progress final{};
  options.on_progress = [&](const Progress& p) {
    // Serialized by the engine's fold mutex: plain variables suffice.
    ++calls;
    EXPECT_EQ(p.replicas_done, last_done + 1);
    last_done = p.replicas_done;
    EXPECT_LE(p.cells_done, p.cells_total);
    final = p;
  };
  const CampaignResult result = run_campaign(spec, arithmetic_replica,
                                             options);
  EXPECT_EQ(calls, result.progress.replicas_total);
  EXPECT_EQ(final.replicas_done, final.replicas_total);
  EXPECT_EQ(final.cells_done, final.cells_total);
  EXPECT_EQ(final.replicas_failed, 0u);
}

TEST(Campaign, CapturedTelemetryMergesDeterministically) {
  CampaignSpec spec = small_spec();
  spec.replicas = 4;
  const ReplicaFn replica = [](ReplicaContext& context) -> ReplicaResult {
    // Instrumented code inside a replica sees the per-replica bundle as
    // the thread's active telemetry.
    EXPECT_EQ(obs::telemetry(), context.telemetry);
    obs::registry()->counter("replica.work").inc();
    obs::tracer()->complete(obs::tracer()->track("replica"), "work", "exp",
                            0.0, 1.0);
    ReplicaResult result;
    result.observe("x", context.rng.uniform());
    return result;
  };
  RunOptions options;
  options.jobs = 4;
  options.capture_telemetry = true;
  const CampaignResult result = run_campaign(spec, replica, options);
  ASSERT_NE(result.telemetry, nullptr);
  EXPECT_DOUBLE_EQ(result.telemetry->registry.counter("replica.work").value(),
                   static_cast<double>(result.progress.replicas_total));
  // Every replica's track merged under its cell/replica prefix.
  EXPECT_EQ(result.telemetry->tracer.spans().size(),
            result.progress.replicas_total);
  const auto& tracks = result.telemetry->tracer.track_names();
  EXPECT_NE(std::find(tracks.begin(), tracks.end(), "cell0/replica0/replica"),
            tracks.end());
}

TEST(Campaign, RecordsSummaryMetricsIntoCallersRegistry) {
  obs::ScopedTelemetry telemetry;
  CampaignSpec spec = small_spec();
  spec.replicas = 2;
  RunOptions options;
  options.jobs = 2;
  (void)run_campaign(spec, arithmetic_replica, options);
  const obs::LabelSet labels = {{"campaign", "test"}};
  EXPECT_DOUBLE_EQ(
      telemetry->registry.counter("exp.campaign.replicas_total", labels)
          .value(),
      8.0);
  EXPECT_DOUBLE_EQ(
      telemetry->registry.counter("exp.campaign.cells_total", labels).value(),
      4.0);
}

// --- Crash-resumable campaign journal (exp/journal.hpp) ---

std::string journal_path_for(const std::string& name) {
  return ::testing::TempDir() + "cmdare_" + name + ".journal";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// Keeps the journal header plus the first `entries` completed lines —
/// the on-disk prefix a crash at that point would leave behind.
std::string journal_prefix(const std::string& text, std::size_t entries) {
  std::size_t pos = 0;
  for (std::size_t line = 0; line < entries + 1; ++line) {
    pos = text.find('\n', pos);
    EXPECT_NE(pos, std::string::npos);
    ++pos;
  }
  return text.substr(0, pos);
}

/// arithmetic_replica plus one ledger event, so resume tests cover the
/// merged-ledger half of the byte-identity contract too.
ReplicaResult ledgered_replica(ReplicaContext& context) {
  ReplicaResult result = arithmetic_replica(context);
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kUpload;
    event.at = static_cast<double>(context.replica) + 0.5;
    event.source = "test";
    event.step = static_cast<long>(context.cell.index);
    event.detail = {{"bytes", "123"}};
    ledger->record(std::move(event));
  }
  return result;
}

TEST(CampaignJournal, FormatAndParseRoundTripIncludingEscapes) {
  JournalHeader header;
  header.seed = 42;
  header.cells = 3;
  header.replicas = 5;
  header.telemetry = true;

  JournalEntry ok;
  ok.cell = 2;
  ok.replica = 4;
  ok.observations = {{"plain", 1.5},
                     {"tab\tnewline\nbackslash\\", -0.062500001},
                     {"plain", 3.0}};  // repeated metric names survive
  obs::LedgerEvent event;
  event.kind = obs::LedgerEventKind::kCkptQuarantine;
  event.at = 12.5;
  event.source = "ckpt";
  event.step = 30;
  event.detail = {{"generation", "2"}, {"reason", "checksum"}};
  ok.ledger = {event};

  JournalEntry fail;
  fail.cell = 1;
  fail.replica = 0;
  fail.failed = true;
  fail.error = "boom\twith\nnoise\\";

  const std::string text = format_journal_header(header) + "\n" +
                           format_journal_entry(ok) + "\n" +
                           format_journal_entry(fail) + "\n";
  const JournalContents contents = parse_journal(text);
  EXPECT_EQ(contents.header.seed, 42u);
  EXPECT_EQ(contents.header.cells, 3u);
  EXPECT_EQ(contents.header.replicas, 5);
  EXPECT_TRUE(contents.header.telemetry);
  ASSERT_EQ(contents.entries.size(), 2u);

  const JournalEntry& a = contents.entries[0];
  EXPECT_EQ(a.cell, 2u);
  EXPECT_EQ(a.replica, 4);
  EXPECT_FALSE(a.failed);
  ASSERT_EQ(a.observations.size(), 3u);
  EXPECT_EQ(a.observations[1].first, "tab\tnewline\nbackslash\\");
  EXPECT_EQ(a.observations[1].second, -0.062500001);
  ASSERT_EQ(a.ledger.size(), 1u);
  EXPECT_EQ(obs::serialize_ledger_event(a.ledger[0]),
            obs::serialize_ledger_event(event));

  const JournalEntry& b = contents.entries[1];
  EXPECT_TRUE(b.failed);
  EXPECT_EQ(b.cell, 1u);
  EXPECT_EQ(b.replica, 0);
  EXPECT_EQ(b.error, "boom\twith\nnoise\\");
}

TEST(CampaignJournal, TornFinalLineDropsButEarlierCorruptionThrows) {
  JournalHeader header;
  header.cells = 2;
  header.replicas = 2;
  JournalEntry entry;
  entry.cell = 0;
  entry.replica = 1;
  entry.observations = {{"x", 1.0}};
  const std::string good = format_journal_header(header) + "\n" +
                           format_journal_entry(entry) + "\n";

  // The writer died mid-append: the final line has no "end" marker.
  const JournalContents torn = parse_journal(good + "1\t0\tok\t2\tme");
  ASSERT_EQ(torn.entries.size(), 1u);
  EXPECT_EQ(torn.entries[0].cell, 0u);

  // The same malformed text *before* a completed line is corruption,
  // and the diagnostic carries the 1-based line number.
  const std::string corrupt = format_journal_header(header) + "\n" +
                              "1\t0\tok\t2\tme\n" +
                              format_journal_entry(entry) + "\n";
  try {
    parse_journal(corrupt);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }

  // A missing or foreign header is never a resumable journal.
  EXPECT_THROW(parse_journal(format_journal_entry(entry) + "\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_journal("#some-other-file v9\n"), std::invalid_argument);
}

TEST(CampaignJournal, ResumeRefusesAMismatchedHeader) {
  CampaignSpec spec = small_spec();
  spec.replicas = 2;
  RunOptions options;
  options.jobs = 1;
  options.journal_path = journal_path_for("mismatch");
  (void)run_campaign(spec, arithmetic_replica, options);

  options.resume = true;
  spec.seed += 1;  // same grid, different seed: a different campaign
  EXPECT_THROW(run_campaign(spec, arithmetic_replica, options),
               std::invalid_argument);
  spec.seed -= 1;
  options.capture_telemetry = true;  // telemetry flag is part of identity
  EXPECT_THROW(run_campaign(spec, arithmetic_replica, options),
               std::invalid_argument);
}

TEST(CampaignJournal, ResumedRunIsByteIdenticalAndSkipsJournaledReplicas) {
  CampaignSpec spec = small_spec();
  spec.replicas = 3;  // 4 cells x 3 replicas = 12

  // Reference: one uninterrupted recorded run.
  RunOptions record;
  record.jobs = 1;
  record.capture_telemetry = true;
  record.journal_path = journal_path_for("reference");
  const CampaignResult reference =
      run_campaign(spec, ledgered_replica, record);
  const std::string ref_csv = aggregate_csv(reference);
  std::ostringstream ref_ledger_out;
  obs::write_ledger_jsonl(reference.telemetry->ledger, ref_ledger_out);
  const std::string ref_ledger = ref_ledger_out.str();
  const std::string full_journal = read_file(record.journal_path);

  // Simulate the crash: 5 of 12 replicas made it to disk, plus a torn
  // partial line from the append that was in flight.
  const std::string crashed = journal_prefix(full_journal, 5) + "1\t2\tok\t3";

  for (const int jobs : {1, 4}) {
    RunOptions resume;
    resume.jobs = jobs;
    resume.capture_telemetry = true;
    resume.journal_path =
        journal_path_for("resume_j" + std::to_string(jobs));
    write_file(resume.journal_path, crashed);
    resume.resume = true;

    std::atomic<int> calls{0};
    const ReplicaFn counting = [&calls](ReplicaContext& context) {
      calls.fetch_add(1);
      return ledgered_replica(context);
    };
    const CampaignResult resumed = run_campaign(spec, counting, resume);

    // Journaled replicas replay from disk; only the missing 7 run.
    EXPECT_EQ(calls.load(), 7) << "--jobs " << jobs;
    EXPECT_EQ(resumed.progress.replicas_done, 12u);
    EXPECT_EQ(aggregate_csv(resumed), ref_csv) << "--jobs " << jobs;
    ASSERT_NE(resumed.telemetry, nullptr);
    std::ostringstream ledger_out;
    obs::write_ledger_jsonl(resumed.telemetry->ledger, ledger_out);
    EXPECT_EQ(ledger_out.str(), ref_ledger) << "--jobs " << jobs;

    // At --jobs 1 the fold order matches the reference run exactly, so
    // the healed journal is the uninterrupted journal, byte for byte.
    if (jobs == 1) {
      EXPECT_EQ(read_file(resume.journal_path), full_journal);
    }
  }

  // Resuming from an absent journal is a plain recorded run.
  RunOptions fresh;
  fresh.jobs = 1;
  fresh.capture_telemetry = true;
  fresh.journal_path = journal_path_for("fresh_resume");
  std::remove(fresh.journal_path.c_str());
  fresh.resume = true;
  const CampaignResult scratch = run_campaign(spec, ledgered_replica, fresh);
  EXPECT_EQ(aggregate_csv(scratch), ref_csv);
  EXPECT_EQ(read_file(fresh.journal_path), full_journal);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_GE(resolve_jobs(0), 1);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 3, 8}) {
    ThreadPool pool(jobs);
    EXPECT_EQ(pool.size(), jobs);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForIsReusable) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterAllTasksRun) {
  for (const int jobs : {1, 4}) {
    ThreadPool pool(jobs);
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 10) throw std::runtime_error("task failed");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task failed");
    }
    EXPECT_EQ(ran.load(), 64);
  }
}

}  // namespace
}  // namespace cmdare::exp
