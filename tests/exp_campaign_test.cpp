#include "exp/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/pool.hpp"

namespace cmdare::exp {
namespace {

int hardware_jobs() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

// A cheap, fully deterministic replica: a few floating-point
// observations derived from the replica's private stream and the cell
// factors.
ReplicaResult arithmetic_replica(ReplicaContext& context) {
  ReplicaResult result;
  double acc = static_cast<double>(context.cell.index + 1);
  for (int i = 0; i < 16; ++i) {
    acc += context.rng.uniform() * context.cell.cluster_size;
    result.observe("acc", acc);
  }
  result.observe("first_uniform", context.rng.uniform());
  return result;
}

CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "test";
  spec.seed = 7;
  spec.replicas = 64;
  spec.regions = {cloud::Region::kUsEast1, cloud::Region::kUsWest1};
  spec.gpus = {cloud::GpuType::kK80};
  spec.cluster_sizes = {1, 3};
  return spec;
}

std::string aggregate_csv(const CampaignResult& result) {
  std::ostringstream out;
  result.write_csv(out);
  return out.str();
}

TEST(CampaignSpec, ExpandTakesCartesianProductInDeclarationOrder) {
  CampaignSpec spec;
  spec.regions = {cloud::Region::kUsEast1, cloud::Region::kUsWest1};
  spec.gpus = {cloud::GpuType::kK80, cloud::GpuType::kV100};
  spec.models = {"resnet-15"};
  spec.cluster_sizes = {1, 2, 4};
  spec.launch_hours = {9};
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 12u);
  EXPECT_EQ(cell_count(spec), 12u);
  // Innermost factor (cluster size) varies fastest.
  EXPECT_EQ(cells[0].cluster_size, 1);
  EXPECT_EQ(cells[1].cluster_size, 2);
  EXPECT_EQ(cells[2].cluster_size, 4);
  EXPECT_EQ(cells[0].gpu, cloud::GpuType::kK80);
  EXPECT_EQ(cells[3].gpu, cloud::GpuType::kV100);
  EXPECT_EQ(cells[0].region, cloud::Region::kUsEast1);
  EXPECT_EQ(cells[6].region, cloud::Region::kUsWest1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
  }
}

TEST(CampaignSpec, ExpandRejectsEmptyFactorsAndBadReplicaCounts) {
  CampaignSpec spec;
  spec.regions.clear();
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec = CampaignSpec{};
  spec.replicas = 0;
  EXPECT_THROW(expand(spec), std::invalid_argument);
}

TEST(Campaign, ReplicaSeedsFollowTheForkChain) {
  CampaignSpec spec = small_spec();
  spec.replicas = 3;
  RunOptions options;
  options.jobs = 1;
  const CampaignResult result =
      run_campaign(spec, arithmetic_replica, options);

  const util::Rng root(spec.seed);
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const auto& firsts = result.aggregates[c].metrics.at("first_uniform");
    ASSERT_EQ(firsts.values.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      util::Rng expected = root.fork(static_cast<std::uint64_t>(c))
                               .fork(static_cast<std::uint64_t>(r));
      // arithmetic_replica consumes 16 uniforms before recording.
      for (int i = 0; i < 16; ++i) (void)expected.uniform();
      EXPECT_DOUBLE_EQ(firsts.values[static_cast<std::size_t>(r)],
                       expected.uniform())
          << "cell " << c << " replica " << r;
    }
  }
}

TEST(Campaign, AggregateCsvIsByteIdenticalAcrossJobCounts) {
  const CampaignSpec spec = small_spec();  // 4 cells x 64 replicas
  std::vector<std::string> csvs;
  for (const int jobs : {1, 4, hardware_jobs()}) {
    RunOptions options;
    options.jobs = jobs;
    csvs.push_back(aggregate_csv(run_campaign(spec, arithmetic_replica,
                                              options)));
  }
  EXPECT_EQ(csvs[0], csvs[1]) << "--jobs 1 vs --jobs 4";
  EXPECT_EQ(csvs[0], csvs[2]) << "--jobs 1 vs --jobs hardware_concurrency";
  EXPECT_NE(csvs[0].find("test,"), std::string::npos);
}

TEST(Campaign, SameSeedSameResultDifferentSeedDifferentResult) {
  CampaignSpec spec = small_spec();
  RunOptions options;
  options.jobs = 2;
  const std::string a = aggregate_csv(run_campaign(spec, arithmetic_replica,
                                                   options));
  const std::string b = aggregate_csv(run_campaign(spec, arithmetic_replica,
                                                   options));
  EXPECT_EQ(a, b);
  spec.seed += 1;
  const std::string c = aggregate_csv(run_campaign(spec, arithmetic_replica,
                                                   options));
  EXPECT_NE(a, c);
}

TEST(Campaign, ThrowingReplicasAreIsolatedAndRecorded) {
  CampaignSpec spec = small_spec();
  spec.replicas = 8;
  const ReplicaFn replica = [](ReplicaContext& context) -> ReplicaResult {
    if (context.cell.index == 1 && (context.replica == 2 ||
                                    context.replica == 5)) {
      throw std::runtime_error("synthetic replica crash");
    }
    return arithmetic_replica(context);
  };

  std::vector<std::string> csvs;
  for (const int jobs : {1, 4}) {
    RunOptions options;
    options.jobs = jobs;
    const CampaignResult result = run_campaign(spec, replica, options);
    EXPECT_EQ(result.total_failures(), 2u);
    const CellAggregate& crashed = result.aggregates[1];
    EXPECT_EQ(crashed.replicas_failed, 2);
    EXPECT_EQ(crashed.replicas_ok, 6);
    ASSERT_EQ(crashed.failures.size(), 2u);
    EXPECT_EQ(crashed.failures[0].replica, 2);
    EXPECT_EQ(crashed.failures[1].replica, 5);
    EXPECT_EQ(crashed.failures[0].error, "synthetic replica crash");
    // Surviving replicas of the crashed cell still aggregated.
    EXPECT_EQ(crashed.metrics.at("first_uniform").values.size(), 6u);
    // Untouched cells are complete.
    EXPECT_EQ(result.aggregates[0].replicas_ok, 8);
    csvs.push_back(aggregate_csv(result));
  }
  EXPECT_EQ(csvs[0], csvs[1]) << "failures must not break determinism";
}

TEST(Campaign, ProgressIsSerializedMonotonicAndComplete) {
  const CampaignSpec spec = small_spec();  // 256 replicas
  RunOptions options;
  options.jobs = 4;
  std::size_t calls = 0;
  std::size_t last_done = 0;
  Progress final{};
  options.on_progress = [&](const Progress& p) {
    // Serialized by the engine's fold mutex: plain variables suffice.
    ++calls;
    EXPECT_EQ(p.replicas_done, last_done + 1);
    last_done = p.replicas_done;
    EXPECT_LE(p.cells_done, p.cells_total);
    final = p;
  };
  const CampaignResult result = run_campaign(spec, arithmetic_replica,
                                             options);
  EXPECT_EQ(calls, result.progress.replicas_total);
  EXPECT_EQ(final.replicas_done, final.replicas_total);
  EXPECT_EQ(final.cells_done, final.cells_total);
  EXPECT_EQ(final.replicas_failed, 0u);
}

TEST(Campaign, CapturedTelemetryMergesDeterministically) {
  CampaignSpec spec = small_spec();
  spec.replicas = 4;
  const ReplicaFn replica = [](ReplicaContext& context) -> ReplicaResult {
    // Instrumented code inside a replica sees the per-replica bundle as
    // the thread's active telemetry.
    EXPECT_EQ(obs::telemetry(), context.telemetry);
    obs::registry()->counter("replica.work").inc();
    obs::tracer()->complete(obs::tracer()->track("replica"), "work", "exp",
                            0.0, 1.0);
    ReplicaResult result;
    result.observe("x", context.rng.uniform());
    return result;
  };
  RunOptions options;
  options.jobs = 4;
  options.capture_telemetry = true;
  const CampaignResult result = run_campaign(spec, replica, options);
  ASSERT_NE(result.telemetry, nullptr);
  EXPECT_DOUBLE_EQ(result.telemetry->registry.counter("replica.work").value(),
                   static_cast<double>(result.progress.replicas_total));
  // Every replica's track merged under its cell/replica prefix.
  EXPECT_EQ(result.telemetry->tracer.spans().size(),
            result.progress.replicas_total);
  const auto& tracks = result.telemetry->tracer.track_names();
  EXPECT_NE(std::find(tracks.begin(), tracks.end(), "cell0/replica0/replica"),
            tracks.end());
}

TEST(Campaign, RecordsSummaryMetricsIntoCallersRegistry) {
  obs::ScopedTelemetry telemetry;
  CampaignSpec spec = small_spec();
  spec.replicas = 2;
  RunOptions options;
  options.jobs = 2;
  (void)run_campaign(spec, arithmetic_replica, options);
  const obs::LabelSet labels = {{"campaign", "test"}};
  EXPECT_DOUBLE_EQ(
      telemetry->registry.counter("exp.campaign.replicas_total", labels)
          .value(),
      8.0);
  EXPECT_DOUBLE_EQ(
      telemetry->registry.counter("exp.campaign.cells_total", labels).value(),
      4.0);
}

TEST(ThreadPool, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1);
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_GE(resolve_jobs(0), 1);
}

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 3, 8}) {
    ThreadPool pool(jobs);
    EXPECT_EQ(pool.size(), jobs);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.parallel_for(hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForIsReusable) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterAllTasksRun) {
  for (const int jobs : {1, 4}) {
    ThreadPool pool(jobs);
    std::atomic<int> ran{0};
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 10) throw std::runtime_error("task failed");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task failed");
    }
    EXPECT_EQ(ran.load(), 64);
  }
}

}  // namespace
}  // namespace cmdare::exp
