// Pins the engine's zero-allocation steady state.
//
// The event engine's contract (simulator.hpp) is that once its arena,
// rung, buckets, and far tier have grown to the workload's high-water
// mark, dispatching events — including schedule/cancel churn and periodic
// re-enqueues — performs no heap allocations. This test counts global
// operator new calls across a warmed-up replay of a mixed workload and
// asserts zero.
//
// The counting overrides replace global operator new/delete, which
// conflicts with sanitizer allocator interception, so under ASan/TSan the
// test degrades to a smoke run of the same workload (the sanitizer stages
// still exercise the arena-lifetime paths; the allocation count is pinned
// by the plain build that CI's tier-1 stage runs).

#include "simcore/simulator.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CMDARE_ALLOC_COUNTING 0
#endif
#if !defined(CMDARE_ALLOC_COUNTING) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CMDARE_ALLOC_COUNTING 0
#endif
#endif
#ifndef CMDARE_ALLOC_COUNTING
#define CMDARE_ALLOC_COUNTING 1
#endif

#if CMDARE_ALLOC_COUNTING

#include <cstdlib>
#include <new>

namespace {
std::size_t g_allocations = 0;
bool g_counting = false;
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting) ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#endif  // CMDARE_ALLOC_COUNTING

namespace cmdare::simcore {
namespace {

/// Self-rescheduling one-shot chain: each firing schedules the next copy
/// of itself until the shared budget runs out. 24 bytes — stays inline.
struct Chain {
  Simulator* sim;
  int* remaining;
  double delay;
  void operator()() const {
    if (--*remaining > 0) sim->schedule_after(delay, *this);
  }
};

/// Cancel/reschedule churn: every firing cancels the current target (a
/// pending decoy event), schedules a replacement, and re-arms itself —
/// the tombstone-free cancellation path under sustained load.
struct Churn {
  Simulator* sim;
  EventHandle* target;
  int* remaining;
  void operator()() const {
    target->cancel();
    *target = sim->schedule_after(50.0, [] {});
    if (--*remaining > 0) sim->schedule_after(1.3, *this);
  }
};

/// One drained run of the mixed workload. Deterministic, so every replay
/// needs exactly the same arena/bucket/rung capacity.
void run_workload(Simulator& sim) {
  int chain_budget[4] = {400, 400, 400, 400};
  const double delays[4] = {0.9, 1.0, 1.7, 2.3};
  for (int i = 0; i < 4; ++i) {
    sim.schedule_after(delays[i], Chain{&sim, &chain_budget[i], delays[i]});
  }
  int churn_budget = 300;
  EventHandle target = sim.schedule_after(50.0, [] {});
  sim.schedule_after(1.0, Churn{&sim, &target, &churn_budget});
  int ticks = 200;
  sim.schedule_every(2.5, [&ticks] { return --ticks > 0; });
  sim.run();
}

/// Floods the queue with many spread-out events and drains them, growing
/// the far tier, every near bucket, the rung, and the slot arena far past
/// what the steady-state workload keeps in flight. This makes the
/// zero-allocation assertion robust to reseed boundaries shifting a
/// little between replays (each replay starts at a different now()).
void prime_capacities(Simulator& sim) {
  for (int i = 0; i < 8192; ++i) {
    sim.schedule_after(1.0 + 0.37 * static_cast<double>(i), [] {});
  }
  sim.run();
}

TEST(SimulatorAlloc, SteadyStateDispatchAllocatesNothing) {
  Simulator sim;
  prime_capacities(sim);
  // One warm replay settles the rung/bucket buffer rotation (activation
  // swaps buffers between the rung and the drained bucket).
  run_workload(sim);

#if CMDARE_ALLOC_COUNTING
  g_allocations = 0;
  g_counting = true;
#endif
  run_workload(sim);
#if CMDARE_ALLOC_COUNTING
  g_counting = false;
  EXPECT_EQ(g_allocations, 0u)
      << "steady-state event dispatch must not touch the heap";
#endif
  EXPECT_GT(sim.events_fired(), 0u);
}

}  // namespace
}  // namespace cmdare::simcore
