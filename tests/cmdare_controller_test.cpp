#include <gtest/gtest.h>

#include "cmdare/controller.hpp"
#include "cmdare/measurement.hpp"
#include "nn/model_zoo.hpp"

namespace cmdare::core {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    util::Rng rng(500);
    const auto measurements = measure_step_times(
        nn::all_models(),
        {cloud::GpuType::kK80, cloud::GpuType::kP100, cloud::GpuType::kV100},
        rng, 500);
    util::Rng train_rng(501);
    predictor_ = new StepTimePredictor(
        StepTimePredictor::train(measurements, train_rng));
  }
  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
  }
  static StepTimePredictor* predictor_;
};

StepTimePredictor* ControllerTest::predictor_ = nullptr;

RunConfig p100_cluster(int workers, long steps) {
  RunConfig config;
  config.session.max_steps = steps;
  config.workers = train::worker_mix(0, workers, 0);
  return config;
}

TEST_F(ControllerTest, MitigatesSaturatedCluster) {
  // 8x P100 on ResNet-32 with one PS is deeply PS-bound; the controller
  // must notice and restart with more parameter servers.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(1));
  TransientTrainingRun run(provider, nn::resnet32(), p100_cluster(8, 60000),
                           util::Rng(2));
  Controller controller(run, *predictor_);
  run.start();
  controller.start();
  sim.run();

  EXPECT_TRUE(run.finished());
  EXPECT_GE(controller.mitigations(), 1);
  EXPECT_GT(run.current_ps_count(), 1);
  EXPECT_EQ(run.restarts(), controller.mitigations());
  EXPECT_GE(run.completed_steps(), 60000);
}

TEST_F(ControllerTest, MitigationImprovesThroughput) {
  const auto run_once = [&](bool with_controller) {
    simcore::Simulator sim;
    cloud::CloudProvider provider(sim, util::Rng(3));
    TransientTrainingRun run(provider, nn::resnet32(),
                             p100_cluster(8, 60000), util::Rng(4));
    Controller controller(run, *predictor_);
    run.start();
    if (with_controller) controller.start();
    sim.run();
    return run.elapsed_seconds();
  };
  const double without = run_once(false);
  const double with = run_once(true);
  EXPECT_LT(with, 0.75 * without);
}

TEST_F(ControllerTest, LeavesHealthyClusterAlone) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(5));
  RunConfig config;
  config.session.max_steps = 20000;
  config.workers = train::worker_mix(2, 0, 0);  // far below PS capacity
  TransientTrainingRun run(provider, nn::resnet32(), config, util::Rng(6));
  Controller controller(run, *predictor_);
  run.start();
  controller.start();
  sim.run();
  EXPECT_EQ(controller.mitigations(), 0);
  EXPECT_EQ(run.current_ps_count(), 1);
  EXPECT_GT(controller.checks_performed(), 0u);
}

TEST_F(ControllerTest, RespectsMaxParameterServers) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(7));
  TransientTrainingRun run(provider, nn::resnet32(), p100_cluster(8, 80000),
                           util::Rng(8));
  ControllerConfig config;
  config.max_parameter_servers = 2;
  Controller controller(run, *predictor_, config);
  run.start();
  controller.start();
  sim.run();
  EXPECT_LE(run.current_ps_count(), 2);
}

TEST_F(ControllerTest, RunPreservesProgressAcrossRestart) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(9));
  TransientTrainingRun run(provider, nn::resnet32(), p100_cluster(4, 30000),
                           util::Rng(10));
  run.start();
  // Manual restart mid-run.
  bool restarted = false;
  sim.schedule_at(600.0, [&] {
    const long before = run.completed_steps();
    run.restart_with_ps_count(2);
    restarted = true;
    EXPECT_EQ(run.completed_steps(), before);  // offset carried over
    EXPECT_EQ(run.current_ps_count(), 2);
  });
  sim.run();
  EXPECT_TRUE(restarted);
  EXPECT_TRUE(run.finished());
  EXPECT_GE(run.completed_steps(), 30000);
}

TEST_F(ControllerTest, RestartAfterFinishIsNoOp) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(11));
  TransientTrainingRun run(provider, nn::resnet32(), p100_cluster(1, 500),
                           util::Rng(12));
  run.start();
  sim.run();
  EXPECT_TRUE(run.finished());
  run.restart_with_ps_count(3);
  EXPECT_EQ(run.restarts(), 0);
  EXPECT_EQ(run.current_ps_count(), 1);
}

TEST_F(ControllerTest, ValidatesConfig) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(13));
  TransientTrainingRun run(provider, nn::resnet32(), p100_cluster(2, 100),
                           util::Rng(14));
  ControllerConfig bad;
  bad.check_period_seconds = 0.0;
  EXPECT_THROW(Controller(run, *predictor_, bad), std::invalid_argument);
  bad = ControllerConfig();
  bad.max_parameter_servers = 0;
  EXPECT_THROW(Controller(run, *predictor_, bad), std::invalid_argument);
  EXPECT_THROW(run.restart_with_ps_count(0), std::invalid_argument);

  Controller controller(run, *predictor_);
  run.start();
  controller.start();
  EXPECT_THROW(controller.start(), std::logic_error);
}

}  // namespace
}  // namespace cmdare::core
