#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "cmdare/planner.hpp"

namespace cmdare::core {
namespace {

CheckpointPlanParams base_params() {
  CheckpointPlanParams params;
  params.total_steps = 40000;
  params.cluster_speed = 18.9;
  params.checkpoint_seconds = 3.7;
  params.chief_revocations_per_hour = 7.5;
  params.replacement_seconds = 75.6;
  return params;
}

TEST(CheckpointPlanner, NoRevocationsFavorsNoCheckpointing) {
  CheckpointPlanParams params = base_params();
  params.chief_revocations_per_hour = 0.0;
  const CheckpointPlan plan = plan_checkpoint_interval(params);
  // Without revocations the optimum is the largest interval (one final
  // checkpoint).
  EXPECT_EQ(plan.interval_steps, 40000);
}

TEST(CheckpointPlanner, ChurnPullsTheOptimumDown) {
  CheckpointPlanParams calm = base_params();
  calm.chief_revocations_per_hour = 0.5;
  CheckpointPlanParams churny = base_params();
  churny.chief_revocations_per_hour = 20.0;
  const long calm_interval = plan_checkpoint_interval(calm).interval_steps;
  const long churny_interval =
      plan_checkpoint_interval(churny).interval_steps;
  EXPECT_LT(churny_interval, calm_interval);
}

TEST(CheckpointPlanner, ExpectedTimeFormula) {
  // Hand-checkable case with a single fixed-point pass structure:
  // compute = 40000/18.9 ~ 2116.4 s; ckpt = ceil(40000/4000)*3.7 = 37 s.
  CheckpointPlanParams params = base_params();
  params.chief_revocations_per_hour = 0.0;
  EXPECT_NEAR(expected_time_with_interval(4000, params),
              40000.0 / 18.9 + 10 * 3.7, 1e-6);
}

TEST(CheckpointPlanner, ExpectedTimeMonotoneInChurn) {
  CheckpointPlanParams params = base_params();
  double previous = 0.0;
  for (double rate : {0.0, 2.0, 8.0, 20.0}) {
    params.chief_revocations_per_hour = rate;
    const double t = expected_time_with_interval(4000, params);
    EXPECT_GT(t, previous);
    previous = t;
  }
}

TEST(CheckpointPlanner, PlanCurveCoversRangeAndContainsMinimum) {
  const CheckpointPlan plan = plan_checkpoint_interval(base_params());
  EXPECT_GE(plan.scanned.size(), 10u);
  EXPECT_EQ(plan.scanned.front().first, 100);
  EXPECT_EQ(plan.scanned.back().first, 40000);
  for (const auto& [interval, expected] : plan.scanned) {
    (void)interval;
    EXPECT_GE(expected, plan.expected_seconds);
  }
  // The optimum is interior for this churn level.
  EXPECT_GT(plan.interval_steps, 100);
  EXPECT_LT(plan.interval_steps, 40000);
}

TEST(CheckpointPlanner, Validates) {
  EXPECT_THROW(expected_time_with_interval(0, base_params()),
               std::invalid_argument);
  CheckpointPlanParams bad = base_params();
  bad.cluster_speed = 0.0;
  EXPECT_THROW(expected_time_with_interval(100, bad), std::invalid_argument);
  EXPECT_THROW(plan_checkpoint_interval(base_params(), 0),
               std::invalid_argument);
  EXPECT_THROW(plan_checkpoint_interval(base_params(), 100, 1),
               std::invalid_argument);
}

TEST(CheckpointPlanner, RejectsNonFiniteLiveEstimates) {
  // The adaptive controller feeds the planner from live estimates
  // (profiler speed, decayed hazard, observed checkpoint durations); NaN
  // slides through ordinary `<= 0` guards and casting it to long is UB,
  // so every field must be rejected explicitly with a clear error.
  const auto expect_rejected = [](const CheckpointPlanParams& params) {
    EXPECT_THROW(expected_time_with_interval(100, params),
                 std::invalid_argument);
    EXPECT_THROW(plan_checkpoint_interval(params, 100),
                 std::invalid_argument);
  };

  CheckpointPlanParams bad = base_params();
  bad.total_steps = std::nan("");
  expect_rejected(bad);

  bad = base_params();
  bad.cluster_speed = std::numeric_limits<double>::infinity();
  expect_rejected(bad);

  bad = base_params();
  bad.checkpoint_seconds = std::nan("");
  expect_rejected(bad);

  bad = base_params();
  bad.chief_revocations_per_hour = -0.5;
  expect_rejected(bad);

  bad = base_params();
  bad.provision_seconds = std::nan("");
  expect_rejected(bad);

  bad = base_params();
  bad.replacement_seconds = -std::numeric_limits<double>::infinity();
  expect_rejected(bad);

  // The error message names the offending field.
  bad = base_params();
  bad.cluster_speed = std::nan("");
  try {
    plan_checkpoint_interval(bad, 100);
    FAIL() << "NaN cluster_speed accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cluster_speed"),
              std::string::npos);
  }
}

TEST(LaunchPlanner, RanksAscendingAndCoversAllHours) {
  const cloud::RevocationModel model;
  const auto plans = rank_launch_plans(model, cloud::GpuType::kK80, 8.0);
  // 4 K80 regions x 24 hours.
  EXPECT_EQ(plans.size(), 96u);
  for (std::size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i - 1].revocation_probability,
              plans[i].revocation_probability);
  }
}

TEST(LaunchPlanner, BestPlanBeatsReferenceLaunch) {
  const cloud::RevocationModel model;
  const LaunchPlan best = best_launch_plan(model, cloud::GpuType::kK80, 8.0);
  const double reference = model.revocation_probability(
      cloud::Region::kUsCentral1, cloud::GpuType::kK80,
      cloud::kReferenceLaunchLocalHour, 8.0);
  EXPECT_LT(best.revocation_probability, reference);
}

TEST(LaunchPlanner, V100QuietWindowIsExploited) {
  // A short job launched right at 16:00 local overlaps the 4 PM - 8 PM
  // window where V100s are never revoked (Figure 9).
  const cloud::RevocationModel model;
  const LaunchPlan best = best_launch_plan(model, cloud::GpuType::kV100, 4.0);
  EXPECT_EQ(best.local_hour, 16);
  EXPECT_NEAR(best.revocation_probability, 0.0, 1e-9);
}

TEST(LaunchPlanner, ProbabilityMatchesHazardModel) {
  const cloud::RevocationModel model;
  const auto plans = rank_launch_plans(model, cloud::GpuType::kP100, 6.0);
  for (const auto& plan : {plans.front(), plans.back()}) {
    EXPECT_NEAR(plan.revocation_probability,
                model.revocation_probability(plan.region, cloud::GpuType::kP100,
                                             plan.local_hour, 6.0),
                1e-12);
  }
}

TEST(LaunchPlanner, Validates) {
  const cloud::RevocationModel model;
  EXPECT_THROW(rank_launch_plans(model, cloud::GpuType::kK80, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmdare::core
