// Telemetry layer: registry semantics, tracer recording, exporter output,
// and the cross-layer instrumentation of a real training run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "cloud/storage.hpp"
#include "nn/model_zoo.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/sim_profiler.hpp"
#include "obs/trace.hpp"
#include "train/session.hpp"
#include "util/csv.hpp"

namespace cmdare {
namespace {

// --- a minimal JSON syntax checker (RFC 8259) for exporter validation ---
//
// Accepts exactly one JSON value and requires the whole input consumed.
// No semantic model — the tests only need "is this well-formed".
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// --- metrics registry ---

TEST(Metrics, CounterAccumulatesAndRejectsNegative) {
  obs::Counter c;
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  EXPECT_THROW(c.inc(-1.0), std::invalid_argument);
  c.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(Metrics, LabelsDistinguishSeries) {
  obs::Registry registry;
  registry.counter("ps.updates_total", {{"shard", "0"}}).inc(3.0);
  registry.counter("ps.updates_total", {{"shard", "1"}}).inc(5.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("ps.updates_total", {{"shard", "0"}}).value(), 3.0);
  EXPECT_DOUBLE_EQ(
      registry.counter("ps.updates_total", {{"shard", "1"}}).value(), 5.0);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(Metrics, LabelOrderDoesNotSplitSeries) {
  obs::Registry registry;
  registry.counter("x", {{"a", "1"}, {"b", "2"}}).inc();
  registry.counter("x", {{"b", "2"}, {"a", "1"}}).inc();
  EXPECT_EQ(registry.series_count(), 1u);
  EXPECT_DOUBLE_EQ(registry.counter("x", {{"a", "1"}, {"b", "2"}}).value(),
                   2.0);
}

TEST(Metrics, KindMixingThrows) {
  obs::Registry registry;
  registry.counter("train.steps_total").inc();
  EXPECT_THROW(registry.gauge("train.steps_total"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("train.steps_total"),
               std::invalid_argument);
}

TEST(Metrics, HistogramStats) {
  obs::Histogram h({1.0, 10.0, 100.0});
  for (double v : {0.5, 2.0, 3.0, 50.0, 500.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  // Bucket counts: <=1: 1, <=10: 2, <=100: 1, +inf: 1.
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  // Quantiles stay within the observed range and are monotone.
  const double p50 = h.quantile(0.5);
  const double p90 = h.quantile(0.9);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p90, h.max());
  EXPECT_LE(p50, p90);
  EXPECT_THROW(h.quantile(1.5), std::invalid_argument);
}

TEST(Metrics, HistogramBoundsMustIncrease) {
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram(std::vector<double>{}), std::invalid_argument);
}

TEST(Metrics, SnapshotIsSortedAndComplete) {
  obs::Registry registry;
  registry.gauge("b.gauge").set(7.0);
  registry.counter("a.counter").inc(2.0);
  registry.histogram("c.hist").observe(1.0);
  const auto rows = registry.snapshot();
  ASSERT_GE(rows.size(), 2u + 8u);  // counter + gauge + 8 histogram fields
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end(),
                             [](const auto& x, const auto& y) {
                               return std::tie(x.name, x.field) <
                                      std::tie(y.name, y.field);
                             }));
  EXPECT_EQ(rows.front().name, "a.counter");
  EXPECT_EQ(rows.front().kind, "counter");
  EXPECT_DOUBLE_EQ(rows.front().value, 2.0);
}

TEST(Metrics, PrefixFilteredSnapshot) {
  obs::Registry registry;
  registry.counter("faults.injected_total").inc();
  registry.counter("faults.suppressed_total").inc(3.0);
  registry.counter("train.steps_total").inc(10.0);
  registry.gauge("storage.blobs").set(2.0);

  const auto faults = registry.snapshot(std::string_view("faults."));
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].name, "faults.injected_total");
  EXPECT_EQ(faults[1].name, "faults.suppressed_total");

  // Multi-prefix form: union of the matches, still globally sorted.
  const auto picked =
      registry.snapshot(std::vector<std::string>{"storage.", "train."});
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].name, "storage.blobs");
  EXPECT_EQ(picked[1].name, "train.steps_total");

  // A prefix is a name prefix, not a substring match; and the empty
  // prefix list yields nothing.
  EXPECT_TRUE(registry.snapshot(std::string_view("aults")).empty());
  EXPECT_TRUE(registry.snapshot(std::vector<std::string>{}).empty());
}

TEST(Metrics, CsvExportParsesBack) {
  obs::Registry registry;
  registry.counter("steps", {{"worker", "a,b"}}).inc(4.0);  // comma in label
  std::ostringstream out;
  registry.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(util::csv_parse_line(line),
            (std::vector<std::string>{"kind", "name", "labels", "field",
                                      "value"}));
  ASSERT_TRUE(std::getline(in, line));
  const auto fields = util::csv_parse_line(line);
  ASSERT_EQ(fields.size(), 5u);
  EXPECT_EQ(fields[0], "counter");
  EXPECT_EQ(fields[1], "steps");
  EXPECT_EQ(fields[2], "worker=a,b");
  EXPECT_EQ(fields[3], "value");
}

TEST(Metrics, TextExportAndReset) {
  obs::Registry registry;
  registry.counter("train.steps_total").inc(12.0);
  std::ostringstream out;
  registry.write_text(out);
  EXPECT_NE(out.str().find("train.steps_total"), std::string::npos);
  EXPECT_NE(out.str().find("12"), std::string::npos);
  registry.reset_all();
  EXPECT_DOUBLE_EQ(registry.counter("train.steps_total").value(), 0.0);
  EXPECT_EQ(registry.series_count(), 1u);  // definition survives reset
}

// --- tracer ---

TEST(Tracer, CompleteSpansAndValidation) {
  obs::Tracer tracer;
  const auto track = tracer.track("worker-0");
  EXPECT_EQ(track, tracer.track("worker-0"));  // find-or-create is stable
  tracer.complete(track, "worker.compute", "train", 1.0, 2.5,
                  {{"local_step", "3"}});
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].duration(), 1.5);
  EXPECT_THROW(tracer.complete(track, "bad", "train", 2.0, 1.0),
               std::invalid_argument);
}

TEST(Tracer, BeginEndNesting) {
  obs::Tracer tracer;
  const auto track = tracer.track("chief");
  tracer.begin(track, "outer", "train", 0.0);
  tracer.begin(track, "inner", "train", 1.0);
  EXPECT_EQ(tracer.open_spans(track), 2u);
  tracer.end(track, 2.0);  // closes inner
  tracer.end(track, 3.0);  // closes outer
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "inner");
  EXPECT_EQ(tracer.spans()[1].name, "outer");
  EXPECT_THROW(tracer.end(track, 4.0), std::logic_error);
}

TEST(Tracer, ClearKeepsTracks) {
  obs::Tracer tracer;
  const auto track = tracer.track("storage");
  tracer.instant(track, "x", "storage", 1.0);
  tracer.counter("depth", 1.0, 2.0);
  EXPECT_EQ(tracer.record_count(), 2u);
  tracer.clear();
  EXPECT_EQ(tracer.record_count(), 0u);
  EXPECT_EQ(tracer.track("storage"), track);
}

// --- merging (per-replica bundles -> one campaign bundle) ---

TEST(Metrics, HistogramMergeAddsBuckets) {
  obs::Histogram a({1.0, 10.0});
  obs::Histogram b({1.0, 10.0});
  a.observe(0.5);
  a.observe(5.0);
  b.observe(5.0);
  b.observe(50.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 60.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 50.0);
  EXPECT_EQ(a.bucket_counts()[0], 1u);  // <= 1
  EXPECT_EQ(a.bucket_counts()[1], 2u);  // <= 10
  EXPECT_EQ(a.bucket_counts()[2], 1u);  // +inf
  // Merging an empty histogram is a no-op either direction.
  obs::Histogram empty({1.0, 10.0});
  a.merge(empty);
  EXPECT_EQ(a.count(), 4u);
}

TEST(Metrics, HistogramMergeRejectsDifferentBounds) {
  obs::Histogram a({1.0, 10.0});
  obs::Histogram b({1.0, 20.0});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Metrics, RegistryMergeCombinesEveryKind) {
  obs::Registry a;
  obs::Registry b;
  a.counter("steps").inc(3.0);
  b.counter("steps").inc(4.0);
  b.counter("only_b", {{"shard", "1"}}).inc();
  a.gauge("queue").set(2.0);
  b.gauge("queue").set(7.0);
  a.histogram("lat", {}, {1.0, 10.0}).observe(0.5);
  b.histogram("lat", {}, {1.0, 10.0}).observe(5.0);

  a.merge(b);
  EXPECT_DOUBLE_EQ(a.counter("steps").value(), 7.0);
  EXPECT_DOUBLE_EQ(a.counter("only_b", {{"shard", "1"}}).value(), 1.0);
  // Gauges are instantaneous readings: last merge wins.
  EXPECT_DOUBLE_EQ(a.gauge("queue").value(), 7.0);
  EXPECT_EQ(a.histogram("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.histogram("lat").sum(), 5.5);
}

TEST(Metrics, RegistryMergeCreatesHistogramWithSourceBounds) {
  obs::Registry a;
  obs::Registry b;
  b.histogram("lat", {}, {2.0, 4.0}).observe(3.0);
  a.merge(b);
  ASSERT_EQ(a.histogram("lat").bounds(), (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(a.histogram("lat").count(), 1u);
}

TEST(Tracer, MergeRemapsTracksWithPrefix) {
  obs::Tracer replica;
  const auto worker = replica.track("worker-0");
  replica.complete(worker, "step", "train", 0.0, 1.0);
  replica.instant(worker, "revoked", "cloud", 2.0);
  replica.counter("queue.depth", 1.0, 3.0);

  obs::Tracer campaign;
  campaign.complete(campaign.track("campaign"), "setup", "exp", 0.0, 0.5);
  campaign.merge(replica, "cell0/replica1/");

  ASSERT_EQ(campaign.spans().size(), 2u);
  const auto& names = campaign.track_names();
  const auto merged_track = campaign.spans()[1].track;
  EXPECT_EQ(names[merged_track], "cell0/replica1/worker-0");
  EXPECT_EQ(campaign.spans()[0].track, campaign.track("campaign"));
  ASSERT_EQ(campaign.instants().size(), 1u);
  EXPECT_EQ(names[campaign.instants()[0].track], "cell0/replica1/worker-0");
  ASSERT_EQ(campaign.counter_samples().size(), 1u);
  EXPECT_EQ(campaign.counter_samples()[0].name, "cell0/replica1/queue.depth");
}

TEST(Tracer, MergeSharesTracksWithoutPrefixAndSkipsOpenSpans) {
  obs::Tracer a;
  obs::Tracer b;
  const auto track_a = a.track("worker");
  const auto track_b = b.track("worker");
  a.complete(track_a, "x", "t", 0.0, 1.0);
  b.complete(track_b, "y", "t", 1.0, 2.0);
  b.begin(track_b, "open", "t", 3.0);  // never ended
  a.merge(b);
  ASSERT_EQ(a.spans().size(), 2u);
  EXPECT_EQ(a.spans()[1].name, "y");
  EXPECT_EQ(a.spans()[1].track, track_a);  // remapped by name onto "worker"
  EXPECT_EQ(a.track_names().size(), 1u);
  EXPECT_EQ(a.open_spans(track_a), 0u);  // open span did not cross
}

// --- exporters ---

TEST(Export, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("x\ny"), "x\\ny");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(Export, ChromeTraceIsValidJson) {
  obs::Tracer tracer;
  const auto worker = tracer.track("worker-0");
  const auto ps = tracer.track("ps-0");
  tracer.complete(worker, "worker.compute", "train", 0.0, 0.5);
  tracer.complete(ps, "ps.queue", "train", 0.25, 0.75, {{"shard", "0"}},
                  /*async=*/true);
  tracer.instant(worker, "worker.revoked", "train", 1.0);
  tracer.counter("ps.queue_depth/0", 0.5, 3.0);

  std::ostringstream out;
  obs::write_chrome_trace(tracer, out);
  const std::string json = out.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // sync span
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);  // async begin
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);  // async end
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("worker-0"), std::string::npos);
}

TEST(Export, JsonlEveryLineIsAnObject) {
  obs::Tracer tracer;
  const auto track = tracer.track("cloud");
  tracer.complete(track, "provider.startup", "cloud", 0.0, 42.0);
  tracer.instant(track, "provider.revoked", "cloud", 100.0);
  tracer.counter("x", 1.0, 2.0);

  std::ostringstream out;
  obs::write_trace_jsonl(tracer, out);
  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    EXPECT_EQ(line.front(), '{');
  }
  EXPECT_EQ(lines, 3);
  EXPECT_NE(out.str().find("\"track\":\"cloud\""), std::string::npos);
}

// --- global install / scoping ---

TEST(Obs, DisabledByDefault) {
  EXPECT_EQ(obs::telemetry(), nullptr);
  EXPECT_EQ(obs::registry(), nullptr);
  EXPECT_EQ(obs::tracer(), nullptr);
  EXPECT_FALSE(obs::enabled());
}

TEST(Obs, ScopedTelemetryInstallsAndRestores) {
  EXPECT_FALSE(obs::enabled());
  {
    obs::ScopedTelemetry outer;
    EXPECT_EQ(obs::registry(), &outer->registry);
    {
      obs::ScopedTelemetry inner;
      EXPECT_EQ(obs::registry(), &inner->registry);
    }
    EXPECT_EQ(obs::registry(), &outer->registry);  // restored, not cleared
  }
  EXPECT_FALSE(obs::enabled());
}

// --- engine profiler ---

TEST(SimProfiler, AttributesEventsToTags) {
  simcore::Simulator sim;
  obs::SimProfiler profiler;
  sim.set_observer(&profiler);
  sim.schedule_at(1.0, [] {}, "tag.a");
  sim.schedule_at(2.0, [&] { sim.schedule_after(1.0, [] {}, "tag.a"); },
                  "tag.b");
  sim.schedule_at(4.0, [] {});  // untagged
  sim.run();
  sim.set_observer(nullptr);

  EXPECT_EQ(profiler.total_scheduled(), 4u);
  EXPECT_EQ(profiler.total_fired(), 4u);
  EXPECT_GE(profiler.max_queue_depth(), 3u);
  ASSERT_EQ(profiler.tags().count("tag.a"), 1u);
  EXPECT_EQ(profiler.tags().at("tag.a").fired, 2u);
  EXPECT_EQ(profiler.tags().at("tag.b").fired, 1u);
  EXPECT_EQ(profiler.tags().at("(untagged)").fired, 1u);
  EXPECT_GE(profiler.total_wall_seconds(), 0.0);

  std::ostringstream report;
  profiler.write_report(report);
  EXPECT_NE(report.str().find("tag.a"), std::string::npos);
}

// --- cross-layer integration: a real session records into the bundle ---

TEST(Obs, TrainingRunProducesCrossLayerTelemetry) {
  obs::ScopedTelemetry telemetry;
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(41));
  cloud::ObjectStore storage(sim, util::Rng(42));

  train::SessionConfig config;
  config.ps_count = 2;
  config.checkpoint_interval_steps = 100;
  // Long enough that the forced revocation below lands mid-run (the two
  // K80 workers move at a few steps per second).
  config.max_steps = 2000;
  config.mode = train::FaultToleranceMode::kVanillaTf;
  train::TrainingSession session(sim, nn::resnet32(), config, util::Rng(43),
                                 &storage);

  // One worker arrives through the provider (for provider.startup).
  train::WorkerSpec spec;
  spec.gpu = cloud::GpuType::kK80;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_running = [&](cloud::InstanceId) { session.add_worker(spec); };
  cloud::InstanceRequest request;
  request.transient = false;  // no hazard; revocation is forced below
  provider.request_instance(request, std::move(callbacks));
  session.add_worker(spec);  // chief, present from t=0

  // Force a chief revocation + IP-reusing replacement -> rollback.
  sim.schedule_at(150.0, [&] {
    session.revoke_worker(*session.checkpoint_owner());
    session.add_worker(spec, 30.0, /*reuse_chief_ip=*/true);
  });
  sim.run();

  EXPECT_TRUE(session.finished());
  obs::Registry& registry = telemetry->registry;
  EXPECT_GE(registry.counter("train.steps_total").value(),
            static_cast<double>(config.max_steps));
  EXPECT_DOUBLE_EQ(registry.counter("train.rollbacks_total").value(), 1.0);
  EXPECT_GE(registry.counter("train.checkpoints_total").value(), 1.0);
  EXPECT_GE(registry.counter("storage.uploads_total").value(), 1.0);
  EXPECT_GE(registry.histogram("train.compute_seconds").count(), 2000u);

  std::set<std::string> span_names;
  std::set<std::string> categories;
  for (const auto& span : telemetry->tracer.spans()) {
    span_names.insert(span.name);
    categories.insert(span.category);
  }
  for (const auto& name :
       {"worker.compute", "ps.queue", "ps.apply", "chief.checkpoint",
        "storage.upload", "provider.startup"}) {
    EXPECT_EQ(span_names.count(name), 1u) << "missing span " << name;
  }
  EXPECT_GE(span_names.size(), 5u);
  EXPECT_GE(categories.size(), 3u);  // train, cloud, storage

  bool saw_rollback = false;
  for (const auto& instant : telemetry->tracer.instants()) {
    if (instant.name == "session.rollback") saw_rollback = true;
  }
  EXPECT_TRUE(saw_rollback);

  // The whole trace exports to valid Chrome JSON.
  std::ostringstream out;
  obs::write_chrome_trace(telemetry->tracer, out);
  EXPECT_TRUE(JsonChecker(out.str()).valid());
}

// With no telemetry installed, the same run works and records nothing.
TEST(Obs, DisabledTelemetryIsInert) {
  ASSERT_FALSE(obs::enabled());
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 50;
  train::TrainingSession session(sim, nn::resnet32(), config, util::Rng(3));
  session.add_worker(train::WorkerSpec{});
  sim.run();
  EXPECT_TRUE(session.finished());
}

}  // namespace
}  // namespace cmdare
