// The obs threading contract (obs/obs.hpp): the active Telemetry bundle
// is thread-local, every thread works against its own Registry/Tracer,
// and bundles are combined with merge() after the threads join. These
// tests are the TSan proof of that contract — run them under
// -DCMDARE_SANITIZE=thread.
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hpp"

namespace cmdare::obs {
namespace {

TEST(ObsConcurrency, InstallIsPerThread) {
  ScopedTelemetry mine;
  EXPECT_EQ(telemetry(), &mine.get());
  Telemetry* seen_before_install = &mine.get();
  Telemetry* seen_after_install = nullptr;
  std::thread other([&] {
    // A fresh thread starts with telemetry disabled, no matter what the
    // spawning thread has installed.
    seen_before_install = obs::telemetry();
    Telemetry bundle;
    install(&bundle);
    seen_after_install = obs::telemetry();
    install(nullptr);
  });
  other.join();
  EXPECT_EQ(seen_before_install, nullptr);
  EXPECT_NE(seen_after_install, nullptr);
  EXPECT_NE(seen_after_install, &mine.get());
  // The spawning thread's bundle survived untouched.
  EXPECT_EQ(telemetry(), &mine.get());
}

TEST(ObsConcurrency, ParallelBundlesMergeToExactTotals) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;

  std::vector<Telemetry> bundles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bundles, t] {
      install(&bundles[static_cast<std::size_t>(t)]);
      Counter& work = registry()->counter("work.items");
      Counter& mine = registry()->counter(
          "work.by_thread", {{"thread", std::to_string(t)}});
      Tracer& tracer = *obs::tracer();
      const std::uint32_t track = tracer.track("worker");
      for (int i = 0; i < kIncrements; ++i) {
        work.inc();
        mine.inc();
        registry()->histogram("work.value").observe(static_cast<double>(i));
        if (i % 1000 == 0) {
          tracer.complete(track, "chunk", "test", static_cast<double>(i),
                          static_cast<double>(i + 1));
        }
      }
      install(nullptr);
    });
  }
  for (auto& thread : threads) thread.join();

  // Fold in thread order after the join; totals must be exact.
  Telemetry total;
  for (int t = 0; t < kThreads; ++t) {
    const auto& bundle = bundles[static_cast<std::size_t>(t)];
    total.registry.merge(bundle.registry);
    total.tracer.merge(bundle.tracer, "t" + std::to_string(t) + "/");
  }
  EXPECT_DOUBLE_EQ(total.registry.counter("work.items").value(),
                   static_cast<double>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_DOUBLE_EQ(
        total.registry
            .counter("work.by_thread", {{"thread", std::to_string(t)}})
            .value(),
        static_cast<double>(kIncrements));
  }
  EXPECT_EQ(total.registry.histogram("work.value").count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(total.tracer.spans().size(),
            static_cast<std::size_t>(kThreads) * (kIncrements / 1000));
  EXPECT_EQ(total.tracer.track_names().size(),
            static_cast<std::size_t>(kThreads));
}

TEST(ObsConcurrency, ConcurrentLoggingIsSafe) {
  // The logger hands each message to the installed sink outside its own
  // lock, so a sink shared by threads synchronizes itself; each message
  // still arrives whole.
  std::mutex sink_mutex;
  std::vector<std::string> lines;
  util::set_log_sink([&](util::LogLevel, const std::string& message) {
    std::lock_guard<std::mutex> lock(sink_mutex);
    lines.push_back(message);
  });
  const util::LogLevel previous_level = util::log_level();
  util::set_log_level(util::LogLevel::kDebug);

  constexpr int kThreads = 4;
  std::vector<Telemetry> bundles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bundles, t] {
      install(&bundles[static_cast<std::size_t>(t)]);
      for (int i = 0; i < 200; ++i) {
        LOG_DEBUG << "thread " << t << " iteration " << i;
        registry()->counter("log.lines").inc();
      }
      install(nullptr);
    });
  }
  for (auto& thread : threads) thread.join();
  util::set_log_sink(nullptr);
  util::set_log_level(previous_level);

  Registry total;
  for (const auto& bundle : bundles) total.merge(bundle.registry);
  EXPECT_DOUBLE_EQ(total.counter("log.lines").value(), kThreads * 200.0);
  EXPECT_EQ(lines.size(), static_cast<std::size_t>(kThreads) * 200);
  for (const auto& line : lines) {
    EXPECT_NE(line.find("iteration"), std::string::npos);
  }
}

}  // namespace
}  // namespace cmdare::obs
