#include <gtest/gtest.h>

#include <cmath>

#include "ml/crossval.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/svr.hpp"
#include "util/rng.hpp"

namespace cmdare::ml {
namespace {

Dataset linear_data(int n, util::Rng& rng, double noise_sd = 0.0) {
  Dataset d({"x"});
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.add({x}, 2.0 * x + 0.5 + (noise_sd > 0 ? rng.normal(0, noise_sd) : 0.0));
  }
  return d;
}

Dataset saturating_data(int n, util::Rng& rng) {
  // Mimics the step-time ground truth: saturating ms/GFLOP curve.
  Dataset d({"x"});
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.add({x}, 0.1 + x * (0.4 + 0.6 * std::exp(-4.0 * x)));
  }
  return d;
}

TEST(Svr, LinearKernelFitsLinearData) {
  util::Rng rng(1);
  const Dataset d = linear_data(40, rng);
  SvrConfig config;
  config.kernel.type = KernelType::kLinear;
  config.penalty = 100.0;
  config.epsilon = 0.01;
  SupportVectorRegression svr(config);
  svr.fit(d);
  const auto preds = svr.predict_all(d);
  // Epsilon-insensitive loss: errors should be within ~epsilon.
  EXPECT_LT(mean_absolute_error(d.targets(), preds), 0.02);
}

TEST(Svr, RbfKernelFitsNonlinearData) {
  util::Rng rng(2);
  const Dataset d = saturating_data(60, rng);
  SvrConfig config;
  config.kernel.type = KernelType::kRbf;
  config.penalty = 100.0;
  config.epsilon = 0.01;
  SupportVectorRegression svr(config);
  svr.fit(d);
  const auto preds = svr.predict_all(d);
  EXPECT_LT(mean_absolute_error(d.targets(), preds), 0.02);
}

TEST(Svr, RbfBeatsLinearRegressionOnCurvedData) {
  util::Rng rng(3);
  const Dataset train = saturating_data(60, rng);
  const Dataset test = saturating_data(30, rng);

  LinearRegression ols;
  ols.fit(train);
  SvrConfig config;
  config.kernel.type = KernelType::kRbf;
  config.penalty = 100.0;
  config.epsilon = 0.01;
  SupportVectorRegression svr(config);
  svr.fit(train);

  const double ols_mae =
      mean_absolute_error(test.targets(), ols.predict_all(test));
  const double svr_mae =
      mean_absolute_error(test.targets(), svr.predict_all(test));
  EXPECT_LT(svr_mae, ols_mae);
}

TEST(Svr, PolynomialKernelFitsQuadratic) {
  util::Rng rng(4);
  Dataset d({"x"});
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    d.add({x}, x * x);
  }
  SvrConfig config;
  config.kernel.type = KernelType::kPolynomial;
  config.kernel.degree = 2;
  config.penalty = 100.0;
  config.epsilon = 0.01;
  SupportVectorRegression svr(config);
  svr.fit(d);
  EXPECT_NEAR(svr.predict(std::vector<double>{0.5}), 0.25, 0.05);
  EXPECT_NEAR(svr.predict(std::vector<double>{-0.5}), 0.25, 0.05);
}

TEST(Svr, WideEpsilonTubeYieldsSparseSolution) {
  util::Rng rng(5);
  const Dataset d = linear_data(40, rng, 0.01);
  SvrConfig wide;
  wide.kernel.type = KernelType::kLinear;
  wide.penalty = 10.0;
  wide.epsilon = 2.0;  // wider than the target range
  SupportVectorRegression svr(wide);
  svr.fit(d);
  // Everything fits inside the tube around 0 -> (almost) no support
  // vectors needed.
  EXPECT_LE(svr.support_vector_count(), 2u);
}

TEST(Svr, SmallEpsilonUsesMoreSupportVectors) {
  util::Rng rng(6);
  const Dataset d = linear_data(40, rng, 0.05);
  SvrConfig narrow;
  narrow.kernel.type = KernelType::kLinear;
  narrow.penalty = 50.0;
  narrow.epsilon = 0.001;
  SupportVectorRegression svr(narrow);
  svr.fit(d);
  EXPECT_GT(svr.support_vector_count(), 10u);
}

TEST(Svr, ConvergesWithinSweepCap) {
  util::Rng rng(7);
  const Dataset d = saturating_data(50, rng);
  SupportVectorRegression svr;
  svr.fit(d);
  EXPECT_LT(svr.sweeps_used(), svr.config().max_sweeps);
}

TEST(Svr, ValidatesConfigAndUsage) {
  EXPECT_THROW(SupportVectorRegression(SvrConfig{{}, -1.0, 0.1, 1e-6, 100,
                                                 true}),
               std::invalid_argument);
  SupportVectorRegression svr;
  EXPECT_THROW(svr.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(svr.support_vector_count(), std::logic_error);
  Dataset empty({"x"});
  EXPECT_THROW(svr.fit(empty), std::invalid_argument);
}

TEST(Svr, DimensionMismatchAtPredictThrows) {
  util::Rng rng(8);
  const Dataset d = linear_data(10, rng);
  SupportVectorRegression svr;
  svr.fit(d);
  EXPECT_THROW(svr.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Kernel, EvaluatesKnownValues) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {3.0, 4.0};
  KernelConfig linear{KernelType::kLinear, 2, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(kernel_eval(linear, a, b), 11.0);
  KernelConfig poly{KernelType::kPolynomial, 2, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(kernel_eval(poly, a, b), 144.0);  // (11+1)^2
  KernelConfig rbf{KernelType::kRbf, 2, 1.0, 0.5};
  EXPECT_NEAR(kernel_eval(rbf, a, b), std::exp(-0.5 * 8.0), 1e-12);
  EXPECT_NEAR(kernel_eval(rbf, a, a), 1.0, 1e-12);
}

TEST(Kernel, GammaHeuristicPositive) {
  Dataset d({"x"});
  d.add({0.0}, 0.0);
  d.add({1.0}, 0.0);
  d.add({2.0}, 0.0);
  EXPECT_GT(rbf_gamma_heuristic(d), 0.0);
  Dataset degenerate({"x"});
  degenerate.add({1.0}, 0.0);
  degenerate.add({1.0}, 0.0);
  EXPECT_DOUBLE_EQ(rbf_gamma_heuristic(degenerate), 1.0);
}

TEST(CrossVal, ReportsPerFoldErrors) {
  util::Rng rng(9);
  const Dataset d = linear_data(30, rng, 0.02);
  LinearRegression prototype;
  util::Rng cv_rng(10);
  const CrossValResult cv = cross_validate(prototype, d, 5, cv_rng);
  EXPECT_EQ(cv.fold_mae.size(), 5u);
  EXPECT_LT(cv.mean_mae, 0.05);
  EXPECT_GE(cv.sd_mae, 0.0);
}

TEST(GridSearch, CoversFullPaperGrid) {
  util::Rng rng(11);
  const Dataset d = linear_data(25, rng, 0.02);
  util::Rng gs_rng(12);
  const KernelConfig rbf{KernelType::kRbf, 2, 1.0, 1.0};
  const SvrGridSearchResult result = svr_grid_search(rbf, d, 5, gs_rng);
  // 10 penalties x 10 epsilons x 5 gamma scales (RBF only).
  EXPECT_EQ(result.grid.size(), 500u);
  EXPECT_DOUBLE_EQ(result.grid.front().penalty, 10.0);
  EXPECT_NEAR(result.grid.front().epsilon, 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(result.grid.back().penalty, 100.0);
  EXPECT_NEAR(result.grid.back().epsilon, 0.1, 1e-12);

  // Non-RBF kernels do not scan gamma: 10 x 10 points.
  const KernelConfig poly{KernelType::kPolynomial, 2, 1.0, 1.0};
  util::Rng gs_rng2(13);
  EXPECT_EQ(svr_grid_search(poly, d, 5, gs_rng2).grid.size(), 100u);
  // Best has the minimum mean MAE.
  for (const auto& point : result.grid) {
    EXPECT_GE(point.cv.mean_mae, result.best().cv.mean_mae);
  }
}

TEST(GridSearch, TunedSvrPredictsWell) {
  util::Rng rng(13);
  const Dataset train = saturating_data(50, rng);
  const Dataset test = saturating_data(20, rng);
  util::Rng gs_rng(14);
  const KernelConfig rbf{KernelType::kRbf, 2, 1.0, 1.0};
  const TunedSvr tuned = fit_tuned_svr(rbf, train, 5, gs_rng);
  const double mae =
      mean_absolute_error(test.targets(), tuned.model->predict_all(test));
  EXPECT_LT(mae, 0.03);
  EXPECT_GE(tuned.chosen.penalty, 10.0);
  EXPECT_LE(tuned.chosen.penalty, 100.0);
}

}  // namespace
}  // namespace cmdare::ml
