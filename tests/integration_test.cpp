// End-to-end integration: the full CM-DARE pipeline — measure, model,
// predict, train with revocations — wired together the way the paper's
// Section VI use cases describe.
#include <gtest/gtest.h>

#include "cmdare/checkpoint_modeling.hpp"
#include "cmdare/hetero.hpp"
#include "cmdare/resource_manager.hpp"
#include "cmdare/speed_modeling.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "stats/ecdf.hpp"

namespace cmdare::core {
namespace {

TEST(Integration, Equation4PredictsSimulatedTrainingTime) {
  // Paper Section VI-A: 0.8% prediction error for ResNet-32 with
  // N_w = 64K and I_c = 4K (stable cluster, no revocations).
  const nn::CnnModel model = nn::resnet32();

  // 1. Offline measurement + modeling on the full zoo.
  util::Rng measure_rng(1);
  const auto step_measurements = measure_step_times(
      nn::all_models(), {cloud::GpuType::kK80}, measure_rng, 600);
  util::Rng train_rng(2);
  const StepTimePredictor speed_predictor =
      StepTimePredictor::train(step_measurements, train_rng);
  util::Rng ckpt_rng(3);
  const auto ckpt_measurements =
      measure_checkpoint_times(nn::all_models(), ckpt_rng, 5);
  util::Rng ckpt_train_rng(4);
  const CheckpointTimePredictor ckpt_predictor =
      CheckpointTimePredictor::train(ckpt_measurements, ckpt_train_rng);

  // 2. Predict: 2x K80, N_w = 64K steps, I_c = 4K.
  const auto workers = train::worker_mix(2, 0, 0);
  const double speed =
      predict_cluster_speed(speed_predictor, workers, model.gflops());
  TrainingTimeParams params;
  params.total_steps = 64000;
  params.checkpoint_interval_steps = 4000;
  params.checkpoint_seconds = ckpt_predictor.predict_seconds(model);
  const TrainingTimeEstimate estimate =
      estimate_training_time(speed, params, {});

  // 3. Simulate the actual training.
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 64000;
  config.checkpoint_interval_steps = 4000;
  train::TrainingSession session(sim, model, config, util::Rng(5));
  for (const auto& w : workers) session.add_worker(w);
  sim.run();
  const double actual = session.trace().time_of_step(64000);

  // Paper reports 0.8%; warmup and queueing noise land us within a few
  // percent.
  EXPECT_NEAR(estimate.total_seconds, actual, actual * 0.05);
}

TEST(Integration, LifetimeCdfsFeedEquation5) {
  // Build empirical lifetime CDFs from the revocation model (the Fig. 8
  // data), then use them for an Eq. 5 estimate.
  const cloud::RevocationModel revocation_model;
  util::Rng rng(6);
  std::vector<double> lifetimes;
  for (int i = 0; i < 500; ++i) {
    const auto age = revocation_model.sample_revocation_age_seconds(
        cloud::Region::kUsCentral1, cloud::GpuType::kK80, 9.0, rng);
    lifetimes.push_back(age.value_or(cloud::kMaxTransientLifetimeSeconds));
  }
  const stats::Ecdf cdf(lifetimes);

  TrainingTimeParams params;
  params.total_steps = 64000;
  params.checkpoint_interval_steps = 4000;
  params.checkpoint_seconds = 3.84;
  params.provision_seconds = 90.0;
  params.replacement_seconds = 75.6;
  const double speed = 2 * 4.56;  // two K80 workers on ResNet-32
  const TrainingTimeEstimate est =
      estimate_training_time(speed, params, {&cdf, &cdf});
  // 64000 / 9.12 ~ 7018 s ~ 1.95 h of training: some revocation mass.
  EXPECT_GT(est.expected_revocations, 0.0);
  EXPECT_LT(est.expected_revocations, 2.0);
  EXPECT_GT(est.total_seconds, est.compute_seconds);
}

TEST(Integration, RevokedRunStillReachesTargetAndCostsMore) {
  // Same training twice: stable region vs churny region. The churny run
  // must see revocations and take longer, but still complete.
  const auto run_in_region = [&](cloud::Region region, std::uint64_t seed,
                                 int* revocations) {
    simcore::Simulator sim;
    cloud::CloudProvider provider(sim, util::Rng(seed));
    RunConfig config;
    config.session.max_steps = 120000;
    config.session.checkpoint_interval_steps = 4000;
    config.workers = train::worker_mix(2, 0, 0, region);
    TransientTrainingRun run(provider, nn::resnet15(), config,
                             util::Rng(seed + 1));
    run.start();
    sim.run();
    EXPECT_TRUE(run.session().finished());
    *revocations = run.revocations_seen();
    return run.elapsed_seconds();
  };

  int stable_revocations = 0, churny_revocations = 0;
  const double stable =
      run_in_region(cloud::Region::kUsWest1, 10, &stable_revocations);
  const double churny =
      run_in_region(cloud::Region::kEuropeWest1, 20, &churny_revocations);
  EXPECT_GT(churny_revocations, stable_revocations);
  EXPECT_GT(churny, stable * 0.95);  // usually strictly longer
}

TEST(Integration, CheckpointingBoundsVanillaTfWorkLoss) {
  // Figure 11's setup as an integration property: with vanilla TF and an
  // old-IP replacement, the time to the next checkpoint grows with the
  // replacement delay.
  const auto time_to_step_4000 = [&](double replacement_delay) {
    simcore::Simulator sim;
    train::SessionConfig config;
    config.checkpoint_interval_steps = 4000;
    config.max_steps = 4000;
    config.mode = train::FaultToleranceMode::kVanillaTf;
    train::TrainingSession session(sim, nn::resnet15(), config,
                                   util::Rng(30));
    const auto chief = session.add_worker(train::worker_mix(2, 0, 0)[0]);
    session.add_worker(train::worker_mix(2, 0, 0)[1]);

    // Revoke the chief at 1000 global steps.
    session.on_step = [&](long step, simcore::SimTime) {
      if (step == 1000 && session.worker_active(chief)) {
        session.revoke_worker(chief);
        sim.schedule_after(replacement_delay, [&session] {
          session.add_worker(train::worker_mix(1, 0, 0)[0], 0.0,
                             /*reuse_chief_ip=*/true);
        });
      }
    };
    sim.run();
    EXPECT_TRUE(session.finished());
    return sim.now();
  };

  const double quick = time_to_step_4000(20.0);
  const double slow = time_to_step_4000(200.0);
  EXPECT_GT(slow, quick + 150.0);
}

}  // namespace
}  // namespace cmdare::core
