// Parameterized property tests: invariants that must hold across sweeps of
// models, GPUs, cluster sizes, and hyperparameters.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cloud/calibration.hpp"
#include "cloud/revocation.hpp"
#include "ml/crossval.hpp"
#include "ml/svr.hpp"
#include "nn/checkpoint_size.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "stats/descriptive.hpp"
#include "train/session.hpp"

namespace cmdare {
namespace {

// ---------------------------------------------------------------------------
// Ground-truth step-time invariants across the (model, GPU) grid.
// ---------------------------------------------------------------------------

class StepTimeProperty
    : public ::testing::TestWithParam<std::tuple<int, cloud::GpuType>> {};

TEST_P(StepTimeProperty, StepTimePositiveAndNoiseBounded) {
  const auto [model_index, gpu] = GetParam();
  const nn::CnnModel model = nn::all_models()[model_index];
  const double mean_ms = cloud::mean_step_compute_ms(gpu, model);
  EXPECT_GT(mean_ms, 0.0);
  EXPECT_LT(mean_ms, 10000.0);

  util::Rng rng(1234 + model_index);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(
        cloud::sample_step_compute_seconds(gpu, model, 500, rng));
  }
  // Post-warmup CoV stays near the Fig. 2 target of <= 0.02.
  EXPECT_LT(stats::coefficient_of_variation(samples), 0.035);
  EXPECT_NEAR(stats::mean(samples) * 1000.0, mean_ms, mean_ms * 0.01);
}

TEST_P(StepTimeProperty, WarmupOnlySlowsDown) {
  const auto [model_index, gpu] = GetParam();
  const nn::CnnModel model = nn::all_models()[model_index];
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  const double early =
      cloud::sample_step_compute_seconds(gpu, model, 0, rng_a);
  const double late =
      cloud::sample_step_compute_seconds(gpu, model, 1000, rng_b);
  EXPECT_GT(early, late);  // identical noise, warmup factor differs
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllGpus, StepTimeProperty,
    ::testing::Combine(::testing::Range(0, 20),
                       ::testing::Values(cloud::GpuType::kK80,
                                         cloud::GpuType::kP100,
                                         cloud::GpuType::kV100)));

// ---------------------------------------------------------------------------
// Cluster scaling invariants (Fig. 4's law): speed grows with workers and
// never exceeds min(additive speed, PS capacity).
// ---------------------------------------------------------------------------

class ClusterScalingProperty : public ::testing::TestWithParam<int> {};

TEST_P(ClusterScalingProperty, SpeedBoundedByAdditiveAndPsCapacity) {
  const int workers = GetParam();
  const nn::CnnModel model = nn::resnet32();
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 1500 * workers;
  train::TrainingSession session(sim, model, config,
                                 util::Rng(7000 + workers));
  for (const auto& w : train::worker_mix(0, workers, 0)) {
    session.add_worker(w);
  }
  sim.run();
  const double speed =
      session.trace().mean_speed(200, config.max_steps);

  const double single = 1000.0 / cloud::mean_step_compute_ms(
                                     cloud::GpuType::kP100, model);
  const double additive = workers * single;
  const double ps_capacity =
      1.0 / cloud::ps_update_service_seconds(model, 1);
  EXPECT_LT(speed, std::min(additive, ps_capacity) * 1.06);
  EXPECT_GT(speed, std::min(additive, ps_capacity) * 0.85);
}

INSTANTIATE_TEST_SUITE_P(OneToEightWorkers, ClusterScalingProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

// ---------------------------------------------------------------------------
// Revocation-model invariants across every measured (region, GPU) pair.
// ---------------------------------------------------------------------------

class RevocationProperty : public ::testing::TestWithParam<int> {};

TEST_P(RevocationProperty, ProbabilityMatchesTargetAndHazardNonNegative) {
  const auto& target = cloud::revocation_targets()[GetParam()];
  const cloud::RevocationModel model;
  const double p = model.revocation_probability(
      target.region, target.gpu, cloud::kReferenceLaunchLocalHour);
  EXPECT_NEAR(p, target.revoked_fraction, 0.01);
  // Hazard is finite and non-negative over the whole lifetime.
  for (double age = 0.0; age < 24.0; age += 1.7) {
    const double h =
        model.hazard_per_hour(target.region, target.gpu, 9.0, age);
    EXPECT_GE(h, 0.0);
    EXPECT_LT(h, 100.0);
  }
}

TEST_P(RevocationProperty, ProbabilityMonotoneInHorizon) {
  const auto& target = cloud::revocation_targets()[GetParam()];
  const cloud::RevocationModel model;
  double prev = 0.0;
  for (double horizon = 4.0; horizon <= 24.0; horizon += 4.0) {
    const double p = model.revocation_probability(target.region, target.gpu,
                                                  9.0, horizon);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTableVPairs, RevocationProperty,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// SVR epsilon-tube property across the paper's hyperparameter grid.
// ---------------------------------------------------------------------------

class SvrGridProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SvrGridProperty, TrainResidualsRespectEpsilonTube) {
  const auto [penalty, epsilon] = GetParam();
  util::Rng rng(99);
  ml::Dataset d({"x"});
  for (int i = 0; i < 30; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.add({x}, 0.2 + 0.6 * x);
  }
  ml::SvrConfig config;
  config.kernel.type = ml::KernelType::kRbf;
  config.penalty = penalty;
  config.epsilon = epsilon;
  ml::SupportVectorRegression svr(config);
  svr.fit(d);
  // On noiseless data with a large penalty, training residuals must stay
  // within (about) the epsilon tube.
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double residual = std::abs(svr.predict(d.x(i)) - d.y(i));
    EXPECT_LE(residual, epsilon + 0.02)
        << "penalty=" << penalty << " epsilon=" << epsilon;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGridCorners, SvrGridProperty,
    ::testing::Combine(::testing::Values(10.0, 50.0, 100.0),
                       ::testing::Values(0.01, 0.05, 0.1)));

// ---------------------------------------------------------------------------
// Checkpoint-size invariants across the whole zoo.
// ---------------------------------------------------------------------------

class CheckpointSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointSizeProperty, SizesConsistent) {
  const nn::CnnModel model = nn::all_models()[GetParam()];
  const auto sizes = nn::checkpoint_sizes(model);
  EXPECT_GT(sizes.data_bytes, 4 * model.parameter_count());
  EXPECT_GT(sizes.index_bytes, 0u);
  EXPECT_GT(sizes.meta_bytes, sizes.index_bytes);  // graph-def dominates
  EXPECT_EQ(sizes.total_bytes(),
            sizes.data_bytes + sizes.index_bytes + sizes.meta_bytes);
  // Checkpoint duration positive and model-ordering preserved vs a tiny
  // reference model.
  const double t = cloud::mean_checkpoint_seconds(sizes.total_bytes());
  EXPECT_GT(t, cloud::CheckpointTimeModel{}.base_seconds);
}

INSTANTIATE_TEST_SUITE_P(AllModels, CheckpointSizeProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace cmdare
