#include <gtest/gtest.h>

#include "cmdare/bottleneck.hpp"
#include "cmdare/hetero.hpp"
#include "cmdare/profiler.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"

namespace cmdare::core {
namespace {

StepTimePredictor trained_predictor() {
  util::Rng rng(100);
  const auto measurements = measure_step_times(
      nn::all_models(),
      {cloud::GpuType::kK80, cloud::GpuType::kP100, cloud::GpuType::kV100},
      rng, 500);
  util::Rng train_rng(101);
  return StepTimePredictor::train(measurements, train_rng);
}

TEST(Hetero, ClusterSpeedIsSumOfWorkerSpeeds) {
  const StepTimePredictor predictor = trained_predictor();
  const double gflops = nn::resnet32().gflops();
  const double k80 = predictor.predict_speed(cloud::GpuType::kK80, gflops);
  const double p100 = predictor.predict_speed(cloud::GpuType::kP100, gflops);
  const double v100 = predictor.predict_speed(cloud::GpuType::kV100, gflops);
  const double cluster = predict_cluster_speed(
      predictor, train::worker_mix(2, 1, 1), gflops);
  EXPECT_NEAR(cluster, 2 * k80 + p100 + v100, 1e-9);
  EXPECT_THROW(predict_cluster_speed(predictor, {}, gflops),
               std::invalid_argument);
}

TEST(Hetero, Equation4WithoutRevocations) {
  TrainingTimeParams params;
  params.total_steps = 64000;
  params.checkpoint_interval_steps = 4000;
  params.checkpoint_seconds = 3.84;
  const TrainingTimeEstimate est =
      estimate_training_time(10.0, params, {});
  EXPECT_NEAR(est.compute_seconds, 6400.0, 1e-9);
  EXPECT_NEAR(est.checkpoint_seconds, 16 * 3.84, 1e-9);
  EXPECT_DOUBLE_EQ(est.expected_revocations, 0.0);
  EXPECT_NEAR(est.total_seconds, 6400.0 + 16 * 3.84, 1e-9);
}

TEST(Hetero, CheckpointCountUsesCeiling) {
  TrainingTimeParams params;
  params.total_steps = 4100;  // 2 checkpoints: ceil(4100/4000)
  params.checkpoint_interval_steps = 4000;
  params.checkpoint_seconds = 4.0;
  const TrainingTimeEstimate est = estimate_training_time(10.0, params, {});
  EXPECT_NEAR(est.checkpoint_seconds, 8.0, 1e-9);
}

TEST(Hetero, Equation5SumsWorkerRevocationProbabilities) {
  // Two workers, lifetimes uniform on {100, 300, 500} seconds. For a
  // 300-second training run Pr(R) = 2/3 each.
  const stats::Ecdf cdf(std::vector<double>{100.0, 300.0, 500.0});
  TrainingTimeParams params;
  params.total_steps = 3000;  // at 10 steps/s -> 300 s
  params.provision_seconds = 0.0;
  params.replacement_seconds = 0.0;
  const TrainingTimeEstimate est =
      estimate_training_time(10.0, params, {&cdf, &cdf});
  EXPECT_NEAR(est.expected_revocations, 2.0 * (2.0 / 3.0), 1e-9);
}

TEST(Hetero, RevocationOverheadFeedsBackIntoDuration) {
  // Long provisioning pushes the duration past the next CDF step on the
  // second fixed-point iteration.
  const stats::Ecdf cdf(std::vector<double>{100.0, 350.0});
  TrainingTimeParams params;
  params.total_steps = 3000;  // 300 s of compute
  params.provision_seconds = 60.0;
  params.replacement_seconds = 40.0;
  const TrainingTimeEstimate one_pass =
      estimate_training_time(10.0, params, {&cdf}, 1);
  const TrainingTimeEstimate two_pass =
      estimate_training_time(10.0, params, {&cdf}, 2);
  // One pass: Pr at 300 s = 0.5; duration becomes 350 s.
  EXPECT_NEAR(one_pass.expected_revocations, 0.5, 1e-9);
  // Second pass re-evaluates at 350 s where F = 1.0.
  EXPECT_NEAR(two_pass.expected_revocations, 1.0, 1e-9);
  EXPECT_GT(two_pass.total_seconds, one_pass.total_seconds);
}

TEST(Hetero, ValidatesArguments) {
  TrainingTimeParams params;
  params.total_steps = 100;
  EXPECT_THROW(estimate_training_time(0.0, params, {}),
               std::invalid_argument);
  EXPECT_THROW(estimate_training_time(1.0, TrainingTimeParams{}, {}),
               std::invalid_argument);
  EXPECT_THROW(estimate_training_time(1.0, params, {nullptr}),
               std::invalid_argument);
  EXPECT_THROW(estimate_training_time(1.0, params, {}, 0),
               std::invalid_argument);
}

TEST(Profiler, WindowsSpeedsOverSteps) {
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 500;
  train::TrainingSession session(sim, nn::resnet15(), config, util::Rng(1));
  PerformanceProfiler profiler(100);
  profiler.attach(session);
  train::WorkerSpec spec;
  spec.gpu = cloud::GpuType::kV100;
  session.add_worker(spec);
  sim.run();
  EXPECT_EQ(profiler.samples().size(), 5u);
  EXPECT_TRUE(profiler.latest_speed().has_value());
  EXPECT_GT(*profiler.latest_speed(), 0.0);
}

TEST(Profiler, MeanSinceFiltersByTime) {
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 1000;
  train::TrainingSession session(sim, nn::resnet15(), config, util::Rng(2));
  PerformanceProfiler profiler(100);
  profiler.attach(session);
  train::WorkerSpec spec;
  spec.gpu = cloud::GpuType::kK80;
  session.add_worker(spec);
  sim.run();
  // Warmup inflates the first windows; post-30 s mean is faster than the
  // all-window mean.
  const double all = *profiler.mean_speed_since(0.0);
  const double post_warmup = *profiler.mean_speed_since(30.0);
  EXPECT_GT(post_warmup, all);
  EXPECT_FALSE(profiler.mean_speed_since(1e9).has_value());
}

TEST(Profiler, ChainsExistingOnStepHook) {
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 50;
  train::TrainingSession session(sim, nn::resnet15(), config, util::Rng(3));
  int hook_calls = 0;
  session.on_step = [&](long, simcore::SimTime) { ++hook_calls; };
  PerformanceProfiler profiler(10);
  profiler.attach(session);
  train::WorkerSpec spec;
  spec.gpu = cloud::GpuType::kV100;
  session.add_worker(spec);
  sim.run();
  EXPECT_EQ(hook_calls, 50);
}

TEST(Bottleneck, FlagsSaturatedCluster) {
  // 8x P100 on ResNet-32: predicted additive speed ~97 steps/s, measured
  // ~42 -> deficit way over 6.7%.
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 6000;
  train::TrainingSession session(sim, nn::resnet32(), config, util::Rng(4));
  PerformanceProfiler profiler;
  profiler.attach(session);
  for (const auto& w : train::worker_mix(0, 8, 0)) session.add_worker(w);
  sim.run();

  const BottleneckDetector detector;
  const double predicted = 8.0 / 0.08203;  // additive prediction
  const BottleneckReport report = detector.check(predicted, profiler);
  EXPECT_TRUE(report.flagged);
  EXPECT_GT(report.deficit_fraction, 0.3);
  EXPECT_NE(report.advice.find("parameter server"), std::string::npos);
}

TEST(Bottleneck, DoesNotFlagHealthyCluster) {
  simcore::Simulator sim;
  train::SessionConfig config;
  config.max_steps = 4000;
  train::TrainingSession session(sim, nn::resnet32(), config, util::Rng(5));
  PerformanceProfiler profiler;
  profiler.attach(session);
  for (const auto& w : train::worker_mix(2, 0, 0)) session.add_worker(w);
  sim.run();

  const BottleneckDetector detector;
  const double predicted = 2.0 / 0.2193;
  const BottleneckReport report = detector.check(predicted, profiler);
  EXPECT_FALSE(report.flagged);
  EXPECT_LT(report.deficit_fraction, detector.config().threshold);
}

TEST(Bottleneck, Validates) {
  EXPECT_THROW(BottleneckDetector(BottleneckConfig{-1.0, 0.067}),
               std::invalid_argument);
  const BottleneckDetector detector;
  PerformanceProfiler profiler;
  EXPECT_THROW(detector.check(0.0, profiler), std::invalid_argument);
  const BottleneckReport report = detector.check(1.0, profiler);
  EXPECT_FALSE(report.flagged);  // no measurements yet
}

}  // namespace
}  // namespace cmdare::core
