// Replacement paths around revocations: warm vs cold overhead
// distributions (Section V-D, Figure 10), termination while an instance
// is still PROVISIONING, and the 30 s preemption-notice timing contract.
#include <gtest/gtest.h>

#include <vector>

#include "cloud/provider.hpp"
#include "cmdare/resource_manager.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "stats/descriptive.hpp"
#include "train/cluster.hpp"
#include "train/replacement.hpp"

namespace cmdare {
namespace {

TEST(ReplacementSampling, ColdStartsCostMoreThanWarmStarts) {
  const nn::CnnModel model = nn::resnet15();
  util::Rng rng(1);
  std::vector<double> warm;
  std::vector<double> cold;
  for (int i = 0; i < 400; ++i) {
    warm.push_back(train::sample_warm_replacement_seconds(model, rng));
    cold.push_back(train::sample_cold_replacement_seconds(model, rng));
  }
  for (double v : warm) EXPECT_GT(v, 0.0);
  for (double v : cold) EXPECT_GT(v, 0.0);
  // Cold start = warm-start work plus environment prep + shard download,
  // so the whole distribution sits higher, not just the mean.
  EXPECT_GT(stats::mean(cold), stats::mean(warm));
  EXPECT_GT(stats::quantile(cold, 0.10), stats::quantile(warm, 0.50));
}

TEST(ReplacementSampling, WarmAndColdScaleWithModelSize) {
  // Graph rebuild / shard size grow with the model, and so should the
  // sampled overheads (resnet-32 vs resnet-15 means).
  util::Rng rng(2);
  std::vector<double> small_cold;
  std::vector<double> big_cold;
  for (int i = 0; i < 400; ++i) {
    small_cold.push_back(
        train::sample_cold_replacement_seconds(nn::resnet15(), rng));
    big_cold.push_back(
        train::sample_cold_replacement_seconds(nn::resnet32(), rng));
  }
  EXPECT_GT(stats::mean(big_cold), stats::mean(small_cold));
}

TEST(ProviderLifecycle, TerminateDuringProvisioningFiresNoCallbacks) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(3));
  bool running = false;
  bool revoked = false;
  bool noticed = false;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_running = [&](cloud::InstanceId) { running = true; };
  callbacks.on_revoked = [&](cloud::InstanceId) { revoked = true; };
  callbacks.on_preemption_notice = [&](cloud::InstanceId) { noticed = true; };
  const cloud::InstanceId id =
      provider.request_instance({}, std::move(callbacks));
  ASSERT_EQ(provider.record(id).state, cloud::InstanceState::kProvisioning);

  // Revoke-equivalent customer action mid-PROVISIONING: the instance must
  // go straight to TERMINATED and none of the lifecycle callbacks fire.
  sim.run_until(1.0);
  provider.terminate(id);
  sim.run();
  EXPECT_EQ(provider.record(id).state, cloud::InstanceState::kTerminated);
  EXPECT_FALSE(running);
  EXPECT_FALSE(revoked);
  EXPECT_FALSE(noticed);
  EXPECT_LT(provider.record(id).running_at, 0.0);  // never reached RUNNING
  EXPECT_DOUBLE_EQ(provider.instance_cost(id), 0.0);
}

TEST(ProviderLifecycle, NoticeFiresExactlyThirtySecondsBeforeKill) {
  // Sample until a revocation with a notice occurs; europe-west1 K80s
  // revoke young (Table V), so a handful of instances suffices.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(4));
  int checked = 0;
  for (int i = 0; i < 20; ++i) {
    cloud::InstanceRequest request;
    request.region = cloud::Region::kEuropeWest1;
    double notice_at = -1.0;
    double revoked_at = -1.0;
    cloud::InstanceCallbacks callbacks;
    callbacks.on_preemption_notice = [&](cloud::InstanceId) {
      notice_at = sim.now();
    };
    callbacks.on_revoked = [&](cloud::InstanceId) { revoked_at = sim.now(); };
    const cloud::InstanceId id =
        provider.request_instance(request, std::move(callbacks));
    sim.run();
    if (provider.record(id).state == cloud::InstanceState::kRevoked &&
        notice_at >= 0.0) {
      ASSERT_GE(revoked_at, 0.0);
      EXPECT_NEAR(revoked_at - notice_at, cloud::kPreemptionNoticeSeconds,
                  1e-6);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(ProviderLifecycle, ExpiryAtLifetimeCapCarriesNotice) {
  // An instance that survives to the 24 h cap is also killed with the
  // standard notice (the cap is a scheduled revocation, not a crash).
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(5));
  for (int i = 0; i < 40; ++i) {
    cloud::InstanceRequest request;
    request.region = cloud::Region::kUsCentral1;  // longest-lived (Table V)
    double notice_at = -1.0;
    cloud::InstanceCallbacks callbacks;
    callbacks.on_preemption_notice = [&](cloud::InstanceId) {
      notice_at = sim.now();
    };
    const cloud::InstanceId id =
        provider.request_instance(request, std::move(callbacks));
    sim.run();
    if (provider.record(id).state == cloud::InstanceState::kExpired) {
      const double ended = provider.record(id).ended_at;
      EXPECT_NEAR(ended - notice_at, cloud::kPreemptionNoticeSeconds, 1e-6);
      return;
    }
  }
  FAIL() << "no instance reached the 24 h lifetime cap";
}

}  // namespace
}  // namespace cmdare

namespace cmdare::core {

/// Test seam (befriended by TransientTrainingRun): drives the private
/// provider-event handlers directly to simulate event orderings the
/// provider would normally serialize — specifically a revocation notice
/// and a heartbeat-timeout detection racing for the same instance.
class TransientTrainingRunTestPeer {
 public:
  static void failure_detected(TransientTrainingRun& run,
                               cloud::InstanceId id) {
    run.handle_failure_detected(id);
  }
  static void revoked(TransientTrainingRun& run, cloud::InstanceId id) {
    run.handle_revoked(id);
  }
};

namespace {

RunConfig supervised_single_worker(long steps) {
  RunConfig config;
  config.session.max_steps = steps;
  config.session.checkpoint_interval_steps = 2000;
  config.workers = train::worker_mix(1, 0, 0);
  // europe-west1 K80s die young (Table V), guaranteeing a natural
  // revocation well before a long run completes.
  for (auto& w : config.workers) w.region = cloud::Region::kEuropeWest1;
  config.supervision.enabled = true;
  return config;
}

TEST(SupervisedReplacement, LateRevocationAfterDetectionIsStale) {
  // Ordering 1: the detector flags a worker first (false positive), the
  // run fences and replaces it, and THEN the revocation event for the
  // same instance arrives. The late event must be ignored — a second
  // replacement would double-fill the slot.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(40));
  TransientTrainingRun run(provider, nn::resnet15(),
                           supervised_single_worker(20000), util::Rng(41));
  run.start();
  sim.run_until(600.0);

  bool found = false;
  cloud::InstanceId live = 0;
  for (const cloud::InstanceRecord& record : provider.records()) {
    if (record.state == cloud::InstanceState::kRunning) {
      live = record.id;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "worker never reached RUNNING";

  TransientTrainingRunTestPeer::failure_detected(run, live);
  EXPECT_EQ(run.fenced_workers(), 1);
  EXPECT_EQ(run.replacements_requested(), 1);
  const int stale_before = run.stale_events_ignored();

  // The racing revocation for the fenced instance arrives late.
  TransientTrainingRunTestPeer::revoked(run, live);
  EXPECT_EQ(run.replacements_requested(), 1);  // no double replacement
  EXPECT_EQ(run.stale_events_ignored(), stale_before + 1);

  sim.run();
  EXPECT_TRUE(run.session().finished());
}

TEST(SupervisedReplacement, LateDetectionAfterNoticedRevocationIsStale) {
  // Ordering 2: a noticed revocation replaces the worker through the
  // normal path; a detection verdict for the same instance lands
  // afterwards. With no pending deferred replacement it must be stale.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(42));
  // 2M steps at single-K80 speed outlasts the 24 h preemptible lifetime
  // cap, so a (noticed) revocation is guaranteed regardless of seed.
  TransientTrainingRun run(provider, nn::resnet15(),
                           supervised_single_worker(2000000), util::Rng(43));
  run.start();

  double t = 0.0;
  while (run.revocations_seen() == 0 && t < 26.0 * 3600.0) {
    t += 600.0;
    sim.run_until(t);
  }
  ASSERT_GT(run.revocations_seen(), 0) << "no revocation within 26 h";
  ASSERT_FALSE(run.session().finished());

  // The market hazard ends an instance as REVOKED; the 24 h preemptible
  // lifetime cap ends it as EXPIRED. Both arrive through on_revoked.
  bool found = false;
  cloud::InstanceId dead = 0;
  for (const cloud::InstanceRecord& record : provider.records()) {
    if (record.state == cloud::InstanceState::kRevoked ||
        record.state == cloud::InstanceState::kExpired) {
      dead = record.id;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  const int replacements = run.replacements_requested();
  const int stale_before = run.stale_events_ignored();
  TransientTrainingRunTestPeer::failure_detected(run, dead);
  EXPECT_EQ(run.replacements_requested(), replacements);
  EXPECT_EQ(run.detected_failures(), 0);
  EXPECT_EQ(run.stale_events_ignored(), stale_before + 1);
}

}  // namespace
}  // namespace cmdare::core
