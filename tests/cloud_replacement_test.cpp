// Replacement paths around revocations: warm vs cold overhead
// distributions (Section V-D, Figure 10), termination while an instance
// is still PROVISIONING, and the 30 s preemption-notice timing contract.
#include <gtest/gtest.h>

#include <vector>

#include "cloud/provider.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"
#include "stats/descriptive.hpp"
#include "train/replacement.hpp"

namespace cmdare {
namespace {

TEST(ReplacementSampling, ColdStartsCostMoreThanWarmStarts) {
  const nn::CnnModel model = nn::resnet15();
  util::Rng rng(1);
  std::vector<double> warm;
  std::vector<double> cold;
  for (int i = 0; i < 400; ++i) {
    warm.push_back(train::sample_warm_replacement_seconds(model, rng));
    cold.push_back(train::sample_cold_replacement_seconds(model, rng));
  }
  for (double v : warm) EXPECT_GT(v, 0.0);
  for (double v : cold) EXPECT_GT(v, 0.0);
  // Cold start = warm-start work plus environment prep + shard download,
  // so the whole distribution sits higher, not just the mean.
  EXPECT_GT(stats::mean(cold), stats::mean(warm));
  EXPECT_GT(stats::quantile(cold, 0.10), stats::quantile(warm, 0.50));
}

TEST(ReplacementSampling, WarmAndColdScaleWithModelSize) {
  // Graph rebuild / shard size grow with the model, and so should the
  // sampled overheads (resnet-32 vs resnet-15 means).
  util::Rng rng(2);
  std::vector<double> small_cold;
  std::vector<double> big_cold;
  for (int i = 0; i < 400; ++i) {
    small_cold.push_back(
        train::sample_cold_replacement_seconds(nn::resnet15(), rng));
    big_cold.push_back(
        train::sample_cold_replacement_seconds(nn::resnet32(), rng));
  }
  EXPECT_GT(stats::mean(big_cold), stats::mean(small_cold));
}

TEST(ProviderLifecycle, TerminateDuringProvisioningFiresNoCallbacks) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(3));
  bool running = false;
  bool revoked = false;
  bool noticed = false;
  cloud::InstanceCallbacks callbacks;
  callbacks.on_running = [&](cloud::InstanceId) { running = true; };
  callbacks.on_revoked = [&](cloud::InstanceId) { revoked = true; };
  callbacks.on_preemption_notice = [&](cloud::InstanceId) { noticed = true; };
  const cloud::InstanceId id =
      provider.request_instance({}, std::move(callbacks));
  ASSERT_EQ(provider.record(id).state, cloud::InstanceState::kProvisioning);

  // Revoke-equivalent customer action mid-PROVISIONING: the instance must
  // go straight to TERMINATED and none of the lifecycle callbacks fire.
  sim.run_until(1.0);
  provider.terminate(id);
  sim.run();
  EXPECT_EQ(provider.record(id).state, cloud::InstanceState::kTerminated);
  EXPECT_FALSE(running);
  EXPECT_FALSE(revoked);
  EXPECT_FALSE(noticed);
  EXPECT_LT(provider.record(id).running_at, 0.0);  // never reached RUNNING
  EXPECT_DOUBLE_EQ(provider.instance_cost(id), 0.0);
}

TEST(ProviderLifecycle, NoticeFiresExactlyThirtySecondsBeforeKill) {
  // Sample until a revocation with a notice occurs; europe-west1 K80s
  // revoke young (Table V), so a handful of instances suffices.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(4));
  int checked = 0;
  for (int i = 0; i < 20; ++i) {
    cloud::InstanceRequest request;
    request.region = cloud::Region::kEuropeWest1;
    double notice_at = -1.0;
    double revoked_at = -1.0;
    cloud::InstanceCallbacks callbacks;
    callbacks.on_preemption_notice = [&](cloud::InstanceId) {
      notice_at = sim.now();
    };
    callbacks.on_revoked = [&](cloud::InstanceId) { revoked_at = sim.now(); };
    const cloud::InstanceId id =
        provider.request_instance(request, std::move(callbacks));
    sim.run();
    if (provider.record(id).state == cloud::InstanceState::kRevoked &&
        notice_at >= 0.0) {
      ASSERT_GE(revoked_at, 0.0);
      EXPECT_NEAR(revoked_at - notice_at, cloud::kPreemptionNoticeSeconds,
                  1e-6);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(ProviderLifecycle, ExpiryAtLifetimeCapCarriesNotice) {
  // An instance that survives to the 24 h cap is also killed with the
  // standard notice (the cap is a scheduled revocation, not a crash).
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(5));
  for (int i = 0; i < 40; ++i) {
    cloud::InstanceRequest request;
    request.region = cloud::Region::kUsCentral1;  // longest-lived (Table V)
    double notice_at = -1.0;
    cloud::InstanceCallbacks callbacks;
    callbacks.on_preemption_notice = [&](cloud::InstanceId) {
      notice_at = sim.now();
    };
    const cloud::InstanceId id =
        provider.request_instance(request, std::move(callbacks));
    sim.run();
    if (provider.record(id).state == cloud::InstanceState::kExpired) {
      const double ended = provider.record(id).ended_at;
      EXPECT_NEAR(ended - notice_at, cloud::kPreemptionNoticeSeconds, 1e-6);
      return;
    }
  }
  FAIL() << "no instance reached the 24 h lifetime cap";
}

}  // namespace
}  // namespace cmdare
