#include <gtest/gtest.h>

#include "cmdare/resource_manager.hpp"
#include "nn/model_zoo.hpp"
#include "simcore/simulator.hpp"

namespace cmdare::core {
namespace {

RunConfig small_run(long steps, int workers) {
  RunConfig config;
  config.session.max_steps = steps;
  config.session.checkpoint_interval_steps = 1000;
  config.workers = train::worker_mix(workers, 0, 0);
  return config;
}

TEST(TransientRun, CompletesTraining) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(1));
  TransientTrainingRun run(provider, nn::resnet15(), small_run(2000, 2),
                           util::Rng(2));
  bool completed = false;
  run.on_complete = [&] { completed = true; };
  run.start();
  sim.run();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(run.session().finished());
  EXPECT_GE(run.session().global_step(), 2000);
  EXPECT_GT(run.elapsed_seconds(), 0.0);
}

TEST(TransientRun, WorkersPayStartupAndColdSetupBeforeJoining) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(3));
  TransientTrainingRun run(provider, nn::resnet15(), small_run(500, 1),
                           util::Rng(4));
  run.start();
  // Before ~startup (~86 s) + cold setup (~76 s), no steps can exist.
  sim.run_until(100.0);
  EXPECT_EQ(run.session().global_step(), 0);
  sim.run();
  EXPECT_TRUE(run.session().finished());
}

TEST(TransientRun, ReplacesRevokedWorkers) {
  // Long training with frequently revoked workers: the run should keep
  // requesting replacements and still finish.
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(5));
  RunConfig config = small_run(60000, 3);
  // europe-west1 K80s die young (Table V: 66.67% within 24 h, mostly in
  // the first two hours) — guarantees revocations during a long run.
  for (auto& w : config.workers) w.region = cloud::Region::kEuropeWest1;
  TransientTrainingRun run(provider, nn::resnet15(), config, util::Rng(6));
  run.start();
  sim.run();
  EXPECT_TRUE(run.session().finished());
  EXPECT_GT(run.revocations_seen(), 0);
  EXPECT_EQ(run.replacements_requested(), run.revocations_seen());
}

TEST(TransientRun, NoReplacementWhenDisabled) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(7));
  RunConfig config = small_run(60000, 2);
  config.auto_replace = false;
  for (auto& w : config.workers) w.region = cloud::Region::kEuropeWest1;
  TransientTrainingRun run(provider, nn::resnet15(), config, util::Rng(8));
  run.start();
  // Run at most 10 simulated days to bound the test if all workers die.
  sim.run_until(10 * 24 * 3600.0);
  EXPECT_EQ(run.replacements_requested(), 0);
}

TEST(TransientRun, AccountsCostIncludingParameterServer) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(9));
  TransientTrainingRun run(provider, nn::resnet15(), small_run(2000, 2),
                           util::Rng(10));
  run.start();
  sim.run();
  const double cost = run.cost_so_far();
  EXPECT_GT(cost, 0.0);
  // Two transient K80s + PS for a few minutes: well under a dollar.
  EXPECT_LT(cost, 1.0);
}

TEST(TransientRun, TerminatesInstancesOnCompletion) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(11));
  TransientTrainingRun run(provider, nn::resnet15(), small_run(1000, 2),
                           util::Rng(12));
  run.start();
  sim.run();
  for (const auto& record : provider.records()) {
    EXPECT_FALSE(record.alive());
  }
}

TEST(TransientRun, ValidatesConfig) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(13));
  RunConfig config;  // no workers
  config.session.max_steps = 10;
  EXPECT_THROW(TransientTrainingRun(provider, nn::resnet15(), config,
                                    util::Rng(14)),
               std::invalid_argument);
}

TEST(TransientRun, StartTwiceThrows) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(15));
  TransientTrainingRun run(provider, nn::resnet15(), small_run(100, 1),
                           util::Rng(16));
  run.start();
  EXPECT_THROW(run.start(), std::logic_error);
}

TEST(TransientRun, ElapsedRequiresCompletion) {
  simcore::Simulator sim;
  cloud::CloudProvider provider(sim, util::Rng(17));
  TransientTrainingRun run(provider, nn::resnet15(), small_run(100000, 1),
                           util::Rng(18));
  run.start();
  sim.run_until(10.0);
  EXPECT_THROW(run.elapsed_seconds(), std::logic_error);
}

}  // namespace
}  // namespace cmdare::core
