#include <gtest/gtest.h>

#include <sstream>

#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace cmdare::util {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a"), "a");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("resnet-32", "resnet"));
  EXPECT_FALSE(starts_with("res", "resnet"));
  EXPECT_TRUE(ends_with("model.ckpt", ".ckpt"));
  EXPECT_FALSE(ends_with("ckpt", "model.ckpt"));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.0 KB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.5 MB");
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(format_duration(12.34), "12.3 s");
  EXPECT_EQ(format_duration(75), "1m 15s");
  EXPECT_EQ(format_duration(3723), "1h 02m 03s");
}

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("plain"), "plain");
}

TEST(Csv, EscapeQuotesAndCommas) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriterRoundTrip) {
  std::ostringstream oss;
  CsvWriter writer(oss);
  writer.write_row({"model", "gpu", "note"});
  writer.write_row({"resnet-32", "K80", "has,comma"});
  EXPECT_EQ(writer.rows_written(), 2u);

  std::istringstream iss(oss.str());
  std::string line;
  std::getline(iss, line);
  EXPECT_EQ(csv_parse_line(line),
            (std::vector<std::string>{"model", "gpu", "note"}));
  std::getline(iss, line);
  EXPECT_EQ(csv_parse_line(line),
            (std::vector<std::string>{"resnet-32", "K80", "has,comma"}));
}

TEST(Csv, NumericRowPrecision) {
  std::ostringstream oss;
  CsvWriter writer(oss);
  writer.write_numeric_row({1.23456, 2.0}, 2);
  EXPECT_EQ(oss.str(), "1.23,2.00\n");
}

TEST(Csv, ParseHandlesQuotedNewlineFreeFields) {
  const auto fields = csv_parse_line("a,\"b,c\",\"d\"\"e\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(Table, RendersAlignedColumns) {
  Table t({"GPU", "speed"});
  t.add_row({"K80", "9.46"});
  t.add_row({"P100", "21.16"});
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("| GPU "), std::string::npos);
  EXPECT_NE(rendered.find("9.46"), std::string::npos);
  EXPECT_NE(rendered.find("P100"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, RejectsTooManyCells) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, SetAlignmentValidatesColumn) {
  Table t({"a"});
  EXPECT_THROW(t.set_alignment(5, Align::kLeft), std::out_of_range);
}

TEST(Table, FormatMeanSd) {
  EXPECT_EQ(format_mean_sd(9.456, 0.19, 2), "9.46 ± 0.19");
}

TEST(Logging, RespectsLevel) {
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel, const std::string& m) { captured.push_back(m); });
  set_log_level(LogLevel::kWarn);
  LOG_INFO << "hidden";
  LOG_WARN << "visible " << 42;
  set_log_sink(nullptr);
  set_log_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "visible 42");
}

TEST(Logging, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(Logging, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(" warn "), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("Error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(Logging, TimeSourceShowsUpInDefaultLineFormat) {
  EXPECT_EQ(format_log_line(LogLevel::kWarn, "msg"), "[WARN] msg");
  double now = 12.3456;
  set_log_time_source([&now] { return now; });
  EXPECT_EQ(log_time_now(), 12.3456);
  EXPECT_EQ(format_log_line(LogLevel::kInfo, "msg"), "[INFO t=12.346] msg");
  now = 99.0;
  EXPECT_EQ(format_log_line(LogLevel::kError, "boom"),
            "[ERROR t=99.000] boom");
  set_log_time_source(nullptr);
  EXPECT_FALSE(log_time_now().has_value());
  EXPECT_EQ(format_log_line(LogLevel::kWarn, "msg"), "[WARN] msg");
}

namespace {

/// argv adapter: ArgParser::parse wants char* const*, tests want literals.
bool parse_args(ArgParser& args, std::vector<const char*> argv,
                std::string* error) {
  argv.insert(argv.begin(), "test-prog");
  return args.parse(static_cast<int>(argv.size()),
                    const_cast<char* const*>(argv.data()), error);
}

}  // namespace

TEST(ArgParser, ParsesFlagsValuesAndPositionals) {
  std::string path, csv;
  std::vector<std::string> sets;
  int jobs = 0;
  bool quiet = false;
  ArgParser args("prog", "test");
  args.add_positional("file", "input file", &path);
  args.add_flag("quiet", "hush", &quiet);
  args.add_int("jobs", "N", "threads", &jobs);
  args.add_value("csv", "PATH", "output", &csv);
  args.add_repeated("set", "K=V", "override", &sets);

  std::string error;
  ASSERT_TRUE(parse_args(args,
                         {"in.scn", "--jobs", "4", "--quiet", "--set", "a=1",
                          "--set", "b=2", "--csv", "out.csv"},
                         &error))
      << error;
  EXPECT_EQ(path, "in.scn");
  EXPECT_EQ(jobs, 4);
  EXPECT_TRUE(quiet);
  EXPECT_EQ(csv, "out.csv");
  EXPECT_EQ(sets, (std::vector<std::string>{"a=1", "b=2"}));
}

TEST(ArgParser, ReportsErrors) {
  int jobs = 0;
  std::string error;
  {
    ArgParser args("prog", "test");
    args.add_int("jobs", "N", "threads", &jobs);
    EXPECT_FALSE(parse_args(args, {"--jobs", "many"}, &error));
    EXPECT_NE(error.find("jobs"), std::string::npos);
  }
  {
    ArgParser args("prog", "test");
    EXPECT_FALSE(parse_args(args, {"--mystery"}, &error));
    EXPECT_NE(error.find("mystery"), std::string::npos);
  }
  {
    std::string file;
    ArgParser args("prog", "test");
    args.add_positional("file", "input", &file);  // required, missing
    EXPECT_FALSE(parse_args(args, {}, &error));
    EXPECT_NE(error.find("file"), std::string::npos);
  }
  {
    ArgParser args("prog", "test");
    EXPECT_FALSE(parse_args(args, {"stray"}, &error));  // no positionals
  }
}

TEST(ArgParser, HelpStopsParsingAndListsOptions) {
  int jobs = 0;
  ArgParser args("prog", "does things");
  args.add_int("jobs", "N", "worker threads", &jobs);
  std::string error;
  EXPECT_TRUE(parse_args(args, {"--help"}, &error));
  EXPECT_TRUE(args.help_requested());
  const std::string help = args.help_text();
  EXPECT_NE(help.find("prog"), std::string::npos);
  EXPECT_NE(help.find("--jobs"), std::string::npos);
  EXPECT_NE(help.find("worker threads"), std::string::npos);
}

TEST(Logging, SinkReceivesRawMessageWithoutPrefix) {
  // Custom sinks get the bare message; the level/time prefix belongs to
  // the default stderr formatting only.
  set_log_time_source([] { return 5.0; });
  std::vector<std::string> captured;
  set_log_sink([&](LogLevel, const std::string& m) { captured.push_back(m); });
  LOG_ERROR << "bare";
  set_log_sink(nullptr);
  set_log_time_source(nullptr);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "bare");
}

}  // namespace
}  // namespace cmdare::util
