// Supervision layer: heartbeat detection bounds, hazard-estimator
// convergence, retune hysteresis, and the detection campaign's
// time-to-recovery trend (monotone in the heartbeat timeout).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "scenario/catalog.hpp"
#include "scenario/harness.hpp"
#include "scenario/sweep.hpp"
#include "supervise/supervise.hpp"
#include "util/rng.hpp"

namespace cmdare::supervise {
namespace {

// ---------------------------------------------------------------------------
// HeartbeatDetector.
// ---------------------------------------------------------------------------

TEST(HeartbeatDetector, NoFalsePositivesUnderJitteredHeartbeats) {
  HeartbeatConfig config;
  config.period_s = 10.0;
  config.timeout_s = 60.0;
  HeartbeatDetector detector(config);
  util::Rng rng(1);

  double beats[3] = {0.0, 0.0, 0.0};
  for (std::uint64_t key = 0; key < 3; ++key) detector.watch(key, 0.0);

  // Healthy workers beating with up to +/-30% jitter (3x the configured
  // jitter) never go near the 60 s timeout; every sweep must be empty.
  for (double now = 0.0; now <= 2000.0; now += 5.0) {
    for (std::uint64_t key = 0; key < 3; ++key) {
      if (now - beats[key] >= 10.0 * rng.uniform(0.7, 1.3)) {
        detector.beat(key, now);
        beats[key] = now;
      }
    }
    EXPECT_TRUE(detector.sweep(now).empty()) << "false positive at " << now;
    for (std::uint64_t key = 0; key < 3; ++key) {
      EXPECT_LT(detector.suspicion(key, now), 1.0);
    }
  }
  EXPECT_EQ(detector.watched_count(), 3u);
}

TEST(HeartbeatDetector, DetectsSilenceWithinTimeoutPlusSweepPeriod) {
  HeartbeatConfig config;
  config.period_s = 10.0;
  config.timeout_s = 60.0;
  HeartbeatDetector detector(config);

  detector.watch(7, 0.0);
  detector.watch(8, 0.0);
  double last = 0.0;
  // Both beat until t=100; worker 7 dies there, worker 8 keeps beating.
  for (double now = 10.0; now <= 100.0; now += 10.0) {
    detector.beat(7, now);
    detector.beat(8, now);
    last = now;
  }

  const double sweep_period = 15.0;
  double detected_at = -1.0;
  for (double now = last; now <= last + 200.0; now += sweep_period) {
    detector.beat(8, now);
    const auto dead = detector.sweep(now);
    if (!dead.empty()) {
      ASSERT_EQ(dead.size(), 1u);
      EXPECT_EQ(dead[0], 7u);
      detected_at = now;
      break;
    }
  }
  ASSERT_GE(detected_at, 0.0) << "silent worker never detected";
  // Bounded latency: the first sweep after `last + timeout` must fire.
  EXPECT_LE(detected_at - last, config.timeout_s + sweep_period);
  // Detection is exactly-once: the key left the watch set.
  EXPECT_FALSE(detector.watching(7));
  EXPECT_TRUE(detector.watching(8));
}

TEST(HeartbeatDetector, PhiAccrualModeDetectsAndTracksCadence) {
  HeartbeatConfig config;
  config.period_s = 10.0;
  config.phi_threshold = 8.0;
  HeartbeatDetector detector(config);

  detector.watch(1, 0.0);
  for (double now = 10.0; now <= 200.0; now += 10.0) {
    detector.beat(1, now);
    EXPECT_TRUE(detector.sweep(now).empty());
  }
  // phi = elapsed / (mean_interval * ln 10); with a 10 s cadence the
  // threshold of 8 crosses near 184 s of silence.
  EXPECT_TRUE(detector.sweep(200.0 + 100.0).empty());
  const auto dead = detector.sweep(200.0 + 300.0);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 1u);
}

TEST(HeartbeatDetector, RejectsDegenerateConfig) {
  HeartbeatConfig config;
  config.period_s = 0.0;
  EXPECT_THROW(HeartbeatDetector{config}, std::invalid_argument);
  config = {};
  config.timeout_s = 5.0;  // below the period: every worker flagged
  EXPECT_THROW(HeartbeatDetector{config}, std::invalid_argument);
  config = {};
  config.jitter = 1.5;
  EXPECT_THROW(HeartbeatDetector{config}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// HazardEstimator.
// ---------------------------------------------------------------------------

TEST(HazardEstimator, StartsAtPriorAndConvergesToInjectedRate) {
  HazardConfig config;
  config.halflife_hours = 6.0;
  config.prior_weight_hours = 12.0;
  HazardEstimator estimator(config);

  const auto region = cloud::Region::kEuropeWest1;
  const auto gpu = cloud::GpuType::kK80;
  estimator.set_prior(region, gpu, 4.0);
  EXPECT_NEAR(estimator.rate_per_hour(region, gpu, 0.0), 4.0, 1e-9);

  // Three live instances failing at a true rate of 1 event per
  // instance-hour: one event per 1/3 h of wall time.
  for (int i = 0; i < 3; ++i) estimator.begin_exposure(region, gpu, 0.0);
  for (double now_h = 1.0 / 3.0; now_h <= 72.0; now_h += 1.0 / 3.0) {
    estimator.record_event(region, gpu, now_h, FailureKind::kRevocation);
  }
  // After 12 half-lives the prior mass is gone; the decayed ratio sits at
  // the true per-instance-hour rate.
  EXPECT_NEAR(estimator.rate_per_hour(region, gpu, 72.0), 1.0, 0.15);
  // A cell that saw neither prior nor events reports zero.
  EXPECT_DOUBLE_EQ(
      estimator.rate_per_hour(cloud::Region::kUsWest1, gpu, 72.0), 0.0);
}

TEST(HazardEstimator, PenaltyAccumulatesAndDecays) {
  HazardConfig config;
  config.score_halflife_hours = 2.0;
  HazardEstimator estimator(config);

  const auto region = cloud::Region::kUsCentral1;
  const auto gpu = cloud::GpuType::kP100;
  estimator.record_event(region, gpu, 1.0, FailureKind::kStockout);
  estimator.record_event(region, gpu, 1.0, FailureKind::kLaunchError);
  const double fresh = estimator.penalty_score(region, gpu, 1.0);
  EXPECT_GT(fresh, 0.0);
  // One score half-life later the penalty halved.
  EXPECT_NEAR(estimator.penalty_score(region, gpu, 3.0), fresh / 2.0,
              1e-6 * fresh);
  // Other cells are untouched.
  EXPECT_DOUBLE_EQ(estimator.penalty_score(region, cloud::GpuType::kK80, 3.0),
                   0.0);
}

// ---------------------------------------------------------------------------
// AdaptiveCheckpointController.
// ---------------------------------------------------------------------------

PlanInputs live_inputs() {
  PlanInputs inputs;
  inputs.remaining_steps = 10000.0;
  inputs.cluster_speed = 8.0;
  inputs.checkpoint_seconds = 4.0;
  inputs.revocations_per_hour = 0.5;
  inputs.provision_seconds = 90.0;
  inputs.replacement_seconds = 60.0;
  return inputs;
}

TEST(AdaptiveCheckpointController, HysteresisBlocksSmallChanges) {
  AdaptiveCheckpointConfig config;
  config.hysteresis = 0.2;
  AdaptiveCheckpointController controller(config);

  // 10% off the current interval: inside the band, no retune counted.
  EXPECT_FALSE(controller
                   .decide(live_inputs(), 100,
                           [](const PlanInputs&) { return 110L; })
                   .has_value());
  EXPECT_EQ(controller.retunes(), 0);
  // 2x the current interval: the retune goes through and is counted.
  const auto planned = controller.decide(
      live_inputs(), 100, [](const PlanInputs&) { return 200L; });
  ASSERT_TRUE(planned.has_value());
  EXPECT_EQ(*planned, 200);
  EXPECT_EQ(controller.retunes(), 1);
}

TEST(AdaptiveCheckpointController, SkipsDegenerateLiveInputs) {
  AdaptiveCheckpointController controller({});
  const PlannerFn planner = [](const PlanInputs&) { return 500L; };

  PlanInputs inputs = live_inputs();
  inputs.cluster_speed = -1.0;  // profiler still warming up
  EXPECT_FALSE(controller.decide(inputs, 100, planner).has_value());

  inputs = live_inputs();
  inputs.revocations_per_hour = std::nan("");
  EXPECT_FALSE(controller.decide(inputs, 100, planner).has_value());

  inputs = live_inputs();
  inputs.remaining_steps = 10.0;  // below min_interval_steps: nearly done
  EXPECT_FALSE(controller.decide(inputs, 100, planner).has_value());

  // A throwing planner is survivable (skipped round, not a crash).
  EXPECT_FALSE(controller
                   .decide(live_inputs(), 100,
                           [](const PlanInputs&) -> long {
                             throw std::runtime_error("no plan");
                           })
                   .has_value());
  EXPECT_EQ(controller.retunes(), 0);
}

TEST(AdaptiveCheckpointController, ClampsPlansToTheFloor) {
  AdaptiveCheckpointConfig config;
  config.min_interval_steps = 50;
  AdaptiveCheckpointController controller(config);
  const auto planned = controller.decide(
      live_inputs(), 500, [](const PlanInputs&) { return 10L; });
  ASSERT_TRUE(planned.has_value());
  EXPECT_EQ(*planned, 50);
}

// ---------------------------------------------------------------------------
// End-to-end detection through the scenario layer.
// ---------------------------------------------------------------------------

TEST(SupervisedRun, DetectsAbruptKillsWithBoundedLatency) {
  scenario::ScenarioSpec spec = scenario::detection_scenario();
  scenario::SimHarness harness(spec);
  const scenario::ScenarioResult result = harness.run();

  EXPECT_TRUE(result.finished);
  ASSERT_GT(result.detections, 0);
  EXPECT_EQ(result.abrupt_kills, result.revocations);  // kill rate = 1
  EXPECT_EQ(result.detections, result.abrupt_kills);
  EXPECT_EQ(result.false_detections, 0);
  // Latency bound: timeout + one sweep period (timeout/4 by default).
  const double timeout = spec.supervision.heartbeat.timeout_s;
  EXPECT_GT(result.detection_latency_p99, 0.0);
  EXPECT_LE(result.detection_latency_p99, timeout + timeout / 4.0 + 1e-9);
  // Recovery observations (revocation -> replacement running) exist and
  // include the detection latency.
  EXPECT_GT(result.mean_recovery_seconds, result.detection_latency_p99 * 0.5);
}

TEST(DetectionCampaign, RecoveryTimeMonotoneInHeartbeatTimeout) {
  // Shrunk copy of the catalog sweep: one kill rate, three timeouts,
  // three replicas. ttr_s means must increase with the timeout, and the
  // CSV must be byte-identical across thread counts.
  scenario::ScenarioSweep sweep = scenario::sweep_by_name("detection").sweep;
  sweep.axes = {{"supervise.heartbeat_timeout_s", {"60", "300", "900"}},
                {"abrupt_kill_rate", {"1"}}};
  sweep.replicas = 3;

  exp::RunOptions serial;
  serial.jobs = 1;
  const scenario::ScenarioCampaignResult first =
      scenario::run_scenario_campaign(sweep, serial,
                                      scenario::detection_replica);
  ASSERT_EQ(first.cells.size(), 3u);

  double previous = -1.0;
  for (std::size_t c = 0; c < first.cells.size(); ++c) {
    const auto it = first.aggregates[c].metrics.find("ttr_s");
    ASSERT_NE(it, first.aggregates[c].metrics.end())
        << "no recovery observed in cell " << first.cells[c].label();
    const double mean = it->second.running.mean();
    EXPECT_GT(mean, previous)
        << "ttr_s not monotone at " << first.cells[c].label();
    previous = mean;
  }

  exp::RunOptions threaded;
  threaded.jobs = 4;
  const scenario::ScenarioCampaignResult second =
      scenario::run_scenario_campaign(sweep, threaded,
                                      scenario::detection_replica);
  std::ostringstream a;
  std::ostringstream b;
  first.write_csv(a);
  second.write_csv(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace cmdare::supervise
