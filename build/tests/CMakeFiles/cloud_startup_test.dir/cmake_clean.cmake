file(REMOVE_RECURSE
  "CMakeFiles/cloud_startup_test.dir/cloud_startup_test.cpp.o"
  "CMakeFiles/cloud_startup_test.dir/cloud_startup_test.cpp.o.d"
  "cloud_startup_test"
  "cloud_startup_test.pdb"
  "cloud_startup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_startup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
