# Empty dependencies file for cloud_startup_test.
# This may be replaced when dependencies are built.
