# Empty compiler generated dependencies file for cmdare_modeling_test.
# This may be replaced when dependencies are built.
