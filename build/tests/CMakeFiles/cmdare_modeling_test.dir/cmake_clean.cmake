file(REMOVE_RECURSE
  "CMakeFiles/cmdare_modeling_test.dir/cmdare_modeling_test.cpp.o"
  "CMakeFiles/cmdare_modeling_test.dir/cmdare_modeling_test.cpp.o.d"
  "cmdare_modeling_test"
  "cmdare_modeling_test.pdb"
  "cmdare_modeling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_modeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
