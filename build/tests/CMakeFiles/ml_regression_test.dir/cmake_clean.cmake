file(REMOVE_RECURSE
  "CMakeFiles/ml_regression_test.dir/ml_regression_test.cpp.o"
  "CMakeFiles/ml_regression_test.dir/ml_regression_test.cpp.o.d"
  "ml_regression_test"
  "ml_regression_test.pdb"
  "ml_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
