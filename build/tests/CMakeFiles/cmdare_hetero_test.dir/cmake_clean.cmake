file(REMOVE_RECURSE
  "CMakeFiles/cmdare_hetero_test.dir/cmdare_hetero_test.cpp.o"
  "CMakeFiles/cmdare_hetero_test.dir/cmdare_hetero_test.cpp.o.d"
  "cmdare_hetero_test"
  "cmdare_hetero_test.pdb"
  "cmdare_hetero_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_hetero_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
