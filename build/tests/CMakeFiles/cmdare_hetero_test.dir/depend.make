# Empty dependencies file for cmdare_hetero_test.
# This may be replaced when dependencies are built.
