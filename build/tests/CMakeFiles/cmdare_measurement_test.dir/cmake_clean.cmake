file(REMOVE_RECURSE
  "CMakeFiles/cmdare_measurement_test.dir/cmdare_measurement_test.cpp.o"
  "CMakeFiles/cmdare_measurement_test.dir/cmdare_measurement_test.cpp.o.d"
  "cmdare_measurement_test"
  "cmdare_measurement_test.pdb"
  "cmdare_measurement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_measurement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
