# Empty dependencies file for cmdare_measurement_test.
# This may be replaced when dependencies are built.
