# Empty dependencies file for cloud_calibration_test.
# This may be replaced when dependencies are built.
