file(REMOVE_RECURSE
  "CMakeFiles/cloud_calibration_test.dir/cloud_calibration_test.cpp.o"
  "CMakeFiles/cloud_calibration_test.dir/cloud_calibration_test.cpp.o.d"
  "cloud_calibration_test"
  "cloud_calibration_test.pdb"
  "cloud_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
