# Empty dependencies file for cloud_revocation_test.
# This may be replaced when dependencies are built.
