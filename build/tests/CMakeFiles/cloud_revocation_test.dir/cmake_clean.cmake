file(REMOVE_RECURSE
  "CMakeFiles/cloud_revocation_test.dir/cloud_revocation_test.cpp.o"
  "CMakeFiles/cloud_revocation_test.dir/cloud_revocation_test.cpp.o.d"
  "cloud_revocation_test"
  "cloud_revocation_test.pdb"
  "cloud_revocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_revocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
