# Empty compiler generated dependencies file for train_session_test.
# This may be replaced when dependencies are built.
