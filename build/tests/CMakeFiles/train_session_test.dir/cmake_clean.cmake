file(REMOVE_RECURSE
  "CMakeFiles/train_session_test.dir/train_session_test.cpp.o"
  "CMakeFiles/train_session_test.dir/train_session_test.cpp.o.d"
  "train_session_test"
  "train_session_test.pdb"
  "train_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
