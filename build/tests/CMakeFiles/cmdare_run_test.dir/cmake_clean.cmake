file(REMOVE_RECURSE
  "CMakeFiles/cmdare_run_test.dir/cmdare_run_test.cpp.o"
  "CMakeFiles/cmdare_run_test.dir/cmdare_run_test.cpp.o.d"
  "cmdare_run_test"
  "cmdare_run_test.pdb"
  "cmdare_run_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
