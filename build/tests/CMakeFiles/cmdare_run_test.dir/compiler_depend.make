# Empty compiler generated dependencies file for cmdare_run_test.
# This may be replaced when dependencies are built.
