file(REMOVE_RECURSE
  "CMakeFiles/cloud_network_test.dir/cloud_network_test.cpp.o"
  "CMakeFiles/cloud_network_test.dir/cloud_network_test.cpp.o.d"
  "cloud_network_test"
  "cloud_network_test.pdb"
  "cloud_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
