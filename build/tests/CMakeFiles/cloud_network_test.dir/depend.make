# Empty dependencies file for cloud_network_test.
# This may be replaced when dependencies are built.
