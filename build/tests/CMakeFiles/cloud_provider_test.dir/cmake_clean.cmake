file(REMOVE_RECURSE
  "CMakeFiles/cloud_provider_test.dir/cloud_provider_test.cpp.o"
  "CMakeFiles/cloud_provider_test.dir/cloud_provider_test.cpp.o.d"
  "cloud_provider_test"
  "cloud_provider_test.pdb"
  "cloud_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
