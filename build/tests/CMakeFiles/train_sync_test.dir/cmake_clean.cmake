file(REMOVE_RECURSE
  "CMakeFiles/train_sync_test.dir/train_sync_test.cpp.o"
  "CMakeFiles/train_sync_test.dir/train_sync_test.cpp.o.d"
  "train_sync_test"
  "train_sync_test.pdb"
  "train_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
