# Empty compiler generated dependencies file for train_sync_test.
# This may be replaced when dependencies are built.
