file(REMOVE_RECURSE
  "CMakeFiles/cmdare_controller_test.dir/cmdare_controller_test.cpp.o"
  "CMakeFiles/cmdare_controller_test.dir/cmdare_controller_test.cpp.o.d"
  "cmdare_controller_test"
  "cmdare_controller_test.pdb"
  "cmdare_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
