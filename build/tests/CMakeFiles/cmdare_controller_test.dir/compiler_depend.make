# Empty compiler generated dependencies file for cmdare_controller_test.
# This may be replaced when dependencies are built.
