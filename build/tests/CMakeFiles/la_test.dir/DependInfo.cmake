
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/la_test.cpp" "tests/CMakeFiles/la_test.dir/la_test.cpp.o" "gcc" "tests/CMakeFiles/la_test.dir/la_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cmdare/CMakeFiles/cmdare_core.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/cmdare_train.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cmdare_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cmdare_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cmdare_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cmdare_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/cmdare_la.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cmdare_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmdare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
