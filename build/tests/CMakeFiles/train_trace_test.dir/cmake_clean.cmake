file(REMOVE_RECURSE
  "CMakeFiles/train_trace_test.dir/train_trace_test.cpp.o"
  "CMakeFiles/train_trace_test.dir/train_trace_test.cpp.o.d"
  "train_trace_test"
  "train_trace_test.pdb"
  "train_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
