# Empty dependencies file for train_trace_test.
# This may be replaced when dependencies are built.
