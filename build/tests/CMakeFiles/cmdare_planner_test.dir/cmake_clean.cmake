file(REMOVE_RECURSE
  "CMakeFiles/cmdare_planner_test.dir/cmdare_planner_test.cpp.o"
  "CMakeFiles/cmdare_planner_test.dir/cmdare_planner_test.cpp.o.d"
  "cmdare_planner_test"
  "cmdare_planner_test.pdb"
  "cmdare_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
