# Empty dependencies file for cmdare_planner_test.
# This may be replaced when dependencies are built.
