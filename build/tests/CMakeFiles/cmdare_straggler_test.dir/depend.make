# Empty dependencies file for cmdare_straggler_test.
# This may be replaced when dependencies are built.
