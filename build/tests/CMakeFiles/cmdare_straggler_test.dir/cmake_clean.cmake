file(REMOVE_RECURSE
  "CMakeFiles/cmdare_straggler_test.dir/cmdare_straggler_test.cpp.o"
  "CMakeFiles/cmdare_straggler_test.dir/cmdare_straggler_test.cpp.o.d"
  "cmdare_straggler_test"
  "cmdare_straggler_test.pdb"
  "cmdare_straggler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_straggler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
