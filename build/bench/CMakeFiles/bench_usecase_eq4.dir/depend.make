# Empty dependencies file for bench_usecase_eq4.
# This may be replaced when dependencies are built.
