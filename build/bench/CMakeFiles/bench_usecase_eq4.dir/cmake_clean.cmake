file(REMOVE_RECURSE
  "CMakeFiles/bench_usecase_eq4.dir/bench_usecase_eq4.cpp.o"
  "CMakeFiles/bench_usecase_eq4.dir/bench_usecase_eq4.cpp.o.d"
  "bench_usecase_eq4"
  "bench_usecase_eq4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_usecase_eq4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
