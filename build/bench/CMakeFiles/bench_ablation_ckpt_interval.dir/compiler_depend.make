# Empty compiler generated dependencies file for bench_ablation_ckpt_interval.
# This may be replaced when dependencies are built.
