# Empty compiler generated dependencies file for bench_ablation_launch.
# This may be replaced when dependencies are built.
