file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ftmode.dir/bench_ablation_ftmode.cpp.o"
  "CMakeFiles/bench_ablation_ftmode.dir/bench_ablation_ftmode.cpp.o.d"
  "bench_ablation_ftmode"
  "bench_ablation_ftmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ftmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
