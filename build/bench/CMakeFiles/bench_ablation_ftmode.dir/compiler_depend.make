# Empty compiler generated dependencies file for bench_ablation_ftmode.
# This may be replaced when dependencies are built.
