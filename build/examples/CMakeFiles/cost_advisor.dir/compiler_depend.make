# Empty compiler generated dependencies file for cost_advisor.
# This may be replaced when dependencies are built.
