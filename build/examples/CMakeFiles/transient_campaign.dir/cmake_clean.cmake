file(REMOVE_RECURSE
  "CMakeFiles/transient_campaign.dir/transient_campaign.cpp.o"
  "CMakeFiles/transient_campaign.dir/transient_campaign.cpp.o.d"
  "transient_campaign"
  "transient_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
