# Empty dependencies file for transient_campaign.
# This may be replaced when dependencies are built.
