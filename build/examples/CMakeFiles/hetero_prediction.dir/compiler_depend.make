# Empty compiler generated dependencies file for hetero_prediction.
# This may be replaced when dependencies are built.
