file(REMOVE_RECURSE
  "CMakeFiles/hetero_prediction.dir/hetero_prediction.cpp.o"
  "CMakeFiles/hetero_prediction.dir/hetero_prediction.cpp.o.d"
  "hetero_prediction"
  "hetero_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
