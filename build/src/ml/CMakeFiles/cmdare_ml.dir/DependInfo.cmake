
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/crossval.cpp" "src/ml/CMakeFiles/cmdare_ml.dir/crossval.cpp.o" "gcc" "src/ml/CMakeFiles/cmdare_ml.dir/crossval.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/cmdare_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/cmdare_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/kernel.cpp" "src/ml/CMakeFiles/cmdare_ml.dir/kernel.cpp.o" "gcc" "src/ml/CMakeFiles/cmdare_ml.dir/kernel.cpp.o.d"
  "/root/repo/src/ml/linreg.cpp" "src/ml/CMakeFiles/cmdare_ml.dir/linreg.cpp.o" "gcc" "src/ml/CMakeFiles/cmdare_ml.dir/linreg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/cmdare_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/cmdare_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/pca.cpp" "src/ml/CMakeFiles/cmdare_ml.dir/pca.cpp.o" "gcc" "src/ml/CMakeFiles/cmdare_ml.dir/pca.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/cmdare_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/cmdare_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/svr.cpp" "src/ml/CMakeFiles/cmdare_ml.dir/svr.cpp.o" "gcc" "src/ml/CMakeFiles/cmdare_ml.dir/svr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/cmdare_la.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cmdare_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmdare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
