# Empty dependencies file for cmdare_ml.
# This may be replaced when dependencies are built.
