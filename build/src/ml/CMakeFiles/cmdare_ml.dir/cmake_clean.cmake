file(REMOVE_RECURSE
  "CMakeFiles/cmdare_ml.dir/crossval.cpp.o"
  "CMakeFiles/cmdare_ml.dir/crossval.cpp.o.d"
  "CMakeFiles/cmdare_ml.dir/dataset.cpp.o"
  "CMakeFiles/cmdare_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/cmdare_ml.dir/kernel.cpp.o"
  "CMakeFiles/cmdare_ml.dir/kernel.cpp.o.d"
  "CMakeFiles/cmdare_ml.dir/linreg.cpp.o"
  "CMakeFiles/cmdare_ml.dir/linreg.cpp.o.d"
  "CMakeFiles/cmdare_ml.dir/metrics.cpp.o"
  "CMakeFiles/cmdare_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/cmdare_ml.dir/pca.cpp.o"
  "CMakeFiles/cmdare_ml.dir/pca.cpp.o.d"
  "CMakeFiles/cmdare_ml.dir/scaler.cpp.o"
  "CMakeFiles/cmdare_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/cmdare_ml.dir/svr.cpp.o"
  "CMakeFiles/cmdare_ml.dir/svr.cpp.o.d"
  "libcmdare_ml.a"
  "libcmdare_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
