file(REMOVE_RECURSE
  "libcmdare_ml.a"
)
