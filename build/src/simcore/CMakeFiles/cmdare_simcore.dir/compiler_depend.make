# Empty compiler generated dependencies file for cmdare_simcore.
# This may be replaced when dependencies are built.
