file(REMOVE_RECURSE
  "libcmdare_simcore.a"
)
