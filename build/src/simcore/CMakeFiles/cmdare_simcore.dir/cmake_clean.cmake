file(REMOVE_RECURSE
  "CMakeFiles/cmdare_simcore.dir/simulator.cpp.o"
  "CMakeFiles/cmdare_simcore.dir/simulator.cpp.o.d"
  "libcmdare_simcore.a"
  "libcmdare_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
