# Empty dependencies file for cmdare_core.
# This may be replaced when dependencies are built.
