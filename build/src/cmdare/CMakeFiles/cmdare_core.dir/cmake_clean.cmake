file(REMOVE_RECURSE
  "CMakeFiles/cmdare_core.dir/bottleneck.cpp.o"
  "CMakeFiles/cmdare_core.dir/bottleneck.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/checkpoint_modeling.cpp.o"
  "CMakeFiles/cmdare_core.dir/checkpoint_modeling.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/controller.cpp.o"
  "CMakeFiles/cmdare_core.dir/controller.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/hetero.cpp.o"
  "CMakeFiles/cmdare_core.dir/hetero.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/measurement.cpp.o"
  "CMakeFiles/cmdare_core.dir/measurement.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/planner.cpp.o"
  "CMakeFiles/cmdare_core.dir/planner.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/profiler.cpp.o"
  "CMakeFiles/cmdare_core.dir/profiler.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/resource_manager.cpp.o"
  "CMakeFiles/cmdare_core.dir/resource_manager.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/speed_modeling.cpp.o"
  "CMakeFiles/cmdare_core.dir/speed_modeling.cpp.o.d"
  "CMakeFiles/cmdare_core.dir/straggler.cpp.o"
  "CMakeFiles/cmdare_core.dir/straggler.cpp.o.d"
  "libcmdare_core.a"
  "libcmdare_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
