file(REMOVE_RECURSE
  "libcmdare_core.a"
)
