
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cmdare/bottleneck.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/bottleneck.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/bottleneck.cpp.o.d"
  "/root/repo/src/cmdare/checkpoint_modeling.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/checkpoint_modeling.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/checkpoint_modeling.cpp.o.d"
  "/root/repo/src/cmdare/controller.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/controller.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/controller.cpp.o.d"
  "/root/repo/src/cmdare/hetero.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/hetero.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/hetero.cpp.o.d"
  "/root/repo/src/cmdare/measurement.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/measurement.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/measurement.cpp.o.d"
  "/root/repo/src/cmdare/planner.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/planner.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/planner.cpp.o.d"
  "/root/repo/src/cmdare/profiler.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/profiler.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/profiler.cpp.o.d"
  "/root/repo/src/cmdare/resource_manager.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/resource_manager.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/resource_manager.cpp.o.d"
  "/root/repo/src/cmdare/speed_modeling.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/speed_modeling.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/speed_modeling.cpp.o.d"
  "/root/repo/src/cmdare/straggler.cpp" "src/cmdare/CMakeFiles/cmdare_core.dir/straggler.cpp.o" "gcc" "src/cmdare/CMakeFiles/cmdare_core.dir/straggler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/cmdare_train.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cmdare_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cmdare_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/cmdare_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cmdare_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cmdare_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmdare_util.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/cmdare_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
