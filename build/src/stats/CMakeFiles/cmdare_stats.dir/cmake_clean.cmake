file(REMOVE_RECURSE
  "CMakeFiles/cmdare_stats.dir/descriptive.cpp.o"
  "CMakeFiles/cmdare_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/cmdare_stats.dir/ecdf.cpp.o"
  "CMakeFiles/cmdare_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/cmdare_stats.dir/histogram.cpp.o"
  "CMakeFiles/cmdare_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/cmdare_stats.dir/running.cpp.o"
  "CMakeFiles/cmdare_stats.dir/running.cpp.o.d"
  "libcmdare_stats.a"
  "libcmdare_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
