# Empty dependencies file for cmdare_stats.
# This may be replaced when dependencies are built.
