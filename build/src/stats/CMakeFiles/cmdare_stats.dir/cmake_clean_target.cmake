file(REMOVE_RECURSE
  "libcmdare_stats.a"
)
