
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/calibration.cpp" "src/cloud/CMakeFiles/cmdare_cloud.dir/calibration.cpp.o" "gcc" "src/cloud/CMakeFiles/cmdare_cloud.dir/calibration.cpp.o.d"
  "/root/repo/src/cloud/gpu.cpp" "src/cloud/CMakeFiles/cmdare_cloud.dir/gpu.cpp.o" "gcc" "src/cloud/CMakeFiles/cmdare_cloud.dir/gpu.cpp.o.d"
  "/root/repo/src/cloud/network.cpp" "src/cloud/CMakeFiles/cmdare_cloud.dir/network.cpp.o" "gcc" "src/cloud/CMakeFiles/cmdare_cloud.dir/network.cpp.o.d"
  "/root/repo/src/cloud/provider.cpp" "src/cloud/CMakeFiles/cmdare_cloud.dir/provider.cpp.o" "gcc" "src/cloud/CMakeFiles/cmdare_cloud.dir/provider.cpp.o.d"
  "/root/repo/src/cloud/region.cpp" "src/cloud/CMakeFiles/cmdare_cloud.dir/region.cpp.o" "gcc" "src/cloud/CMakeFiles/cmdare_cloud.dir/region.cpp.o.d"
  "/root/repo/src/cloud/revocation.cpp" "src/cloud/CMakeFiles/cmdare_cloud.dir/revocation.cpp.o" "gcc" "src/cloud/CMakeFiles/cmdare_cloud.dir/revocation.cpp.o.d"
  "/root/repo/src/cloud/startup.cpp" "src/cloud/CMakeFiles/cmdare_cloud.dir/startup.cpp.o" "gcc" "src/cloud/CMakeFiles/cmdare_cloud.dir/startup.cpp.o.d"
  "/root/repo/src/cloud/storage.cpp" "src/cloud/CMakeFiles/cmdare_cloud.dir/storage.cpp.o" "gcc" "src/cloud/CMakeFiles/cmdare_cloud.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simcore/CMakeFiles/cmdare_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cmdare_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cmdare_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmdare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
