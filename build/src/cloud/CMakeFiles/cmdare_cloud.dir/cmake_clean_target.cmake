file(REMOVE_RECURSE
  "libcmdare_cloud.a"
)
