# Empty compiler generated dependencies file for cmdare_cloud.
# This may be replaced when dependencies are built.
