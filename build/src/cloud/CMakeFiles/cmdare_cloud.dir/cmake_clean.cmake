file(REMOVE_RECURSE
  "CMakeFiles/cmdare_cloud.dir/calibration.cpp.o"
  "CMakeFiles/cmdare_cloud.dir/calibration.cpp.o.d"
  "CMakeFiles/cmdare_cloud.dir/gpu.cpp.o"
  "CMakeFiles/cmdare_cloud.dir/gpu.cpp.o.d"
  "CMakeFiles/cmdare_cloud.dir/network.cpp.o"
  "CMakeFiles/cmdare_cloud.dir/network.cpp.o.d"
  "CMakeFiles/cmdare_cloud.dir/provider.cpp.o"
  "CMakeFiles/cmdare_cloud.dir/provider.cpp.o.d"
  "CMakeFiles/cmdare_cloud.dir/region.cpp.o"
  "CMakeFiles/cmdare_cloud.dir/region.cpp.o.d"
  "CMakeFiles/cmdare_cloud.dir/revocation.cpp.o"
  "CMakeFiles/cmdare_cloud.dir/revocation.cpp.o.d"
  "CMakeFiles/cmdare_cloud.dir/startup.cpp.o"
  "CMakeFiles/cmdare_cloud.dir/startup.cpp.o.d"
  "CMakeFiles/cmdare_cloud.dir/storage.cpp.o"
  "CMakeFiles/cmdare_cloud.dir/storage.cpp.o.d"
  "libcmdare_cloud.a"
  "libcmdare_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
