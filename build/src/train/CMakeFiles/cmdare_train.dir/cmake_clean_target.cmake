file(REMOVE_RECURSE
  "libcmdare_train.a"
)
