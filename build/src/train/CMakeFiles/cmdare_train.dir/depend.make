# Empty dependencies file for cmdare_train.
# This may be replaced when dependencies are built.
