file(REMOVE_RECURSE
  "CMakeFiles/cmdare_train.dir/cluster.cpp.o"
  "CMakeFiles/cmdare_train.dir/cluster.cpp.o.d"
  "CMakeFiles/cmdare_train.dir/ps.cpp.o"
  "CMakeFiles/cmdare_train.dir/ps.cpp.o.d"
  "CMakeFiles/cmdare_train.dir/replacement.cpp.o"
  "CMakeFiles/cmdare_train.dir/replacement.cpp.o.d"
  "CMakeFiles/cmdare_train.dir/session.cpp.o"
  "CMakeFiles/cmdare_train.dir/session.cpp.o.d"
  "CMakeFiles/cmdare_train.dir/sync_session.cpp.o"
  "CMakeFiles/cmdare_train.dir/sync_session.cpp.o.d"
  "CMakeFiles/cmdare_train.dir/trace.cpp.o"
  "CMakeFiles/cmdare_train.dir/trace.cpp.o.d"
  "CMakeFiles/cmdare_train.dir/trace_io.cpp.o"
  "CMakeFiles/cmdare_train.dir/trace_io.cpp.o.d"
  "libcmdare_train.a"
  "libcmdare_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
