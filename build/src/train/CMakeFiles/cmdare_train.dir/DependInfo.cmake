
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/cluster.cpp" "src/train/CMakeFiles/cmdare_train.dir/cluster.cpp.o" "gcc" "src/train/CMakeFiles/cmdare_train.dir/cluster.cpp.o.d"
  "/root/repo/src/train/ps.cpp" "src/train/CMakeFiles/cmdare_train.dir/ps.cpp.o" "gcc" "src/train/CMakeFiles/cmdare_train.dir/ps.cpp.o.d"
  "/root/repo/src/train/replacement.cpp" "src/train/CMakeFiles/cmdare_train.dir/replacement.cpp.o" "gcc" "src/train/CMakeFiles/cmdare_train.dir/replacement.cpp.o.d"
  "/root/repo/src/train/session.cpp" "src/train/CMakeFiles/cmdare_train.dir/session.cpp.o" "gcc" "src/train/CMakeFiles/cmdare_train.dir/session.cpp.o.d"
  "/root/repo/src/train/sync_session.cpp" "src/train/CMakeFiles/cmdare_train.dir/sync_session.cpp.o" "gcc" "src/train/CMakeFiles/cmdare_train.dir/sync_session.cpp.o.d"
  "/root/repo/src/train/trace.cpp" "src/train/CMakeFiles/cmdare_train.dir/trace.cpp.o" "gcc" "src/train/CMakeFiles/cmdare_train.dir/trace.cpp.o.d"
  "/root/repo/src/train/trace_io.cpp" "src/train/CMakeFiles/cmdare_train.dir/trace_io.cpp.o" "gcc" "src/train/CMakeFiles/cmdare_train.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/cmdare_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cmdare_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/cmdare_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cmdare_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cmdare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
