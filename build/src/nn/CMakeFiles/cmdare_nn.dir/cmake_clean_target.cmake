file(REMOVE_RECURSE
  "libcmdare_nn.a"
)
