# Empty compiler generated dependencies file for cmdare_nn.
# This may be replaced when dependencies are built.
