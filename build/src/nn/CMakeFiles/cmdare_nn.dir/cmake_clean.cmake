file(REMOVE_RECURSE
  "CMakeFiles/cmdare_nn.dir/checkpoint_size.cpp.o"
  "CMakeFiles/cmdare_nn.dir/checkpoint_size.cpp.o.d"
  "CMakeFiles/cmdare_nn.dir/layer.cpp.o"
  "CMakeFiles/cmdare_nn.dir/layer.cpp.o.d"
  "CMakeFiles/cmdare_nn.dir/model.cpp.o"
  "CMakeFiles/cmdare_nn.dir/model.cpp.o.d"
  "CMakeFiles/cmdare_nn.dir/model_zoo.cpp.o"
  "CMakeFiles/cmdare_nn.dir/model_zoo.cpp.o.d"
  "libcmdare_nn.a"
  "libcmdare_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
