
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/checkpoint_size.cpp" "src/nn/CMakeFiles/cmdare_nn.dir/checkpoint_size.cpp.o" "gcc" "src/nn/CMakeFiles/cmdare_nn.dir/checkpoint_size.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/cmdare_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/cmdare_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/cmdare_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/cmdare_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/model_zoo.cpp" "src/nn/CMakeFiles/cmdare_nn.dir/model_zoo.cpp.o" "gcc" "src/nn/CMakeFiles/cmdare_nn.dir/model_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cmdare_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
