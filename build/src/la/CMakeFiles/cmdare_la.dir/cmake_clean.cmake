file(REMOVE_RECURSE
  "CMakeFiles/cmdare_la.dir/eigen.cpp.o"
  "CMakeFiles/cmdare_la.dir/eigen.cpp.o.d"
  "CMakeFiles/cmdare_la.dir/matrix.cpp.o"
  "CMakeFiles/cmdare_la.dir/matrix.cpp.o.d"
  "CMakeFiles/cmdare_la.dir/solve.cpp.o"
  "CMakeFiles/cmdare_la.dir/solve.cpp.o.d"
  "libcmdare_la.a"
  "libcmdare_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
