file(REMOVE_RECURSE
  "libcmdare_la.a"
)
