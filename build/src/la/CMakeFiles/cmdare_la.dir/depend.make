# Empty dependencies file for cmdare_la.
# This may be replaced when dependencies are built.
