# Empty compiler generated dependencies file for cmdare_util.
# This may be replaced when dependencies are built.
