file(REMOVE_RECURSE
  "libcmdare_util.a"
)
