file(REMOVE_RECURSE
  "CMakeFiles/cmdare_util.dir/csv.cpp.o"
  "CMakeFiles/cmdare_util.dir/csv.cpp.o.d"
  "CMakeFiles/cmdare_util.dir/logging.cpp.o"
  "CMakeFiles/cmdare_util.dir/logging.cpp.o.d"
  "CMakeFiles/cmdare_util.dir/rng.cpp.o"
  "CMakeFiles/cmdare_util.dir/rng.cpp.o.d"
  "CMakeFiles/cmdare_util.dir/strings.cpp.o"
  "CMakeFiles/cmdare_util.dir/strings.cpp.o.d"
  "CMakeFiles/cmdare_util.dir/table.cpp.o"
  "CMakeFiles/cmdare_util.dir/table.cpp.o.d"
  "libcmdare_util.a"
  "libcmdare_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmdare_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
