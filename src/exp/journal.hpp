// Crash-resumable campaign journal.
//
// A long sweep that dies at replica 1800/2000 should not start over. The
// journal is an append-only, line-oriented record of every *completed*
// replica: the engine appends one line (and flushes) under the fold lock
// the moment a replica folds, so the file on disk is always a prefix of
// the campaign plus at most one torn trailing line. On resume the engine
// re-reads the journal, replays the recorded outcomes for the replicas
// it already has — skipping their replica functions entirely — and runs
// only the rest. Because aggregation folds replicas in index order from
// the same recorded observations, the final CSV and merged ledger are
// byte-identical to an uninterrupted run at any thread count.
//
// Format (tab-separated fields, one line per record):
//
//   #cmdare-campaign-journal v1 seed=<s> cells=<C> replicas=<R> telemetry=<0|1>
//   <cell>\t<replica>\tok\t<n>\t<metric>\t<value>...\t<k>\t<event>...\tend
//   <cell>\t<replica>\tfail\t<error>\tend
//
// Values are shortest-round-trip doubles (std::to_chars), so replayed
// observations are bit-identical to the originals. Ledger events reuse
// the ledger JSONL codec (obs::serialize_ledger_event), whose
// serialize -> parse -> serialize identity the fuzzer pins. Every
// free-text field (metric names, error text, serialized events) is
// escaped (\\ \t \n) so the tab grammar survives arbitrary content. A
// final line without the "end" marker is a torn write from the crash
// and is ignored; any *earlier* malformed line is real corruption and
// parse_journal throws.
//
// Scope: observations and ledger events are journaled; a replayed
// replica's registry counters and trace spans are not (they would
// roughly double every line for telemetry few campaigns export). The
// resume guarantee therefore covers the aggregate CSV and the merged
// ledger — the artifacts campaigns persist.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/ledger.hpp"

namespace cmdare::exp {

/// The identity line of a journal. A resume must present the exact same
/// grid shape and telemetry setting; anything else is a different
/// campaign and parse-side validation refuses to mix them.
struct JournalHeader {
  std::uint64_t seed = 0;
  std::size_t cells = 0;
  int replicas = 0;
  bool telemetry = false;
};

/// One completed replica, as recorded (the payload of one line).
struct JournalEntry {
  std::size_t cell = 0;
  int replica = 0;
  bool failed = false;
  std::string error;  // only when failed
  std::vector<std::pair<std::string, double>> observations;
  /// The replica's ledger events (empty unless telemetry was captured).
  std::vector<obs::LedgerEvent> ledger;
};

struct JournalContents {
  JournalHeader header;
  std::vector<JournalEntry> entries;
};

std::string format_journal_header(const JournalHeader& header);
std::string format_journal_entry(const JournalEntry& entry);

/// Parses a journal file. A trailing line without the "end" marker (the
/// writer died mid-append) is silently dropped; a malformed *completed*
/// line or a missing/unrecognized header throws std::invalid_argument.
JournalContents parse_journal(std::string_view text);

}  // namespace cmdare::exp
