#include "exp/campaign.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "exp/journal.hpp"
#include "exp/pool.hpp"
#include "stats/descriptive.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

namespace cmdare::exp {
namespace {

/// Installs a telemetry bundle on the current thread for a scope and
/// restores the previous one (null on pool workers) on exit.
class ThreadTelemetryGuard {
 public:
  explicit ThreadTelemetryGuard(obs::Telemetry* bundle)
      : previous_(obs::telemetry()) {
    obs::install(bundle);
  }
  ~ThreadTelemetryGuard() { obs::install(previous_); }
  ThreadTelemetryGuard(const ThreadTelemetryGuard&) = delete;
  ThreadTelemetryGuard& operator=(const ThreadTelemetryGuard&) = delete;

 private:
  obs::Telemetry* previous_;
};

/// One replica's landing slot. The owning worker fills it without a
/// lock (slots are disjoint), then flips `done` under the engine mutex;
/// the in-order fold drains it under the same mutex.
struct Slot {
  bool done = false;
  bool failed = false;
  /// Replayed from the resume journal — already on disk, never re-append.
  bool from_journal = false;
  ReplicaResult result;
  std::string error;
  std::unique_ptr<obs::Telemetry> telemetry;
};

std::string format_value(double v) { return util::format_double(v, 6); }

}  // namespace

double MetricAggregate::cov() const {
  if (running.count() < 2) return 0.0;
  const double m = running.mean();
  return m == 0.0 ? 0.0 : running.stddev() / m;
}

double MetricAggregate::quantile(double q) const {
  if (values.empty()) return 0.0;
  return stats::quantile(values, q);
}

void CampaignResult::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.write_row({"campaign", "cell", "region", "gpu", "model",
                    "cluster_size", "launch_hour", "fault_rate", "metric",
                    "replicas_ok", "replicas_failed", "count", "mean", "sd",
                    "cov", "min", "p10", "p50", "p90", "max"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellSpec& cell = cells[c];
    const CellAggregate& agg = aggregates[c];
    const std::vector<std::string> prefix = {
        spec.name,
        std::to_string(cell.index),
        cloud::region_name(cell.region),
        cloud::gpu_name(cell.gpu),
        cell.model,
        std::to_string(cell.cluster_size),
        std::to_string(cell.launch_hour),
        util::format_double(cell.fault_rate, 2)};
    auto row_for = [&](const std::string& metric,
                       const std::vector<std::string>& tail) {
      std::vector<std::string> row = prefix;
      row.push_back(metric);
      row.push_back(std::to_string(agg.replicas_ok));
      row.push_back(std::to_string(agg.replicas_failed));
      row.insert(row.end(), tail.begin(), tail.end());
      writer.write_row(row);
    };
    if (agg.metrics.empty()) {
      // Keep the cell visible even when every replica failed (or none
      // reported anything).
      row_for("(none)", {"0", "0", "0", "0", "0", "0", "0", "0", "0"});
      continue;
    }
    for (const auto& [metric, m] : agg.metrics) {
      const bool has_sd = m.running.count() >= 2;
      row_for(metric,
              {std::to_string(m.running.count()),
               format_value(m.running.mean()),
               format_value(has_sd ? m.running.stddev() : 0.0),
               format_value(m.cov()), format_value(m.running.min()),
               format_value(m.quantile(0.10)), format_value(m.quantile(0.50)),
               format_value(m.quantile(0.90)), format_value(m.running.max())});
    }
  }
}

util::Table CampaignResult::summary_table() const {
  util::Table table({"cell", "metric", "n", "mean", "sd", "cov", "p10", "p50",
                     "p90", "failed"});
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellAggregate& agg = aggregates[c];
    if (agg.metrics.empty()) {
      table.add_row({cells[c].label(), "(none)", "0", "", "", "", "", "", "",
                     std::to_string(agg.replicas_failed)});
      continue;
    }
    bool first = true;
    for (const auto& [metric, m] : agg.metrics) {
      const bool has_sd = m.running.count() >= 2;
      table.add_row({first ? cells[c].label() : "", metric,
                     std::to_string(m.running.count()),
                     util::format_double(m.running.mean(), 4),
                     util::format_double(has_sd ? m.running.stddev() : 0.0, 4),
                     util::format_double(m.cov(), 3),
                     util::format_double(m.quantile(0.10), 4),
                     util::format_double(m.quantile(0.50), 4),
                     util::format_double(m.quantile(0.90), 4),
                     first ? std::to_string(agg.replicas_failed) : ""});
      first = false;
    }
  }
  return table;
}

GridResult run_grid(std::size_t cells, int replica_count, std::uint64_t seed,
                    const GridReplicaFn& replica, const RunOptions& options) {
  if (!replica) {
    throw std::invalid_argument("run_grid: replica function is empty");
  }
  if (cells == 0) {
    throw std::invalid_argument("run_grid: zero cells");
  }
  if (replica_count < 1) {
    throw std::invalid_argument("run_grid: replicas < 1");
  }
  const auto started = std::chrono::steady_clock::now();

  GridResult result;
  result.aggregates.assign(cells, {});
  result.jobs_used = resolve_jobs(options.jobs);

  const std::size_t replicas = static_cast<std::size_t>(replica_count);
  const std::size_t total = cells * replicas;
  result.progress.replicas_total = total;
  result.progress.cells_total = cells;

  const util::Rng root(seed);
  std::vector<Slot> slots(total);
  // Per-cell fold cursor: replica r of cell c folds only after replicas
  // 0..r-1 of that cell have folded, which pins the aggregation order —
  // and therefore every floating-point sum — for any thread count.
  std::vector<std::size_t> next_fold(cells, 0);
  std::vector<std::unique_ptr<obs::Telemetry>> cell_telemetry(cells);
  std::mutex fold_mutex;

  // Crash-resumable journal: cached[] points at the journal entry of a
  // replica already on disk (replayed instead of re-run); journal_out
  // receives one flushed line per newly completed replica, written under
  // the fold lock so the file is always whole lines plus at most one
  // torn trailing append.
  JournalContents journal;
  std::vector<const JournalEntry*> cached(total, nullptr);
  std::ofstream journal_out;
  if (!options.journal_path.empty()) {
    const JournalHeader header{seed, cells, replica_count,
                               options.capture_telemetry};
    if (options.resume) {
      std::ifstream in(options.journal_path);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        journal = parse_journal(buffer.str());
        if (journal.header.seed != header.seed ||
            journal.header.cells != header.cells ||
            journal.header.replicas != header.replicas ||
            journal.header.telemetry != header.telemetry) {
          throw std::invalid_argument(
              "run_grid: journal \"" + options.journal_path +
              "\" does not match this campaign (journal \"" +
              format_journal_header(journal.header) + "\", campaign \"" +
              format_journal_header(header) + "\")");
        }
        for (const JournalEntry& entry : journal.entries) {
          if (entry.cell < cells && entry.replica >= 0 &&
              entry.replica < replica_count) {
            cached[entry.cell * replicas +
                   static_cast<std::size_t>(entry.replica)] = &entry;
          }
        }
      }
    }
    // Rewrite from the parsed contents — dropping any torn trailing
    // line — then keep appending.
    journal_out.open(options.journal_path, std::ios::trunc);
    if (!journal_out) {
      throw std::invalid_argument("run_grid: cannot write journal \"" +
                                  options.journal_path + "\"");
    }
    journal_out << format_journal_header(header) << "\n";
    for (const JournalEntry& entry : journal.entries) {
      journal_out << format_journal_entry(entry) << "\n";
    }
    journal_out.flush();
  }

  auto fold_ready = [&](std::size_t c) {
    CellAggregate& agg = result.aggregates[c];
    while (next_fold[c] < replicas) {
      Slot& slot = slots[c * replicas + next_fold[c]];
      if (!slot.done) break;
      const int r = static_cast<int>(next_fold[c]);
      if (journal_out.is_open() && !slot.from_journal) {
        JournalEntry entry;
        entry.cell = c;
        entry.replica = r;
        entry.failed = slot.failed;
        entry.error = slot.error;
        entry.observations = slot.result.observations;
        if (slot.telemetry) entry.ledger = slot.telemetry->ledger.events();
        journal_out << format_journal_entry(entry) << "\n";
        journal_out.flush();
      }
      if (slot.failed) {
        ++agg.replicas_failed;
        ++result.progress.replicas_failed;
        agg.failures.push_back({r, std::move(slot.error)});
      } else {
        ++agg.replicas_ok;
        for (auto& [metric, value] : slot.result.observations) {
          MetricAggregate& m = agg.metrics[metric];
          m.running.add(value);
          m.values.push_back(value);
        }
      }
      if (slot.telemetry) {
        if (!cell_telemetry[c]) {
          cell_telemetry[c] = std::make_unique<obs::Telemetry>();
        }
        const std::string prefix = "replica" + std::to_string(r) + "/";
        cell_telemetry[c]->registry.merge(slot.telemetry->registry);
        cell_telemetry[c]->tracer.merge(slot.telemetry->tracer, prefix);
        cell_telemetry[c]->ledger.merge(slot.telemetry->ledger, prefix);
      }
      slot = Slot{};  // release the buffered result eagerly
      ++next_fold[c];
      ++result.progress.replicas_done;
      if (next_fold[c] == replicas) ++result.progress.cells_done;
      if (options.on_progress) options.on_progress(result.progress);
    }
  };

  {
    ThreadPool pool(options.jobs);
    pool.parallel_for(total, [&](std::size_t task) {
      const std::size_t c = task / replicas;
      const std::size_t r = task % replicas;
      Slot& slot = slots[task];
      if (const JournalEntry* hit = cached[task]) {
        // Replay the journaled outcome; the replica function never runs.
        slot.from_journal = true;
        if (hit->failed) {
          slot.failed = true;
          slot.error = hit->error;
        } else {
          slot.result.observations = hit->observations;
        }
        if (options.capture_telemetry) {
          slot.telemetry = std::make_unique<obs::Telemetry>();
          for (const obs::LedgerEvent& event : hit->ledger) {
            slot.telemetry->ledger.record(event);
          }
        }
        std::lock_guard<std::mutex> lock(fold_mutex);
        slot.done = true;
        fold_ready(c);
        return;
      }
      util::Rng rng = root.fork(static_cast<std::uint64_t>(c))
                          .fork(static_cast<std::uint64_t>(r));
      obs::Telemetry* telemetry = nullptr;
      if (options.capture_telemetry) {
        slot.telemetry = std::make_unique<obs::Telemetry>();
        telemetry = slot.telemetry.get();
      }
      {
        ThreadTelemetryGuard guard(telemetry);
        try {
          slot.result = replica(c, static_cast<int>(r), rng, telemetry);
        } catch (const std::exception& e) {
          slot.failed = true;
          slot.error = e.what();
        } catch (...) {
          slot.failed = true;
          slot.error = "unknown error";
        }
      }
      std::lock_guard<std::mutex> lock(fold_mutex);
      slot.done = true;
      fold_ready(c);
    });
  }

  // Deterministic cross-cell telemetry merge, on the calling thread.
  if (options.capture_telemetry) {
    result.telemetry = std::make_unique<obs::Telemetry>();
    for (std::size_t c = 0; c < cell_telemetry.size(); ++c) {
      if (!cell_telemetry[c]) continue;
      const std::string prefix = "cell" + std::to_string(c) + "/";
      result.telemetry->registry.merge(cell_telemetry[c]->registry);
      result.telemetry->tracer.merge(cell_telemetry[c]->tracer, prefix);
      result.telemetry->ledger.merge(cell_telemetry[c]->ledger, prefix);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return result;
}

CampaignResult run_campaign(const CampaignSpec& spec, const ReplicaFn& replica,
                            const RunOptions& options) {
  if (!replica) {
    throw std::invalid_argument("run_campaign: replica function is empty");
  }
  CampaignResult result;
  result.spec = spec;
  result.cells = expand(spec);

  GridResult grid = run_grid(
      result.cells.size(), spec.replicas, spec.seed,
      [&](std::size_t c, int r, util::Rng& rng, obs::Telemetry* telemetry) {
        ReplicaContext context{spec, result.cells[c], r, rng, telemetry};
        return replica(context);
      },
      options);
  result.aggregates = std::move(grid.aggregates);
  result.progress = grid.progress;
  result.jobs_used = grid.jobs_used;
  result.wall_seconds = grid.wall_seconds;
  result.telemetry = std::move(grid.telemetry);

  if (obs::Registry* registry = obs::registry()) {
    const obs::LabelSet labels = {{"campaign", spec.name}};
    registry->counter("exp.campaign.replicas_total", labels)
        .inc(static_cast<double>(result.progress.replicas_total));
    registry->counter("exp.campaign.replicas_failed", labels)
        .inc(static_cast<double>(result.progress.replicas_failed));
    registry->counter("exp.campaign.cells_total", labels)
        .inc(static_cast<double>(result.cells.size()));
    registry->histogram("exp.campaign.wall_seconds", labels)
        .observe(result.wall_seconds);
  }
  return result;
}

}  // namespace cmdare::exp
