#include "exp/spec.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace cmdare::exp {

double CampaignSpec::param(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::string CellSpec::label() const {
  std::string out = cloud::region_name(region);
  out += '/';
  out += cloud::gpu_name(gpu);
  out += '/';
  out += model;
  out += "/w";
  out += std::to_string(cluster_size);
  out += "/h";
  out += std::to_string(launch_hour);
  if (fault_rate != 0.0) {
    out += "/f";
    out += util::format_double(fault_rate, 2);
  }
  return out;
}

std::size_t cell_count(const CampaignSpec& spec) {
  return spec.regions.size() * spec.gpus.size() * spec.models.size() *
         spec.cluster_sizes.size() * spec.launch_hours.size() *
         spec.fault_rates.size();
}

std::vector<CellSpec> expand(const CampaignSpec& spec) {
  if (spec.regions.empty() || spec.gpus.empty() || spec.models.empty() ||
      spec.cluster_sizes.empty() || spec.launch_hours.empty() ||
      spec.fault_rates.empty()) {
    throw std::invalid_argument("expand: every factor list must be non-empty");
  }
  if (spec.replicas < 1) {
    throw std::invalid_argument("expand: replicas must be >= 1");
  }
  std::vector<CellSpec> cells;
  cells.reserve(cell_count(spec));
  for (const cloud::Region region : spec.regions) {
    for (const cloud::GpuType gpu : spec.gpus) {
      for (const std::string& model : spec.models) {
        for (const int size : spec.cluster_sizes) {
          for (const int hour : spec.launch_hours) {
            for (const double rate : spec.fault_rates) {
              CellSpec cell;
              cell.index = cells.size();
              cell.region = region;
              cell.gpu = gpu;
              cell.model = model;
              cell.cluster_size = size;
              cell.launch_hour = hour;
              cell.fault_rate = rate;
              cells.push_back(std::move(cell));
            }
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace cmdare::exp
