// Declarative Monte-Carlo campaign specifications.
//
// Every statistical result in the paper — the Table V revocation counts,
// the Figure 8 lifetime CDFs, the replacement-overhead and placement
// ablations — is an aggregate over many independent simulation replicas
// swept over a factor grid (region, GPU type, model, cluster size, local
// launch hour). CampaignSpec is the declarative form of such a sweep:
// expand() takes the cartesian product of the factor lists into a flat,
// deterministically ordered list of cells, and the engine
// (exp/campaign) schedules `replicas` independent replicas per cell.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cloud/gpu.hpp"
#include "cloud/region.hpp"

namespace cmdare::exp {

/// A factor-grid sweep: the cartesian product of the five factor lists,
/// each cell replicated `replicas` times. Factors that should not vary
/// stay at their single default value. Replica functions that ignore a
/// factor (e.g. a lifetime campaign has no model) simply leave its list
/// at the default so it contributes one value to the product.
struct CampaignSpec {
  std::string name = "campaign";
  /// Root seed: replica (cell c, index r) draws from
  /// Rng(seed).fork(c).fork(r), so results are reproducible from this one
  /// value and independent of thread count and completion order.
  std::uint64_t seed = 1;
  /// Replicas per cell (>= 1).
  int replicas = 1;

  // Factor grids, expanded outermost (regions) to innermost (launch
  // hours) in declaration order. Each must be non-empty.
  std::vector<cloud::Region> regions = {cloud::Region::kUsCentral1};
  std::vector<cloud::GpuType> gpus = {cloud::GpuType::kK80};
  std::vector<std::string> models = {"resnet-15"};
  std::vector<int> cluster_sizes = {1};
  std::vector<int> launch_hours = {9};
  /// Uniform fault-injection rates (FaultPlan::uniform) swept as the
  /// innermost factor. The default single 0.0 keeps fault-free campaigns
  /// unchanged; resilience campaigns sweep it to trace degradation curves.
  std::vector<double> fault_rates = {0.0};

  /// Free-form numeric knobs the replica function reads (step counts,
  /// job durations, batch sizes, ...). Part of the spec so a campaign is
  /// fully described by one value; std::map keeps iteration (and thus
  /// any derived output) deterministic.
  std::map<std::string, double> params;

  /// params[key], or `fallback` when the knob is absent.
  double param(const std::string& key, double fallback) const;
};

/// One grid point of the expanded campaign.
struct CellSpec {
  std::size_t index = 0;  // position in expansion order
  cloud::Region region = cloud::Region::kUsCentral1;
  cloud::GpuType gpu = cloud::GpuType::kK80;
  std::string model;
  int cluster_size = 1;
  int launch_hour = 9;
  double fault_rate = 0.0;

  /// Compact label, e.g. "us-central1/k80/resnet-15/w4/h9"; a non-zero
  /// fault rate appends "/f0.10" so fault-free labels stay unchanged.
  std::string label() const;
};

/// Number of cells expand() would produce.
std::size_t cell_count(const CampaignSpec& spec);

/// Cartesian expansion in declaration order. Throws std::invalid_argument
/// when a factor list is empty or replicas < 1.
std::vector<CellSpec> expand(const CampaignSpec& spec);

}  // namespace cmdare::exp
