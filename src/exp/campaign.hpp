// Parallel Monte-Carlo campaign engine.
//
// run_campaign() expands a CampaignSpec into cells, runs `replicas`
// independent replicas per cell on a ThreadPool, and streams the replica
// observations into per-cell aggregates. The design invariants:
//
//   * Determinism for any thread count. Replica (c, r) draws every
//     random number from Rng(spec.seed).fork(c).fork(r) — no shared
//     stream — and aggregation folds replicas *in index order within
//     each cell* (out-of-order completions are buffered until their
//     predecessors arrive), so the aggregate CSV is byte-identical at
//     --jobs 1 and --jobs N. tests/exp_campaign_test.cpp pins this.
//   * Replica isolation. Each replica builds its own simulator and, when
//     telemetry capture is on, gets its own obs::Telemetry installed
//     thread-locally for its duration (see obs/obs.hpp's per-thread
//     contract); bundles merge deterministically after the fold.
//   * Crash isolation. A throwing replica records a failure row (replica
//     index + error text) in its cell and the campaign keeps going; its
//     observations are simply absent from the aggregates.
//
// The progress callback fires under the engine's aggregation mutex after
// every folded replica, so it is serialized — safe to print from or to
// bump counters in a caller-owned structure without extra locking.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/spec.hpp"
#include "obs/obs.hpp"
#include "stats/running.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace cmdare::exp {

/// Everything a replica function gets to work with. The rng is the
/// replica's private stream; the telemetry bundle (when capture is on)
/// is also installed as the thread's active sink, so instrumented
/// library code inside the replica lands in it automatically.
struct ReplicaContext {
  const CampaignSpec& spec;
  const CellSpec& cell;
  int replica = 0;
  util::Rng rng;
  obs::Telemetry* telemetry = nullptr;
};

/// A replica reports observations as (metric, value) pairs. A metric
/// name may repeat: each occurrence is one observation (e.g. a batch of
/// sampled lifetimes from one replica).
struct ReplicaResult {
  std::vector<std::pair<std::string, double>> observations;

  void observe(std::string metric, double value) {
    observations.emplace_back(std::move(metric), value);
  }
};

using ReplicaFn = std::function<ReplicaResult(ReplicaContext&)>;

struct ReplicaFailure {
  int replica = 0;
  std::string error;
};

/// Streaming per-metric aggregate: Welford moments plus the retained
/// sample for percentile bands and ECDF construction. Values appear in
/// replica order (then observation order within a replica) — the same
/// order for every thread count.
struct MetricAggregate {
  stats::RunningStats running;
  std::vector<double> values;

  double cov() const;
  /// Linear-interpolated percentile of the retained sample, q in [0, 1].
  double quantile(double q) const;
};

struct CellAggregate {
  int replicas_ok = 0;
  int replicas_failed = 0;
  /// Keyed by metric name; std::map so iteration is deterministic.
  std::map<std::string, MetricAggregate> metrics;
  std::vector<ReplicaFailure> failures;
};

struct Progress {
  std::size_t replicas_done = 0;  // ok + failed
  std::size_t replicas_failed = 0;
  std::size_t replicas_total = 0;
  std::size_t cells_done = 0;
  std::size_t cells_total = 0;
};

struct RunOptions {
  /// Worker threads: 1 = serial (inline on the caller), 0 = one per
  /// hardware thread, N = exactly N.
  int jobs = 0;
  /// Give every replica its own obs::Telemetry bundle and merge them all
  /// (tracks prefixed "cell<c>/replica<r>/") into CampaignResult::
  /// telemetry. Off by default: a large campaign's merged trace is big.
  bool capture_telemetry = false;
  /// Serialized progress callback; fires after every folded replica.
  std::function<void(const Progress&)> on_progress;
  /// Crash-resumable journal (exp/journal.hpp): append every completed
  /// replica's outcome to this file, flushed under the fold lock, so a
  /// killed campaign loses at most one torn trailing line. Empty = off.
  std::string journal_path;
  /// Re-read `journal_path` first and replay the replicas it already
  /// holds instead of re-running them (their replica functions are never
  /// called); only the missing replicas execute. The journal header must
  /// match this run's seed/cells/replicas/telemetry or run_grid throws
  /// std::invalid_argument. With a fresh or absent journal this is a
  /// plain recorded run. The resumed aggregate CSV and merged ledger are
  /// byte-identical to an uninterrupted run at any job count (replayed
  /// registry counters / trace spans are not journaled — see
  /// exp/journal.hpp for the scope contract).
  bool resume = false;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<CellSpec> cells;
  std::vector<CellAggregate> aggregates;  // parallel to cells
  Progress progress;                      // final counts
  int jobs_used = 1;
  double wall_seconds = 0.0;  // informational; never part of the CSV
  /// Merged per-replica telemetry; null unless capture_telemetry.
  std::unique_ptr<obs::Telemetry> telemetry;

  std::size_t total_failures() const { return progress.replicas_failed; }

  /// Deterministic aggregate CSV: one row per (cell, metric) with count,
  /// mean, sd, CoV, min, p10/p50/p90, max, plus the cell's ok/failed
  /// replica counts. Byte-identical across thread counts by design.
  void write_csv(std::ostream& out) const;
  /// The same rows as an ASCII table for terminal output.
  util::Table summary_table() const;
};

/// The generic engine underneath run_campaign (and the scenario layer's
/// run_scenario_campaign): a `cells x replicas` task grid where replica
/// (c, r) draws from Rng(seed).fork(c).fork(r). The callback receives the
/// replica's private rng and (when capture is on) its telemetry bundle,
/// already installed thread-locally. Everything else — the per-cell
/// in-order fold, crash isolation, deterministic telemetry merge — is
/// identical to run_campaign, which is now a thin wrapper.
using GridReplicaFn = std::function<ReplicaResult(
    std::size_t cell, int replica, util::Rng& rng, obs::Telemetry* telemetry)>;

struct GridResult {
  std::vector<CellAggregate> aggregates;  // one per cell, in cell order
  Progress progress;
  int jobs_used = 1;
  double wall_seconds = 0.0;
  /// Merged per-replica telemetry; null unless capture_telemetry.
  std::unique_ptr<obs::Telemetry> telemetry;
};

/// Runs the grid. Throws std::invalid_argument when `replica` is empty,
/// `cells` is zero, or `replicas` < 1.
GridResult run_grid(std::size_t cells, int replicas, std::uint64_t seed,
                    const GridReplicaFn& replica,
                    const RunOptions& options = {});

/// Runs the campaign. Also records summary counters
/// (exp.campaign.replicas_total / .replicas_failed / .cells_total) into
/// the *caller thread's* obs registry, when one is installed, after the
/// run completes — worker threads never touch the caller's bundle.
CampaignResult run_campaign(const CampaignSpec& spec, const ReplicaFn& replica,
                            const RunOptions& options = {});

}  // namespace cmdare::exp
