#include "exp/journal.hpp"

#include <charconv>
#include <stdexcept>

#include "util/strings.hpp"

namespace cmdare::exp {
namespace {

constexpr std::string_view kMagic = "#cmdare-campaign-journal v1";

// The line grammar is tab-separated; free-text fields (metric names,
// error text, serialized ledger events) get \\ \t \n escaped so any
// content survives. The inverse rejects dangling or unknown escapes.
std::string escape_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool unescape_field(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      *out += s[i];
      continue;
    }
    if (++i == s.size()) return false;
    switch (s[i]) {
      case '\\':
        *out += '\\';
        break;
      case 't':
        *out += '\t';
        break;
      case 'n':
        *out += '\n';
        break;
      default:
        return false;
    }
  }
  return true;
}

// Shortest text that round-trips the exact double — replayed
// observations fold to bit-identical aggregates.
std::string format_value(double v) {
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), v);
  return ec == std::errc() ? std::string(buffer, ptr) : std::string("0");
}

bool parse_value(std::string_view text, double* out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_unsigned(std::string_view text, unsigned long long* out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

[[noreturn]] void bad_line(int line_number, const std::string& what) {
  throw std::invalid_argument("campaign journal line " +
                              std::to_string(line_number) + ": " + what);
}

}  // namespace

std::string format_journal_header(const JournalHeader& header) {
  std::string out(kMagic);
  out += " seed=" + std::to_string(header.seed);
  out += " cells=" + std::to_string(header.cells);
  out += " replicas=" + std::to_string(header.replicas);
  out += " telemetry=";
  out += header.telemetry ? '1' : '0';
  return out;
}

std::string format_journal_entry(const JournalEntry& entry) {
  std::string out = std::to_string(entry.cell);
  out += '\t';
  out += std::to_string(entry.replica);
  if (entry.failed) {
    out += "\tfail\t";
    out += escape_field(entry.error);
    out += "\tend";
    return out;
  }
  out += "\tok\t";
  out += std::to_string(entry.observations.size());
  for (const auto& [metric, value] : entry.observations) {
    out += '\t';
    out += escape_field(metric);
    out += '\t';
    out += format_value(value);
  }
  out += '\t';
  out += std::to_string(entry.ledger.size());
  for (const obs::LedgerEvent& event : entry.ledger) {
    out += '\t';
    out += escape_field(obs::serialize_ledger_event(event));
  }
  out += "\tend";
  return out;
}

JournalContents parse_journal(std::string_view text) {
  JournalContents contents;
  const std::vector<std::string> lines = util::split(text, '\n');

  // Locate the last non-empty line: only *it* may be torn (the writer
  // flushes line-by-line, so a crash tears at most the final append).
  std::size_t last_content = 0;
  bool any_content = false;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (!util::trim(lines[i]).empty()) {
      last_content = i;
      any_content = true;
    }
  }
  if (!any_content) {
    throw std::invalid_argument("campaign journal: empty file (no header)");
  }

  // Header.
  const std::string& first = lines[0];
  if (first.substr(0, kMagic.size()) != kMagic) {
    throw std::invalid_argument(
        "campaign journal: missing \"#cmdare-campaign-journal v1\" header");
  }
  for (const std::string& token :
       util::split(util::trim(first.substr(kMagic.size())), ' ')) {
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("campaign journal: bad header token \"" +
                                  token + "\"");
    }
    const std::string_view key = std::string_view(token).substr(0, eq);
    const std::string_view value = std::string_view(token).substr(eq + 1);
    unsigned long long parsed = 0;
    if (!parse_unsigned(value, &parsed)) {
      throw std::invalid_argument("campaign journal: bad header value \"" +
                                  token + "\"");
    }
    if (key == "seed") {
      contents.header.seed = parsed;
    } else if (key == "cells") {
      contents.header.cells = static_cast<std::size_t>(parsed);
    } else if (key == "replicas") {
      contents.header.replicas = static_cast<int>(parsed);
    } else if (key == "telemetry") {
      contents.header.telemetry = parsed != 0;
    } else {
      throw std::invalid_argument("campaign journal: unknown header key \"" +
                                  std::string(key) + "\"");
    }
  }

  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (util::trim(lines[i]).empty()) continue;
    const int line_number = static_cast<int>(i) + 1;
    const std::vector<std::string> fields = util::split(lines[i], '\t');
    const bool torn = fields.empty() || fields.back() != "end";
    if (torn) {
      if (i == last_content) continue;  // the crash's torn final append
      bad_line(line_number, "missing \"end\" marker before the final line");
    }
    if (fields.size() < 4) bad_line(line_number, "too few fields");

    JournalEntry entry;
    unsigned long long cell = 0;
    unsigned long long replica = 0;
    if (!parse_unsigned(fields[0], &cell) ||
        !parse_unsigned(fields[1], &replica)) {
      bad_line(line_number, "bad cell/replica indices");
    }
    entry.cell = static_cast<std::size_t>(cell);
    entry.replica = static_cast<int>(replica);

    std::size_t f = 3;  // first field after the ok/fail tag
    if (fields[2] == "fail") {
      entry.failed = true;
      if (fields.size() != 5 || !unescape_field(fields[3], &entry.error)) {
        bad_line(line_number, "bad failure record");
      }
      contents.entries.push_back(std::move(entry));
      continue;
    }
    if (fields[2] != "ok") bad_line(line_number, "unknown record tag");

    unsigned long long observation_count = 0;
    if (!parse_unsigned(fields[f++], &observation_count) ||
        fields.size() < f + 2 * observation_count + 1) {
      bad_line(line_number, "bad observation count");
    }
    entry.observations.reserve(observation_count);
    for (unsigned long long k = 0; k < observation_count; ++k) {
      std::string metric;
      double value = 0.0;
      if (!unescape_field(fields[f], &metric) ||
          !parse_value(fields[f + 1], &value)) {
        bad_line(line_number, "bad observation");
      }
      entry.observations.emplace_back(std::move(metric), value);
      f += 2;
    }

    unsigned long long event_count = 0;
    if (!parse_unsigned(fields[f++], &event_count) ||
        fields.size() != f + event_count + 1) {  // + the "end" marker
      bad_line(line_number, "bad ledger event count");
    }
    entry.ledger.reserve(event_count);
    for (unsigned long long k = 0; k < event_count; ++k) {
      std::string event_text;
      if (!unescape_field(fields[f++], &event_text)) {
        bad_line(line_number, "bad ledger event escape");
      }
      obs::LedgerParseResult parsed = obs::parse_ledger_jsonl(event_text);
      if (!parsed.ok() || parsed.ledger.size() != 1) {
        bad_line(line_number, "bad ledger event");
      }
      entry.ledger.push_back(parsed.ledger.events().front());
    }
    contents.entries.push_back(std::move(entry));
  }
  return contents;
}

}  // namespace cmdare::exp
