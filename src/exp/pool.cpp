#include "exp/pool.hpp"

#include <algorithm>

namespace cmdare::exp {

int resolve_jobs(int jobs) {
  if (jobs >= 1) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int jobs) {
  const int workers = resolve_jobs(jobs) - 1;
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  std::shared_ptr<Job> last;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return stop_ || (job_ != nullptr && job_ != last); });
      if (stop_) return;
      job = job_;
      last = job;
    }
    drain(job);
  }
}

void ThreadPool::drain(const std::shared_ptr<Job>& job) {
  for (;;) {
    const std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->count) return;
    std::exception_ptr error;
    try {
      (*job->fn)(i);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !job->error) job->error = error;
    if (++job->completed == job->count) job_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_.empty()) {
    // Serial reference path: run inline, complete every task even when
    // one throws (matching the pooled path), rethrow the first failure.
    std::exception_ptr error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  auto job = std::make_shared<Job>(count, fn);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
  }
  work_ready_.notify_all();
  drain(job);
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [&] { return job->completed == job->count; });
  if (job_ == job) job_ = nullptr;
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace cmdare::exp
