// Fixed thread pool with self-scheduling parallel-for.
//
// The campaign engine (exp/campaign) runs thousands of independent
// simulator replicas whose runtimes vary by orders of magnitude (a
// lifetime sample vs. an 8-hour training run), so static task splitting
// would leave threads idle. ThreadPool instead hands out task indices
// from a shared atomic cursor: every worker — including the calling
// thread, which participates — grabs the next unclaimed index until the
// range is drained. That is dynamic load balancing with the determinism
// properties the engine needs: *which thread* runs a task is
// nondeterministic, but the set of tasks and their per-task inputs are
// fixed, and the engine orders its aggregation independently of
// completion order.
//
// jobs == 1 is special: no worker threads are spawned and parallel_for
// runs every task inline on the caller, giving a pure serial reference
// execution for determinism tests and debugging.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cmdare::exp {

/// Resolves a --jobs request: values >= 1 pass through; 0 (the "auto"
/// convention) becomes std::thread::hardware_concurrency(), floored at 1.
int resolve_jobs(int jobs);

class ThreadPool {
 public:
  /// Spawns `resolve_jobs(jobs) - 1` worker threads; the caller acts as
  /// the remaining worker inside parallel_for.
  explicit ThreadPool(int jobs = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the calling thread (>= 1).
  int size() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs fn(i) for every i in [0, count), distributing indices
  /// dynamically across the pool, and blocks until all have finished.
  /// If any invocation throws, the remaining tasks still run and the
  /// first exception (in completion order) is rethrown afterwards. Not
  /// reentrant: one parallel_for at a time, from one thread.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  // One parallel_for invocation. Workers hold the job via shared_ptr, so
  // a thread that wakes late (or checks the cursor after the job already
  // completed) still sees *its* job's exhausted cursor rather than a
  // recycled one from the next invocation.
  struct Job {
    explicit Job(std::size_t count_in,
                 const std::function<void(std::size_t)>& fn_in)
        : count(count_in), fn(&fn_in) {}
    const std::size_t count;
    const std::function<void(std::size_t)>* const fn;
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;  // guarded by the pool mutex
    std::exception_ptr error;   // first failure; guarded by the pool mutex
  };

  void worker_loop();
  void drain(const std::shared_ptr<Job>& job);

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable job_done_;
  std::shared_ptr<Job> job_;  // current job, null when idle
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cmdare::exp
