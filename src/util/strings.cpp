#include "util/strings.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace cmdare::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string format_double(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string(buf.data());
}

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  double v = bytes;
  while (std::abs(v) >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return format_double(v, unit == 0 ? 0 : 1) + " " + kUnits[unit];
}

std::string format_duration(double seconds) {
  if (seconds < 0) return "-" + format_duration(-seconds);
  if (seconds < 60.0) return format_double(seconds, 1) + " s";
  const auto total = static_cast<long long>(seconds + 0.5);
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  std::array<char, 64> buf{};
  if (h > 0) {
    std::snprintf(buf.data(), buf.size(), "%lldh %02lldm %02llds", h, m, s);
  } else {
    std::snprintf(buf.data(), buf.size(), "%lldm %02llds", m, s);
  }
  return std::string(buf.data());
}

}  // namespace cmdare::util
