#include "util/table.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cmdare::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  alignment_.assign(header_.size(), Align::kRight);
  if (!alignment_.empty()) alignment_[0] = Align::kLeft;
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > header_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than columns");
  }
  cells.resize(header_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void Table::add_separator() { rows_.push_back(Row{true, {}}); }

void Table::set_alignment(std::size_t column, Align align) {
  if (column >= alignment_.size()) {
    throw std::out_of_range("Table::set_alignment: column out of range");
  }
  alignment_[column] = align;
}

void Table::render(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto print_rule = [&] {
    out << '+';
    for (std::size_t w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      out << ' ';
      if (alignment_[c] == Align::kRight) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
      out << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  print_rule();
  print_cells(header_);
  print_rule();
  for (const Row& row : rows_) {
    if (row.separator) {
      print_rule();
    } else {
      print_cells(row.cells);
    }
  }
  print_rule();
}

std::string Table::to_string() const {
  std::ostringstream oss;
  render(oss);
  return oss.str();
}

std::string format_mean_sd(double mean, double sd, int precision) {
  return format_double(mean, precision) + " ± " +
         format_double(sd, precision);
}

}  // namespace cmdare::util
