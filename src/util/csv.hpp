// CSV emission for experiment results.
//
// Every bench harness can dump its raw series as CSV next to the printed
// table so results can be re-plotted. Quoting follows RFC 4180: fields
// containing comma, quote, or newline are quoted, quotes doubled.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace cmdare::util {

/// Escapes a single CSV field per RFC 4180.
std::string csv_escape(const std::string& field);

/// Streams rows of a CSV document. The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes a header or data row. Values are escaped.
  void write_row(const std::vector<std::string>& fields);
  void write_row(std::initializer_list<std::string> fields);

  /// Convenience: formats doubles with the given precision.
  void write_numeric_row(const std::vector<double>& values, int precision = 6);

  /// Number of rows written so far.
  std::size_t rows_written() const { return rows_; }

 private:
  std::ostream* out_;
  std::size_t rows_ = 0;
};

/// Parses a single CSV line into fields (handles quoting). Used by tests
/// and by tools that reload dumped experiment data.
std::vector<std::string> csv_parse_line(const std::string& line);

}  // namespace cmdare::util
