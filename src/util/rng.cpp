#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace cmdare::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a, used to mix stream names into fork() seeds.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : state_) word = splitmix64(x);
}

Rng::Rng(std::uint64_t s0, std::uint64_t s1, std::uint64_t s2,
         std::uint64_t s3)
    : state_{s0, s1, s2, s3} {}

Rng Rng::fork(std::string_view stream_name) const {
  // Mix the current state with the stream name through SplitMix64 so that
  // forked streams are decorrelated from the parent and from each other.
  std::uint64_t x = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                    rotl(state_[3], 43) ^ fnv1a(stream_name);
  std::uint64_t s0 = splitmix64(x);
  std::uint64_t s1 = splitmix64(x);
  std::uint64_t s2 = splitmix64(x);
  std::uint64_t s3 = splitmix64(x);
  return Rng(s0, s1, s2, s3);
}

Rng Rng::fork(std::uint64_t index) const {
  // Finalize the index through one SplitMix64 round (with an offset so
  // index 0 is not a fixed point) before mixing it with the parent state.
  // The per-index key lands in a different part of the 64-bit space than
  // the FNV-1a hashes used by the string overload, keeping the two fork
  // families from aliasing.
  std::uint64_t key = index ^ 0xd1b54a32d192ed03ULL;
  key = splitmix64(key);
  std::uint64_t x = state_[0] ^ rotl(state_[1], 13) ^ rotl(state_[2], 29) ^
                    rotl(state_[3], 43) ^ key;
  std::uint64_t s0 = splitmix64(x);
  std::uint64_t s1 = splitmix64(x);
  std::uint64_t s2 = splitmix64(x);
  std::uint64_t s3 = splitmix64(x);
  return Rng(s0, s1, s2, s3);
}

std::vector<Rng> Rng::fork_batch(std::uint64_t first_index,
                                 std::size_t count) const {
  // Hash the (immutable) parent state once; per index only the SplitMix64
  // finalizer chain differs. Each element is bit-identical to
  // fork(first_index + i).
  const std::uint64_t mix = state_[0] ^ rotl(state_[1], 13) ^
                            rotl(state_[2], 29) ^ rotl(state_[3], 43);
  std::vector<Rng> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t key =
        (first_index + static_cast<std::uint64_t>(i)) ^ 0xd1b54a32d192ed03ULL;
    key = splitmix64(key);
    std::uint64_t x = mix ^ key;
    std::uint64_t s0 = splitmix64(x);
    std::uint64_t s1 = splitmix64(x);
    std::uint64_t s2 = splitmix64(x);
    std::uint64_t s3 = splitmix64(x);
    streams.push_back(Rng(s0, s1, s2, s3));
  }
  return streams;
}

void Rng::fill_u64(std::uint64_t* out, std::size_t n) {
  std::uint64_t s0 = state_[0], s1 = state_[1], s2 = state_[2],
                s3 = state_[3];
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = rotl(s0 + s3, 23) + s0;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

void Rng::fill_uniform(double* out, std::size_t n) {
  std::uint64_t s0 = state_[0], s1 = state_[1], s2 = state_[2],
                s3 = state_[3];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = rotl(s0 + s3, 23) + s0;
    out[i] = static_cast<double>(bits >> 11) * 0x1.0p-53;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller. uniform() can return exactly 0, which log() rejects.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sd) {
  if (sd < 0.0) throw std::invalid_argument("normal: sd must be >= 0");
  return mean + sd * normal();
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  if (mean <= 0.0) {
    throw std::invalid_argument("lognormal_mean_cv: mean must be > 0");
  }
  if (cv < 0.0) {
    throw std::invalid_argument("lognormal_mean_cv: cv must be >= 0");
  }
  if (cv == 0.0) return mean;
  // For X ~ LogNormal(mu, sigma):  E[X] = exp(mu + sigma^2/2),
  // CV[X]^2 = exp(sigma^2) - 1. Invert both.
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means; the
  // simulator only uses large means for aggregate arrival counts where the
  // approximation error is negligible.
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

}  // namespace cmdare::util
