// Small string helpers shared across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cmdare::util {

/// Splits `s` on `delim`; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Joins `parts` with `delim` between them.
std::string join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Formats a double with `precision` digits after the decimal point.
std::string format_double(double value, int precision);

/// Formats a byte count as a human-readable string ("12.3 MB").
std::string format_bytes(double bytes);

/// Formats a duration in seconds as "1h 02m 03s" / "12.3 s" as appropriate.
std::string format_duration(double seconds);

}  // namespace cmdare::util
