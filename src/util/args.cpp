#include "util/args.hpp"

#include <algorithm>
#include <charconv>
#include <utility>
#include <stdexcept>

namespace cmdare::util {
namespace {

template <typename T>
std::string parse_number(const std::string& value, T* out) {
  const char* first = value.data();
  const char* last = first + value.size();
  T parsed{};
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc() || ptr != last) {
    return "expected a number, got \"" + value + "\"";
  }
  *out = parsed;
  return "";
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(Option option) {
  if (find(option.name) != nullptr) {
    throw std::logic_error("ArgParser: duplicate option --" + option.name);
  }
  options_.push_back(std::move(option));
}

void ArgParser::add_flag(const std::string& name, std::string help,
                         bool* out) {
  add_option({name, "", std::move(help),
              [out](const std::string&) {
                *out = true;
                return std::string();
              },
              false});
}

void ArgParser::add_value(const std::string& name, std::string hint,
                          std::string help, std::string* out) {
  add_option({name, std::move(hint), std::move(help),
              [out](const std::string& value) {
                *out = value;
                return std::string();
              },
              true});
}

void ArgParser::add_repeated(const std::string& name, std::string hint,
                             std::string help,
                             std::vector<std::string>* out) {
  add_option({name, std::move(hint), std::move(help),
              [out](const std::string& value) {
                out->push_back(value);
                return std::string();
              },
              true});
}

void ArgParser::add_int(const std::string& name, std::string hint,
                        std::string help, int* out) {
  add_option({name, std::move(hint), std::move(help),
              [out](const std::string& value) {
                return parse_number(value, out);
              },
              true});
}

void ArgParser::add_uint64(const std::string& name, std::string hint,
                           std::string help, std::uint64_t* out) {
  add_option({name, std::move(hint), std::move(help),
              [out](const std::string& value) {
                return parse_number(value, out);
              },
              true});
}

void ArgParser::add_positional(std::string hint, std::string help,
                               std::string* out, bool required) {
  if (required && !positionals_.empty() && !positionals_.back().required) {
    throw std::logic_error(
        "ArgParser: required positional after an optional one");
  }
  positionals_.push_back({std::move(hint), std::move(help), out, required});
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  for (const Option& option : options_) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

bool ArgParser::parse(int argc, char* const* argv, std::string* error) {
  std::size_t next_positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-') {
      const Option* option = find(arg.substr(2));
      if (option == nullptr) {
        if (error) *error = "unknown option " + arg;
        return false;
      }
      std::string value;
      if (option->takes_value) {
        if (i + 1 >= argc) {
          if (error) *error = arg + " requires a value";
          return false;
        }
        value = argv[++i];
      }
      const std::string apply_error = option->apply(value);
      if (!apply_error.empty()) {
        if (error) *error = arg + ": " + apply_error;
        return false;
      }
      continue;
    }
    if (next_positional >= positionals_.size()) {
      if (error) *error = "unexpected argument \"" + arg + "\"";
      return false;
    }
    *positionals_[next_positional++].out = arg;
  }
  if (next_positional < positionals_.size() &&
      positionals_[next_positional].required) {
    if (error) {
      *error = "missing required <" + positionals_[next_positional].hint + ">";
    }
    return false;
  }
  return true;
}

std::string ArgParser::help_text() const {
  std::string out = "usage: " + program_;
  for (const Positional& p : positionals_) {
    out += p.required ? " <" + p.hint + ">" : " [" + p.hint + "]";
  }
  if (!options_.empty()) out += " [options]";
  out += "\n";
  if (!description_.empty()) out += description_ + "\n";
  if (!positionals_.empty()) {
    out += "arguments:\n";
    for (const Positional& p : positionals_) {
      out += "  <" + p.hint + ">  " + p.help + "\n";
    }
  }
  out += "options:\n";
  std::vector<std::pair<std::string, std::string>> rows;
  rows.reserve(options_.size() + 1);
  for (const Option& option : options_) {
    std::string left = "--" + option.name;
    if (option.takes_value) left += " <" + option.hint + ">";
    rows.emplace_back(std::move(left), option.help);
  }
  rows.emplace_back("--help", "show this text");
  std::size_t width = 0;
  for (const auto& [left, help] : rows) width = std::max(width, left.size());
  for (const auto& [left, help] : rows) {
    out += "  " + left + std::string(width - left.size() + 2, ' ') + help +
           "\n";
  }
  return out;
}

}  // namespace cmdare::util
