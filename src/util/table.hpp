// ASCII table renderer used by the bench harnesses to print paper-style
// tables (Table I..V) and figure series.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cmdare::util {

enum class Align { kLeft, kRight };

/// Accumulates rows and renders them with aligned, padded columns.
///
///   Table t({"GPU", "ResNet-15", "ResNet-32"});
///   t.add_row({"K80", "9.46 ± 0.19", "4.56 ± 0.08"});
///   t.render(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; it may have fewer cells than the header (padded) but not
  /// more (throws std::invalid_argument).
  void add_row(std::vector<std::string> cells);

  /// Adds a horizontal separator at the current position.
  void add_separator();

  /// Per-column alignment; defaults to left for column 0, right otherwise.
  void set_alignment(std::size_t column, Align align);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  void render(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return header_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> alignment_;
};

/// Formats "mean ± sd" with the given precision, as the paper's tables do.
std::string format_mean_sd(double mean, double sd, int precision = 2);

}  // namespace cmdare::util
