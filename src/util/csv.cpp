#include "util/csv.hpp"

#include "util/strings.hpp"

namespace cmdare::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << csv_escape(fields[i]);
  }
  *out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(std::initializer_list<std::string> fields) {
  write_row(std::vector<std::string>(fields));
}

void CsvWriter::write_numeric_row(const std::vector<double>& values,
                                  int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_double(v, precision));
  write_row(fields);
}

std::vector<std::string> csv_parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace cmdare::util
