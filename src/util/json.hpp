// Minimal JSON reader/writer for the repo's own machine artifacts.
//
// Two consumers need to read JSON back: the run-ledger JSONL reader
// (obs/ledger.cpp) and the perf-snapshot checker (bench_snapshot), both
// of which only ever parse documents this repo wrote itself. The parser
// is therefore a small strict recursive-descent over the RFC 8259 value
// grammar — objects, arrays, strings (with escapes), numbers, booleans,
// null — that fails with a position-tagged error instead of guessing.
// It must, however, be *safe* on arbitrary bytes (tests/fuzz_test.cpp
// feeds it garbage): no crashes, bounded recursion, no UB.
//
// Numbers are formatted shortest-round-trip via std::to_chars, the same
// convention as the scenario codec, so write -> parse -> write is
// byte-identical.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cmdare::util::json {

struct Value;

/// std::map keeps object keys sorted, which makes re-serialization
/// deterministic regardless of insertion order.
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<Array> array;    // set when kind == kArray
  std::shared_ptr<Object> object;  // set when kind == kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when not an object or key absent.
  const Value* find(const std::string& key) const;
};

Value make_null();
Value make_bool(bool b);
Value make_number(double v);
Value make_string(std::string s);
Value make_array(Array items = {});
Value make_object(Object members = {});

struct ParseResult {
  std::optional<Value> value;  // set on success
  std::string error;           // "offset N: message" on failure
  bool ok() const { return value.has_value(); }
};

/// Parses exactly one JSON value (leading/trailing whitespace allowed;
/// trailing garbage is an error). Nesting deeper than `max_depth` is
/// rejected rather than recursed into.
ParseResult parse(std::string_view text, int max_depth = 64);

/// Escapes `s` for embedding in a JSON string literal (RFC 8259).
std::string escape(std::string_view s);

/// Shortest decimal representation that round-trips through strtod /
/// from_chars exactly. Non-finite values (invalid JSON) render as 0.
std::string format_number(double value);

/// Compact single-line serialization (no whitespace). Object keys are
/// emitted in map order, so the output is deterministic.
std::string serialize(const Value& value);

}  // namespace cmdare::util::json
