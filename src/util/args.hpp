// Tiny declarative command-line parser for the example CLIs.
//
// The examples used to hand-roll argv loops (and each grew its own
// slightly different error handling); ArgParser covers exactly what they
// need — `--flag`, `--name value` pairs (typed, last occurrence wins, or
// repeatable), positional operands, and a generated --help text — and
// nothing more. It is not a general-purpose getopt replacement.
//
//   util::ArgParser args("scenario_runner", "Run a scenario spec file.");
//   args.add_positional("spec.scn", "scenario file to run", &path);
//   args.add_int("jobs", "N", "worker threads", &jobs);
//   args.add_flag("quiet", "suppress progress output", &quiet);
//   std::string error;
//   if (!args.parse(argc, argv, &error)) { ... args.help_text() ... }
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace cmdare::util {

class ArgParser {
 public:
  /// `program` and `description` head the --help text.
  ArgParser(std::string program, std::string description);

  /// `--name` (no value); sets *out to true when present.
  void add_flag(const std::string& name, std::string help, bool* out);
  /// `--name <hint>`; last occurrence wins.
  void add_value(const std::string& name, std::string hint, std::string help,
                 std::string* out);
  /// `--name <hint>`, repeatable; every occurrence is appended.
  void add_repeated(const std::string& name, std::string hint,
                    std::string help, std::vector<std::string>* out);
  /// `--name <hint>` parsed as int / uint64; a non-numeric value is a
  /// parse error.
  void add_int(const std::string& name, std::string hint, std::string help,
               int* out);
  void add_uint64(const std::string& name, std::string hint, std::string help,
                  std::uint64_t* out);

  /// Positional operand, consumed in declaration order. Required ones
  /// must appear before optional ones.
  void add_positional(std::string hint, std::string help, std::string* out,
                      bool required = true);

  /// Parses argv[1..). Returns false on error and fills *error (which
  /// never mentions --help; check help_requested() first — `--help`/`-h`
  /// stops parsing and returns true with help_requested() set).
  bool parse(int argc, char* const* argv, std::string* error);

  bool help_requested() const { return help_requested_; }

  /// The generated usage + option table.
  std::string help_text() const;

 private:
  struct Option {
    std::string name;  // without the leading "--"
    std::string hint;  // empty for flags
    std::string help;
    /// Applies one occurrence; returns an error message or "".
    std::function<std::string(const std::string& value)> apply;
    bool takes_value = false;
  };
  struct Positional {
    std::string hint;
    std::string help;
    std::string* out;
    bool required;
  };

  void add_option(Option option);
  const Option* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<Positional> positionals_;
  bool help_requested_ = false;
};

}  // namespace cmdare::util
