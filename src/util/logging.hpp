// Minimal leveled logger.
//
// The simulator's interesting output goes through structured traces, not the
// log; logging exists for diagnostics (cluster events, revocations, bench
// progress). It is intentionally tiny: a global level, printf-free streaming
// API, and a capture hook used by tests.
//
// The default minimum level is kWarn; the CMDARE_LOG_LEVEL environment
// variable ("debug", "info", "warn", "error", "off", or 0-4) overrides it at
// startup so benches and examples can change verbosity without recompiling
// (an explicit set_log_level still wins). When a simulation clock is
// registered via set_log_time_source, the default stderr sink prefixes every
// line with the current simulated time.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace cmdare::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the human-readable name ("DEBUG", "INFO", ...).
const char* log_level_name(LogLevel level);

/// Parses a level name ("debug", "WARN", ...) or digit ("0".."4");
/// returns nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Sets / gets the global minimum level that will be emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects log output. Passing nullptr restores the default (stderr)
/// sink. Used by tests to assert on log content.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

/// Registers a simulated-time source (e.g. [&sim] { return sim.now(); });
/// nullptr unregisters. The default stderr sink then prints the current
/// sim time on every line. Custom sinks can query it via log_time_now().
using LogTimeSource = std::function<double()>;
void set_log_time_source(LogTimeSource source);
/// Current simulated time, or nullopt when no source is registered.
std::optional<double> log_time_now();

/// The line format used by the default stderr sink:
/// "[LEVEL] message" or "[LEVEL t=12.345] message" with a time source.
std::string format_log_line(LogLevel level, const std::string& message);

namespace detail {
void emit(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { emit(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace cmdare::util

#define CMDARE_LOG(level)                                        \
  if (static_cast<int>(level) <                                  \
      static_cast<int>(::cmdare::util::log_level())) {           \
  } else                                                         \
    ::cmdare::util::detail::LogMessage(level)

#define LOG_DEBUG CMDARE_LOG(::cmdare::util::LogLevel::kDebug)
#define LOG_INFO CMDARE_LOG(::cmdare::util::LogLevel::kInfo)
#define LOG_WARN CMDARE_LOG(::cmdare::util::LogLevel::kWarn)
#define LOG_ERROR CMDARE_LOG(::cmdare::util::LogLevel::kError)
