#include "util/logging.hpp"

#include <cstdio>
#include <mutex>

namespace cmdare::util {
namespace {

std::mutex g_mutex;
LogLevel g_level = LogLevel::kWarn;
LogSink g_sink;  // empty -> stderr

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void set_log_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_level = level;
}

LogLevel log_level() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_level;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", log_level_name(level), message.c_str());
}

}  // namespace detail
}  // namespace cmdare::util
