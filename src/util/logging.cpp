#include "util/logging.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/strings.hpp"

namespace cmdare::util {
namespace {

std::mutex g_mutex;
LogSink g_sink;  // empty -> stderr
LogTimeSource g_time_source;

LogLevel initial_level() {
  if (const char* env = std::getenv("CMDARE_LOG_LEVEL")) {
    if (const auto level = parse_log_level(env)) return *level;
    std::fprintf(stderr, "[WARN] CMDARE_LOG_LEVEL=%s not recognized\n", env);
  }
  return LogLevel::kWarn;
}

// Initialized on first use so the environment override applies no matter
// which translation unit logs first.
LogLevel g_level = initial_level();

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  for (const char c : trim(text)) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::kOff;
  return std::nullopt;
}

void set_log_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_level = level;
}

LogLevel log_level() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_level;
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void set_log_time_source(LogTimeSource source) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_time_source = std::move(source);
}

std::optional<double> log_time_now() {
  LogTimeSource source;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    source = g_time_source;
  }
  if (!source) return std::nullopt;
  return source();
}

std::string format_log_line(LogLevel level, const std::string& message) {
  std::string line = "[";
  line += log_level_name(level);
  if (const auto now = log_time_now()) {
    line += " t=";
    line += format_double(*now, 3);
  }
  line += "] ";
  line += message;
  return line;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
    return;
  }
  std::fprintf(stderr, "%s\n", format_log_line(level, message).c_str());
}

}  // namespace detail
}  // namespace cmdare::util
