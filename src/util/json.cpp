#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <utility>

namespace cmdare::util::json {
namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int max_depth = 64;
  std::string error;

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void fail(std::string message) {
    if (error.empty()) {
      error = "offset " + std::to_string(pos) + ": " + std::move(message);
    }
  }

  void skip_ws() {
    while (!at_end()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (!at_end() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text.substr(pos, literal.size()) == literal) {
      pos += literal.size();
      return true;
    }
    return false;
  }

  std::optional<Value> parse_value(int depth) {
    skip_ws();
    if (at_end()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    if (depth > max_depth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return std::nullopt;
        return make_string(std::move(s));
      }
      case 't':
        if (consume_literal("true")) return make_bool(true);
        fail("invalid literal");
        return std::nullopt;
      case 'f':
        if (consume_literal("false")) return make_bool(false);
        fail("invalid literal");
        return std::nullopt;
      case 'n':
        if (consume_literal("null")) return make_null();
        fail("invalid literal");
        return std::nullopt;
      default:
        return parse_number();
    }
  }

  std::optional<Value> parse_object(int depth) {
    consume('{');
    Object members;
    skip_ws();
    if (consume('}')) return make_object(std::move(members));
    while (true) {
      skip_ws();
      std::string key;
      if (at_end() || peek() != '"' || !parse_string(&key)) {
        fail("expected object key");
        return std::nullopt;
      }
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      auto value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      members[std::move(key)] = std::move(*value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return make_object(std::move(members));
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array(int depth) {
    consume('[');
    Array items;
    skip_ws();
    if (consume(']')) return make_array(std::move(items));
    while (true) {
      auto value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      items.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return make_array(std::move(items));
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  bool parse_string(std::string* out) {
    consume('"');
    while (true) {
      if (at_end()) {
        fail("unterminated string");
        return false;
      }
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos;
        continue;
      }
      ++pos;  // backslash
      if (at_end()) {
        fail("unterminated escape");
        return false;
      }
      const char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t code = 0;
          if (!parse_hex4(&code)) return false;
          // Surrogate pair: combine, else keep the lone value (replaced
          // below if unpaired).
          if (code >= 0xD800 && code <= 0xDBFF &&
              text.substr(pos, 2) == "\\u") {
            const std::size_t saved = pos;
            pos += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(&low)) return false;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos = saved;  // not a low surrogate; leave for next loop
            }
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("invalid escape character");
          return false;
      }
    }
  }

  bool parse_hex4(std::uint32_t* out) {
    if (pos + 4 > text.size()) {
      fail("truncated \\u escape");
      return false;
    }
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
        return false;
      }
    }
    *out = value;
    return true;
  }

  static void append_utf8(std::string* out, std::uint32_t code) {
    // Unpaired surrogates become U+FFFD so output stays valid UTF-8.
    if (code >= 0xD800 && code <= 0xDFFF) code = 0xFFFD;
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos;
    if (consume('-')) {
      // sign consumed
    }
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      pos = start;
      fail("invalid value");
      return std::nullopt;
    }
    if (peek() == '0') {
      ++pos;
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit expected after decimal point");
        return std::nullopt;
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit expected in exponent");
        return std::nullopt;
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos;
      }
    }
    double value = 0.0;
    const char* first = text.data() + start;
    const char* last = text.data() + pos;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
      fail("number out of range");
      return std::nullopt;
    }
    return make_number(value);
  }
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject || !object) return nullptr;
  const auto it = object->find(key);
  return it == object->end() ? nullptr : &it->second;
}

Value make_null() { return Value{}; }

Value make_bool(bool b) {
  Value v;
  v.kind = Value::Kind::kBool;
  v.boolean = b;
  return v;
}

Value make_number(double value) {
  Value v;
  v.kind = Value::Kind::kNumber;
  v.number = value;
  return v;
}

Value make_string(std::string s) {
  Value v;
  v.kind = Value::Kind::kString;
  v.string = std::move(s);
  return v;
}

Value make_array(Array items) {
  Value v;
  v.kind = Value::Kind::kArray;
  v.array = std::make_shared<Array>(std::move(items));
  return v;
}

Value make_object(Object members) {
  Value v;
  v.kind = Value::Kind::kObject;
  v.object = std::make_shared<Object>(std::move(members));
  return v;
}

ParseResult parse(std::string_view text, int max_depth) {
  Parser parser;
  parser.text = text;
  parser.max_depth = max_depth;
  ParseResult result;
  auto value = parser.parse_value(0);
  if (!value) {
    result.error = parser.error.empty() ? "parse error" : parser.error;
    return result;
  }
  parser.skip_ws();
  if (!parser.at_end()) {
    parser.fail("trailing characters after value");
    result.error = parser.error;
    return result;
  }
  result.value = std::move(*value);
  return result;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[c >> 4];
          out += kHex[c & 0xF];
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string format_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  return ec == std::errc() ? std::string(buffer, ptr) : "0";
}

std::string serialize(const Value& value) {
  switch (value.kind) {
    case Value::Kind::kNull:
      return "null";
    case Value::Kind::kBool:
      return value.boolean ? "true" : "false";
    case Value::Kind::kNumber:
      return format_number(value.number);
    case Value::Kind::kString:
      return "\"" + escape(value.string) + "\"";
    case Value::Kind::kArray: {
      std::string out = "[";
      bool first = true;
      if (value.array) {
        for (const Value& item : *value.array) {
          if (!first) out += ",";
          first = false;
          out += serialize(item);
        }
      }
      out += "]";
      return out;
    }
    case Value::Kind::kObject: {
      std::string out = "{";
      bool first = true;
      if (value.object) {
        for (const auto& [key, member] : *value.object) {
          if (!first) out += ",";
          first = false;
          out += "\"" + escape(key) + "\":" + serialize(member);
        }
      }
      out += "}";
      return out;
    }
  }
  return "null";
}

}  // namespace cmdare::util::json
