// Deterministic pseudo-random number generation for simulation.
//
// All stochastic behaviour in the simulator flows through Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64; it is fast, has a
// 2^256-1 period, and passes BigCrush. Rng also provides the distributions
// the calibration models need (uniform, normal, lognormal, exponential,
// Poisson) without depending on the unspecified std::distribution
// implementations, which differ across standard libraries and would break
// cross-platform reproducibility.
//
// The generator core (next_u64 / uniform) is defined inline here so hot
// loops keep the four state words in registers instead of paying a
// cross-TU call per draw. The fill_* batch APIs draw n values in one call
// and are *defined* to be stream-equivalent to n scalar calls — same
// values, same state afterwards — so call sites can batch freely without
// perturbing any seeded experiment (pinned by util_rng_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace cmdare::util {

/// Deterministic random number generator (xoshiro256++).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` using SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent stream for a named sub-component. Streams
  /// derived with different names (or from different parents) are
  /// statistically independent for simulation purposes.
  [[nodiscard]] Rng fork(std::string_view stream_name) const;

  /// Derives an independent stream for a counter/index (replica number,
  /// grid-cell number, shard id, ...). The derivation is pure 64-bit
  /// integer arithmetic — no hashing of a formatted string — so the
  /// mapping (parent state, index) -> stream is identical on every
  /// platform and is pinned by a regression test; campaign seeding
  /// (exp::run_campaign) depends on it staying fixed. Distinct indices
  /// give decorrelated streams, and fork(i) never collides with a
  /// fork(name) stream because the index is mixed through a different
  /// finalizer than the FNV-1a string path.
  [[nodiscard]] Rng fork(std::uint64_t index) const;

  /// Index forks for [first_index, first_index + count): exactly
  /// equivalent to calling fork(first_index + i) in a loop (fork does not
  /// advance the parent stream), but hashes the parent state once. Used
  /// where a component seeds one stream per replica/tenant/shard.
  [[nodiscard]] std::vector<Rng> fork_batch(std::uint64_t first_index,
                                            std::size_t count) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface so Rng works with std::shuffle.
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 random bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Fills `out[0..n)` with the next n raw values. Stream-equivalent to n
  /// next_u64() calls; the state round-trips through locals so the
  /// compiler keeps it in registers across the whole batch.
  void fill_u64(std::uint64_t* out, std::size_t n);
  /// Fills `out[0..n)` with the next n uniform [0, 1) doubles.
  /// Stream-equivalent to n uniform() calls.
  void fill_uniform(double* out, std::size_t n);
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (cached pair).
  double normal();
  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);
  /// Lognormal parameterized by the mean and coefficient of variation of
  /// the *resulting* distribution (not of the underlying normal). This is
  /// the natural parameterization for "step time with CoV 0.02"-style
  /// calibration targets. Requires mean > 0, cv >= 0.
  double lognormal_mean_cv(double mean, double cv);
  /// Exponential with the given rate (> 0).
  double exponential(double rate);
  /// Poisson-distributed count with the given mean (>= 0).
  std::uint64_t poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

 private:
  Rng(std::uint64_t s0, std::uint64_t s1, std::uint64_t s2, std::uint64_t s3);

  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cmdare::util
