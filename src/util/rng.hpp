// Deterministic pseudo-random number generation for simulation.
//
// All stochastic behaviour in the simulator flows through Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64; it is fast, has a
// 2^256-1 period, and passes BigCrush. Rng also provides the distributions
// the calibration models need (uniform, normal, lognormal, exponential,
// Poisson) without depending on the unspecified std::distribution
// implementations, which differ across standard libraries and would break
// cross-platform reproducibility.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace cmdare::util {

/// Deterministic random number generator (xoshiro256++).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` using SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent stream for a named sub-component. Streams
  /// derived with different names (or from different parents) are
  /// statistically independent for simulation purposes.
  [[nodiscard]] Rng fork(std::string_view stream_name) const;

  /// Derives an independent stream for a counter/index (replica number,
  /// grid-cell number, shard id, ...). The derivation is pure 64-bit
  /// integer arithmetic — no hashing of a formatted string — so the
  /// mapping (parent state, index) -> stream is identical on every
  /// platform and is pinned by a regression test; campaign seeding
  /// (exp::run_campaign) depends on it staying fixed. Distinct indices
  /// give decorrelated streams, and fork(i) never collides with a
  /// fork(name) stream because the index is mixed through a different
  /// finalizer than the FNV-1a string path.
  [[nodiscard]] Rng fork(std::uint64_t index) const;

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface so Rng works with std::shuffle.
  std::uint64_t operator()() { return next_u64(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (cached pair).
  double normal();
  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);
  /// Lognormal parameterized by the mean and coefficient of variation of
  /// the *resulting* distribution (not of the underlying normal). This is
  /// the natural parameterization for "step time with CoV 0.02"-style
  /// calibration targets. Requires mean > 0, cv >= 0.
  double lognormal_mean_cv(double mean, double cv);
  /// Exponential with the given rate (> 0).
  double exponential(double rate);
  /// Poisson-distributed count with the given mean (>= 0).
  std::uint64_t poisson(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

 private:
  Rng(std::uint64_t s0, std::uint64_t s1, std::uint64_t s2, std::uint64_t s3);

  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace cmdare::util
