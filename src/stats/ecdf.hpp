// Empirical cumulative distribution functions.
//
// Figure 8 of the paper plots transient-server lifetime CDFs per (region,
// GPU); Section VI-A's Equation 5 obtains per-worker revocation
// probabilities by "querying the empirical CDFs". Ecdf is that object: it
// stores a sample, evaluates F(x), inverts quantiles, and can be sampled
// from (inverse-transform) to drive simulations.
#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace cmdare::stats {

class Ecdf {
 public:
  /// Builds the ECDF from a sample (copied and sorted). Requires non-empty.
  explicit Ecdf(std::span<const double> sample);

  /// F(x) = fraction of sample values <= x.
  double operator()(double x) const;

  /// Inverse: smallest sample value v with F(v) >= q, q in (0, 1].
  /// q == 0 returns the sample minimum.
  double quantile(double q) const;

  /// Draws from the empirical distribution (inverse-transform on rng).
  double sample(util::Rng& rng) const;

  /// Number of points and sorted access, for plotting.
  std::size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted_values() const { return sorted_; }

  /// Sample mean of the underlying data.
  double mean() const;

  /// Renders the CDF at `n` evenly spaced x positions across the data
  /// range; used by the figure harnesses to print plottable series.
  struct Point {
    double x;
    double f;
  };
  std::vector<Point> curve(std::size_t n) const;

 private:
  std::vector<double> sorted_;
};

}  // namespace cmdare::stats
