// Descriptive statistics over samples.
//
// The paper reports means, sample standard deviations, and coefficients of
// variation (e.g. "CoV <= 0.02 after warmup", Table I's "mean ± sd"); these
// helpers compute them with the same conventions (sample sd, n-1
// denominator).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace cmdare::stats {

/// Arithmetic mean. Requires a non-empty sample.
double mean(std::span<const double> xs);

/// Sample variance (n-1 denominator). Requires n >= 2.
double variance(std::span<const double> xs);

/// Sample standard deviation. Requires n >= 2.
double stddev(std::span<const double> xs);

/// Coefficient of variation: sd / mean. Requires n >= 2 and mean != 0.
double coefficient_of_variation(std::span<const double> xs);

/// Minimum / maximum. Require a non-empty sample.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Median (average of middle two for even n). Requires non-empty.
double median(std::span<const double> xs);

/// q-th quantile, q in [0, 1], linear interpolation between order
/// statistics (type-7, the numpy/R default). Requires non-empty.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient. Requires n >= 2 and both sds > 0.
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys);

/// Summary of a sample in one pass-friendly struct.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double sd = 0.0;  // 0 when count < 2
  double min = 0.0;
  double max = 0.0;

  double cov() const { return mean != 0.0 ? sd / mean : 0.0; }
};

/// Computes a Summary. Requires a non-empty sample.
Summary summarize(std::span<const double> xs);

}  // namespace cmdare::stats
