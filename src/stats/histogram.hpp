// Fixed-bin histograms.
//
// Figure 9 of the paper histograms revocation events by local hour of day;
// Histogram supports that directly (24 bins over [0, 24)) as well as
// generic equal-width binning with ASCII rendering for the figure benches.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cmdare::stats {

class Histogram {
 public:
  /// Equal-width bins over [lo, hi). Values outside the range are counted
  /// in underflow/overflow. Requires bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// [lo, hi) edges of a bin.
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// Fraction of in-range values in a bin (0 when total() == 0).
  double fraction(std::size_t bin) const;

  /// Renders an ASCII bar chart, one line per bin:
  ///   [ 8, 9)  12 ############
  std::string render(std::size_t max_bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace cmdare::stats
