#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cmdare::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  counts_.assign(bins, 0);
}

void Histogram::add(double value) {
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // guard float edge cases
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

std::size_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::count: bin out of range");
  }
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  if (bin >= counts_.size()) {
    throw std::out_of_range("Histogram::bin_low: bin out of range");
  }
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin) + width_;
}

double Histogram::fraction(std::size_t bin) const {
  const std::size_t c = count(bin);
  return total_ == 0 ? 0.0
                     : static_cast<double>(c) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream oss;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : (counts_[b] * max_bar_width + peak - 1) / peak;
    oss << "[" << util::format_double(bin_low(b), 1) << ", "
        << util::format_double(bin_high(b), 1) << ")  " << counts_[b] << "  "
        << std::string(bar, '#') << '\n';
  }
  return oss.str();
}

}  // namespace cmdare::stats
