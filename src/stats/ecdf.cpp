#include "stats/ecdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cmdare::stats {

Ecdf::Ecdf(std::span<const double> sample)
    : sorted_(sample.begin(), sample.end()) {
  if (sorted_.empty()) {
    throw std::invalid_argument("Ecdf: empty sample");
  }
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("Ecdf::quantile: q must be in [0, 1]");
  }
  if (q == 0.0) return sorted_.front();
  const auto n = static_cast<double>(sorted_.size());
  const auto k = static_cast<std::size_t>(std::ceil(q * n));
  return sorted_[std::min(k, sorted_.size()) - 1];
}

double Ecdf::sample(util::Rng& rng) const {
  return sorted_[rng.uniform_index(sorted_.size())];
}

double Ecdf::mean() const {
  double sum = 0.0;
  for (double v : sorted_) sum += v;
  return sum / static_cast<double>(sorted_.size());
}

std::vector<Ecdf::Point> Ecdf::curve(std::size_t n) const {
  if (n < 2) throw std::invalid_argument("Ecdf::curve: need n >= 2");
  std::vector<Point> pts;
  pts.reserve(n);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    pts.push_back(Point{x, (*this)(x)});
  }
  return pts;
}

}  // namespace cmdare::stats
