// Streaming (Welford) statistics.
//
// The CM-DARE performance profiler consumes an unbounded stream of
// per-step timings; RunningStats tracks mean/variance online without
// storing the stream. RunningMeanWindow additionally keeps a sliding
// window, which backs the "average training speed every 100 steps"
// reporting convention from Section III-A.
#pragma once

#include <cstddef>
#include <deque>

namespace cmdare::stats {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return n_; }
  /// Mean of values added so far. Requires count() >= 1.
  double mean() const;
  /// Sample variance / sd (n-1). Require count() >= 2.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sliding-window mean over the last `capacity` values.
class RunningMeanWindow {
 public:
  explicit RunningMeanWindow(std::size_t capacity);

  void add(double x);
  bool full() const { return window_.size() == capacity_; }
  std::size_t size() const { return window_.size(); }
  /// Mean of the current window. Requires size() >= 1.
  double mean() const;

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

}  // namespace cmdare::stats
