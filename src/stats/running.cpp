#include "stats/running.hpp"

#include <cmath>
#include <stdexcept>

namespace cmdare::stats {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void RunningStats::reset() {
  n_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

double RunningStats::mean() const {
  if (n_ == 0) throw std::logic_error("RunningStats::mean: no samples");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) throw std::logic_error("RunningStats::variance: need >= 2");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: no samples");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: no samples");
  return max_;
}

RunningMeanWindow::RunningMeanWindow(std::size_t capacity)
    : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("RunningMeanWindow: capacity must be >= 1");
  }
}

void RunningMeanWindow::add(double x) {
  window_.push_back(x);
  sum_ += x;
  if (window_.size() > capacity_) {
    sum_ -= window_.front();
    window_.pop_front();
  }
}

double RunningMeanWindow::mean() const {
  if (window_.empty()) {
    throw std::logic_error("RunningMeanWindow::mean: empty window");
  }
  return sum_ / static_cast<double>(window_.size());
}

}  // namespace cmdare::stats
