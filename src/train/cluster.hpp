// Training cluster configuration.
//
// The paper describes clusters as (x, y, z) tuples of K80/P100/V100 GPU
// worker counts plus a number of (on-demand, CPU-only) parameter servers.
// ClusterConfig captures that plus the training workload parameters the
// measurement methodology fixes (batch steps, checkpoint interval).
#pragma once

#include <string>
#include <vector>

#include "cloud/gpu.hpp"
#include "cloud/region.hpp"

namespace cmdare::train {

struct WorkerSpec {
  cloud::GpuType gpu = cloud::GpuType::kK80;
  cloud::Region region = cloud::Region::kUsCentral1;
  bool transient = true;
  /// Persistent per-VM performance multiplier on compute time (> 1 models
  /// a degraded server — noisy neighbours, thermal throttling; Section
  /// VI-B's "slower GPU workers"). 1.0 = nominal.
  double performance_factor = 1.0;
  std::string label;  // optional display name
};

/// Convenience: builds the paper's (x, y, z) worker mix.
std::vector<WorkerSpec> worker_mix(int k80, int p100, int v100,
                                   cloud::Region region =
                                       cloud::Region::kUsCentral1,
                                   bool transient = true);

/// Formats a worker list as the paper's "(x, y, z)" notation.
std::string describe_mix(const std::vector<WorkerSpec>& workers);

/// How the training framework reacts to chief-worker revocations
/// (Section V-E).
enum class FaultToleranceMode {
  /// CM-DARE's transient-TensorFlow: a surviving worker takes over
  /// checkpointing; no rollback on replacement.
  kCmDare,
  /// Unmodified TensorFlow: a replacement worker reusing the revoked
  /// chief's IP address becomes the new chief and forces the cluster to
  /// recompute from the last checkpoint.
  kVanillaTf,
};

}  // namespace cmdare::train
