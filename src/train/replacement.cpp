#include "train/replacement.hpp"

namespace cmdare::train {

double sample_warm_replacement_seconds(const nn::CnnModel& model,
                                       util::Rng& rng) {
  return rng.lognormal_mean_cv(cloud::warm_replacement_seconds(model),
                               cloud::kReplacementCov);
}

double sample_cold_replacement_seconds(const nn::CnnModel& model,
                                       util::Rng& rng) {
  return rng.lognormal_mean_cv(cloud::cold_replacement_seconds(model),
                               cloud::kReplacementCov);
}

}  // namespace cmdare::train
