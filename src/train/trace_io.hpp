// Trace serialization: dump simulated measurement data as CSV.
//
// The paper ships its raw measurement dataset alongside CM-DARE; these
// helpers are the equivalent for simulated runs — cluster-speed windows,
// per-worker step times, checkpoint events, and session events in a form
// any plotting stack can consume. csv_* writers emit RFC-4180 CSV through
// util::CsvWriter. The read_* functions load the checkpoint and event
// dumps back, so analysis tools can post-process a run without re-running
// the simulation (write → read round-trips exactly).
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string_view>
#include <vector>

#include "train/trace.hpp"

namespace cmdare::train {

/// Window speeds: columns step_end, steps_per_second.
void write_speed_csv(const TrainingTrace& trace, std::ostream& out,
                     long window = 100);

/// Per-worker step completions: columns worker, step_index, sim_time.
void write_worker_steps_csv(const TrainingTrace& trace, std::ostream& out);

/// Checkpoints: columns at_step, by_worker, started, finished, duration.
void write_checkpoints_csv(const TrainingTrace& trace, std::ostream& out);

/// Session events: columns type, at, worker, global_step, detail.
void write_events_csv(const TrainingTrace& trace, std::ostream& out);

/// Human-readable name for a session event type.
const char* session_event_name(SessionEventType type);

/// Inverse of session_event_name; nullopt for unknown names.
std::optional<SessionEventType> parse_session_event_name(
    std::string_view name);

/// Loads a write_checkpoints_csv dump. Throws std::runtime_error on a
/// missing/mismatched header or malformed row. The derived `duration`
/// column is ignored on input.
std::vector<CheckpointEvent> read_checkpoints_csv(std::istream& in);

/// Loads a write_events_csv dump. Throws std::runtime_error on a
/// missing/mismatched header, malformed row, or unknown event type.
std::vector<SessionEvent> read_events_csv(std::istream& in);

}  // namespace cmdare::train
