// Trace serialization: dump simulated measurement data as CSV.
//
// The paper ships its raw measurement dataset alongside CM-DARE; these
// helpers are the equivalent for simulated runs — cluster-speed windows,
// per-worker step times, checkpoint events, and session events in a form
// any plotting stack can consume. csv_* writers emit RFC-4180 CSV through
// util::CsvWriter.
#pragma once

#include <ostream>

#include "train/trace.hpp"

namespace cmdare::train {

/// Window speeds: columns step_end, steps_per_second.
void write_speed_csv(const TrainingTrace& trace, std::ostream& out,
                     long window = 100);

/// Per-worker step completions: columns worker, step_index, sim_time.
void write_worker_steps_csv(const TrainingTrace& trace, std::ostream& out);

/// Checkpoints: columns at_step, by_worker, started, finished, duration.
void write_checkpoints_csv(const TrainingTrace& trace, std::ostream& out);

/// Session events: columns type, at, worker, global_step, detail.
void write_events_csv(const TrainingTrace& trace, std::ostream& out);

/// Human-readable name for a session event type.
const char* session_event_name(SessionEventType type);

}  // namespace cmdare::train
