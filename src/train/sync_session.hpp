// Synchronous data-parallel training (ablation baseline).
//
// Section II argues that the *asynchronous* PS architecture (a) tolerates
// revocations and (b) "reduces the impact of hardware differences in
// heterogeneous clusters because slower workers do not impede others".
// SyncTrainingSession is the counterfactual: classic synchronous SGD with
// a barrier per global step —
//
//   every active worker computes gradients on its batch;
//   when ALL have finished, the parameter servers apply the aggregated
//   update once; the next step begins after the update is applied.
//
// Step time = max_i(compute_i) + PS service, so stragglers and slow GPUs
// gate the whole cluster. bench_ablation_sync quantifies the difference
// against TrainingSession on homogeneous and heterogeneous clusters.
//
// Throughput accounting: one synchronous global step consumes one batch
// *per worker*. For apples-to-apples comparison with the asynchronous
// session (whose global step is one worker batch), use
// worker_batches_per_second().
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cloud/calibration.hpp"
#include "nn/model.hpp"
#include "simcore/simulator.hpp"
#include "train/cluster.hpp"
#include "train/ps.hpp"
#include "train/trace.hpp"
#include "util/rng.hpp"

namespace cmdare::train {

class SyncTrainingSession {
 public:
  SyncTrainingSession(simcore::Simulator& sim, nn::CnnModel model,
                      int ps_count, long max_steps, util::Rng rng);

  /// Adds a worker; it participates starting with the next barrier round.
  WorkerId add_worker(const WorkerSpec& spec);
  /// Revokes a worker; the current round completes without it.
  void revoke_worker(WorkerId worker);

  /// Starts the barrier loop (requires >= 1 active worker).
  void start();

  long global_step() const { return global_step_; }
  bool finished() const { return finished_; }
  std::size_t active_worker_count() const;
  const TrainingTrace& trace() const { return trace_; }
  const nn::CnnModel& model() const { return model_; }

  /// Mean global steps/second between two steps (post-warmup window).
  double steps_per_second(long from_step, long to_step) const;
  /// Worker-batch throughput: global steps/s x active workers — the
  /// quantity comparable to the asynchronous session's steps/second.
  double worker_batches_per_second(long from_step, long to_step) const;

  std::function<void()> on_complete;

 private:
  struct Worker {
    WorkerSpec spec;
    bool active = false;
    bool revoked = false;
    long local_step = 0;
    double env_factor = 1.0;
    /// Barrier bookkeeping: the round this worker is computing in, and
    /// whether it has already reached the barrier for that round.
    std::uint64_t participating_round = 0;
    bool done_in_round = false;
  };

  void begin_round();
  void worker_done(WorkerId id, std::uint64_t round);
  void round_barrier_reached();
  void apply_update();

  simcore::Simulator* sim_;
  nn::CnnModel model_;
  long max_steps_;
  util::Rng rng_;
  std::vector<Worker> workers_;
  std::vector<std::unique_ptr<PsShard>> shards_;

  bool started_ = false;
  bool finished_ = false;
  bool round_in_flight_ = false;
  std::uint64_t round_ = 0;
  int pending_workers_ = 0;
  long global_step_ = 0;
  TrainingTrace trace_;
};

}  // namespace cmdare::train
