#include "train/sync_session.hpp"

#include <stdexcept>

namespace cmdare::train {

SyncTrainingSession::SyncTrainingSession(simcore::Simulator& sim,
                                         nn::CnnModel model, int ps_count,
                                         long max_steps, util::Rng rng)
    : sim_(&sim),
      model_(std::move(model)),
      max_steps_(max_steps),
      rng_(rng) {
  if (ps_count < 1) {
    throw std::invalid_argument("SyncTrainingSession: ps_count must be >= 1");
  }
  if (max_steps < 1) {
    throw std::invalid_argument("SyncTrainingSession: max_steps must be >= 1");
  }
  const double service = cloud::ps_update_service_seconds(model_, ps_count);
  for (int s = 0; s < ps_count; ++s) {
    shards_.push_back(std::make_unique<PsShard>(
        sim, rng_.fork("sync-ps-" + std::to_string(s)), service,
        cloud::kPsServiceCov, std::to_string(s)));
  }
}

WorkerId SyncTrainingSession::add_worker(const WorkerSpec& spec) {
  const WorkerId id = workers_.size();
  Worker worker;
  worker.spec = spec;
  worker.active = true;
  workers_.push_back(worker);
  trace_.record_event(SessionEvent{SessionEventType::kWorkerJoined,
                                   sim_->now(), id, global_step_,
                                   spec.label});
  return id;
}

void SyncTrainingSession::revoke_worker(WorkerId id) {
  if (id >= workers_.size()) {
    throw std::out_of_range("SyncTrainingSession::revoke_worker");
  }
  Worker& w = workers_[id];
  if (!w.active || w.revoked) return;
  w.revoked = true;
  w.active = false;
  trace_.record_event(SessionEvent{SessionEventType::kWorkerRevoked,
                                   sim_->now(), id, global_step_,
                                   w.spec.label});
  // If the worker was still computing in the current round, it will never
  // reach the barrier: remove it from the pending count, and release the
  // barrier if it was the last straggler.
  if (round_in_flight_ && w.participating_round == round_ &&
      !w.done_in_round) {
    if (--pending_workers_ == 0) round_barrier_reached();
  }
}

std::size_t SyncTrainingSession::active_worker_count() const {
  std::size_t count = 0;
  for (const Worker& w : workers_) {
    if (w.active && !w.revoked) ++count;
  }
  return count;
}

void SyncTrainingSession::start() {
  if (started_) throw std::logic_error("SyncTrainingSession: already started");
  if (active_worker_count() == 0) {
    throw std::logic_error("SyncTrainingSession: no active workers");
  }
  started_ = true;
  begin_round();
}

void SyncTrainingSession::begin_round() {
  if (finished_) return;
  if (active_worker_count() == 0) return;  // stalls until a worker joins
  round_in_flight_ = true;
  ++round_;
  pending_workers_ = 0;
  for (WorkerId id = 0; id < workers_.size(); ++id) {
    Worker& w = workers_[id];
    if (!w.active || w.revoked) continue;
    ++pending_workers_;
    w.participating_round = round_;
    w.done_in_round = false;
    w.env_factor = 1.0 + cloud::kEnvDriftRho * (w.env_factor - 1.0) +
                   rng_.normal(0.0, cloud::kEnvDriftSigma);
    const double duration =
        w.spec.performance_factor * w.env_factor *
        cloud::sample_step_compute_seconds(w.spec.gpu, model_, w.local_step,
                                           rng_);
    const std::uint64_t round = round_;
    sim_->schedule_after(duration,
                         [this, id, round] { worker_done(id, round); });
  }
}

void SyncTrainingSession::worker_done(WorkerId id, std::uint64_t round) {
  if (finished_ || round != round_) return;
  Worker& w = workers_[id];
  if (!w.active || w.revoked) return;  // revoked mid-round: gradient lost
  w.done_in_round = true;
  ++w.local_step;
  trace_.record_worker_step(id, sim_->now());
  if (--pending_workers_ == 0) {
    round_barrier_reached();
  }
}

void SyncTrainingSession::round_barrier_reached() {
  round_in_flight_ = false;
  apply_update();
}

void SyncTrainingSession::apply_update() {
  // The aggregated gradient is applied once per round, sharded across the
  // parameter servers; the next round starts when the slowest shard acks.
  auto remaining = std::make_shared<int>(static_cast<int>(shards_.size()));
  for (auto& shard : shards_) {
    shard->submit([this, remaining] {
      if (--*remaining > 0) return;
      ++global_step_;
      trace_.record_global_step(global_step_, sim_->now());
      if (global_step_ >= max_steps_) {
        finished_ = true;
        if (on_complete) on_complete();
        return;
      }
      begin_round();
    });
  }
}

double SyncTrainingSession::steps_per_second(long from_step,
                                             long to_step) const {
  return trace_.mean_speed(from_step, to_step);
}

double SyncTrainingSession::worker_batches_per_second(long from_step,
                                                      long to_step) const {
  return steps_per_second(from_step, to_step) *
         static_cast<double>(active_worker_count());
}

}  // namespace cmdare::train
