#include "train/session.hpp"

#include <stdexcept>

#include "cloud/network.hpp"
#include "ckpt/plane.hpp"
#include "nn/checkpoint_size.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace cmdare::train {

namespace {

std::string worker_track_name(WorkerId id) {
  return "worker-" + std::to_string(id);
}

}  // namespace

TrainingSession::TrainingSession(simcore::Simulator& sim, nn::CnnModel model,
                                 SessionConfig config, util::Rng rng,
                                 cloud::ObjectStore* store)
    : sim_(&sim),
      model_(std::move(model)),
      config_(config),
      rng_(rng),
      store_(store) {
  if (config_.ps_count < 1) {
    throw std::invalid_argument("TrainingSession: ps_count must be >= 1");
  }
  if (config_.checkpoint_interval_steps < 0 || config_.max_steps < 0) {
    throw std::invalid_argument("TrainingSession: negative step parameter");
  }
  const double service =
      cloud::ps_update_service_seconds(model_, config_.ps_count);
  for (int s = 0; s < config_.ps_count; ++s) {
    shards_.push_back(std::make_unique<PsShard>(
        sim, rng_.fork("ps-shard-" + std::to_string(s)), service,
        cloud::kPsServiceCov, std::to_string(s)));
  }
  if (config_.checkpoint_interval_steps > 0) {
    next_checkpoint_step_ = config_.checkpoint_interval_steps;
  }
}

void TrainingSession::set_checkpoint_interval(long interval_steps) {
  if (interval_steps < 0) {
    throw std::invalid_argument(
        "set_checkpoint_interval: interval must be >= 0");
  }
  config_.checkpoint_interval_steps = interval_steps;
  next_checkpoint_step_ =
      interval_steps > 0 ? global_step_ + interval_steps : 0;
}

std::size_t TrainingSession::active_worker_count() const {
  std::size_t count = 0;
  for (const Worker& w : workers_) {
    if (w.active && !w.revoked) ++count;
  }
  return count;
}

bool TrainingSession::worker_active(WorkerId worker) const {
  if (worker >= workers_.size()) {
    throw std::out_of_range("worker_active: unknown worker");
  }
  return workers_[worker].active && !workers_[worker].revoked;
}

const WorkerSpec& TrainingSession::worker_spec(WorkerId worker) const {
  if (worker >= workers_.size()) {
    throw std::out_of_range("worker_spec: unknown worker");
  }
  return workers_[worker].spec;
}

const PsShard& TrainingSession::ps_shard(std::size_t index) const {
  if (index >= shards_.size()) {
    throw std::out_of_range("ps_shard: index out of range");
  }
  return *shards_[index];
}

WorkerId TrainingSession::add_worker(const WorkerSpec& spec,
                                     double join_delay_seconds,
                                     bool reuse_chief_ip) {
  const WorkerId id = workers_.size();
  Worker worker;
  worker.spec = spec;
  workers_.push_back(worker);
  worker_tracks_.emplace_back(worker_track_name(id));
  if (join_delay_seconds == 0.0) {
    activate_worker(id, reuse_chief_ip);
  } else {
    sim_->schedule_after(
        join_delay_seconds,
        [this, id, reuse_chief_ip] { activate_worker(id, reuse_chief_ip); },
        "session.join");
  }
  return id;
}

void TrainingSession::activate_worker(WorkerId id, bool reuse_chief_ip) {
  if (finished_) return;
  Worker& w = workers_[id];
  w.active = true;
  trace_.record_event(SessionEvent{SessionEventType::kWorkerJoined,
                                   sim_->now(), id, global_step_,
                                   w.spec.label});
  if (obs::Tracer* tracer = worker_tracks_[id].get()) {
    tracer->instant(worker_tracks_[id].id(), "worker.joined", "train",
                    sim_->now(), {{"label", w.spec.label}});
  }
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("train.worker_joins_total").inc();
  }
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kWorkerJoin;
    event.at = sim_->now();
    event.source = "session";
    event.worker = static_cast<long long>(id);
    event.step = global_step_;
    event.detail = {{"label", w.spec.label}};
    ledger->record(std::move(event));
  }
  if (!owner_ && !had_owner_ && !reuse_chief_ip) {
    // The first worker to join the session is TensorFlow's chief.
    owner_ = id;
    had_owner_ = true;
  } else if (config_.mode == FaultToleranceMode::kCmDare && !owner_ &&
             had_owner_ && !reuse_chief_ip) {
    // CM-DARE: checkpoint duty was orphaned (every worker was revoked);
    // hand it to the newly joined worker.
    owner_ = id;
    trace_.record_event(SessionEvent{SessionEventType::kChiefHandover,
                                     sim_->now(), id, global_step_,
                                     "checkpoint duty reassigned on join"});
  }
  if (reuse_chief_ip) {
    if (config_.mode == FaultToleranceMode::kVanillaTf) {
      rollback_to_last_checkpoint(id);
    }
    owner_ = id;
    had_owner_ = true;
  }
  begin_compute(id);
}

void TrainingSession::revoke_worker(WorkerId id) {
  if (id >= workers_.size()) {
    throw std::out_of_range("revoke_worker: unknown worker");
  }
  Worker& w = workers_[id];
  if (!w.active || w.revoked) return;
  w.revoked = true;
  w.active = false;
  ++w.generation;  // invalidate in-flight compute/ack callbacks
  trace_.record_event(SessionEvent{SessionEventType::kWorkerRevoked,
                                   sim_->now(), id, global_step_,
                                   w.spec.label});
  if (obs::Tracer* tracer = worker_tracks_[id].get()) {
    tracer->instant(worker_tracks_[id].id(), "worker.revoked", "train",
                    sim_->now(), {{"label", w.spec.label}});
  }
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("train.worker_revocations_total").inc();
  }
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kWorkerRevoked;
    event.at = sim_->now();
    event.source = "session";
    event.worker = static_cast<long long>(id);
    event.step = global_step_;
    event.detail = {{"label", w.spec.label}};
    ledger->record(std::move(event));
  }

  if (owner_ && *owner_ == id) {
    owner_.reset();
    if (config_.mode == FaultToleranceMode::kCmDare) {
      // Section II, step 8: the parameter server selects a surviving GPU
      // worker to take over checkpointing.
      for (WorkerId other = 0; other < workers_.size(); ++other) {
        if (workers_[other].active && !workers_[other].revoked) {
          owner_ = other;
          trace_.record_event(SessionEvent{SessionEventType::kChiefHandover,
                                           sim_->now(), other, global_step_,
                                           "checkpoint duty reassigned"});
          break;
        }
      }
    }
    // Vanilla TF: checkpointing is orphaned until a replacement claims the
    // chief's IP address (Section V-E).
  }
}

bool TrainingSession::running(const Worker& w,
                              std::uint64_t generation) const {
  return !finished_ && w.active && !w.revoked && w.generation == generation;
}

void TrainingSession::begin_compute(WorkerId id) {
  Worker& w = workers_[id];
  if (finished_ || !w.active || w.revoked) return;
  // Slow per-VM performance drift on top of the i.i.d. step noise.
  w.env_factor = 1.0 + cloud::kEnvDriftRho * (w.env_factor - 1.0) +
                 rng_.normal(0.0, cloud::kEnvDriftSigma);
  const double duration =
      w.spec.performance_factor * w.env_factor *
      cloud::sample_step_compute_seconds(w.spec.gpu, model_, w.local_step,
                                         rng_);
  const std::uint64_t generation = w.generation;
  const simcore::SimTime started = sim_->now();
  sim_->schedule_after(
      duration,
      [this, id, generation, started] {
        on_compute_done(id, generation, started);
      },
      "worker.compute");
}

void TrainingSession::on_compute_done(WorkerId id, std::uint64_t generation,
                                      simcore::SimTime started) {
  Worker& w = workers_[id];
  if (!running(w, generation)) return;
  ++w.local_step;
  if (obs::Tracer* tracer = worker_tracks_[id].get()) {
    tracer->complete(worker_tracks_[id].id(), "worker.compute", "train",
                     started, sim_->now(),
                     {{"local_step", std::to_string(w.local_step)}});
  }
  if (obs::Histogram* compute = compute_seconds_.get()) {
    compute->observe(sim_->now() - started);
  }
  if (w.update_outstanding || w.checkpointing) {
    // Window-1 pipelining: hold this push until the previous update is
    // acknowledged (or the chief's checkpoint finishes).
    w.has_pending_push = true;
    return;
  }
  push_update(id);
}

void TrainingSession::push_update(WorkerId id) {
  Worker& w = workers_[id];
  if (finished_ || !w.active || w.revoked) return;
  w.update_outstanding = true;
  const std::uint64_t generation = w.generation;

  // The update is sharded: every PS shard applies its slice; the worker's
  // step completes when the slowest shard acknowledges, plus the network
  // round-trip between the worker's region and the parameter servers.
  const double rtt =
      cloud::region_rtt_seconds(w.spec.region, config_.ps_region);
  auto remaining = std::make_shared<int>(static_cast<int>(shards_.size()));
  for (auto& shard : shards_) {
    shard->submit([this, id, generation, remaining, rtt] {
      if (--*remaining > 0) return;
      sim_->schedule_after(
          rtt, [this, id, generation] { on_update_applied(id, generation); },
          "ps.ack");
    });
  }

  // Pipelining: the next batch's compute starts immediately.
  begin_compute(id);
}

void TrainingSession::on_update_applied(WorkerId id,
                                        std::uint64_t generation) {
  Worker& w = workers_[id];
  if (w.generation != generation || w.revoked) return;  // stale gradient
  w.update_outstanding = false;
  if (finished_) return;

  ++global_step_;
  trace_.record_global_step(global_step_, sim_->now());
  trace_.record_worker_step(id, sim_->now());
  if (obs::Counter* steps = steps_total_.get()) {
    steps->inc();
    if (obs::Gauge* gauge = global_step_gauge_.get()) {
      gauge->set(static_cast<double>(global_step_));
    }
  }
  if (on_step) on_step(global_step_, sim_->now());

  if (config_.max_steps > 0 && global_step_ >= config_.max_steps) {
    complete();
    return;
  }

  maybe_start_checkpoint(id);

  if (w.has_pending_push && !w.checkpointing) {
    w.has_pending_push = false;
    push_update(id);
  }
}

void TrainingSession::maybe_start_checkpoint(WorkerId id) {
  if (config_.checkpoint_interval_steps <= 0) return;
  if (!owner_ || *owner_ != id) return;
  if (global_step_ < next_checkpoint_step_) return;

  Worker& w = workers_[id];
  w.checkpointing = true;
  CheckpointEvent event;
  event.at_step = global_step_;
  event.by_worker = id;
  event.started = sim_->now();
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent entry;
    entry.kind = obs::LedgerEventKind::kCheckpointBegin;
    entry.at = sim_->now();
    entry.source = "session";
    entry.worker = static_cast<long long>(id);
    entry.step = global_step_;
    ledger->record(std::move(entry));
  }

  const std::uint64_t generation = w.generation;
  if (store_ != nullptr) {
    start_checkpoint_upload(id, generation, event, /*attempt=*/0);
  } else {
    const auto sizes = nn::checkpoint_sizes(model_);
    const double duration =
        cloud::sample_checkpoint_seconds(sizes.total_bytes(), rng_);
    sim_->schedule_after(
        duration,
        [this, id, generation, event]() mutable {
          event.finished = sim_->now();
          finish_checkpoint(id, generation, event);
        },
        "chief.checkpoint");
  }
}

void TrainingSession::start_checkpoint_upload(WorkerId id,
                                              std::uint64_t generation,
                                              CheckpointEvent event,
                                              int attempt) {
  const auto sizes = nn::checkpoint_sizes(model_);
  // With a data plane the write is a manifest-planned generation blob (a
  // delta while the chain has room, a base otherwise) placed on its tier;
  // without one it is the legacy flat full-size blob. plan_write is pure,
  // so retries re-plan to the identical write.
  std::string key = "ckpt-step-" + std::to_string(event.at_step);
  std::uint64_t bytes = sizes.total_bytes();
  std::optional<cloud::StorageTier> tier;
  std::optional<ckpt::PlannedWrite> planned;
  if (config_.plane != nullptr) {
    planned = config_.plane->plan_write(event.at_step, sizes.total_bytes());
    key = planned->key;
    bytes = planned->bytes;
    tier = planned->tier;
  }
  store_->upload(
      key, bytes,
      [this, id, generation, event, planned]() mutable {
        if (planned && config_.plane != nullptr) {
          config_.plane->commit_write(*planned);
        }
        event.finished = sim_->now();
        finish_checkpoint(id, generation, event);
      },
      [this, id, generation, event, attempt](const std::string& error) {
        Worker& w = workers_[id];
        if (!running(w, generation)) return;  // owner revoked mid-upload
        if (obs::Registry* registry = obs::registry()) {
          registry
              ->counter("resilience.retries_total", {{"kind", "checkpoint"}})
              .inc();
        }
        if (attempt + 1 <= config_.checkpoint_max_retries) {
          LOG_INFO << "checkpoint upload failed (" << error << "), retry "
                   << (attempt + 1) << "/" << config_.checkpoint_max_retries;
          if (obs::Ledger* ledger = obs::ledger()) {
            obs::LedgerEvent entry;
            entry.kind = obs::LedgerEventKind::kCheckpointRetry;
            entry.at = sim_->now();
            entry.source = "session";
            entry.worker = static_cast<long long>(id);
            entry.step = event.at_step;
            entry.detail = {{"attempt", std::to_string(attempt + 1)}};
            ledger->record(std::move(entry));
          }
          start_checkpoint_upload(id, generation, event, attempt + 1);
        } else {
          LOG_WARN << "checkpoint at step " << event.at_step
                   << " abandoned after "
                   << config_.checkpoint_max_retries + 1 << " attempts";
          if (obs::Ledger* ledger = obs::ledger()) {
            obs::LedgerEvent entry;
            entry.kind = obs::LedgerEventKind::kCheckpointAbandon;
            entry.at = sim_->now();
            entry.source = "session";
            entry.worker = static_cast<long long>(id);
            entry.step = event.at_step;
            entry.seconds = sim_->now() - event.started;
            ledger->record(std::move(entry));
          }
          abandon_checkpoint(id, generation);
        }
      },
      tier);
}

void TrainingSession::abandon_checkpoint(WorkerId id,
                                         std::uint64_t generation) {
  // The recovery point stays stale; training resumes and the next
  // interval tries again.
  next_checkpoint_step_ += config_.checkpoint_interval_steps;
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("train.checkpoints_abandoned_total").inc();
  }
  Worker& w = workers_[id];
  if (!running(w, generation)) return;
  w.checkpointing = false;
  if (w.has_pending_push && !w.update_outstanding) {
    w.has_pending_push = false;
    push_update(id);
  }
}

void TrainingSession::finish_checkpoint(WorkerId id, std::uint64_t generation,
                                        CheckpointEvent event) {
  trace_.record_checkpoint(event);
  last_checkpoint_step_ = event.at_step;
  next_checkpoint_step_ += config_.checkpoint_interval_steps;
  if (obs::Tracer* tracer = obs::tracer()) {
    tracer->complete(tracer->track("chief"), "chief.checkpoint", "train",
                     event.started, event.finished,
                     {{"at_step", std::to_string(event.at_step)},
                      {"by_worker", std::to_string(event.by_worker)}});
  }
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("train.checkpoints_total").inc();
    registry->histogram("train.checkpoint_seconds").observe(event.duration());
  }
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent entry;
    entry.kind = obs::LedgerEventKind::kCheckpointCommit;
    entry.at = sim_->now();
    entry.source = "session";
    entry.worker = static_cast<long long>(event.by_worker);
    entry.step = event.at_step;
    entry.seconds = event.duration();
    ledger->record(std::move(entry));
  }

  Worker& w = workers_[id];
  if (!running(w, generation)) return;  // owner revoked mid-checkpoint
  w.checkpointing = false;
  if (w.has_pending_push && !w.update_outstanding) {
    w.has_pending_push = false;
    push_update(id);
  }
}

long TrainingSession::restorable_checkpoint_step() {
  if (store_ == nullptr) return last_checkpoint_step_;
  if (config_.plane != nullptr) {
    // Data plane: end-to-end verified generational fallback. Either a
    // whole generation checks out (existence, size, checksum, reachable
    // tier — base and full delta chain) or it is quarantined and the next
    // older one is tried; 0 = clean cold restart. Training never resumes
    // from an unverified checkpoint.
    return config_.plane->restorable_step();
  }
  const auto& history = trace_.checkpoints();
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (store_->try_restore("ckpt-step-" + std::to_string(it->at_step))) {
      return it->at_step;
    }
    // Stale-checkpoint recovery: the newest blob is unreadable, fall
    // back to the previous one (losing the steps in between).
    LOG_WARN << "checkpoint blob at step " << it->at_step
             << " unreadable, falling back to an older checkpoint";
    if (obs::Registry* registry = obs::registry()) {
      registry->counter("resilience.fallbacks_total", {{"kind", "restore"}})
          .inc();
    }
  }
  return 0;
}

void TrainingSession::rollback_to_last_checkpoint(WorkerId new_chief) {
  // Unmodified TensorFlow discards all progress since the last checkpoint
  // when a replacement worker claims the revoked chief's IP (Section V-E).
  // With an object store attached, the checkpoint actually used is the
  // newest *restorable* blob — injected restore faults push recovery back
  // to progressively older checkpoints.
  last_checkpoint_step_ = restorable_checkpoint_step();
  trace_.record_event(SessionEvent{
      SessionEventType::kRollback, sim_->now(), new_chief, global_step_,
      "recompute from step " + std::to_string(last_checkpoint_step_)});
  if (obs::Tracer* tracer = obs::tracer()) {
    tracer->instant(
        tracer->track("chief"), "session.rollback", "train", sim_->now(),
        {{"from_step", std::to_string(global_step_)},
         {"to_step", std::to_string(last_checkpoint_step_)}});
  }
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("train.rollbacks_total").inc();
    registry->histogram("train.rollback_lost_steps")
        .observe(static_cast<double>(global_step_ - last_checkpoint_step_));
  }
  if (obs::Ledger* ledger = obs::ledger()) {
    // seconds = wall time being recomputed: now minus the moment the
    // restored checkpoint's step was originally reached. The analyzer
    // classifies this window's compute as wasted.
    double lost = 0.0;
    if (global_step_ > last_checkpoint_step_) {
      const auto reached = trace_.try_time_of_step(last_checkpoint_step_);
      lost = sim_->now() - (reached ? *reached : 0.0);
    }
    obs::LedgerEvent entry;
    entry.kind = obs::LedgerEventKind::kRollback;
    entry.at = sim_->now();
    entry.source = "session";
    entry.worker = static_cast<long long>(new_chief);
    entry.step = global_step_;
    entry.seconds = lost;
    entry.detail = {{"to_step", std::to_string(last_checkpoint_step_)}};
    ledger->record(std::move(entry));
  }
  global_step_ = last_checkpoint_step_;
  if (config_.checkpoint_interval_steps > 0) {
    next_checkpoint_step_ =
        last_checkpoint_step_ + config_.checkpoint_interval_steps;
  }
}

void TrainingSession::halt() {
  finished_ = true;
  trace_.record_event(SessionEvent{SessionEventType::kSessionRestart,
                                   sim_->now(), 0, global_step_,
                                   "session halted for reconfiguration"});
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent entry;
    entry.kind = obs::LedgerEventKind::kSessionRestart;
    entry.at = sim_->now();
    entry.source = "session";
    entry.step = global_step_;
    ledger->record(std::move(entry));
  }
}

void TrainingSession::complete() {
  finished_ = true;
  LOG_DEBUG << "session complete at step " << global_step_ << ", t="
            << sim_->now();
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent entry;
    entry.kind = obs::LedgerEventKind::kRunComplete;
    entry.at = sim_->now();
    entry.source = "session";
    entry.step = global_step_;
    ledger->record(std::move(entry));
  }
  if (on_complete) on_complete();
}

}  // namespace cmdare::train
