#include "train/cluster.hpp"

namespace cmdare::train {

std::vector<WorkerSpec> worker_mix(int k80, int p100, int v100,
                                   cloud::Region region, bool transient) {
  std::vector<WorkerSpec> workers;
  const auto add = [&](cloud::GpuType gpu, int count) {
    for (int i = 0; i < count; ++i) {
      WorkerSpec spec;
      spec.gpu = gpu;
      spec.region = region;
      spec.transient = transient;
      spec.label = std::string(cloud::gpu_name(gpu)) + "-" +
                   std::to_string(i);
      workers.push_back(std::move(spec));
    }
  };
  add(cloud::GpuType::kK80, k80);
  add(cloud::GpuType::kP100, p100);
  add(cloud::GpuType::kV100, v100);
  return workers;
}

std::string describe_mix(const std::vector<WorkerSpec>& workers) {
  int counts[3] = {0, 0, 0};
  for (const WorkerSpec& w : workers) {
    ++counts[static_cast<int>(w.gpu)];
  }
  return "(" + std::to_string(counts[0]) + ", " + std::to_string(counts[1]) +
         ", " + std::to_string(counts[2]) + ")";
}

}  // namespace cmdare::train
