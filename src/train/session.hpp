// Asynchronous parameter-server training session (discrete-event).
//
// Models the TensorFlow between-graph asynchronous training architecture
// of Section II: every GPU worker holds a model replica and loops
//
//   compute gradients on a batch  ->  push update to the PS shards
//   (pipelined with the next batch's compute; at most one update
//   outstanding per worker)  ->  update acknowledged = one global step
//
// so a worker's steady-state step interval is max(compute time, queueing
// at the parameter servers) — reproducing Table I (compute-bound single
// workers), Table III and Figures 4/12 (PS-bound large clusters).
//
// One worker is the *checkpoint owner* (TensorFlow's chief): every
// checkpoint_interval_steps global steps it pauses, serializes the model,
// and uploads it to cloud storage; training and checkpointing are
// sequential for that worker (Section IV-B). Chief revocation follows the
// configured FaultToleranceMode: CM-DARE hands checkpointing to a survivor
// (Section II step 8); vanilla TensorFlow waits for a replacement with the
// old chief's IP address and then *recomputes from the last checkpoint*
// (Section V-E, Figure 11).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/calibration.hpp"
#include "cloud/storage.hpp"
#include "nn/model.hpp"
#include "obs/cached.hpp"
#include "simcore/simulator.hpp"
#include "train/cluster.hpp"
#include "train/ps.hpp"
#include "train/trace.hpp"
#include "util/rng.hpp"

namespace cmdare::ckpt {
class CheckpointPlane;
}  // namespace cmdare::ckpt

namespace cmdare::train {

struct SessionConfig {
  int ps_count = 1;
  /// Global steps between checkpoints; 0 disables checkpointing.
  long checkpoint_interval_steps = 0;
  /// Upload retries before this interval's checkpoint is abandoned (the
  /// next interval tries again). Only reachable when the object store has
  /// a fault injector — fault-free uploads always land.
  int checkpoint_max_retries = 2;
  /// Stop after this many global steps; 0 = run until externally stopped.
  long max_steps = 0;
  FaultToleranceMode mode = FaultToleranceMode::kCmDare;
  /// Region hosting the parameter servers. Workers in a different region
  /// pay the inter-region RTT on every update acknowledgement — the
  /// network cost the paper's same-data-center methodology avoids.
  cloud::Region ps_region = cloud::Region::kUsCentral1;
  /// Durable checkpoint data plane (src/ckpt); non-owning, may outlive
  /// the session (it holds the cross-restart generation manifest). Null =
  /// legacy flat single-blob checkpoints, bit-for-bit the old behaviour.
  /// Only consulted when an object store is attached.
  ckpt::CheckpointPlane* plane = nullptr;
};

class TrainingSession {
 public:
  /// `store` may be null: checkpoint durations are then sampled directly
  /// from the calibrated model without writing blobs.
  TrainingSession(simcore::Simulator& sim, nn::CnnModel model,
                  SessionConfig config, util::Rng rng,
                  cloud::ObjectStore* store = nullptr);

  /// Adds a worker that becomes active after `join_delay_seconds` (use a
  /// replacement-overhead sample for rejoining workers). The first worker
  /// added becomes the checkpoint owner. If `reuse_chief_ip` is true and
  /// the mode is kVanillaTf, the worker becomes the new chief on joining
  /// and forces a recompute from the last checkpoint.
  WorkerId add_worker(const WorkerSpec& spec, double join_delay_seconds = 0.0,
                      bool reuse_chief_ip = false);

  /// Revokes a worker (transient preemption). In-flight work is lost.
  void revoke_worker(WorkerId worker);

  /// Live retune of the checkpoint interval (adaptive checkpoint
  /// controller). The next checkpoint fires `interval_steps` global steps
  /// from now; 0 disables checkpointing from here on. An in-flight
  /// checkpoint upload is unaffected.
  void set_checkpoint_interval(long interval_steps);

  long global_step() const { return global_step_; }
  long last_checkpoint_step() const { return last_checkpoint_step_; }
  std::size_t worker_count() const { return workers_.size(); }
  std::size_t active_worker_count() const;
  bool worker_active(WorkerId worker) const;
  const WorkerSpec& worker_spec(WorkerId worker) const;
  /// Current checkpoint owner, or nullopt when checkpointing is orphaned
  /// (vanilla TF after a chief revocation).
  std::optional<WorkerId> checkpoint_owner() const { return owner_; }
  const nn::CnnModel& model() const { return model_; }
  const SessionConfig& config() const { return config_; }

  const TrainingTrace& trace() const { return trace_; }
  const PsShard& ps_shard(std::size_t index) const;

  /// True once max_steps has been reached (or the session was halted).
  bool finished() const { return finished_; }

  /// Permanently stops the session without firing on_complete: all
  /// in-flight events become no-ops. Used for cluster reconfiguration
  /// (e.g. restarting with more parameter servers, Section VI-B).
  void halt();
  /// Fired exactly once when max_steps is reached.
  std::function<void()> on_complete;
  /// Fired on every global step (after trace recording); used by the
  /// CM-DARE performance tracker.
  std::function<void(long step, simcore::SimTime at)> on_step;

 private:
  struct Worker {
    WorkerSpec spec;
    bool active = false;
    bool revoked = false;
    long local_step = 0;
    bool update_outstanding = false;
    bool has_pending_push = false;
    bool checkpointing = false;
    std::uint64_t generation = 0;
    /// AR(1) environment drift factor (cloud::kEnvDriftRho/Sigma).
    double env_factor = 1.0;
  };

  bool running(const Worker& w, std::uint64_t generation) const;
  void activate_worker(WorkerId id, bool reuse_chief_ip);
  void begin_compute(WorkerId id);
  void on_compute_done(WorkerId id, std::uint64_t generation,
                       simcore::SimTime started);
  void push_update(WorkerId id);
  void on_update_applied(WorkerId id, std::uint64_t generation);
  void maybe_start_checkpoint(WorkerId id);
  void start_checkpoint_upload(WorkerId id, std::uint64_t generation,
                               CheckpointEvent event, int attempt);
  void finish_checkpoint(WorkerId id, std::uint64_t generation,
                         CheckpointEvent event);
  /// Drops the current interval's checkpoint after exhausted retries and
  /// lets the owner resume training (graceful degradation: the recovery
  /// point just stays stale until the next interval succeeds).
  void abandon_checkpoint(WorkerId id, std::uint64_t generation);
  void rollback_to_last_checkpoint(WorkerId new_chief);
  /// Newest checkpoint step whose blob is still restorable (consults the
  /// store's fault injector); falls back blob-by-blob to older
  /// checkpoints, 0 when none survive.
  long restorable_checkpoint_step();
  void complete();

  simcore::Simulator* sim_;
  nn::CnnModel model_;
  SessionConfig config_;
  util::Rng rng_;
  cloud::ObjectStore* store_;

  std::vector<Worker> workers_;
  // Parallel to workers_ (workers are never removed, only flagged
  // revoked): the worker's trace track, resolved once per telemetry
  // bundle instead of once per compute completion.
  std::vector<obs::CachedTrack> worker_tracks_;
  // Step-path registry series, same caching rationale.
  obs::CachedHistogram compute_seconds_{"train.compute_seconds"};
  obs::CachedCounter steps_total_{"train.steps_total"};
  obs::CachedGauge global_step_gauge_{"train.global_step"};
  std::vector<std::unique_ptr<PsShard>> shards_;
  std::optional<WorkerId> owner_;
  bool had_owner_ = false;
  long global_step_ = 0;
  long next_checkpoint_step_ = 0;
  long last_checkpoint_step_ = 0;
  bool finished_ = false;
  TrainingTrace trace_;
};

}  // namespace cmdare::train
