// Training traces: the raw measurement record of a simulated session.
//
// This is the substitute for the paper's TensorFlow logging hooks and
// TFProf: global-step completion times (for cluster speed, averaged per
// 100 steps as in Section III-A), per-worker step completion times (for
// Table III's individual worker step times), and event records for
// checkpoints, revocations, joins, and rollbacks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "simcore/simulator.hpp"

namespace cmdare::train {

using WorkerId = std::size_t;

struct CheckpointEvent {
  long at_step = 0;
  WorkerId by_worker = 0;
  simcore::SimTime started = 0.0;
  simcore::SimTime finished = 0.0;

  double duration() const { return finished - started; }
};

enum class SessionEventType {
  kWorkerJoined,
  kWorkerRevoked,
  kChiefHandover,   // CM-DARE reassigned checkpointing duty
  kRollback,        // vanilla-TF recompute from last checkpoint
  kSessionRestart,  // cluster reconfiguration restart (e.g. adding a PS)
};

struct SessionEvent {
  SessionEventType type;
  simcore::SimTime at = 0.0;
  WorkerId worker = 0;
  long global_step = 0;  // global step at the time of the event
  std::string detail;
};

class TrainingTrace {
 public:
  /// --- recording (used by TrainingSession) ---
  void record_global_step(long step, simcore::SimTime at);
  void record_worker_step(WorkerId worker, simcore::SimTime at);
  void record_checkpoint(CheckpointEvent event);
  void record_event(SessionEvent event);

  /// --- analysis ---
  /// Highest global step recorded.
  long max_global_step() const;
  /// Time the global step counter *last* reached `step` (rollbacks
  /// overwrite earlier completions). Throws if the step was never reached.
  simcore::SimTime time_of_step(long step) const;
  /// Same, but returns nullopt instead of throwing — for callers probing
  /// whether a run got far enough (e.g. `try_time_of_step(n).value_or(...)`).
  std::optional<simcore::SimTime> try_time_of_step(long step) const;

  /// Cluster training speed in steps/second, averaged over consecutive
  /// windows of `window` steps (the paper uses 100). Entry w covers steps
  /// [w*window, (w+1)*window).
  std::vector<double> speed_per_window(long window = 100) const;

  /// Mean cluster speed between two global steps (e.g. 100..4000 to skip
  /// warmup, matching Section III-B's discard of the first 100 steps).
  double mean_speed(long from_step, long to_step) const;

  /// Per-worker step intervals in seconds, discarding each worker's first
  /// `discard` recorded steps (to skip warmup).
  std::vector<double> worker_step_intervals(WorkerId worker,
                                            std::size_t discard = 100) const;

  std::size_t worker_count() const { return worker_steps_.size(); }
  std::size_t worker_step_count(WorkerId worker) const;
  /// Raw per-worker step completion times.
  const std::vector<simcore::SimTime>& worker_step_times(
      WorkerId worker) const;

  const std::vector<CheckpointEvent>& checkpoints() const {
    return checkpoints_;
  }
  const std::vector<SessionEvent>& events() const { return events_; }

 private:
  // step_time_[s] = last sim time the global step counter hit s+1.
  std::vector<simcore::SimTime> step_time_;
  std::vector<std::vector<simcore::SimTime>> worker_steps_;
  std::vector<CheckpointEvent> checkpoints_;
  std::vector<SessionEvent> events_;
};

}  // namespace cmdare::train
