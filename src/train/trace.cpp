#include "train/trace.hpp"

#include <stdexcept>

namespace cmdare::train {

void TrainingTrace::record_global_step(long step, simcore::SimTime at) {
  if (step < 1) throw std::invalid_argument("record_global_step: step < 1");
  const auto index = static_cast<std::size_t>(step - 1);
  if (index >= step_time_.size()) step_time_.resize(index + 1, -1.0);
  step_time_[index] = at;
}

void TrainingTrace::record_worker_step(WorkerId worker, simcore::SimTime at) {
  if (worker >= worker_steps_.size()) worker_steps_.resize(worker + 1);
  worker_steps_[worker].push_back(at);
}

void TrainingTrace::record_checkpoint(CheckpointEvent event) {
  checkpoints_.push_back(event);
}

void TrainingTrace::record_event(SessionEvent event) {
  events_.push_back(std::move(event));
}

long TrainingTrace::max_global_step() const {
  return static_cast<long>(step_time_.size());
}

simcore::SimTime TrainingTrace::time_of_step(long step) const {
  const auto t = try_time_of_step(step);
  if (!t) throw std::out_of_range("time_of_step: step never reached");
  return *t;
}

std::optional<simcore::SimTime> TrainingTrace::try_time_of_step(
    long step) const {
  if (step < 1 || step > max_global_step()) return std::nullopt;
  const simcore::SimTime t = step_time_[static_cast<std::size_t>(step - 1)];
  if (t < 0.0) return std::nullopt;
  return t;
}

std::vector<double> TrainingTrace::speed_per_window(long window) const {
  if (window < 1) throw std::invalid_argument("speed_per_window: window < 1");
  std::vector<double> speeds;
  for (long start = 0; start + window <= max_global_step(); start += window) {
    // Window start time: completion of step `start` (or 0 for the first).
    const auto t0 =
        start == 0 ? std::optional<simcore::SimTime>(0.0)
                   : try_time_of_step(start);
    const auto t1 = try_time_of_step(start + window);
    if (!t0 || !t1) continue;  // boundary skipped by a rollback resize
    if (*t1 <= *t0) continue;  // degenerate (rollback overlap)
    speeds.push_back(static_cast<double>(window) / (*t1 - *t0));
  }
  return speeds;
}

double TrainingTrace::mean_speed(long from_step, long to_step) const {
  if (to_step <= from_step) {
    throw std::invalid_argument("mean_speed: empty step range");
  }
  const simcore::SimTime t0 = from_step == 0 ? 0.0 : time_of_step(from_step);
  const simcore::SimTime t1 = time_of_step(to_step);
  if (t1 <= t0) throw std::logic_error("mean_speed: non-positive duration");
  return static_cast<double>(to_step - from_step) / (t1 - t0);
}

std::vector<double> TrainingTrace::worker_step_intervals(
    WorkerId worker, std::size_t discard) const {
  if (worker >= worker_steps_.size()) {
    throw std::out_of_range("worker_step_intervals: unknown worker");
  }
  const auto& times = worker_steps_[worker];
  std::vector<double> intervals;
  for (std::size_t i = discard + 1; i < times.size(); ++i) {
    intervals.push_back(times[i] - times[i - 1]);
  }
  return intervals;
}

std::size_t TrainingTrace::worker_step_count(WorkerId worker) const {
  if (worker >= worker_steps_.size()) {
    throw std::out_of_range("worker_step_count: unknown worker");
  }
  return worker_steps_[worker].size();
}

const std::vector<simcore::SimTime>& TrainingTrace::worker_step_times(
    WorkerId worker) const {
  if (worker >= worker_steps_.size()) {
    throw std::out_of_range("worker_step_times: unknown worker");
  }
  return worker_steps_[worker];
}

}  // namespace cmdare::train
