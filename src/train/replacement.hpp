// Worker replacement overheads (Section V-D, Figure 10).
//
// After a revocation the cluster trains with one fewer worker until a
// replacement is ready. Two paths exist:
//   * warm start — an existing, already-booted GPU server rejoins: restart
//     the training framework and rebuild the computation graph;
//   * cold start — a newly requested server: on top of the warm-start
//     work, the VM environment must be prepared and the revoked worker's
//     training-data shard downloaded (the server request/boot itself is
//     the startup time of Section V-B, modeled separately by the cloud
//     provider).
#pragma once

#include "cloud/calibration.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace cmdare::train {

/// Samples a warm-start replacement overhead (seconds).
double sample_warm_replacement_seconds(const nn::CnnModel& model,
                                       util::Rng& rng);

/// Samples a cold-start replacement overhead (seconds), excluding the
/// cloud-provider startup time (add a StartupModel sample for the
/// request-to-RUNNING portion).
double sample_cold_replacement_seconds(const nn::CnnModel& model,
                                       util::Rng& rng);

}  // namespace cmdare::train
