#include "train/ps.hpp"

#include <stdexcept>
#include <utility>

namespace cmdare::train {

PsShard::PsShard(simcore::Simulator& sim, util::Rng rng,
                 double mean_service_seconds, double cov)
    : sim_(&sim), rng_(rng), mean_service_(mean_service_seconds), cov_(cov) {
  if (mean_service_seconds <= 0.0) {
    throw std::invalid_argument("PsShard: service time must be > 0");
  }
}

void PsShard::submit(std::function<void()> on_applied) {
  if (!on_applied) throw std::invalid_argument("PsShard: empty callback");
  queue_.push_back(std::move(on_applied));
  if (!busy_) start_next();
}

void PsShard::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  auto job = std::move(queue_.front());
  queue_.pop_front();
  const double service = rng_.lognormal_mean_cv(mean_service_, cov_);
  busy_seconds_ += service;
  sim_->schedule_after(service, [this, job = std::move(job)]() {
    ++applied_;
    job();
    start_next();
  });
}

}  // namespace cmdare::train
