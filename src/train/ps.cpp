#include "train/ps.hpp"

#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace cmdare::train {

PsShard::PsShard(simcore::Simulator& sim, util::Rng rng,
                 double mean_service_seconds, double cov, std::string label)
    : sim_(&sim),
      rng_(rng),
      mean_service_(mean_service_seconds),
      cov_(cov),
      label_(std::move(label)),
      track_("ps-" + label_),
      queue_wait_("ps.queue_wait_seconds", {{"shard", label_}}),
      updates_total_("ps.updates_total", {{"shard", label_}}),
      apply_seconds_("ps.apply_seconds", {{"shard", label_}}),
      queue_depth_name_("ps.queue_depth/" + label_) {
  if (mean_service_seconds <= 0.0) {
    throw std::invalid_argument("PsShard: service time must be > 0");
  }
}

void PsShard::sample_queue_depth() const {
  if (obs::Tracer* tracer = obs::tracer()) {
    tracer->counter(queue_depth_name_, sim_->now(),
                    static_cast<double>(queue_.size()));
  }
}

void PsShard::submit(std::function<void()> on_applied) {
  if (!on_applied) throw std::invalid_argument("PsShard: empty callback");
  queue_.push_back(PendingUpdate{std::move(on_applied), sim_->now()});
  sample_queue_depth();
  if (!busy_) start_next();
}

void PsShard::start_next() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  PendingUpdate update = std::move(queue_.front());
  queue_.pop_front();

  const simcore::SimTime service_start = sim_->now();
  if (obs::Tracer* tracer = track_.get()) {
    tracer->complete(track_.id(), "ps.queue", "train", update.enqueued_at,
                     service_start, {{"shard", label_}}, /*async=*/true);
    sample_queue_depth();
  }
  if (obs::Histogram* wait = queue_wait_.get()) {
    wait->observe(service_start - update.enqueued_at);
  }

  const double service = rng_.lognormal_mean_cv(mean_service_, cov_);
  busy_seconds_ += service;
  sim_->schedule_after(
      service,
      [this, job = std::move(update.on_applied), service_start]() {
        ++applied_;
        if (obs::Tracer* tracer = track_.get()) {
          tracer->complete(track_.id(), "ps.apply", "train", service_start,
                           sim_->now(), {{"shard", label_}});
        }
        if (obs::Counter* updates = updates_total_.get()) {
          updates->inc();
          if (obs::Histogram* apply = apply_seconds_.get()) {
            apply->observe(sim_->now() - service_start);
          }
        }
        job();
        start_next();
      },
      "ps.apply");
}

}  // namespace cmdare::train
