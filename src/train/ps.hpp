// Parameter-server shard model.
//
// Parameters are sharded across the cluster's parameter servers; applying
// one asynchronous update occupies each shard for a service time drawn
// from the calibrated ground truth (2 x parameter bytes through the PS at
// kPsBytesPerSecond, divided by the shard count). Each shard is a FIFO
// queue; this queueing is what produces the parameter-server bottleneck of
// Table III / Figures 4 and 12: per-worker step time inflates toward
// n_workers * service once aggregate demand exceeds shard capacity.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "simcore/simulator.hpp"
#include "util/rng.hpp"

namespace cmdare::train {

class PsShard {
 public:
  /// `mean_service_seconds` is the per-update service time on this shard;
  /// `cov` its lognormal jitter.
  PsShard(simcore::Simulator& sim, util::Rng rng, double mean_service_seconds,
          double cov);

  /// Enqueues one update; `on_applied` fires when the shard has applied it.
  void submit(std::function<void()> on_applied);

  std::size_t queue_length() const { return queue_.size(); }
  bool busy() const { return busy_; }
  std::uint64_t updates_applied() const { return applied_; }
  double mean_service_seconds() const { return mean_service_; }

  /// Cumulative busy time (for utilization diagnostics).
  double busy_seconds() const { return busy_seconds_; }

 private:
  void start_next();

  simcore::Simulator* sim_;
  util::Rng rng_;
  double mean_service_;
  double cov_;
  bool busy_ = false;
  std::deque<std::function<void()>> queue_;
  std::uint64_t applied_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace cmdare::train
