// Parameter-server shard model.
//
// Parameters are sharded across the cluster's parameter servers; applying
// one asynchronous update occupies each shard for a service time drawn
// from the calibrated ground truth (2 x parameter bytes through the PS at
// kPsBytesPerSecond, divided by the shard count). Each shard is a FIFO
// queue; this queueing is what produces the parameter-server bottleneck of
// Table III / Figures 4 and 12: per-worker step time inflates toward
// n_workers * service once aggregate demand exceeds shard capacity.
//
// When telemetry is installed (obs::install), every update leaves a
// `ps.queue` wait span and a `ps.apply` service span on the shard's trace
// track, plus queue-depth counter samples and per-shard registry series.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "obs/cached.hpp"
#include "simcore/simulator.hpp"
#include "util/rng.hpp"

namespace cmdare::train {

class PsShard {
 public:
  /// `mean_service_seconds` is the per-update service time on this shard;
  /// `cov` its lognormal jitter. `label` names the shard in telemetry
  /// output ("0", "1", ...).
  PsShard(simcore::Simulator& sim, util::Rng rng, double mean_service_seconds,
          double cov, std::string label = "0");

  /// Enqueues one update; `on_applied` fires when the shard has applied it.
  void submit(std::function<void()> on_applied);

  std::size_t queue_length() const { return queue_.size(); }
  bool busy() const { return busy_; }
  std::uint64_t updates_applied() const { return applied_; }
  double mean_service_seconds() const { return mean_service_; }
  const std::string& label() const { return label_; }

  /// Cumulative busy time (for utilization diagnostics).
  double busy_seconds() const { return busy_seconds_; }

 private:
  struct PendingUpdate {
    std::function<void()> on_applied;
    simcore::SimTime enqueued_at;
  };

  void start_next();
  void sample_queue_depth() const;

  simcore::Simulator* sim_;
  util::Rng rng_;
  double mean_service_;
  double cov_;
  std::string label_;
  bool busy_ = false;
  std::deque<PendingUpdate> queue_;
  std::uint64_t applied_ = 0;
  double busy_seconds_ = 0.0;

  // Per-apply instrumentation handles, resolved once per installed
  // telemetry bundle instead of once per update (mutable: queue-depth
  // sampling is observation, not shard state).
  mutable obs::CachedTrack track_;
  obs::CachedHistogram queue_wait_;
  obs::CachedCounter updates_total_;
  obs::CachedHistogram apply_seconds_;
  std::string queue_depth_name_;
};

}  // namespace cmdare::train
