#include "train/trace_io.hpp"

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace cmdare::train {

const char* session_event_name(SessionEventType type) {
  switch (type) {
    case SessionEventType::kWorkerJoined:
      return "worker_joined";
    case SessionEventType::kWorkerRevoked:
      return "worker_revoked";
    case SessionEventType::kChiefHandover:
      return "chief_handover";
    case SessionEventType::kRollback:
      return "rollback";
    case SessionEventType::kSessionRestart:
      return "session_restart";
  }
  return "?";
}

void write_speed_csv(const TrainingTrace& trace, std::ostream& out,
                     long window) {
  util::CsvWriter writer(out);
  writer.write_row({"step_end", "steps_per_second"});
  const auto speeds = trace.speed_per_window(window);
  for (std::size_t w = 0; w < speeds.size(); ++w) {
    writer.write_row({std::to_string((w + 1) * window),
                      util::format_double(speeds[w], 6)});
  }
}

void write_worker_steps_csv(const TrainingTrace& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row({"worker", "step_index", "sim_time"});
  for (WorkerId worker = 0; worker < trace.worker_count(); ++worker) {
    const auto& times = trace.worker_step_times(worker);
    for (std::size_t i = 0; i < times.size(); ++i) {
      writer.write_row({std::to_string(worker), std::to_string(i + 1),
                        util::format_double(times[i], 6)});
    }
  }
}

void write_checkpoints_csv(const TrainingTrace& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row({"at_step", "by_worker", "started", "finished",
                    "duration"});
  for (const CheckpointEvent& c : trace.checkpoints()) {
    writer.write_row({std::to_string(c.at_step), std::to_string(c.by_worker),
                      util::format_double(c.started, 3),
                      util::format_double(c.finished, 3),
                      util::format_double(c.duration(), 3)});
  }
}

void write_events_csv(const TrainingTrace& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row({"type", "at", "worker", "global_step", "detail"});
  for (const SessionEvent& e : trace.events()) {
    writer.write_row({session_event_name(e.type),
                      util::format_double(e.at, 3), std::to_string(e.worker),
                      std::to_string(e.global_step), e.detail});
  }
}

}  // namespace cmdare::train
