#include "train/trace_io.hpp"

#include <stdexcept>
#include <string>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace cmdare::train {
namespace {

long parse_long_field(const std::string& field, const char* what) {
  std::size_t consumed = 0;
  long value = 0;
  try {
    value = std::stol(field, &consumed);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace_io: bad ") + what + " '" +
                             field + "'");
  }
  if (consumed != field.size()) {
    throw std::runtime_error(std::string("trace_io: bad ") + what + " '" +
                             field + "'");
  }
  return value;
}

double parse_double_field(const std::string& field, const char* what) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(field, &consumed);
  } catch (const std::exception&) {
    throw std::runtime_error(std::string("trace_io: bad ") + what + " '" +
                             field + "'");
  }
  if (consumed != field.size()) {
    throw std::runtime_error(std::string("trace_io: bad ") + what + " '" +
                             field + "'");
  }
  return value;
}

// Reads a CSV line (dropping a trailing '\r' from CRLF dumps); false at EOF.
bool next_csv_line(std::istream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

void expect_header(std::istream& in,
                   const std::vector<std::string>& expected,
                   const char* what) {
  std::string line;
  if (!next_csv_line(in, line) || util::csv_parse_line(line) != expected) {
    throw std::runtime_error(std::string("trace_io: missing ") + what +
                             " header");
  }
}

}  // namespace

const char* session_event_name(SessionEventType type) {
  switch (type) {
    case SessionEventType::kWorkerJoined:
      return "worker_joined";
    case SessionEventType::kWorkerRevoked:
      return "worker_revoked";
    case SessionEventType::kChiefHandover:
      return "chief_handover";
    case SessionEventType::kRollback:
      return "rollback";
    case SessionEventType::kSessionRestart:
      return "session_restart";
  }
  return "?";
}

void write_speed_csv(const TrainingTrace& trace, std::ostream& out,
                     long window) {
  util::CsvWriter writer(out);
  writer.write_row({"step_end", "steps_per_second"});
  const auto speeds = trace.speed_per_window(window);
  for (std::size_t w = 0; w < speeds.size(); ++w) {
    writer.write_row({std::to_string((w + 1) * window),
                      util::format_double(speeds[w], 6)});
  }
}

void write_worker_steps_csv(const TrainingTrace& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row({"worker", "step_index", "sim_time"});
  for (WorkerId worker = 0; worker < trace.worker_count(); ++worker) {
    const auto& times = trace.worker_step_times(worker);
    for (std::size_t i = 0; i < times.size(); ++i) {
      writer.write_row({std::to_string(worker), std::to_string(i + 1),
                        util::format_double(times[i], 6)});
    }
  }
}

void write_checkpoints_csv(const TrainingTrace& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row({"at_step", "by_worker", "started", "finished",
                    "duration"});
  for (const CheckpointEvent& c : trace.checkpoints()) {
    writer.write_row({std::to_string(c.at_step), std::to_string(c.by_worker),
                      util::format_double(c.started, 3),
                      util::format_double(c.finished, 3),
                      util::format_double(c.duration(), 3)});
  }
}

void write_events_csv(const TrainingTrace& trace, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.write_row({"type", "at", "worker", "global_step", "detail"});
  for (const SessionEvent& e : trace.events()) {
    writer.write_row({session_event_name(e.type),
                      util::format_double(e.at, 3), std::to_string(e.worker),
                      std::to_string(e.global_step), e.detail});
  }
}

std::optional<SessionEventType> parse_session_event_name(
    std::string_view name) {
  for (const SessionEventType type :
       {SessionEventType::kWorkerJoined, SessionEventType::kWorkerRevoked,
        SessionEventType::kChiefHandover, SessionEventType::kRollback,
        SessionEventType::kSessionRestart}) {
    if (name == session_event_name(type)) return type;
  }
  return std::nullopt;
}

std::vector<CheckpointEvent> read_checkpoints_csv(std::istream& in) {
  expect_header(in, {"at_step", "by_worker", "started", "finished",
                     "duration"},
                "checkpoints");
  std::vector<CheckpointEvent> checkpoints;
  std::string line;
  while (next_csv_line(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::csv_parse_line(line);
    if (fields.size() != 5) {
      throw std::runtime_error("trace_io: checkpoint row needs 5 fields");
    }
    CheckpointEvent event;
    event.at_step = parse_long_field(fields[0], "at_step");
    event.by_worker =
        static_cast<WorkerId>(parse_long_field(fields[1], "by_worker"));
    event.started = parse_double_field(fields[2], "started");
    event.finished = parse_double_field(fields[3], "finished");
    // fields[4] (duration) is derived from started/finished; ignored.
    checkpoints.push_back(event);
  }
  return checkpoints;
}

std::vector<SessionEvent> read_events_csv(std::istream& in) {
  expect_header(in, {"type", "at", "worker", "global_step", "detail"},
                "events");
  std::vector<SessionEvent> events;
  std::string line;
  while (next_csv_line(in, line)) {
    if (line.empty()) continue;
    const auto fields = util::csv_parse_line(line);
    if (fields.size() != 5) {
      throw std::runtime_error("trace_io: event row needs 5 fields");
    }
    const auto type = parse_session_event_name(fields[0]);
    if (!type) {
      throw std::runtime_error("trace_io: unknown event type '" + fields[0] +
                               "'");
    }
    SessionEvent event;
    event.type = *type;
    event.at = parse_double_field(fields[1], "at");
    event.worker = static_cast<WorkerId>(parse_long_field(fields[2],
                                                          "worker"));
    event.global_step = parse_long_field(fields[3], "global_step");
    event.detail = fields[4];
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace cmdare::train
