// Checkpoint manifests: the integrity ground truth of the data plane.
//
// Every committed checkpoint blob gets a manifest record — expected byte
// count and checksum at write time — plus the "stored" pair describing
// what actually landed after fault injection (a torn write truncates
// stored_bytes, bit-rot flips stored_checksum). A generation is one full
// base checkpoint plus its ordered delta chain; restore verifies the
// whole generation record-by-record against the manifest before trusting
// a single byte of it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/tier.hpp"

namespace cmdare::ckpt {

/// FNV-1a over the blob identity (key, step, bytes). The sim has no real
/// payload to hash; a content checksum keyed on identity + size gives the
/// verification path the same detection power against the faults the
/// model can express (truncation, silent flip) at zero cost.
std::uint64_t blob_checksum(const std::string& key, long step,
                            std::uint64_t bytes);

struct BlobRecord {
  std::string key;
  long step = 0;
  /// Manifest truth: what the writer committed.
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
  /// Placement at write time (the store tracks subsequent moves).
  cloud::StorageTier tier = cloud::StorageTier::kRegional;
  /// Stored truth: what is actually durable after fault injection.
  std::uint64_t stored_bytes = 0;
  std::uint64_t stored_checksum = 0;

  bool truncated() const { return stored_bytes != bytes; }
  bool corrupted() const { return stored_checksum != checksum; }
};

struct Generation {
  std::uint64_t id = 0;
  BlobRecord base;
  /// Delta chain in write (= step) order; restoring the generation's
  /// newest step requires the base and *every* delta to verify.
  std::vector<BlobRecord> deltas;
  /// Set once verification fails; a quarantined generation is never
  /// consulted again.
  bool quarantined = false;

  long newest_step() const {
    return deltas.empty() ? base.step : deltas.back().step;
  }
  std::size_t blob_count() const { return 1 + deltas.size(); }
};

}  // namespace cmdare::ckpt
