#include "ckpt/plane.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace cmdare::ckpt {

namespace {

/// Arbitrary non-zero mask: a bit-rot draw flips the stored checksum so
/// verification sees a mismatch without modeling payload bits.
constexpr std::uint64_t kRotMask = 0x9e3779b97f4a7c15ULL;

}  // namespace

std::uint64_t blob_checksum(const std::string& key, long step,
                            std::uint64_t bytes) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  mix(static_cast<std::uint64_t>(step));
  mix(bytes);
  return h;
}

CheckpointPlane::CheckpointPlane(simcore::Simulator& sim,
                                 cloud::ObjectStore& store, PlaneConfig config,
                                 faults::FaultInjector* injector)
    : sim_(&sim), store_(&store), config_(config), injector_(injector) {
  if (config_.delta_ratio <= 0.0 || config_.delta_ratio > 1.0) {
    throw std::invalid_argument(
        "CheckpointPlane: delta_ratio must be in (0, 1]");
  }
  if (config_.max_delta_chain < 1) {
    throw std::invalid_argument("CheckpointPlane: max_delta_chain must be >= 1");
  }
  if (config_.max_generations < 1) {
    throw std::invalid_argument(
        "CheckpointPlane: max_generations must be >= 1");
  }
}

PlannedWrite CheckpointPlane::plan_write(long step,
                                         std::uint64_t full_bytes) const {
  PlannedWrite write;
  write.step = step;
  const Generation* open =
      (!generations_.empty() && !generations_.back().quarantined)
          ? &generations_.back()
          : nullptr;
  const bool chain_full =
      open != nullptr &&
      open->deltas.size() >= static_cast<std::size_t>(config_.max_delta_chain);
  if (open == nullptr || chain_full) {
    write.is_base = true;
    write.compaction = chain_full;
    write.bytes = full_bytes;
    write.tier = cloud::StorageTier::kRegional;
    write.key = "ckpt/g" + std::to_string(next_generation_id_) + "/base-" +
                std::to_string(step);
  } else {
    write.bytes = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(full_bytes) *
                                      config_.delta_ratio));
    write.tier = cloud::StorageTier::kLocal;
    write.key = "ckpt/g" + std::to_string(open->id) + "/delta-" +
                std::to_string(step);
  }
  return write;
}

void CheckpointPlane::commit_write(const PlannedWrite& write) {
  BlobRecord record;
  record.key = write.key;
  record.step = write.step;
  record.bytes = write.bytes;
  record.checksum = blob_checksum(write.key, write.step, write.bytes);
  record.tier = write.tier;
  record.stored_bytes = record.bytes;
  record.stored_checksum = record.checksum;
  // Write-time corruption, drawn in a fixed order (torn, then rot) from
  // dedicated streams so commit sequences replay exactly.
  if (injector_ != nullptr) {
    if (injector_->torn_write()) {
      record.stored_bytes =
          record.bytes - std::max<std::uint64_t>(1, record.bytes / 3);
    }
    if (injector_->bit_rot()) {
      record.stored_checksum ^= kRotMask;
    }
  }

  if (write.is_base) {
    if (!generations_.empty()) {
      // The superseded generation is no longer the restore fast path:
      // demote its blobs to the cold tier (cheap to hold, slow — and
      // priced — to read back if fallback ever needs them).
      for (const Generation& old : generations_) {
        if (old.quarantined) continue;
        store_->move_blob_to_tier(old.base.key, cloud::StorageTier::kCold);
        for (const BlobRecord& delta : old.deltas) {
          store_->move_blob_to_tier(delta.key, cloud::StorageTier::kCold);
        }
      }
    }
    if (write.compaction) {
      ++compactions_;
      if (obs::Registry* registry = obs::registry()) {
        registry->counter("ckpt.compactions_total").inc();
      }
      if (obs::Ledger* ledger = obs::ledger()) {
        obs::LedgerEvent event;
        event.kind = obs::LedgerEventKind::kCkptCompact;
        event.at = sim_->now();
        event.source = "ckpt";
        event.step = write.step;
        event.detail = {
            {"chain", std::to_string(generations_.back().deltas.size())},
            {"generation", std::to_string(next_generation_id_)}};
        ledger->record(std::move(event));
      }
    }
    Generation generation;
    generation.id = next_generation_id_++;
    generation.base = record;
    generations_.push_back(std::move(generation));
    while (generations_.size() >
           static_cast<std::size_t>(config_.max_generations)) {
      generations_.erase(generations_.begin());
    }
    ++base_writes_;
  } else {
    generations_.back().deltas.push_back(record);
    ++delta_writes_;
  }
  if (obs::Registry* registry = obs::registry()) {
    registry
        ->counter("ckpt.writes_total",
                  {{"kind", write.is_base ? "base" : "delta"}})
        .inc();
    registry->counter("ckpt.write_bytes_total")
        .inc(static_cast<double>(write.bytes));
  }
}

CheckpointPlane::Verdict CheckpointPlane::verify(const Generation& generation,
                                                 std::string& reason) const {
  const auto check = [&](const BlobRecord& record) -> Verdict {
    const cloud::StorageTier tier =
        store_->blob_tier(record.key).value_or(record.tier);
    if (injector_ != nullptr && injector_->tier_outage(tier, sim_->now())) {
      reason = "tier_outage";
      return Verdict::kUnavailable;
    }
    const std::optional<std::uint64_t> durable = store_->try_restore(record.key);
    if (!durable) {
      reason = store_->contains(record.key) ? "unreadable" : "missing";
      return Verdict::kCorrupt;
    }
    if (*durable != record.bytes || record.truncated()) {
      reason = "truncated";
      return Verdict::kCorrupt;
    }
    if (record.corrupted()) {
      reason = "checksum";
      return Verdict::kCorrupt;
    }
    return Verdict::kOk;
  };
  // The generation's newest step needs the base and the *entire* delta
  // chain: one bad link breaks everything after it.
  const Verdict base = check(generation.base);
  if (base != Verdict::kOk) return base;
  for (const BlobRecord& delta : generation.deltas) {
    const Verdict v = check(delta);
    if (v != Verdict::kOk) return v;
  }
  return Verdict::kOk;
}

void CheckpointPlane::quarantine(Generation& generation,
                                 const std::string& reason) {
  generation.quarantined = true;
  ++quarantines_;
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("ckpt.quarantines_total", {{"reason", reason}}).inc();
  }
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kCkptQuarantine;
    event.at = sim_->now();
    event.source = "ckpt";
    event.step = generation.newest_step();
    event.detail = {{"generation", std::to_string(generation.id)},
                    {"reason", reason}};
    ledger->record(std::move(event));
  }
}

void CheckpointPlane::emit_restore_event(long step, int fallback_depth,
                                         const std::string& result) {
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("ckpt.restores_total", {{"result", result}}).inc();
  }
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kCkptRestore;
    event.at = sim_->now();
    event.source = "ckpt";
    event.step = step;
    event.detail = {{"depth", std::to_string(fallback_depth)},
                    {"result", result}};
    ledger->record(std::move(event));
  }
}

long CheckpointPlane::restorable_step() {
  int depth = 0;
  for (auto it = generations_.rbegin(); it != generations_.rend(); ++it) {
    Generation& generation = *it;
    if (generation.quarantined) {
      ++depth;
      continue;
    }
    std::string reason;
    switch (verify(generation, reason)) {
      case Verdict::kOk: {
        // Restore fast path: every rejoining worker is about to read the
        // whole generation, so promote it to the local cache tier.
        store_->move_blob_to_tier(generation.base.key,
                                  cloud::StorageTier::kLocal);
        for (const BlobRecord& delta : generation.deltas) {
          store_->move_blob_to_tier(delta.key, cloud::StorageTier::kLocal);
        }
        ++verified_restores_;
        emit_restore_event(generation.newest_step(), depth, "verified");
        return generation.newest_step();
      }
      case Verdict::kCorrupt:
        quarantine(generation, reason);
        ++depth;
        break;
      case Verdict::kUnavailable:
        // Transient: the tier is dark right now, but the generation's
        // integrity is not in question — skip it without quarantining.
        ++depth;
        break;
    }
  }
  ++cold_restarts_;
  emit_restore_event(/*step=*/-1, depth, "cold_restart");
  return 0;
}

}  // namespace cmdare::ckpt
