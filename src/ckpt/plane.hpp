// The durable checkpoint data plane.
//
// The paper's recovery model (Eq. 4, Section IV-B) assumes the newest
// checkpoint blob is always readable; one corrupt write silently turns a
// revocation into a cold restart from step 0. CheckpointPlane closes that
// gap: checkpoints become *generations* — a full base plus a chain of
// differential deltas sized from the nn checkpoint-size model — written
// through the multi-tier ObjectStore (deltas to the local cache, bases to
// the regional store, superseded generations demoted to cold) with a
// checksummed manifest record per blob. Restore verifies a candidate
// generation end-to-end (existence, exact size, checksum, tier
// reachability) before trusting it; a generation that fails integrity is
// quarantined (ledgered as ckpt_quarantine) and restore deterministically
// falls back to the newest older generation that verifies, or reports a
// clean cold restart when none do. Training never resumes from an
// unverified checkpoint.
//
// Determinism contract: all stochastic corruption (bit-rot, torn writes)
// is drawn from the FaultInjector's dedicated streams at write-commit
// time — commit order is the simulator's deterministic event order — and
// tier outages are pure window checks. With the plane disabled no code
// path here runs, so legacy runs are bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/config.hpp"
#include "ckpt/manifest.hpp"
#include "cloud/storage.hpp"
#include "faults/faults.hpp"
#include "simcore/simulator.hpp"

namespace cmdare::ckpt {

/// One planned checkpoint write. plan_write() is pure (safe to re-plan on
/// upload retry); commit_write() applies it to the manifest.
struct PlannedWrite {
  std::string key;
  long step = 0;
  /// Bytes actually transferred (full size for a base, delta_ratio of it
  /// for a delta).
  std::uint64_t bytes = 0;
  cloud::StorageTier tier = cloud::StorageTier::kRegional;
  bool is_base = false;
  /// Base forced by the delta chain reaching max_delta_chain.
  bool compaction = false;
};

class CheckpointPlane {
 public:
  /// `injector` may be null: writes then commit clean and verification
  /// only checks the manifest (still catches lost blobs).
  CheckpointPlane(simcore::Simulator& sim, cloud::ObjectStore& store,
                  PlaneConfig config,
                  faults::FaultInjector* injector = nullptr);

  /// Plans the blob for the checkpoint at `step` whose full serialized
  /// size is `full_bytes`: a delta while the open generation's chain has
  /// room, otherwise a new base (compacting the chain).
  PlannedWrite plan_write(long step, std::uint64_t full_bytes) const;

  /// Records a durable write into the manifest and draws the write-time
  /// corruption faults. A base commit closes the previous generation
  /// (demoting its blobs to cold) and trims the manifest to
  /// max_generations.
  void commit_write(const PlannedWrite& write);

  /// Newest step restorable from a generation that verifies end-to-end,
  /// quarantining generations that fail integrity on the way down; 0
  /// means no generation verified — clean cold restart. A verified
  /// generation's blobs are promoted to the local tier (the restore is
  /// about to read them all again on every rejoining worker).
  long restorable_step();

  const PlaneConfig& config() const { return config_; }
  const std::vector<Generation>& generations() const { return generations_; }

  std::uint64_t base_writes() const { return base_writes_; }
  std::uint64_t delta_writes() const { return delta_writes_; }
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t quarantines() const { return quarantines_; }
  std::uint64_t verified_restores() const { return verified_restores_; }
  std::uint64_t cold_restarts() const { return cold_restarts_; }
  /// Dollars accrued across all storage tiers (store-level ledger).
  double tier_cost_usd() const { return store_->tier_cost_usd_total(); }

 private:
  enum class Verdict { kOk, kCorrupt, kUnavailable };

  /// End-to-end generation check; on kCorrupt, `reason` names the first
  /// failing check (missing | truncated | checksum | unreadable).
  Verdict verify(const Generation& generation, std::string& reason) const;
  void quarantine(Generation& generation, const std::string& reason);
  void emit_restore_event(long step, int fallback_depth,
                          const std::string& result);

  simcore::Simulator* sim_;
  cloud::ObjectStore* store_;
  PlaneConfig config_;
  faults::FaultInjector* injector_;

  std::vector<Generation> generations_;  // oldest-first
  std::uint64_t next_generation_id_ = 1;
  std::uint64_t base_writes_ = 0;
  std::uint64_t delta_writes_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t quarantines_ = 0;
  std::uint64_t verified_restores_ = 0;
  std::uint64_t cold_restarts_ = 0;
};

}  // namespace cmdare::ckpt
