// Checkpoint data-plane configuration.
//
// Default-constructed the plane is off: sessions keep the legacy flat
// single-blob checkpoint path and every seeded golden stays
// byte-identical. Enabling it turns checkpoints into checksummed
// generations — a full base plus a chain of differential deltas — placed
// across the storage tiers of cloud::TierSet and verified end-to-end
// before any restore.
#pragma once

namespace cmdare::ckpt {

struct PlaneConfig {
  /// Master switch. Off = legacy flat checkpoints, bit-for-bit.
  bool enabled = false;
  /// Differential checkpoint size as a fraction of the full serialized
  /// model (src/nn checkpoint-size model). Gradient sparsity makes
  /// inter-interval deltas far smaller than the base; 0.12 matches the
  /// ~8x compression incremental TensorFlow checkpoints see in practice.
  double delta_ratio = 0.12;
  /// Deltas per base before the chain is compacted into a fresh base.
  /// Restore cost and corruption exposure both grow linearly with chain
  /// depth, so this bounds worst-case verification work.
  int max_delta_chain = 4;
  /// Verified generations retained for fallback. Older generations fall
  /// off the manifest (their blobs stay demoted on the cold tier).
  int max_generations = 3;

  friend bool operator==(const PlaneConfig&, const PlaneConfig&) = default;
};

}  // namespace cmdare::ckpt
