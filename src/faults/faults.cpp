#include "faults/faults.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace cmdare::faults {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLaunchError:
      return "launch_error";
    case FaultKind::kStockout:
      return "stockout";
    case FaultKind::kUploadError:
      return "upload_error";
    case FaultKind::kUploadSlowdown:
      return "upload_slowdown";
    case FaultKind::kRestoreError:
      return "restore_error";
    case FaultKind::kAbruptKill:
      return "abrupt_kill";
    case FaultKind::kStormKill:
      return "storm_kill";
    case FaultKind::kBitRot:
      return "bit_rot";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kTierOutage:
      return "tier_outage";
  }
  return "?";
}

bool StockoutWindow::covers(cloud::Region r, cloud::GpuType g,
                            double now) const {
  if (r != region) return false;
  if (gpu && *gpu != g) return false;
  return now >= start_s && now < end_s;
}

bool OutageStorm::covers(cloud::Region r, cloud::GpuType g,
                         double now) const {
  if (r != region) return false;
  if (gpu && *gpu != g) return false;
  return now >= start_s && now < end_s;
}

bool TierOutageWindow::covers(cloud::StorageTier t, double now) const {
  return t == tier && now >= start_s && now < end_s;
}

bool FaultPlan::any() const {
  return launch_error_rate > 0.0 || !stockouts.empty() ||
         upload_error_rate > 0.0 || upload_slowdown_rate > 0.0 ||
         restore_error_rate > 0.0 || abrupt_kill_rate > 0.0 ||
         !storms.empty() || bit_rot_rate > 0.0 || torn_write_rate > 0.0 ||
         !tier_outages.empty();
}

FaultPlan FaultPlan::uniform(double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("FaultPlan::uniform: rate must be in [0, 1]");
  }
  FaultPlan plan;
  plan.launch_error_rate = rate;
  plan.upload_error_rate = rate;
  plan.upload_slowdown_rate = rate;
  plan.restore_error_rate = rate;
  plan.abrupt_kill_rate = rate;
  return plan;
}

namespace {

void validate_rate(double rate, const char* name) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument(std::string("FaultInjector: ") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, util::Rng rng)
    : plan_(std::move(plan)),
      launch_rng_(rng.fork("launch")),
      upload_rng_(rng.fork("upload")),
      slowdown_rng_(rng.fork("slowdown")),
      restore_rng_(rng.fork("restore")),
      kill_rng_(rng.fork("abrupt-kill")),
      storm_rng_(rng.fork("storm")),
      bitrot_rng_(rng.fork("bit-rot")),
      torn_rng_(rng.fork("torn-write")) {
  validate_rate(plan_.launch_error_rate, "launch_error_rate");
  validate_rate(plan_.upload_error_rate, "upload_error_rate");
  validate_rate(plan_.upload_slowdown_rate, "upload_slowdown_rate");
  validate_rate(plan_.restore_error_rate, "restore_error_rate");
  validate_rate(plan_.abrupt_kill_rate, "abrupt_kill_rate");
  validate_rate(plan_.bit_rot_rate, "bit_rot_rate");
  validate_rate(plan_.torn_write_rate, "torn_write_rate");
  if (plan_.upload_slowdown_factor < 1.0) {
    throw std::invalid_argument(
        "FaultInjector: upload_slowdown_factor must be >= 1");
  }
  for (const StockoutWindow& w : plan_.stockouts) {
    if (w.end_s < w.start_s) {
      throw std::invalid_argument(
          "FaultInjector: stockout window ends before it starts");
    }
  }
  for (const OutageStorm& storm : plan_.storms) {
    if (storm.start_s < 0.0 || storm.end_s < storm.start_s) {
      throw std::invalid_argument(
          "FaultInjector: storm window ends before it starts");
    }
    validate_rate(storm.kill_fraction, "storm kill_fraction");
    if (storm.hazard_multiplier < 1.0) {
      throw std::invalid_argument(
          "FaultInjector: storm hazard_multiplier must be >= 1");
    }
    if (storm.startup_slowdown < 1.0) {
      throw std::invalid_argument(
          "FaultInjector: storm startup_slowdown must be >= 1");
    }
  }
  for (const TierOutageWindow& w : plan_.tier_outages) {
    if (w.start_s < 0.0 || w.end_s < w.start_s) {
      throw std::invalid_argument(
          "FaultInjector: tier outage window ends before it starts");
    }
  }
}

void FaultInjector::count(FaultKind kind) {
  ++counts_[static_cast<std::size_t>(kind)];
  if (obs::Registry* registry = obs::registry()) {
    registry
        ->counter("faults.injected_total", {{"kind", fault_kind_name(kind)}})
        .inc();
  }
}

bool FaultInjector::draw(util::Rng& stream, double probability,
                         FaultKind kind) {
  // Rates 0 and 1 short-circuit without a draw so an all-or-nothing plan
  // stays deterministic regardless of how often a site is reached.
  if (probability <= 0.0) return false;
  const bool fired = probability >= 1.0 || stream.bernoulli(probability);
  if (fired) count(kind);
  return fired;
}

bool FaultInjector::launch_error() {
  return draw(launch_rng_, plan_.launch_error_rate, FaultKind::kLaunchError);
}

bool FaultInjector::stocked_out(cloud::Region region, cloud::GpuType gpu,
                                double now) {
  for (const StockoutWindow& w : plan_.stockouts) {
    if (w.covers(region, gpu, now)) {
      count(FaultKind::kStockout);
      return true;
    }
  }
  return false;
}

bool FaultInjector::upload_error() {
  return draw(upload_rng_, plan_.upload_error_rate, FaultKind::kUploadError);
}

double FaultInjector::upload_slowdown() {
  return draw(slowdown_rng_, plan_.upload_slowdown_rate,
              FaultKind::kUploadSlowdown)
             ? plan_.upload_slowdown_factor
             : 1.0;
}

bool FaultInjector::restore_error() {
  return draw(restore_rng_, plan_.restore_error_rate,
              FaultKind::kRestoreError);
}

bool FaultInjector::abrupt_kill() {
  return draw(kill_rng_, plan_.abrupt_kill_rate, FaultKind::kAbruptKill);
}

bool FaultInjector::storm_kill(double kill_fraction) {
  return draw(storm_rng_, kill_fraction, FaultKind::kStormKill);
}

bool FaultInjector::bit_rot() {
  return draw(bitrot_rng_, plan_.bit_rot_rate, FaultKind::kBitRot);
}

bool FaultInjector::torn_write() {
  return draw(torn_rng_, plan_.torn_write_rate, FaultKind::kTornWrite);
}

bool FaultInjector::tier_outage(cloud::StorageTier tier, double now) {
  for (const TierOutageWindow& w : plan_.tier_outages) {
    if (w.covers(tier, now)) {
      count(FaultKind::kTierOutage);
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::injected(FaultKind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  return total;
}

}  // namespace cmdare::faults
