// Deterministic fault injection for the simulated cloud.
//
// The paper's premise is that transient clusters fail constantly, but the
// failure modes it measures (revocations) are only part of what a real
// preemptible fleet throws at a control plane: instance requests are
// denied (transient API errors), capacity dries up per (region, GPU)
// ("stockouts"), checkpoint uploads to object storage fail or crawl, and
// revocations sometimes arrive with no preemption notice at all. The
// companion study "Speeding up Deep Learning with Transient Servers"
// documents exactly these dynamics. FaultPlan describes such an
// adversarial cloud declaratively; FaultInjector turns the plan into
// deterministic per-decision draws.
//
// Determinism contract: every fault class draws from its own Rng stream
// forked at construction, so (a) enabling one fault class never perturbs
// another's sequence, and (b) a replica seeded via the campaign engine's
// Rng(seed).fork(cell).fork(replica) scheme produces byte-identical
// results at any --jobs value. Injection sites never draw when no
// injector is attached, so fault-free runs are bit-for-bit the runs the
// rest of the repo has always produced.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "cloud/gpu.hpp"
#include "cloud/region.hpp"
#include "cloud/tier.hpp"
#include "util/rng.hpp"

namespace cmdare::faults {

enum class FaultKind {
  kLaunchError = 0,     // transient instance-request error
  kStockout = 1,        // (region, GPU) capacity window denial
  kUploadError = 2,     // checkpoint upload lost
  kUploadSlowdown = 3,  // checkpoint upload degraded
  kRestoreError = 4,    // checkpoint blob unreadable on restore
  kAbruptKill = 5,      // revocation without the 30 s notice
  kStormKill = 6,       // instance swept by an OutageStorm burst
  kBitRot = 7,          // stored checkpoint blob silently corrupted
  kTornWrite = 8,       // checkpoint blob committed truncated
  kTierOutage = 9,      // storage tier unreadable inside an outage window
};

inline constexpr std::size_t kFaultKindCount = 10;

const char* fault_kind_name(FaultKind kind);

/// A capacity ("stockout") window: transient requests for the matching
/// (region, GPU) are denied while sim time is inside [start_s, end_s).
struct StockoutWindow {
  cloud::Region region = cloud::Region::kUsCentral1;
  /// nullopt = every GPU type in the region is stocked out.
  std::optional<cloud::GpuType> gpu;
  double start_s = 0.0;
  double end_s = 0.0;

  bool covers(cloud::Region r, cloud::GpuType g, double now) const;

  friend bool operator==(const StockoutWindow&,
                         const StockoutWindow&) = default;
};

/// A correlated failure storm: at `start_s` a mass-revocation burst
/// strikes every live transient instance in the (region, GPU) scope —
/// each one revoked abruptly with probability `kill_fraction` — and the
/// scope then stays in an outage tail until `end_s`: transient requests
/// are denied like a stockout, hazard-sampled revocations arrive
/// `hazard_multiplier`× faster, and startup crawls by a factor of
/// `startup_slowdown` (partial degradation). Independent per-instance
/// revocations (Table V) compose with a storm; the storm models the
/// *correlated* bulk failure they cannot express.
struct OutageStorm {
  cloud::Region region = cloud::Region::kUsCentral1;
  /// nullopt = every GPU type in the region is struck.
  std::optional<cloud::GpuType> gpu;
  double start_s = 0.0;  // burst instant; tail is [start_s, end_s)
  double end_s = 0.0;
  /// Probability each in-scope live transient instance dies in the burst.
  double kill_fraction = 1.0;
  /// Revocation-hazard multiplier for in-scope launches during the tail.
  double hazard_multiplier = 1.0;
  /// Startup-duration multiplier for in-scope launches during the tail.
  double startup_slowdown = 1.0;

  bool covers(cloud::Region r, cloud::GpuType g, double now) const;

  friend bool operator==(const OutageStorm&, const OutageStorm&) = default;
};

/// A storage-tier outage window: every read from the matching tier fails
/// while sim time is inside [start_s, end_s). Deterministic like a
/// stockout — no RNG draw — so outage scenarios replay exactly. Writes
/// during the window still land (the paper's measured PUT path is
/// regional and multi-homed); it is the *read-back* — exactly the moment
/// a revocation makes the checkpoint matter — that goes dark.
struct TierOutageWindow {
  cloud::StorageTier tier = cloud::StorageTier::kRegional;
  double start_s = 0.0;
  double end_s = 0.0;

  bool covers(cloud::StorageTier t, double now) const;

  friend bool operator==(const TierOutageWindow&,
                         const TierOutageWindow&) = default;
};

/// Declarative fault configuration. All rates are per-decision Bernoulli
/// probabilities in [0, 1]; the default plan injects nothing.
struct FaultPlan {
  /// Probability an instance request fails with a transient launch error.
  double launch_error_rate = 0.0;
  /// Deterministic capacity windows (checked before the error draw).
  std::vector<StockoutWindow> stockouts;
  /// Probability a checkpoint upload fails (blob never becomes durable).
  double upload_error_rate = 0.0;
  /// Probability an upload is slowed, and the multiplier when it is.
  double upload_slowdown_rate = 0.0;
  double upload_slowdown_factor = 3.0;
  /// Probability a stored blob is unreadable when restored from.
  double restore_error_rate = 0.0;
  /// Probability a revocation skips the preemption notice entirely.
  double abrupt_kill_rate = 0.0;
  /// Correlated (region, GPU) outage storms (burst + stockout tail).
  std::vector<OutageStorm> storms;
  /// Probability a committed checkpoint blob silently corrupts (the
  /// stored checksum no longer matches the manifest). Only drawn by the
  /// checkpoint data plane (src/ckpt) at write-commit time.
  double bit_rot_rate = 0.0;
  /// Probability a checkpoint commit is torn: the blob lands truncated
  /// (fewer bytes durable than the manifest records). Same drawing site.
  double torn_write_rate = 0.0;
  /// Deterministic per-tier read-outage windows.
  std::vector<TierOutageWindow> tier_outages;

  /// True when any fault class can fire.
  bool any() const;

  /// Convenience: every probabilistic rate set to `rate` (no stockouts).
  /// Deliberately leaves the checkpoint-plane rates (bit_rot_rate,
  /// torn_write_rate) at zero: uniform() predates the data plane and
  /// seeded goldens depend on its draw sequence staying fixed.
  static FaultPlan uniform(double rate);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Turns a FaultPlan into deterministic injection decisions and counts
/// what it injected (also mirrored to obs as faults.injected_total{kind}
/// when a registry is installed). Each decision method is meant to be
/// called exactly once per injection site; call order within one
/// simulation is deterministic, so so are the draws.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, util::Rng rng);

  /// Decision points (each counts on injection).
  bool launch_error();
  bool stocked_out(cloud::Region region, cloud::GpuType gpu, double now);
  bool upload_error();
  /// Returns the duration multiplier for one upload (1.0 = not slowed).
  double upload_slowdown();
  bool restore_error();
  bool abrupt_kill();
  /// One burst-sweep draw per in-scope instance: does this one die?
  /// Fractions 0 and 1 short-circuit without touching the storm stream.
  bool storm_kill(double kill_fraction);
  /// Checkpoint-plane decisions, drawn once per committed blob (write
  /// order is deterministic, so so are the draws). Own streams so
  /// enabling the data plane never perturbs the legacy fault sequences.
  bool bit_rot();
  bool torn_write();
  /// Deterministic tier-outage check (no draw), counts on first match.
  bool tier_outage(cloud::StorageTier tier, double now);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t injected(FaultKind kind) const;
  std::uint64_t injected_total() const;

 private:
  bool draw(util::Rng& stream, double probability, FaultKind kind);
  void count(FaultKind kind);

  FaultPlan plan_;
  // One independent stream per probabilistic fault class (see header
  // comment for why they are not shared).
  util::Rng launch_rng_;
  util::Rng upload_rng_;
  util::Rng slowdown_rng_;
  util::Rng restore_rng_;
  util::Rng kill_rng_;
  util::Rng storm_rng_;
  util::Rng bitrot_rng_;
  util::Rng torn_rng_;
  std::array<std::uint64_t, kFaultKindCount> counts_{};
};

}  // namespace cmdare::faults
