#include "simcore/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace cmdare::simcore {

void Simulator::require_schedulable_time(SimTime when) const {
  if (!(when >= now_)) {  // also rejects NaN
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  if (!std::isfinite(when)) {
    throw std::invalid_argument("Simulator::schedule_at: non-finite time");
  }
}

void Simulator::require_non_negative_delay(SimTime delay) const {
  if (!(delay >= 0.0)) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
}

void Simulator::require_valid_period(SimTime period) const {
  if (!(period > 0.0) || !std::isfinite(period)) {
    throw std::invalid_argument(
        "Simulator::schedule_every: period must be positive and finite");
  }
}

EventHandle Simulator::schedule_at(SimTime when, std::nullptr_t,
                                   const char*) {
  require_schedulable_time(when);
  throw std::invalid_argument("Simulator::schedule_at: empty callback");
}

EventHandle Simulator::schedule_after(SimTime delay, std::nullptr_t,
                                      const char*) {
  require_non_negative_delay(delay);
  throw std::invalid_argument("Simulator::schedule_at: empty callback");
}

void Simulator::schedule_every(SimTime period, std::nullptr_t, const char*) {
  require_valid_period(period);
  throw std::invalid_argument("Simulator::schedule_every: empty callback");
}

Simulator::SlotRef Simulator::lease_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return SlotRef{idx, slot(idx).gen};
  }
  if (slot_count_ == slabs_.size() * kSlabSize) {
    // Default-init (not value-init): Slot's member initializers run, but
    // the 48-byte inline buffers are left untouched.
    slabs_.emplace_back(new Slot[kSlabSize]);
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(slot_count_++);
  return SlotRef{idx, 0};  // fresh slots start at generation 0
}

void Simulator::release_slot(std::uint32_t idx) {
  Slot& s = slot(idx);
  s.fn.reset();
  s.tag = nullptr;
  s.period = 0.0;
  ++s.gen;  // invalidates every queue entry and handle stamped with the
            // previous generation
  free_.push_back(idx);
}

bool Simulator::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (!slot_live(slot, gen)) return false;
  release_slot(slot);
  --live_;
  return true;
}

void Simulator::enqueue(SimTime when, SlotRef ref, const char* tag) {
  insert(QEntry{when, next_sequence_++, ref.slot, ref.gen});
  ++live_;
  if (observer_ != nullptr) observer_->on_schedule(when, tag, live_);
}

void Simulator::insert(const QEntry& entry) {
  // Placement is a monotone function of `when` (rung < near buckets in
  // index order < far), which is what keeps the per-bucket ordering
  // equivalent to the global (when, seq) order.
  if (entry.when < active_end_ || entry.when < near_start_) {
    // Binary-insert into the undrained part of the rung. The new entry
    // has the largest sequence number, so upper_bound on (when, seq)
    // places it after every equal-time entry — insertion order preserved.
    active_.insert(std::upper_bound(active_.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            active_pos_),
                                    active_.end(), entry, Earlier{}),
                   entry);
  } else if (entry.when < near_end_ && next_bucket_ < kNearBuckets) {
    std::size_t idx = static_cast<std::size_t>((entry.when - near_start_) *
                                               inv_bucket_width_);
    // Clamp against float rounding at bucket boundaries: never place into
    // an already-drained bucket or past the end.
    if (idx < next_bucket_) idx = next_bucket_;
    if (idx >= kNearBuckets) idx = kNearBuckets - 1;
    buckets_[idx].push_back(entry);
  } else {
    far_.push_back(entry);
  }
}

bool Simulator::settle_front() {
  for (;;) {
    while (active_pos_ < active_.size()) {
      const QEntry& top = active_[active_pos_];
      if (slot(top.slot).gen == top.gen) return true;
      // Stale (cancelled) entry: discard without advancing the clock.
      ++active_pos_;
    }
    active_.clear();  // keeps capacity for the next activation swap
    active_pos_ = 0;
    std::size_t k = next_bucket_;
    while (k < kNearBuckets && buckets_[k].empty()) ++k;
    if (k < kNearBuckets) {
      // Activate bucket k into the rung; ordering is established lazily
      // here, once per bucket, instead of on every insert. Buckets filled
      // straight from a far-tier reseed (or by in-order schedules) are
      // already in (when, seq) order — one linear is_sorted pass then
      // beats introsort's n·log n compares, and tie-heavy workloads hit
      // that path almost every activation.
      active_.swap(buckets_[k]);
      if (!std::is_sorted(active_.begin(), active_.end(), Earlier{})) {
        std::sort(active_.begin(), active_.end(), Earlier{});
      }
      next_bucket_ = k + 1;
      active_end_ =
          near_start_ + static_cast<SimTime>(next_bucket_) * bucket_width_;
      continue;
    }
    next_bucket_ = kNearBuckets;
    if (!reseed_from_far()) {
      reset_ladder();
      return false;
    }
  }
}

bool Simulator::reseed_from_far() {
  // Compact stale entries out while measuring the span of pending times.
  std::size_t kept = 0;
  SimTime lo = kTimeInfinity;
  SimTime hi = -kTimeInfinity;
  for (const QEntry& entry : far_) {
    if (slot(entry.slot).gen != entry.gen) continue;
    far_[kept++] = entry;
    lo = std::min(lo, entry.when);
    hi = std::max(hi, entry.when);
  }
  far_.resize(kept);
  if (kept == 0) return false;
  near_start_ = lo;
  bucket_width_ = hi > lo
                      ? (hi - lo) / static_cast<SimTime>(kNearBuckets)
                      : 1.0;
  if (!(bucket_width_ > 0.0)) bucket_width_ = 1.0;  // subnormal span guard
  inv_bucket_width_ = 1.0 / bucket_width_;
  near_end_ = near_start_ + static_cast<SimTime>(kNearBuckets) * bucket_width_;
  next_bucket_ = 0;
  active_end_ = near_start_;
  for (const QEntry& entry : far_) {
    std::size_t idx = static_cast<std::size_t>((entry.when - near_start_) *
                                               inv_bucket_width_);
    if (idx >= kNearBuckets) idx = kNearBuckets - 1;
    buckets_[idx].push_back(entry);
  }
  far_.clear();  // keeps capacity — the far tier stays allocation-free
  return true;
}

void Simulator::reset_ladder() {
  near_start_ = -kTimeInfinity;
  near_end_ = -kTimeInfinity;
  active_end_ = -kTimeInfinity;
  bucket_width_ = 1.0;
  inv_bucket_width_ = 1.0;
  next_bucket_ = kNearBuckets;
}

Simulator::QEntry Simulator::pop_front() { return active_[active_pos_++]; }

void Simulator::fire(const QEntry& entry) {
  Slot& s = slot(entry.slot);
  const char* tag = s.tag;
  const SimTime period = s.period;
  // Move the callable out before invoking: for one-shots the slot is
  // released below, so a callback that schedules may re-lease this very
  // slot while its closure is still executing.
  InlineFn<bool> fn = std::move(s.fn);
  if (period <= 0.0) release_slot(entry.slot);
  now_ = entry.when;
  ++fired_;
  --live_;
  if (observer_ != nullptr) {
    const auto start = std::chrono::steady_clock::now();
    const bool keep = fn();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    finish_periodic(entry, period, keep, std::move(fn), tag);
    observer_->on_fire(entry.when, tag, live_, wall.count());
  } else {
    const bool keep = fn();
    finish_periodic(entry, period, keep, std::move(fn), tag);
  }
}

void Simulator::finish_periodic(const QEntry& entry, SimTime period,
                                bool keep, InlineFn<bool> fn,
                                const char* tag) {
  if (period <= 0.0) return;  // one-shot: slot already released
  if (keep) {
    // Re-enqueue after the tick body ran, so schedules made inside the
    // tick get earlier sequence numbers than the next tick — the same
    // interleaving the old self-rescheduling implementation produced.
    slot(entry.slot).fn = std::move(fn);
    enqueue(now_ + period, SlotRef{entry.slot, entry.gen}, tag);
  } else {
    release_slot(entry.slot);
  }
}

bool Simulator::fire_next() {
  if (!settle_front()) return false;
  const QEntry entry = pop_front();
  fire(entry);
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (fire_next()) ++count;
  return count;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  if (!(deadline >= now_)) {
    throw std::invalid_argument("Simulator::run_until: deadline in the past");
  }
  std::uint64_t count = 0;
  while (settle_front()) {
    if (active_[active_pos_].when > deadline) break;
    fire(pop_front());
    ++count;
  }
  now_ = std::max(now_, deadline);
  return count;
}

bool Simulator::step() { return fire_next(); }

}  // namespace cmdare::simcore
