#include "simcore/simulator.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

namespace cmdare::simcore {

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

bool EventHandle::cancel() {
  if (!pending()) return false;
  state_->cancelled = true;
  if (state_->tombstones) ++*state_->tombstones;
  return true;
}

EventHandle Simulator::schedule_at(SimTime when, std::function<void()> fn,
                                   const char* tag) {
  if (!(when >= now_)) {  // also rejects NaN
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  if (!std::isfinite(when)) {
    throw std::invalid_argument("Simulator::schedule_at: non-finite time");
  }
  if (!fn) {
    throw std::invalid_argument("Simulator::schedule_at: empty callback");
  }
  maybe_compact();
  auto state = std::make_shared<EventHandle::State>();
  state->tombstones = tombstones_;
  queue_.push(Entry{when, next_sequence_++, std::move(fn), state, tag});
  if (observer_) observer_->on_schedule(when, tag, queue_.size());
  return EventHandle(std::move(state));
}

EventHandle Simulator::schedule_after(SimTime delay, std::function<void()> fn,
                                      const char* tag) {
  if (!(delay >= 0.0)) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn), tag);
}

namespace {

/// Self-rescheduling callback behind schedule_every. Copyable (the
/// simulator's std::function requires it); the predicate is shared so
/// every generation reschedules the same underlying state.
struct PeriodicTick {
  Simulator* sim;
  SimTime period;
  std::shared_ptr<std::function<bool()>> fn;
  const char* tag;

  void operator()() const {
    if (!(*fn)()) return;
    sim->schedule_after(period, *this, tag);
  }
};

}  // namespace

void Simulator::schedule_every(SimTime period, std::function<bool()> fn,
                               const char* tag) {
  if (!(period > 0.0) || !std::isfinite(period)) {
    throw std::invalid_argument(
        "Simulator::schedule_every: period must be positive and finite");
  }
  if (!fn) {
    throw std::invalid_argument("Simulator::schedule_every: empty callback");
  }
  PeriodicTick tick{this, period,
                    std::make_shared<std::function<bool()>>(std::move(fn)),
                    tag};
  schedule_after(period, std::move(tick), tag);
}

bool Simulator::fire_next() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the entry must be copied out before
    // pop. The callback is moved via const_cast, which is safe because the
    // entry is popped immediately and never compared again.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (entry.state->cancelled) {
      drop_tombstone();
      continue;
    }
    now_ = entry.when;
    entry.state->fired = true;
    ++fired_;
    if (observer_) {
      const auto start = std::chrono::steady_clock::now();
      entry.fn();
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - start;
      observer_->on_fire(entry.when, entry.tag, queue_.size(), wall.count());
    } else {
      entry.fn();
    }
    return true;
  }
  return false;
}

std::uint64_t Simulator::run() {
  std::uint64_t count = 0;
  while (fire_next()) ++count;
  return count;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  if (!(deadline >= now_)) {
    throw std::invalid_argument("Simulator::run_until: deadline in the past");
  }
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    // Skip tombstones at the head without advancing time.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      drop_tombstone();
      continue;
    }
    if (queue_.top().when > deadline) break;
    if (fire_next()) ++count;
  }
  now_ = std::max(now_, deadline);
  return count;
}

bool Simulator::step() { return fire_next(); }

void Simulator::compact() {
  if (*tombstones_ == 0) return;
  std::vector<Entry> live;
  live.reserve(queue_.size() - static_cast<std::size_t>(*tombstones_));
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (!entry.state->cancelled) live.push_back(std::move(entry));
  }
  // Every cancelled entry in the queue was counted exactly once (cancel()
  // only counts pending entries, and popped entries can never be
  // cancelled afterwards), so the tally is now clean.
  *tombstones_ = 0;
  queue_ = decltype(queue_)(Later{}, std::move(live));
}

void Simulator::maybe_compact() {
  if (*tombstones_ * 2 > queue_.size()) compact();
}

}  // namespace cmdare::simcore
