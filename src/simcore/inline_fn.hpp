// Small-buffer type-erased callable for the event engine.
//
// The engine used to store every callback in a std::function<void()>,
// whose capture state spills to the heap past ~16 bytes — one allocation
// per scheduled event. InlineFn is the replacement: a move-only callable
// with 48 bytes of inline storage (enough for every hot-path capture in
// this repo: `this` + a couple of ids + a double or two), falling back to
// a single heap allocation only for oversized or throwing-move captures.
// Steady-state event dispatch therefore allocates nothing.
//
// The ops table carries a `relocate` operation (move-construct into a new
// address + destroy the source) because the engine stores InlineFn inside
// a growable slot arena: when the arena's vector reallocates, inline
// payloads must be moved bytewise-safely via their own move constructor,
// not memcpy'd.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace cmdare::simcore {

template <typename R>
class InlineFn {
 public:
  /// Captures up to this many bytes stay inline (no heap traffic).
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroys any current payload and constructs `fn` in place — the
  /// engine's hot path, avoiding the temporary + relocate of move-assign.
  template <typename F>
  void assign(F&& fn) {
    reset();
    emplace(std::forward<F>(fn));
  }

  /// Invokes the stored callable. Undefined if empty (the engine only
  /// invokes slots it has populated).
  R operator()() { return ops_->invoke(buf_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename T>
  static constexpr bool kFitsInline =
      sizeof(T) <= kInlineBytes && alignof(T) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<T>;

  template <typename T>
  static R invoke_inline(void* s) {
    return (*static_cast<T*>(s))();
  }
  template <typename T>
  static void relocate_inline(void* from, void* to) noexcept {
    T* src = static_cast<T*>(from);
    ::new (to) T(std::move(*src));
    src->~T();
  }
  template <typename T>
  static void destroy_inline(void* s) noexcept {
    static_cast<T*>(s)->~T();
  }

  // Heap fallback: the buffer holds a single T* and relocation is a
  // pointer copy.
  template <typename T>
  static R invoke_heap(void* s) {
    T* p;
    std::memcpy(&p, s, sizeof(p));
    return (*p)();
  }
  template <typename T>
  static void relocate_heap(void* from, void* to) noexcept {
    std::memcpy(to, from, sizeof(T*));
  }
  template <typename T>
  static void destroy_heap(void* s) noexcept {
    T* p;
    std::memcpy(&p, s, sizeof(p));
    delete p;
  }

  template <typename T>
  static const Ops* inline_ops() {
    static constexpr Ops ops{&invoke_inline<T>, &relocate_inline<T>,
                             &destroy_inline<T>};
    return &ops;
  }
  template <typename T>
  static const Ops* heap_ops() {
    static constexpr Ops ops{&invoke_heap<T>, &relocate_heap<T>,
                             &destroy_heap<T>};
    return &ops;
  }

  template <typename F>
  void emplace(F&& fn) {
    using T = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, T&>,
                  "InlineFn: callable has the wrong signature");
    if constexpr (kFitsInline<T>) {
      ::new (static_cast<void*>(buf_)) T(std::forward<F>(fn));
      ops_ = inline_ops<T>();
    } else {
      T* p = new T(std::forward<F>(fn));
      std::memcpy(buf_, &p, sizeof(p));
      ops_ = heap_ops<T>();
    }
  }

  void move_from(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace cmdare::simcore
