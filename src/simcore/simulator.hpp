// Discrete-event simulation engine.
//
// Everything time-dependent in this repository — instance lifecycles,
// revocations, training steps, parameter-server queues, checkpoint uploads —
// runs on this engine. It is a classic calendar-queue simulator:
//
//   * time is a double in seconds since simulation start;
//   * events are callbacks scheduled at absolute or relative times;
//   * scheduling returns an EventHandle that can cancel the event
//     (cancellation is O(1): the entry is tombstoned, not removed);
//   * ties are broken by insertion order, so runs are fully deterministic.
//
// The engine is single-threaded by design: determinism and replayability
// matter more for a measurement-reproduction study than wall-clock speed,
// and the workloads here are small (thousands of servers, millions of
// events) — see bench_micro_sim for throughput numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <vector>

#include "simcore/observer.hpp"

namespace cmdare::simcore {

/// Simulated time in seconds.
using SimTime = double;

constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

/// Identifies a scheduled event for cancellation.
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is scheduled and not yet fired or cancelled.
  bool pending() const;
  /// Cancels the event; returns false if it already fired or was cancelled.
  bool cancel();

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool fired = false;
    /// The owning simulator's tombstone tally (shared, not owned, so a
    /// handle outliving its simulator stays safe). cancel() bumps it and
    /// the simulator decrements as tombstones are popped or compacted.
    std::shared_ptr<std::uint64_t> tombstones;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now, or it throws).
  /// `tag` is an optional callsite tag for the profiling observer; it must
  /// be a string literal (the engine keeps only the pointer).
  EventHandle schedule_at(SimTime when, std::function<void()> fn,
                          const char* tag = nullptr);
  /// Schedules `fn` `delay` seconds from now (delay >= 0, finite).
  EventHandle schedule_after(SimTime delay, std::function<void()> fn,
                             const char* tag = nullptr);

  /// Periodic event: fires `fn` every `period` seconds (first firing at
  /// now + period) until `fn` returns false. period must be positive and
  /// finite. The recurrence owns itself — each firing schedules the next
  /// — so a tick that wants to stop returns false instead of cancelling
  /// a handle; this is what keeps run() terminating once the periodic
  /// work (e.g. a market tick with no tenants left) declares itself done.
  void schedule_every(SimTime period, std::function<bool()> fn,
                      const char* tag = nullptr);

  /// Runs until the event queue empties. Returns the number of events fired.
  std::uint64_t run();
  /// Runs until the queue empties or simulated time would exceed
  /// `deadline`; events strictly after the deadline remain queued and
  /// now() is advanced to the deadline.
  std::uint64_t run_until(SimTime deadline);
  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  /// Events currently queued (including tombstoned ones).
  std::size_t queued_events() const { return queue_.size(); }
  /// Cancelled events still occupying queue slots.
  std::uint64_t tombstoned_events() const { return *tombstones_; }
  /// Total events fired since construction.
  std::uint64_t events_fired() const { return fired_; }

  /// Drops every tombstoned entry (and its captured std::function state)
  /// from the queue. Live-event ordering is unaffected: the comparator
  /// keys on (when, sequence), both preserved by the rebuild. schedule_at
  /// calls this automatically once tombstones exceed half the queue, so
  /// churny runs (cancel-heavy resilience campaigns) do not carry dead
  /// callbacks to the end; it is public for callers that want the memory
  /// back at a specific point.
  void compact();

  /// Registers a profiling observer (nullptr removes it). The observer is
  /// not owned and must outlive the simulator or be removed first. With no
  /// observer the engine skips all instrumentation (one branch per event).
  void set_observer(SimObserver* observer) { observer_ = observer; }
  SimObserver* observer() const { return observer_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t sequence;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
    const char* tag;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  bool fire_next();
  void maybe_compact();
  /// Bookkeeping for a cancelled entry leaving the queue.
  void drop_tombstone() {
    if (*tombstones_ > 0) --*tombstones_;
  }

  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t fired_ = 0;
  SimObserver* observer_ = nullptr;
  /// Count of cancelled-but-still-queued entries; shared with every
  /// EventHandle::State so cancel() can bump it without a back-pointer.
  std::shared_ptr<std::uint64_t> tombstones_ =
      std::make_shared<std::uint64_t>(0);
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace cmdare::simcore
