// Discrete-event simulation engine.
//
// Everything time-dependent in this repository — instance lifecycles,
// revocations, training steps, parameter-server queues, checkpoint uploads —
// runs on this engine. It is a two-tier ladder/calendar queue over a slab
// arena of event records:
//
//   * time is a double in seconds since simulation start;
//   * events are callbacks scheduled at absolute or relative times; the
//     callable lives in a recycled arena slot (small captures stay inline —
//     see inline_fn.hpp — so steady-state dispatch allocates nothing);
//   * pending events sit in one of three places: the *active rung* (a
//     sorted array holding the batch currently being drained — pops just
//     advance a cursor; mid-drain arrivals binary-insert), one of
//     kNearBuckets *near buckets* (unsorted vectors covering
//     [near_start_, near_end_) in equal widths, ordered lazily when a
//     bucket is activated into the rung), or the *far tier* (one unsorted
//     vector for everything at or past near_end_). When the near tier
//     drains, the far tier is re-bucketed across the span of its pending
//     times. Queue entries are 24-byte PODs; amortized cost per event is
//     O(log bucket-occupancy), not O(log total);
//   * the firing order is the total order (when, sequence): ties are broken
//     by insertion sequence, so runs are fully deterministic — the ladder
//     is an implementation detail that must never reorder equal-time
//     events. Bucket placement is a monotone function of `when`, which is
//     what makes the per-bucket sort equivalent to a global sort;
//   * scheduling returns an EventHandle identifying the arena slot by
//     (index, generation). Cancellation is tombstone-free: cancel()
//     releases the slot immediately (bumping its generation), and the
//     stale queue entry is discarded when it surfaces because its recorded
//     generation no longer matches the slot. A stale handle — fired,
//     cancelled, or its slot since re-leased — reports not-pending via the
//     same generation check. Handles are trivially copyable but must not
//     outlive the simulator that issued them.
//
// The engine is single-threaded by design: determinism and replayability
// matter more for a measurement-reproduction study than parallel dispatch.
// Throughput still matters — campaign sweeps run millions of events per
// replica — which is what this design buys; see bench_micro_sim and
// BENCH_micro.json for the numbers.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "simcore/inline_fn.hpp"
#include "simcore/observer.hpp"

namespace cmdare::simcore {

/// Simulated time in seconds.
using SimTime = double;

constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::infinity();

class Simulator;

/// Identifies a scheduled event for cancellation: the arena slot index plus
/// the generation the slot had when the event was scheduled. Fired or
/// cancelled events release their slot and bump its generation, so a stale
/// handle (even one whose slot has been re-leased to a newer event) reports
/// not-pending. Handles do not keep the simulator alive — do not use one
/// after its simulator is destroyed.
class EventHandle {
 public:
  EventHandle() = default;

  /// True while the event is scheduled and not yet fired or cancelled.
  bool pending() const;
  /// Cancels the event; returns false if it already fired or was cancelled.
  bool cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint32_t gen)
      : sim_(sim), slot_(slot), gen_(gen) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when` (>= now, or it throws).
  /// `tag` is an optional callsite tag for the profiling observer; it must
  /// be a string literal (the engine keeps only the pointer). Captures up
  /// to InlineFn<bool>::kInlineBytes stay inline in the arena slot — no
  /// heap allocation.
  template <typename Fn>
  EventHandle schedule_at(SimTime when, Fn&& fn, const char* tag = nullptr) {
    require_schedulable_time(when);
    require_non_empty(fn, "Simulator::schedule_at: empty callback");
    const SlotRef ref = lease_slot();
    Slot& s = slot(ref.slot);
    s.fn.assign(Once<std::decay_t<Fn>>{std::forward<Fn>(fn)});
    s.period = 0.0;
    s.tag = tag;
    enqueue(when, ref, tag);
    return EventHandle(this, ref.slot, ref.gen);
  }
  EventHandle schedule_at(SimTime when, std::nullptr_t,
                          const char* tag = nullptr);

  /// Schedules `fn` `delay` seconds from now (delay >= 0, finite).
  template <typename Fn>
  EventHandle schedule_after(SimTime delay, Fn&& fn,
                             const char* tag = nullptr) {
    require_non_negative_delay(delay);
    return schedule_at(now_ + delay, std::forward<Fn>(fn), tag);
  }
  EventHandle schedule_after(SimTime delay, std::nullptr_t,
                             const char* tag = nullptr);

  /// Periodic event: fires `fn` every `period` seconds (first firing at
  /// now + period) until `fn` returns false. period must be positive and
  /// finite. The recurrence owns its arena slot for its whole lifetime —
  /// each firing re-enqueues the same slot — so a tick that wants to stop
  /// returns false instead of cancelling a handle; this is what keeps
  /// run() terminating once the periodic work (e.g. a market tick with no
  /// tenants left) declares itself done.
  template <typename Fn>
  void schedule_every(SimTime period, Fn&& fn, const char* tag = nullptr) {
    require_valid_period(period);
    require_non_empty(fn, "Simulator::schedule_every: empty callback");
    const SlotRef ref = lease_slot();
    Slot& s = slot(ref.slot);
    s.fn.assign(std::forward<Fn>(fn));
    s.period = period;
    s.tag = tag;
    enqueue(now_ + period, ref, tag);
  }
  void schedule_every(SimTime period, std::nullptr_t,
                      const char* tag = nullptr);

  /// Runs until the event queue empties. Returns the number of events fired.
  std::uint64_t run();
  /// Runs until the queue empties or simulated time would exceed
  /// `deadline`; events strictly after the deadline remain queued and
  /// now() is advanced to the deadline.
  std::uint64_t run_until(SimTime deadline);
  /// Fires exactly one event if any is pending; returns whether one fired.
  bool step();

  /// Events currently scheduled and neither fired nor cancelled.
  /// (Cancellation releases the slot immediately — there is no tombstone
  /// residue to count.)
  std::size_t queued_events() const { return live_; }
  /// Total events fired since construction.
  std::uint64_t events_fired() const { return fired_; }
  /// High-water mark of the slot arena (slots are recycled through a free
  /// list, so this is the peak number of simultaneously pending events,
  /// not a running total). Exposed for tests and benches that pin the
  /// zero-allocation steady state.
  std::size_t arena_slots() const { return slot_count_; }

  /// Registers a profiling observer (nullptr removes it). The observer is
  /// not owned and must outlive the simulator or be removed first. With no
  /// observer the engine skips all instrumentation (one branch per event).
  void set_observer(SimObserver* observer) { observer_ = observer; }
  SimObserver* observer() const { return observer_; }

 private:
  friend class EventHandle;

  /// Adapts a void() callback to the slot's uniform bool() payload: a
  /// one-shot firing never re-enqueues.
  template <typename F>
  struct Once {
    F fn;
    bool operator()() {
      fn();
      return false;
    }
  };

  /// One arena slot: the callable payload plus the generation that stamps
  /// every queue entry and handle referring to the current lease.
  /// Metadata leads so generation probes and fire dispatch read the
  /// slot's first cache line; the capture buffer trails.
  struct Slot {
    std::uint32_t gen = 0;
    SimTime period = 0.0;  // 0 = one-shot
    const char* tag = nullptr;
    InlineFn<bool> fn;
  };

  /// POD queue entry. `gen` is compared against the slot's current
  /// generation when the entry surfaces; a mismatch means the event was
  /// cancelled (or, for the far tier, already re-bucketed) and the entry
  /// is dropped without firing.
  struct QEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Ascending (when, seq) order — the rung is sorted with this, so the
  /// next event to fire is at the drain cursor; ties break by insertion
  /// sequence.
  struct Earlier {
    bool operator()(const QEntry& a, const QEntry& b) const {
      if (a.when != b.when) return a.when < b.when;
      return a.seq < b.seq;
    }
  };

  struct SlotRef {
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::size_t kNearBuckets = 256;

  void require_schedulable_time(SimTime when) const;
  void require_non_negative_delay(SimTime delay) const;
  void require_valid_period(SimTime period) const;
  template <typename F>
  static void require_non_empty(const F& fn, const char* what) {
    // Catches empty std::function / null function pointers; stateful
    // lambdas are not bool-testable and skip the check.
    if constexpr (std::is_constructible_v<bool, const F&>) {
      if (!static_cast<bool>(fn)) throw std::invalid_argument(what);
    }
  }

  SlotRef lease_slot();
  void release_slot(std::uint32_t slot);
  Slot& slot(std::uint32_t idx) {
    return slabs_[idx >> kSlabBits][idx & (kSlabSize - 1)];
  }
  const Slot& slot(std::uint32_t idx) const {
    return slabs_[idx >> kSlabBits][idx & (kSlabSize - 1)];
  }
  bool slot_live(std::uint32_t idx, std::uint32_t gen) const {
    return idx < slot_count_ && slot(idx).gen == gen;
  }
  bool cancel_slot(std::uint32_t slot, std::uint32_t gen);

  void enqueue(SimTime when, SlotRef ref, const char* tag);
  void insert(const QEntry& entry);
  /// Skips stale entries until the ladder's front is a live event (false
  /// when nothing is pending). Activates buckets / re-buckets the far tier
  /// as needed; never advances the clock.
  bool settle_front();
  bool reseed_from_far();
  void reset_ladder();
  QEntry pop_front();
  void fire(const QEntry& entry);
  void finish_periodic(const QEntry& entry, SimTime period, bool keep,
                       InlineFn<bool> fn, const char* tag);
  bool fire_next();

  SimTime now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;
  SimObserver* observer_ = nullptr;

  // Slot arena: fixed-size slabs keep slot addresses stable (growing the
  // arena never relocates a live callable), and free_ is a LIFO of
  // released indices so hot slots stay cache-warm. slot_count_ is the
  // high-water mark of pending events.
  static constexpr std::size_t kSlabBits = 9;
  static constexpr std::size_t kSlabSize = std::size_t{1} << kSlabBits;
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::size_t slot_count_ = 0;
  std::vector<std::uint32_t> free_;

  // Ladder. Unconfigured state (all boundaries -inf, next_bucket_ past the
  // end) routes every insert to the far tier; the first pop re-buckets.
  std::vector<QEntry> active_;  // the current rung, sorted ascending and
                                // drained by advancing active_pos_
  std::size_t active_pos_ = 0;
  std::vector<QEntry> buckets_[kNearBuckets];
  std::vector<QEntry> far_;
  SimTime near_start_ = -kTimeInfinity;
  SimTime near_end_ = -kTimeInfinity;
  SimTime active_end_ = -kTimeInfinity;  // inserts below this join the rung
  SimTime bucket_width_ = 1.0;
  SimTime inv_bucket_width_ = 1.0;  // placement multiplies, never divides
  std::size_t next_bucket_ = kNearBuckets;
};

inline bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->slot_live(slot_, gen_);
}

inline bool EventHandle::cancel() {
  return sim_ != nullptr && sim_->cancel_slot(slot_, gen_);
}

}  // namespace cmdare::simcore
