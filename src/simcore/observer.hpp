// Simulator profiling hook.
//
// An observer registered on a Simulator sees every schedule and fire,
// together with the callsite tag the scheduling code supplied (a static
// string naming the kind of event: "worker.compute", "ps.apply", ...),
// the queue depth at that moment, and the host wall-clock time spent in
// the fired callback. This is how bench_micro_obs and the obs::SimProfiler
// attribute engine time to subsystems without the engine knowing anything
// about them. When no observer is registered the engine pays nothing
// beyond one branch per event.
#pragma once

#include <cstddef>

namespace cmdare::simcore {

/// Simulated time in seconds (mirrors simulator.hpp; kept here so the
/// observer interface can be included on its own).
using SimTime = double;

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// An event was scheduled at absolute time `when`. `tag` is the callsite
  /// tag or nullptr for untagged events; `queue_depth` includes the new
  /// entry. Tags must be string literals (the engine stores the pointer).
  virtual void on_schedule(SimTime when, const char* tag,
                           std::size_t queue_depth) = 0;

  /// An event callback returned. `wall_seconds` is the host CPU wall time
  /// the callback took; `queue_depth` is the depth after popping the event
  /// (callbacks may have pushed more).
  virtual void on_fire(SimTime at, const char* tag, std::size_t queue_depth,
                       double wall_seconds) = 0;
};

}  // namespace cmdare::simcore
