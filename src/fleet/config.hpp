// Fleet-layer configuration: the knobs of the multi-tenant market sim.
//
// One FleetConfig describes an entire tenant population (how many jobs,
// how much work each carries, how many workers it wants) plus the market
// it trades in (per-pool capacity, demand-driven pricing, the time-of-day
// supply dip) and the global scheduler policy placing the jobs. The
// scenario layer maps every field to a `fleet.*` spec key, so all of
// them are sweepable by run_scenario_campaign.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cmdare::fleet {

/// Global placement policy of the FleetScheduler.
enum class SchedulerPolicy {
  /// Naive baseline: the next pool (in fixed enumeration order) with
  /// room. Price- and speed-blind — what a quota-only placer does.
  kRoundRobin,
  /// Eq. 4-aware: picks the pool minimizing expected $/step — billed
  /// rate over useful step rate, inflated by the pool's observed
  /// waste ratio — and migrates jobs when another pool gets cheaper.
  kCostOptimal,
};

/// Stable text tokens ("round-robin" / "cost-optimal") for the spec codec.
const char* scheduler_policy_name(SchedulerPolicy policy);
bool scheduler_policy_from_name(std::string_view name, SchedulerPolicy* out);

struct FleetConfig {
  // --- tenant population ---
  int tenants = 16;
  /// Demand-intensity multiplier applied to every tenant's drawn work
  /// volume: aggregate GPU-hours demanded against the fixed supply (the
  /// sweep axis that drives endogenous revocations up). Scaling work
  /// rather than worker count keeps placement granularity constant
  /// across the sweep, so contention — not quantization — moves.
  double demand = 1.0;
  int workers_per_tenant = 2;
  /// Per-tenant work target, drawn uniformly from [min_steps, max_steps].
  long min_steps = 400;
  long max_steps = 2000;
  /// Durable progress granularity: an evicted tenant restarts from the
  /// last multiple of this (0 = no checkpoints, evictions lose all work).
  long checkpoint_interval_steps = 100;
  /// Wall-clock cost of writing one checkpoint / restoring after a move.
  double checkpoint_seconds = 10.0;
  double restore_seconds = 30.0;
  /// Deadline (from t=0) every tenant is scored against.
  double deadline_hours = 8.0;
  /// Draw each tenant's model from the canonical zoo instead of using
  /// the scenario's single model (heterogeneous $/step across GPUs).
  bool model_mix = false;

  // --- market ---
  /// Transient slots per measured (region, GPU) pool.
  int capacity_per_pool = 12;
  /// Spot multiplier = 1 + sensitivity * utilization^exponent.
  double price_sensitivity = 1.0;
  double price_exponent = 2.0;
  /// Fractional supply shrink at the local-afternoon demand peak; the
  /// provider reclaims capacity from the fleet when the dip undercuts
  /// live instances.
  double capacity_dip = 0.25;
  /// Tenant bids are drawn from [1, 1 + bid_spread]; a pool whose spot
  /// multiplier exceeds a tenant's bid prices that tenant out.
  double bid_spread = 0.5;
  double market_period_s = 60.0;

  // --- scheduler ---
  SchedulerPolicy scheduler = SchedulerPolicy::kCostOptimal;
  /// Migration cadence (0 = never); cost-optimal only.
  double migrate_period_s = 900.0;
  /// Fractional $/step improvement required before moving a job (the
  /// hysteresis that keeps migration churn bounded).
  double migrate_gain = 0.2;

  /// Keep the provider's hazard-sampled revocations on top of the
  /// market's endogenous ones (off by default: the fleet study isolates
  /// reclaim/price-out dynamics).
  bool hazard_revocations = false;

  friend bool operator==(const FleetConfig&, const FleetConfig&) = default;
};

/// Semantic checks beyond per-key ranges (min <= max, workers fit the
/// dipped pool capacity so pending tenants can always eventually place).
/// Messages are prefixed "fleet." to slot into ScenarioSpec validation.
std::vector<std::string> validate(const FleetConfig& config);

/// A tenant's work target at the config's demand intensity: the drawn
/// [min_steps, max_steps] sample scaled by `demand`, floored at 1.
long effective_steps(const FleetConfig& config, long drawn_steps);

}  // namespace cmdare::fleet
