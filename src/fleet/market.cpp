#include "fleet/market.hpp"

#include <algorithm>
#include <cmath>

namespace cmdare::fleet {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

double FleetMarket::price_multiplier(double utilization) const {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return 1.0 + sensitivity_ * std::pow(u, exponent_);
}

double FleetMarket::supply_fraction(double local_hour) const {
  // Raised cosine with period 24 h: 1 at the peak hour, 0 twelve hours
  // away, so supply = 1 - dip at the peak and exactly 1.0 at the trough.
  const double phase =
      2.0 * kPi * (local_hour - kSupplyDipPeakLocalHour) / 24.0;
  const double cycle = 0.5 * (1.0 + std::cos(phase));
  return 1.0 - capacity_dip_ * cycle;
}

int FleetMarket::capacity_at(int base_capacity, double local_hour) const {
  const double offered =
      static_cast<double>(base_capacity) * supply_fraction(local_hour);
  const int slots = static_cast<int>(std::floor(offered + 1e-9));
  return slots < 1 ? 1 : slots;
}

}  // namespace cmdare::fleet
