// Fleet market mechanics: endogenous pricing and supply.
//
// The paper's characterization treats each job as a price-taker against
// exogenous spot dynamics; the fleet layer closes that loop. FleetMarket
// holds the two deterministic curves the market tick evaluates per
// (region, GPU) pool:
//
//   * price: spot multiplier = 1 + sensitivity * utilization^exponent —
//     a convex demand curve, so a pool near saturation gets expensive
//     fast while a half-empty one stays near list price;
//   * supply: available transient capacity dips below its base level
//     around the local-afternoon on-demand peak (the same time-of-day
//     signal the revocation censuses show), which is what forces the
//     provider to *reclaim* capacity from the fleet.
//
// Both are pure functions of observable state (no RNG), so the market is
// deterministic given the fleet's demand trajectory.
#pragma once

#include "fleet/config.hpp"

namespace cmdare::fleet {

/// Local hour at which the supply dip bottoms out (mid-afternoon, when
/// on-demand business load peaks and preemptible capacity is thinnest).
inline constexpr double kSupplyDipPeakLocalHour = 15.0;

class FleetMarket {
 public:
  explicit FleetMarket(const FleetConfig& config)
      : sensitivity_(config.price_sensitivity),
        exponent_(config.price_exponent),
        capacity_dip_(config.capacity_dip) {}

  /// Spot multiplier at `utilization` (clamped to [0, 1]):
  /// 1 + sensitivity * u^exponent. Always >= 1.
  double price_multiplier(double utilization) const;

  /// Diurnal supply curve: fraction of the base capacity offered at
  /// `local_hour` in [0, 24). 1 - dip at the peak, 1.0 at the trough.
  double supply_fraction(double local_hour) const;

  /// Transient slots a pool offers at `local_hour`: floor(base *
  /// supply_fraction), never below 1 (a pool is never fully withdrawn —
  /// floor-capacity liveness is what fleet::validate checks against).
  int capacity_at(int base_capacity, double local_hour) const;

 private:
  double sensitivity_;
  double exponent_;
  double capacity_dip_;
};

}  // namespace cmdare::fleet
