// FleetSim: N tenant training jobs sharing one market-clearing provider.
//
// The paper measures one job at a time against exogenous revocation
// hazards. The fleet layer closes the loop the measurements hint at:
// many tenants draw from the same finite per-(region, GPU) transient
// pools of ONE CloudProvider on ONE simcore event loop, spot prices rise
// with aggregate utilization (FleetMarket), supply dips each local
// afternoon, and revocations become *endogenous* — the provider reclaims
// slots from the lowest-priority tenants when the dip undercuts live
// instances, and prices tenants out when the multiplier exceeds their
// bid — instead of being sampled from a hazard.
//
// Tenants are modeled analytically: a placed tenant accrues fractional
// steps at a closed-form rate (workers / step-time, shaved by the
// checkpoint duty cycle), so the only simulator events per tenant are
// its placements, market-tick touches, and one cancellable completion
// event. That keeps 256+ concurrent tenants to a few thousand events —
// fleet scale without per-step event storms.
//
// Eviction rolls a tenant back to its last durable checkpoint multiple;
// the lost stretch lands in the ledger (kEviction.seconds) and in the
// per-pool Eq. 4 tallies that the cost-optimal scheduler's quotes are
// inflated by. Everything is deterministic from the seed: tenant i draws
// from rng.fork(i), the market curves are RNG-free, and every sweep/
// placement order is a fixed sort.
#pragma once

#include <string>
#include <vector>

#include "cloud/provider.hpp"
#include "fleet/config.hpp"
#include "fleet/market.hpp"
#include "fleet/scheduler.hpp"
#include "nn/model.hpp"
#include "obs/analyze.hpp"
#include "simcore/simulator.hpp"
#include "util/rng.hpp"

namespace cmdare::fleet {

/// One (region, GPU) transient pool the fleet trades in, in the fixed
/// region-major enumeration order over the measured combinations.
struct FleetPool {
  cloud::Region region;
  cloud::GpuType gpu;
  /// Running Eq. 4 tallies (seconds only) feeding waste_ratio quotes.
  obs::analyze::CostDecomposition cost;
};

enum class TenantState { kPending, kStarting, kRunning, kDone };

/// One tenant training job: immutable draw (work target, priority, bid,
/// model) plus live placement/progress state.
struct TenantJob {
  // --- spec (drawn once from rng.fork(id)) ---
  int id = 0;
  std::string model_name;
  long work_steps = 0;
  int workers = 1;
  int priority = 0;        ///< 0..2; higher survives reclamation longer
  double bid = 1.0;        ///< max spot multiplier the tenant pays
  double deadline_s = 0.0;
  double step_seconds[3] = {0.0, 0.0, 0.0};  ///< per GpuType

  // --- live state ---
  TenantState state = TenantState::kPending;
  int pool = -1;  ///< index into pools() while placed, else -1
  std::vector<cloud::InstanceId> instances;
  int running_workers = 0;
  double progress = 0.0;  ///< fractional steps, durable + accrued
  double anchor = 0.0;    ///< last accrual time
  double gate = 0.0;      ///< accrual blocked before this (restore)
  double rate = 0.0;      ///< steps/s while running
  double ckpt_factor = 1.0;
  simcore::EventHandle completion;
  double finished_at = -1.0;
  int placements = 0;
  int evictions = 0;
  double cost_usd = 0.0;  ///< billed USD of terminated instances
};

/// Fleet-level outcome summary (see FleetSim::stats).
struct FleetStats {
  int tenants = 0;
  int finished = 0;
  int deadline_hits = 0;
  long long completed_steps = 0;  ///< floor of summed progress
  double cost_usd = 0.0;          ///< all tenant instance spend
  long placements = 0;
  long evictions_reclaim = 0;
  long evictions_priceout = 0;
  long evictions_other = 0;  ///< hazard / expiry / launch-failure
  long migrations = 0;
  long evictions_total() const {
    return evictions_reclaim + evictions_priceout + evictions_other;
  }
  double deadline_hit_rate() const {
    return tenants == 0 ? 0.0
                        : static_cast<double>(deadline_hits) / tenants;
  }
  double usd_per_step() const {
    return completed_steps == 0 ? 0.0
                                : cost_usd / static_cast<double>(
                                                 completed_steps);
  }
};

class FleetSim {
 public:
  /// `base_model` is every tenant's workload unless config.model_mix
  /// draws per-tenant models from the canonical zoo. The constructor
  /// draws all tenant specs and configures the provider's pools (and
  /// hazard switch) but schedules nothing until start().
  FleetSim(simcore::Simulator& sim, cloud::CloudProvider& provider,
           const FleetConfig& config, const nn::CnnModel& base_model,
           util::Rng rng);

  /// Evaluates the market once at the current time (initial placement)
  /// and schedules the recurring market / migration ticks. Call once.
  void start();

  bool all_done() const;
  /// Snapshot of fleet outcomes; safe mid-run (progress of running
  /// tenants is extrapolated to now, live instances billed to now).
  FleetStats stats() const;

  const FleetConfig& config() const { return config_; }
  const std::vector<TenantJob>& tenants() const { return tenants_; }
  const std::vector<FleetPool>& pools() const { return pools_; }

 private:
  void tick();
  void migration_pass();
  void placement_pass();
  void schedule_placement_pass();
  void begin_running(TenantJob& job);
  void accrue(TenantJob& job);
  double progress_at_now(const TenantJob& job) const;
  void finish_tenant(TenantJob& job);
  /// Rolls `job` back to its durable checkpoint and releases its
  /// instances ("reclaim"/"priceout" via provider reclamation, anything
  /// else via customer termination). `kind` picks the ledger event
  /// (kEviction vs kMigration).
  void evict_core(TenantJob& job, const char* reason,
                  obs::LedgerEventKind kind);
  void release_instances(TenantJob& job, const char* reason);
  void on_instance_running(int tenant_id);
  void on_instance_revoked(int tenant_id, cloud::InstanceId id);
  void on_request_failed(int tenant_id);
  std::vector<PoolQuote> quotes_for(const TenantJob& job) const;
  double quote_usd_per_step(const TenantJob& job, int pool_index,
                            double price_per_hour) const;
  void place_tenant(TenantJob& job, int pool_index);
  void update_gauges() const;
  void count_eviction(const char* reason);

  simcore::Simulator* sim_;
  cloud::CloudProvider* provider_;
  FleetConfig config_;
  FleetMarket market_;
  FleetScheduler scheduler_;
  util::Rng rng_;
  std::vector<FleetPool> pools_;
  std::vector<TenantJob> tenants_;
  bool started_ = false;
  bool pass_scheduled_ = false;
  long placements_ = 0;
  long evictions_reclaim_ = 0;
  long evictions_priceout_ = 0;
  long evictions_other_ = 0;
  long migrations_ = 0;
};

}  // namespace cmdare::fleet
