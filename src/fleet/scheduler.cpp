#include "fleet/scheduler.hpp"

namespace cmdare::fleet {

namespace {
/// Pseudo-count (seconds) keeping the ratio stable before evidence.
constexpr double kWastePriorSeconds = 3600.0;
}  // namespace

double waste_ratio(const obs::analyze::CostDecomposition& cost) {
  const double useful = cost.useful.seconds + kWastePriorSeconds;
  const double total =
      cost.useful.seconds + cost.wasted.seconds + cost.overhead.seconds +
      kWastePriorSeconds;
  return total / useful;
}

int FleetScheduler::place(const std::vector<PoolQuote>& quotes) {
  if (quotes.empty()) return -1;
  if (policy_ == SchedulerPolicy::kRoundRobin) {
    // First quote at or after the cursor in pool order, wrapping; the
    // cursor then moves past the chosen pool so successive placements
    // rotate even when every pool has room.
    int best = -1;
    int best_pool = -1;
    int first = -1;
    int first_pool = -1;
    for (int i = 0; i < static_cast<int>(quotes.size()); ++i) {
      const int pool = quotes[i].pool_index;
      if (first < 0 || pool < first_pool) {
        first = i;
        first_pool = pool;
      }
      if (pool >= cursor_ && (best < 0 || pool < best_pool)) {
        best = i;
        best_pool = pool;
      }
    }
    if (best < 0) {  // wrapped: everything is below the cursor
      best = first;
      best_pool = first_pool;
    }
    cursor_ = best_pool + 1;
    return best;
  }
  // Cost-optimal: cheapest expected $/step among the quotes the tenant
  // can actually hold (post-entry multiplier within its bid), ties to
  // the lowest pool index so the choice is deterministic.
  int best = -1;
  for (int i = 0; i < static_cast<int>(quotes.size()); ++i) {
    const PoolQuote& q = quotes[i];
    if (!q.affordable) continue;
    if (best < 0) {
      best = i;
      continue;
    }
    const PoolQuote& b = quotes[best];
    if (q.usd_per_step < b.usd_per_step ||
        (q.usd_per_step == b.usd_per_step && q.pool_index < b.pool_index)) {
      best = i;
    }
  }
  return best;
}

}  // namespace cmdare::fleet
