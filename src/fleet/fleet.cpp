#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string_view>

#include "cloud/calibration.hpp"
#include "nn/model_zoo.hpp"
#include "obs/obs.hpp"

namespace cmdare::fleet {

namespace {

/// Quote inflation for placements expected to be priced out at the
/// diurnal supply dip: the rollback-and-restore waste such an eviction
/// costs, expressed as a fraction of the useful spend. Keeps the
/// cost-optimal policy from chasing price troughs it cannot hold.
constexpr double kPriceoutRiskPremium = 0.5;

/// Fraction of wall time spent stepping (vs. checkpointing): with C
/// steps between checkpoints at aggregate rate workers/step_seconds, a
/// checkpoint window lasts C*s/W seconds of compute plus the checkpoint
/// write. 1.0 when checkpointing is off.
double checkpoint_factor(const FleetConfig& config, double step_seconds,
                         int workers) {
  if (config.checkpoint_interval_steps <= 0) return 1.0;
  const double window =
      static_cast<double>(config.checkpoint_interval_steps) * step_seconds /
      static_cast<double>(workers);
  return window / (window + config.checkpoint_seconds);
}

/// Market-initiated evictions go through provider reclamation (a real
/// revocation, with ledger + on_revoked); everything else is the tenant
/// tearing its own instances down.
bool endogenous_reason(const char* reason) {
  const std::string_view r(reason);
  return r == "reclaim" || r == "priceout";
}

/// Victim order for capacity reclamation: lowest priority first, then
/// lowest bid, then highest id — fully deterministic.
bool better_victim(const TenantJob& a, const TenantJob& b) {
  if (a.priority != b.priority) return a.priority < b.priority;
  if (a.bid != b.bid) return a.bid < b.bid;
  return a.id > b.id;
}

bool placed(const TenantJob& job) {
  return job.state == TenantState::kStarting ||
         job.state == TenantState::kRunning;
}

}  // namespace

FleetSim::FleetSim(simcore::Simulator& sim, cloud::CloudProvider& provider,
                   const FleetConfig& config, const nn::CnnModel& base_model,
                   util::Rng rng)
    : sim_(&sim),
      provider_(&provider),
      config_(config),
      market_(config),
      scheduler_(config.scheduler),
      rng_(std::move(rng)) {
  const std::vector<std::string> errors = validate(config_);
  if (!errors.empty()) {
    throw std::invalid_argument("FleetSim: " + errors.front());
  }
  // Fixed pool enumeration: region-major over the measured combinations.
  for (cloud::Region region : cloud::kAllRegions) {
    for (cloud::GpuType gpu : cloud::kAllGpuTypes) {
      if (!cloud::gpu_offered_in_region(region, gpu)) continue;
      pools_.push_back(FleetPool{region, gpu, {}});
    }
  }
  provider_->set_hazard_revocations(config_.hazard_revocations);
  for (const FleetPool& p : pools_) {
    provider_->set_pool_capacity(p.region, p.gpu, config_.capacity_per_pool);
  }
  std::vector<nn::CnnModel> zoo;
  if (config_.model_mix) zoo = nn::canonical_models();
  tenants_.reserve(static_cast<std::size_t>(config_.tenants));
  // One independent stream per tenant, derived in a single batch; each
  // element is bit-identical to rng_.fork(i), so tenant draws are pinned
  // regardless of how many tenants precede them.
  std::vector<util::Rng> draws =
      rng_.fork_batch(0, static_cast<std::size_t>(config_.tenants));
  for (int i = 0; i < config_.tenants; ++i) {
    util::Rng& draw = draws[static_cast<std::size_t>(i)];
    TenantJob job;
    job.id = i;
    job.work_steps = effective_steps(
        config_, static_cast<long>(
                     draw.uniform_int(config_.min_steps, config_.max_steps)));
    job.workers = config_.workers_per_tenant;
    job.priority = static_cast<int>(draw.uniform_index(3));
    job.bid = 1.0 + config_.bid_spread * draw.uniform();
    job.deadline_s = config_.deadline_hours * 3600.0;
    const nn::CnnModel& model =
        config_.model_mix ? zoo[draw.uniform_index(zoo.size())] : base_model;
    job.model_name = model.name();
    for (cloud::GpuType gpu : cloud::kAllGpuTypes) {
      job.step_seconds[static_cast<int>(gpu)] =
          cloud::mean_step_compute_ms(gpu, model) / 1000.0;
    }
    tenants_.push_back(std::move(job));
  }
}

void FleetSim::start() {
  if (started_) throw std::logic_error("FleetSim::start called twice");
  started_ = true;
  tick();  // initial market evaluation + placement at the current time
  sim_->schedule_every(
      config_.market_period_s,
      [this] {
        if (all_done()) return false;
        tick();
        return true;
      },
      "fleet.tick");
  if (config_.scheduler == SchedulerPolicy::kCostOptimal &&
      config_.migrate_period_s > 0.0) {
    sim_->schedule_every(
        config_.migrate_period_s,
        [this] {
          if (all_done()) return false;
          migration_pass();
          return true;
        },
        "fleet.migrate");
  }
}

bool FleetSim::all_done() const {
  for (const TenantJob& job : tenants_) {
    if (job.state != TenantState::kDone) return false;
  }
  return true;
}

void FleetSim::tick() {
  // 1. Supply dip + demand-driven pricing per pool.
  for (const FleetPool& p : pools_) {
    const double hour = provider_->local_hour_now(p.region);
    const int cap = market_.capacity_at(config_.capacity_per_pool, hour);
    provider_->set_pool_capacity(p.region, p.gpu, cap);
    const int live = provider_->live_transient_count(p.region, p.gpu);
    const double util = static_cast<double>(live) / static_cast<double>(cap);
    provider_->set_price_multiplier(p.region, p.gpu,
                                    market_.price_multiplier(util));
  }
  // 2. Capacity reclamation: when the dip undercuts live instances the
  // provider evicts whole tenants, worst victim first, until the pool
  // fits again.
  for (int pi = 0; pi < static_cast<int>(pools_.size()); ++pi) {
    const FleetPool& p = pools_[pi];
    const int cap = provider_->pool_capacity(p.region, p.gpu);
    while (provider_->live_transient_count(p.region, p.gpu) > cap) {
      TenantJob* victim = nullptr;
      for (TenantJob& job : tenants_) {
        if (job.pool != pi || !placed(job)) continue;
        if (victim == nullptr || better_victim(job, *victim)) victim = &job;
      }
      if (victim == nullptr) break;
      evict_core(*victim, "reclaim", obs::LedgerEventKind::kEviction);
    }
  }
  // 3. Price-outs: the market clears per pool. While the posted price
  // exceeds the cheapest incumbent's bid, that tenant leaves and the
  // price re-forms at the lower utilization. Evicting one marginal
  // bidder at a time (instead of a batch sweep at the stale price) is
  // what keeps the market from overshooting into an empty-pool/refill
  // limit cycle: the survivors are exactly those whose bid covers the
  // price at the cleared utilization.
  for (int pi = 0; pi < static_cast<int>(pools_.size()); ++pi) {
    const FleetPool& p = pools_[pi];
    const int cap = provider_->pool_capacity(p.region, p.gpu);
    if (cap <= 0) continue;
    for (;;) {
      const int live = provider_->live_transient_count(p.region, p.gpu);
      const double multiplier = market_.price_multiplier(
          static_cast<double>(live) / static_cast<double>(cap));
      provider_->set_price_multiplier(p.region, p.gpu, multiplier);
      TenantJob* cheapest = nullptr;
      for (TenantJob& job : tenants_) {
        if (job.pool != pi || !placed(job)) continue;
        if (cheapest == nullptr || job.bid < cheapest->bid ||
            (job.bid == cheapest->bid && job.id > cheapest->id)) {
          cheapest = &job;
        }
      }
      if (cheapest == nullptr || multiplier <= cheapest->bid) break;
      evict_core(*cheapest, "priceout", obs::LedgerEventKind::kEviction);
    }
  }
  // 4. Place pending tenants; 5. publish market + fleet gauges.
  placement_pass();
  provider_->export_market_gauges();
  update_gauges();
}

void FleetSim::placement_pass() {
  std::vector<TenantJob*> pending;
  for (TenantJob& job : tenants_) {
    if (job.state == TenantState::kPending) pending.push_back(&job);
  }
  std::sort(pending.begin(), pending.end(),
            [](const TenantJob* a, const TenantJob* b) {
              if (a->priority != b->priority) return a->priority > b->priority;
              return a->id < b->id;
            });
  for (TenantJob* job : pending) {
    const std::vector<PoolQuote> quotes = quotes_for(*job);
    const int pick = scheduler_.place(quotes);
    if (pick < 0) continue;
    place_tenant(*job, quotes[static_cast<std::size_t>(pick)].pool_index);
  }
}

void FleetSim::schedule_placement_pass() {
  if (pass_scheduled_ || all_done()) return;
  pass_scheduled_ = true;
  sim_->schedule_after(
      0.0,
      [this] {
        pass_scheduled_ = false;
        placement_pass();
      },
      "fleet.place");
}

std::vector<PoolQuote> FleetSim::quotes_for(const TenantJob& job) const {
  std::vector<PoolQuote> quotes;
  for (int pi = 0; pi < static_cast<int>(pools_.size()); ++pi) {
    const FleetPool& p = pools_[pi];
    const int cap = provider_->pool_capacity(p.region, p.gpu);
    const int live = provider_->live_transient_count(p.region, p.gpu);
    if (cap >= 0 && cap - live < job.workers) continue;
    // Affordability is anticipatory: the quote prices the pool at the
    // utilization this tenant's own workers would create, so a policy
    // that honors it never takes a placement that immediately prices
    // itself out. (The price-blind baseline ignores the flag.)
    const double multiplier =
        cap > 0 ? market_.price_multiplier(
                      static_cast<double>(live + job.workers) /
                      static_cast<double>(cap))
                : provider_->price_multiplier(p.region, p.gpu);
    const double posted = provider_->price_multiplier(p.region, p.gpu);
    const double price =
        provider_->current_transient_price(p.region, p.gpu) / posted *
        multiplier;
    PoolQuote quote;
    quote.pool_index = pi;
    quote.free_slots = cap - live;
    quote.price_per_hour = price;
    quote.multiplier = multiplier;
    quote.step_seconds = job.step_seconds[static_cast<int>(p.gpu)];
    quote.usd_per_step = quote_usd_per_step(job, pi, price);
    quote.affordable = multiplier <= job.bid;
    // Forward-looking price-out risk: a pool that is affordable at the
    // current supply may not be at the local-afternoon dip. If the
    // post-entry utilization against the dipped capacity would price
    // this bid out, the placement is expected to be evicted within a
    // diurnal cycle — load the quote with the rollback waste that
    // implies, so the cost-optimal policy stops chasing price troughs.
    if (cap > 0) {
      const int dipped = market_.capacity_at(config_.capacity_per_pool,
                                             kSupplyDipPeakLocalHour);
      const double peak_multiplier = market_.price_multiplier(
          static_cast<double>(live + job.workers) /
          static_cast<double>(dipped));
      if (peak_multiplier > job.bid) {
        quote.usd_per_step *= 1.0 + kPriceoutRiskPremium;
      }
    }
    quotes.push_back(quote);
  }
  return quotes;
}

double FleetSim::quote_usd_per_step(const TenantJob& job, int pool_index,
                                    double price_per_hour) const {
  // Billed rate over useful step rate: W workers cost W*price/3600 $/s
  // and produce (W/s)*f steps/s, so $/step = price*s/(3600*f), inflated
  // by the pool's observed Eq. 4 waste ratio.
  const FleetPool& p = pools_[static_cast<std::size_t>(pool_index)];
  const double s = job.step_seconds[static_cast<int>(p.gpu)];
  const double f = checkpoint_factor(config_, s, job.workers);
  return price_per_hour * s / (3600.0 * f) * waste_ratio(p.cost);
}

void FleetSim::place_tenant(TenantJob& job, int pool_index) {
  const FleetPool& p = pools_[static_cast<std::size_t>(pool_index)];
  // Post the post-entry price before requesting, so this tenant (whose
  // quote already anticipated its own demand) locks the price its
  // arrival creates and later entrants see the raised posting.
  const int cap = provider_->pool_capacity(p.region, p.gpu);
  if (cap > 0) {
    const int live = provider_->live_transient_count(p.region, p.gpu);
    provider_->set_price_multiplier(
        p.region, p.gpu,
        market_.price_multiplier(static_cast<double>(live + job.workers) /
                                 static_cast<double>(cap)));
  }
  job.state = TenantState::kStarting;
  job.pool = pool_index;
  job.running_workers = 0;
  ++job.placements;
  ++placements_;
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kTenantPlacement;
    event.at = sim_->now();
    // Source "fleet" (no slash) keeps tenant events in the same analysis
    // scope as the provider's "cloud" billing windows, so eviction waste
    // lands in the Eq. 4 wasted bucket; the tenant id is a detail label.
    event.source = "fleet";
    event.step = static_cast<long>(std::floor(job.progress));
    event.detail.push_back({"gpu", cloud::gpu_name(p.gpu)});
    event.detail.push_back({"region", cloud::region_name(p.region)});
    event.detail.push_back({"tenant", std::to_string(job.id)});
    ledger->record(std::move(event));
  }
  if (obs::Registry* reg = obs::registry()) {
    reg->counter("fleet.placements_total").inc();
  }
  const int tenant_id = job.id;
  for (int w = 0; w < job.workers; ++w) {
    cloud::InstanceRequest request;
    request.gpu = p.gpu;
    request.region = p.region;
    request.transient = true;
    cloud::InstanceCallbacks callbacks;
    callbacks.on_running = [this, tenant_id](cloud::InstanceId) {
      on_instance_running(tenant_id);
    };
    callbacks.on_revoked = [this, tenant_id](cloud::InstanceId id) {
      on_instance_revoked(tenant_id, id);
    };
    callbacks.on_request_failed = [this, tenant_id](
                                      cloud::InstanceId,
                                      cloud::RequestFailureReason) {
      on_request_failed(tenant_id);
    };
    job.instances.push_back(
        provider_->request_instance(request, std::move(callbacks)));
  }
}

void FleetSim::on_instance_running(int tenant_id) {
  TenantJob& job = tenants_[static_cast<std::size_t>(tenant_id)];
  if (job.state != TenantState::kStarting) return;
  ++job.running_workers;
  if (job.running_workers == job.workers) begin_running(job);
}

void FleetSim::begin_running(TenantJob& job) {
  const double now = sim_->now();
  FleetPool& pool = pools_[static_cast<std::size_t>(job.pool)];
  const double s = job.step_seconds[static_cast<int>(pool.gpu)];
  job.ckpt_factor = checkpoint_factor(config_, s, job.workers);
  job.rate = static_cast<double>(job.workers) / s * job.ckpt_factor;
  const bool restoring = job.progress > 0.0;
  job.gate = now + (restoring ? config_.restore_seconds : 0.0);
  if (restoring) {
    pool.cost.overhead.seconds += job.workers * config_.restore_seconds;
    // Per-instance restore events, stamped at the gate they will clear:
    // the stretch [gate - restore_seconds, gate] is Eq. 4 overhead on
    // each held instance (clipped to its billed life if evicted first).
    if (obs::Ledger* ledger = obs::ledger()) {
      for (cloud::InstanceId id : job.instances) {
        obs::LedgerEvent event;
        event.kind = obs::LedgerEventKind::kRestore;
        event.at = job.gate;
        event.source = "fleet";
        event.instance = static_cast<long long>(id);
        event.seconds = config_.restore_seconds;
        event.detail.push_back({"tenant", std::to_string(job.id)});
        ledger->record(std::move(event));
      }
    }
  }
  job.anchor = job.gate;
  job.state = TenantState::kRunning;
  const double remaining =
      static_cast<double>(job.work_steps) - job.progress;
  const double finish_at = job.gate + remaining / job.rate;
  const int tenant_id = job.id;
  job.completion = sim_->schedule_at(
      finish_at,
      [this, tenant_id] {
        TenantJob& j = tenants_[static_cast<std::size_t>(tenant_id)];
        if (j.state != TenantState::kRunning) return;
        accrue(j);
        finish_tenant(j);
      },
      "fleet.complete");
}

void FleetSim::accrue(TenantJob& job) {
  if (job.state != TenantState::kRunning) return;
  const double now = sim_->now();
  const double start = std::max(job.anchor, job.gate);
  if (now <= start) return;
  double delta = job.rate * (now - start);
  const double remaining =
      static_cast<double>(job.work_steps) - job.progress;
  if (delta > remaining) delta = remaining;
  job.progress += delta;
  job.anchor = now;
  FleetPool& pool = pools_[static_cast<std::size_t>(job.pool)];
  const double s = job.step_seconds[static_cast<int>(pool.gpu)];
  pool.cost.useful.seconds += delta * s;
  if (job.ckpt_factor > 0.0 && job.ckpt_factor < 1.0) {
    pool.cost.overhead.seconds += delta * s * (1.0 / job.ckpt_factor - 1.0);
  }
}

double FleetSim::progress_at_now(const TenantJob& job) const {
  if (job.state != TenantState::kRunning) return job.progress;
  const double start = std::max(job.anchor, job.gate);
  const double now = sim_->now();
  if (now <= start) return job.progress;
  const double delta = job.rate * (now - start);
  return std::min(static_cast<double>(job.work_steps), job.progress + delta);
}

void FleetSim::finish_tenant(TenantJob& job) {
  job.completion.cancel();  // no-op when we arrived via the event itself
  job.progress = static_cast<double>(job.work_steps);
  job.state = TenantState::kDone;
  job.finished_at = sim_->now();
  release_instances(job, "complete");
  job.pool = -1;
  job.rate = 0.0;
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kTenantComplete;
    event.at = sim_->now();
    event.source = "fleet";
    event.step = static_cast<long>(job.work_steps);
    event.detail.push_back({"tenant", std::to_string(job.id)});
    ledger->record(std::move(event));
  }
  if (obs::Registry* reg = obs::registry()) {
    reg->counter("fleet.tenants_completed_total").inc();
  }
  // Freed slots may unblock a pending tenant before the next tick.
  schedule_placement_pass();
}

void FleetSim::evict_core(TenantJob& job, const char* reason,
                          obs::LedgerEventKind kind) {
  accrue(job);
  if (job.progress >= static_cast<double>(job.work_steps)) {
    finish_tenant(job);  // crossed the line before the eviction landed
    return;
  }
  job.completion.cancel();
  const long interval = config_.checkpoint_interval_steps;
  const double durable =
      interval > 0 ? std::floor(job.progress / static_cast<double>(interval)) *
                         static_cast<double>(interval)
                   : 0.0;
  const double lost = job.progress - durable;
  double lost_stretch = 0.0;
  if (job.rate > 0.0 && lost > 0.0) {
    lost_stretch = lost / job.rate;
    FleetPool& pool = pools_[static_cast<std::size_t>(job.pool)];
    pool.cost.wasted.seconds +=
        lost * job.step_seconds[static_cast<int>(pool.gpu)];
  }
  job.progress = durable;
  // Per-instance rollback companions: the recompute debt wastes the
  // stretch each of this tenant's instances just billed, and nothing
  // else — analyze charges instance-scoped rollbacks to that instance's
  // billing windows only.
  if (lost_stretch > 0.0) {
    if (obs::Ledger* ledger = obs::ledger()) {
      for (cloud::InstanceId id : job.instances) {
        obs::LedgerEvent event;
        event.kind = obs::LedgerEventKind::kRollback;
        event.at = sim_->now();
        event.source = "fleet";
        event.instance = static_cast<long long>(id);
        event.seconds = lost_stretch;
        event.detail.push_back({"reason", reason});
        event.detail.push_back({"tenant", std::to_string(job.id)});
        ledger->record(std::move(event));
      }
    }
  }
  // Pending *before* releasing: reclaim fires on_revoked synchronously
  // and the handler must see this tenant as already evicted.
  job.state = TenantState::kPending;
  release_instances(job, reason);
  job.pool = -1;
  job.rate = 0.0;
  ++job.evictions;
  if (kind == obs::LedgerEventKind::kMigration) {
    ++migrations_;
    if (obs::Registry* reg = obs::registry()) {
      reg->counter("fleet.migrations_total").inc();
    }
  } else {
    count_eviction(reason);
  }
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = kind;
    event.at = sim_->now();
    event.source = "fleet";
    event.step = static_cast<long>(durable);
    event.seconds = lost_stretch;  // wall-clock stretch rolled back
    event.detail.push_back({"reason", reason});
    event.detail.push_back({"tenant", std::to_string(job.id)});
    ledger->record(std::move(event));
  }
  // A hazard-evicted tenant can often re-place immediately; market
  // evictions cannot (full or unaffordable pool) and just no-op here.
  schedule_placement_pass();
}

void FleetSim::release_instances(TenantJob& job, const char* reason) {
  const bool endogenous = endogenous_reason(reason);
  for (cloud::InstanceId id : job.instances) {
    if (provider_->record(id).alive()) {
      if (endogenous) {
        provider_->reclaim(id, reason);
      } else {
        provider_->terminate(id);
      }
    }
    job.cost_usd += provider_->instance_cost(id);
  }
  job.instances.clear();
  job.running_workers = 0;
}

void FleetSim::on_instance_revoked(int tenant_id, cloud::InstanceId id) {
  TenantJob& job = tenants_[static_cast<std::size_t>(tenant_id)];
  if (!placed(job)) return;  // our own reclaim during eviction
  const char* reason =
      provider_->record(id).state == cloud::InstanceState::kExpired
          ? "expired"
          : "hazard";
  evict_core(job, reason, obs::LedgerEventKind::kEviction);
}

void FleetSim::on_request_failed(int tenant_id) {
  TenantJob& job = tenants_[static_cast<std::size_t>(tenant_id)];
  if (job.state != TenantState::kStarting) return;
  evict_core(job, "launch_failed", obs::LedgerEventKind::kEviction);
}

void FleetSim::count_eviction(const char* reason) {
  const std::string_view r(reason);
  if (r == "reclaim") {
    ++evictions_reclaim_;
  } else if (r == "priceout") {
    ++evictions_priceout_;
  } else {
    ++evictions_other_;
  }
  if (obs::Registry* reg = obs::registry()) {
    reg->counter("fleet.evictions_total", {{"reason", std::string(r)}}).inc();
  }
}

void FleetSim::migration_pass() {
  for (TenantJob& job : tenants_) {
    if (job.state != TenantState::kRunning) continue;
    accrue(job);
    if (job.progress >= static_cast<double>(job.work_steps)) {
      finish_tenant(job);
      continue;
    }
    // The move is judged on remaining cost to completion, not raw
    // $/step: migrating rolls the job back to its checkpoint floor (the
    // redone steps are billed again at the target) and pays the restore
    // stretch there, so a cheaper pool must clear that hurdle too.
    const double remaining =
        static_cast<double>(job.work_steps) - job.progress;
    const double durable =
        config_.checkpoint_interval_steps > 0
            ? std::floor(job.progress /
                         static_cast<double>(
                             config_.checkpoint_interval_steps)) *
                  static_cast<double>(config_.checkpoint_interval_steps)
            : 0.0;
    const double redo = job.progress - durable;
    const double current =
        quote_usd_per_step(
            job, job.pool,
            provider_->current_transient_price(pools_[job.pool].region,
                                               pools_[job.pool].gpu)) *
        remaining;
    const std::vector<PoolQuote> quotes = quotes_for(job);
    int best = -1;
    double best_cost = 0.0;
    for (int i = 0; i < static_cast<int>(quotes.size()); ++i) {
      const PoolQuote& q = quotes[static_cast<std::size_t>(i)];
      if (q.pool_index == job.pool || !q.affordable) continue;
      const double restore_usd = static_cast<double>(job.workers) *
                                 q.price_per_hour *
                                 config_.restore_seconds / 3600.0;
      const double cost = q.usd_per_step * (remaining + redo) + restore_usd;
      if (best < 0 || cost < best_cost) {
        best = i;
        best_cost = cost;
      }
    }
    if (best < 0) continue;
    const PoolQuote& target = quotes[static_cast<std::size_t>(best)];
    // Hysteresis: only move for a clear remaining-cost win.
    if (best_cost >= (1.0 - config_.migrate_gain) * current) continue;
    const int target_pool = target.pool_index;
    evict_core(job, "migrate", obs::LedgerEventKind::kMigration);
    if (job.state == TenantState::kPending) place_tenant(job, target_pool);
  }
}

void FleetSim::update_gauges() const {
  obs::Registry* reg = obs::registry();
  if (reg == nullptr) return;
  int pending = 0;
  int running = 0;
  int done = 0;
  for (const TenantJob& job : tenants_) {
    switch (job.state) {
      case TenantState::kPending:
        ++pending;
        break;
      case TenantState::kStarting:
      case TenantState::kRunning:
        ++running;
        break;
      case TenantState::kDone:
        ++done;
        break;
    }
  }
  reg->gauge("fleet.pending_tenants").set(pending);
  reg->gauge("fleet.running_tenants").set(running);
  reg->gauge("fleet.done_tenants").set(done);
}

FleetStats FleetSim::stats() const {
  FleetStats stats;
  stats.tenants = static_cast<int>(tenants_.size());
  double steps = 0.0;
  double cost = 0.0;
  for (const TenantJob& job : tenants_) {
    if (job.state == TenantState::kDone) {
      ++stats.finished;
      if (job.finished_at <= job.deadline_s) ++stats.deadline_hits;
    }
    steps += progress_at_now(job);
    cost += job.cost_usd;
    for (cloud::InstanceId id : job.instances) {
      cost += provider_->instance_cost(id);  // live instances, billed to now
    }
  }
  stats.completed_steps = static_cast<long long>(std::floor(steps));
  stats.cost_usd = cost;
  stats.placements = placements_;
  stats.evictions_reclaim = evictions_reclaim_;
  stats.evictions_priceout = evictions_priceout_;
  stats.evictions_other = evictions_other_;
  stats.migrations = migrations_;
  return stats;
}

}  // namespace cmdare::fleet
