// Global fleet scheduler: where does the next tenant run?
//
// The FleetSim turns each candidate (region, GPU) pool into a PoolQuote
// — free slots, the pool's current spot price, and the tenant-specific
// expected $/step on that hardware — and the scheduler picks one.
//
//   * round-robin: rotates through pools in enumeration order, blind to
//     price and speed. The quota-style baseline the fleet campaign
//     compares against.
//   * cost-optimal: argmin over quoted usd_per_step, which bakes in the
//     Eq. 4 decomposition: the quote inflates the raw billed-rate/step
//     ratio by the pool's observed waste ratio (wasted + overhead
//     seconds relative to useful ones), so pools that keep reclaiming
//     work quote worse than their sticker price suggests.
//
// The scheduler is a pure policy object: no simulator or provider
// handle, fully deterministic given the quote list.
#pragma once

#include <vector>

#include "fleet/config.hpp"
#include "obs/analyze.hpp"

namespace cmdare::fleet {

/// One placement candidate, pre-filtered by the caller for room
/// (enough free slots). Affordability is a per-quote fact, not a
/// filter: the naive baseline places price-blind and learns about
/// unaffordable pools the hard way (priced out at the next market
/// tick), while cost-optimal only considers quotes it can hold.
struct PoolQuote {
  int pool_index = -1;        ///< fleet pool id (stable enumeration order)
  int free_slots = 0;         ///< capacity - live at quote time
  double price_per_hour = 0.0;  ///< current spot $/GPU-hour (multiplied)
  double multiplier = 1.0;      ///< post-entry spot multiplier quoted
  double step_seconds = 0.0;    ///< tenant's per-step compute time here
  double usd_per_step = 0.0;    ///< waste- and risk-adjusted expected $/step
  bool affordable = true;       ///< post-entry multiplier <= tenant's bid
};

/// Waste-adjustment factor >= 1 from a pool's running Eq. 4 tallies:
/// (useful + wasted + overhead + prior) / (useful + prior) seconds. The
/// one-hour prior keeps early quotes near 1 until evidence accumulates.
double waste_ratio(const obs::analyze::CostDecomposition& cost);

class FleetScheduler {
 public:
  explicit FleetScheduler(SchedulerPolicy policy) : policy_(policy) {}

  SchedulerPolicy policy() const { return policy_; }

  /// Picks a quote index in [0, quotes.size()), or -1 when the list is
  /// empty. Round-robin advances an internal cursor over pool indices;
  /// cost-optimal takes the cheapest $/step (ties to the lowest pool).
  int place(const std::vector<PoolQuote>& quotes);

 private:
  SchedulerPolicy policy_;
  int cursor_ = 0;  ///< next pool index round-robin prefers
};

}  // namespace cmdare::fleet
