#include "fleet/config.hpp"

#include <cmath>

namespace cmdare::fleet {

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return "round-robin";
    case SchedulerPolicy::kCostOptimal:
      return "cost-optimal";
  }
  return "cost-optimal";
}

bool scheduler_policy_from_name(std::string_view name, SchedulerPolicy* out) {
  if (name == "round-robin") {
    *out = SchedulerPolicy::kRoundRobin;
    return true;
  }
  if (name == "cost-optimal") {
    *out = SchedulerPolicy::kCostOptimal;
    return true;
  }
  return false;
}

long effective_steps(const FleetConfig& config, long drawn_steps) {
  const long steps = static_cast<long>(
      std::llround(static_cast<double>(drawn_steps) * config.demand));
  return steps < 1 ? 1 : steps;
}

std::vector<std::string> validate(const FleetConfig& config) {
  std::vector<std::string> errors;
  if (config.min_steps > config.max_steps) {
    errors.push_back("fleet.min_steps must be <= fleet.max_steps");
  }
  // Liveness: a pending tenant must fit even at the deepest supply dip,
  // or the fleet could wait forever on a pool that never has room.
  // Mirrors FleetMarket::capacity_at at the dip's bottom (clamped >= 1).
  int floor_capacity = static_cast<int>(
      std::floor(static_cast<double>(config.capacity_per_pool) *
                     (1.0 - config.capacity_dip) +
                 1e-9));
  if (floor_capacity < 1) floor_capacity = 1;
  if (config.workers_per_tenant > floor_capacity) {
    errors.push_back(
        "fleet: workers_per_tenant exceeds the dipped pool capacity "
        "(capacity_per_pool x (1 - capacity_dip)); tenants could never "
        "place");
  }
  return errors;
}

}  // namespace cmdare::fleet
