#include "nn/layer.hpp"

#include <stdexcept>

namespace cmdare::nn {
namespace {

int out_dim(int in, int stride) { return (in + stride - 1) / stride; }

std::uint64_t u64(int v) {
  if (v < 0) throw std::invalid_argument("layer: negative dimension");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

std::uint64_t forward_flops(const Layer& layer) {
  return std::visit(
      [](const auto& l) -> std::uint64_t {
        using T = std::decay_t<decltype(l)>;
        if constexpr (std::is_same_v<T, Conv2d>) {
          const std::uint64_t out_hw =
              u64(out_dim(l.height, l.stride)) * u64(out_dim(l.width, l.stride));
          std::uint64_t flops = 2 * out_hw * u64(l.out_channels) *
                                u64(l.in_channels) * u64(l.kernel) *
                                u64(l.kernel);
          if (l.bias) flops += out_hw * u64(l.out_channels);
          return flops;
        } else if constexpr (std::is_same_v<T, Dense>) {
          std::uint64_t flops = 2 * u64(l.inputs) * u64(l.outputs);
          if (l.bias) flops += u64(l.outputs);
          return flops;
        } else if constexpr (std::is_same_v<T, BatchNorm>) {
          // Normalize + scale + shift: ~4 FLOPs per element.
          return 4 * u64(l.channels) * u64(l.height) * u64(l.width);
        } else if constexpr (std::is_same_v<T, Pool>) {
          const std::uint64_t out_hw =
              u64(out_dim(l.height, l.stride)) * u64(out_dim(l.width, l.stride));
          return out_hw * u64(l.channels) * u64(l.kernel) * u64(l.kernel);
        } else {
          static_assert(std::is_same_v<T, Elementwise>);
          return u64(l.flops_per_element) * u64(l.channels) * u64(l.height) *
                 u64(l.width);
        }
      },
      layer);
}

std::uint64_t parameter_count(const Layer& layer) {
  return std::visit(
      [](const auto& l) -> std::uint64_t {
        using T = std::decay_t<decltype(l)>;
        if constexpr (std::is_same_v<T, Conv2d>) {
          std::uint64_t params = u64(l.in_channels) * u64(l.out_channels) *
                                 u64(l.kernel) * u64(l.kernel);
          if (l.bias) params += u64(l.out_channels);
          return params;
        } else if constexpr (std::is_same_v<T, Dense>) {
          std::uint64_t params = u64(l.inputs) * u64(l.outputs);
          if (l.bias) params += u64(l.outputs);
          return params;
        } else if constexpr (std::is_same_v<T, BatchNorm>) {
          // gamma, beta, moving mean, moving variance.
          return 4 * u64(l.channels);
        } else {
          return 0;
        }
      },
      layer);
}

int tensor_count(const Layer& layer) {
  return std::visit(
      [](const auto& l) -> int {
        using T = std::decay_t<decltype(l)>;
        if constexpr (std::is_same_v<T, Conv2d>) {
          return l.bias ? 2 : 1;
        } else if constexpr (std::is_same_v<T, Dense>) {
          return l.bias ? 2 : 1;
        } else if constexpr (std::is_same_v<T, BatchNorm>) {
          return 4;
        } else {
          return 0;
        }
      },
      layer);
}

std::string describe(const Layer& layer) {
  return std::visit(
      [](const auto& l) -> std::string {
        using T = std::decay_t<decltype(l)>;
        if constexpr (std::is_same_v<T, Conv2d>) {
          return "conv" + std::to_string(l.kernel) + "x" +
                 std::to_string(l.kernel) + " " + std::to_string(l.in_channels) +
                 "->" + std::to_string(l.out_channels) + " /" +
                 std::to_string(l.stride) + " @" + std::to_string(l.height) +
                 "x" + std::to_string(l.width);
        } else if constexpr (std::is_same_v<T, Dense>) {
          return "dense " + std::to_string(l.inputs) + "->" +
                 std::to_string(l.outputs);
        } else if constexpr (std::is_same_v<T, BatchNorm>) {
          return "batchnorm " + std::to_string(l.channels) + " @" +
                 std::to_string(l.height) + "x" + std::to_string(l.width);
        } else if constexpr (std::is_same_v<T, Pool>) {
          return "pool" + std::to_string(l.kernel) + " @" +
                 std::to_string(l.height) + "x" + std::to_string(l.width);
        } else {
          return "elementwise @" + std::to_string(l.height) + "x" +
                 std::to_string(l.width);
        }
      },
      layer);
}

}  // namespace cmdare::nn
