// CNN model descriptors.
//
// A CnnModel is a named layer stack plus the derived quantities the paper's
// analysis uses: model complexity C_m (training GFLOPs per image),
// trainable parameter count (drives parameter-server traffic and the
// checkpoint `data` file size), and variable tensor count (drives the
// `index`/`meta` checkpoint file sizes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace cmdare::nn {

enum class Architecture { kResNet, kShakeShake, kCustom };

const char* architecture_name(Architecture arch);

class CnnModel {
 public:
  CnnModel(std::string name, Architecture arch, std::vector<Layer> layers);

  const std::string& name() const { return name_; }
  Architecture architecture() const { return arch_; }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Forward FLOPs per image, summed over layers.
  std::uint64_t forward_flops_per_image() const { return forward_flops_; }

  /// Training FLOPs per image: forward + backward, with the standard
  /// backward ~= 2x forward approximation the TF profiler convention
  /// implies. This is the paper's "model complexity".
  std::uint64_t training_flops_per_image() const { return 3 * forward_flops_; }

  /// Model complexity C_m in GFLOPs (training FLOPs per image / 1e9).
  double gflops() const {
    return static_cast<double>(training_flops_per_image()) / 1e9;
  }

  std::uint64_t parameter_count() const { return parameters_; }
  int tensor_count() const { return tensors_; }

  /// Bytes of trainable state with float32 parameters.
  std::uint64_t parameter_bytes() const { return 4 * parameters_; }

  std::size_t layer_count() const { return layers_.size(); }
  std::string summary() const;

 private:
  std::string name_;
  Architecture arch_;
  std::vector<Layer> layers_;
  std::uint64_t forward_flops_ = 0;
  std::uint64_t parameters_ = 0;
  int tensors_ = 0;
};

}  // namespace cmdare::nn
