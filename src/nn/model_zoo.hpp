// The twenty CNN models of the measurement study.
//
// Section III-A: four canonical models — ResNet-15 (0.59 GFLOPs),
// ResNet-32 (1.54), Shake-Shake Small (2.41), Shake-Shake Big (21.3) — plus
// sixteen custom variants generated "by varying the number of hidden layers
// and the size of each hidden layer". The builders construct full CIFAR-10
// layer stacks; base widths of the canonical models are calibrated so the
// analytically computed training GFLOPs land on the paper's published
// complexities (see tests/nn_test.cpp for the tolerance check).
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace cmdare::nn {

/// CIFAR-10 ResNet (He et al.): initial 3x3 conv, three stages of `n`
/// residual blocks at widths w / 2w / 4w over 32x32 / 16x16 / 8x8 maps,
/// global average pool, dense classifier. Standard depth = 6n + 2.
CnnModel make_resnet(const std::string& name, int blocks_per_stage,
                     int base_width);

/// CIFAR-10 Shake-Shake (Gastaldi): initial 3x3 conv to 16 maps, three
/// stages of `n` two-branch residual blocks at widths w / 2w / 4w, global
/// average pool, dense classifier. The canonical 26-layer network has
/// n = 4.
CnnModel make_shake_shake(const std::string& name, int blocks_per_stage,
                          int base_width);

/// The paper's four canonical models.
CnnModel resnet15();
CnnModel resnet32();
CnnModel shake_shake_small();
CnnModel shake_shake_big();
std::vector<CnnModel> canonical_models();

/// The sixteen custom variants (varying depth and width across both
/// families, complexities spanning ~0.2 to ~27 GFLOPs).
std::vector<CnnModel> custom_models();

/// All twenty models, canonical first.
std::vector<CnnModel> all_models();

/// Looks up any zoo model by name; throws std::invalid_argument if absent.
CnnModel model_by_name(const std::string& name);

}  // namespace cmdare::nn
