// Checkpoint file size model (Section IV-A).
//
// TensorFlow checkpoints consist of three files: `data` (the serialized
// parameter values — proportional to parameter bytes), and `index` / `meta`
// (tensor lookup table and graph definition — "highly correlated to the
// number of tensors" per the paper). These sizes are the features of the
// Table IV checkpoint-time predictors.
#pragma once

#include <cstdint>

#include "nn/model.hpp"

namespace cmdare::nn {

struct CheckpointSizes {
  std::uint64_t data_bytes = 0;   // S_d
  std::uint64_t index_bytes = 0;  // S_i
  std::uint64_t meta_bytes = 0;   // S_m

  std::uint64_t total_bytes() const {  // S_c
    return data_bytes + index_bytes + meta_bytes;
  }
};

/// Computes the checkpoint file sizes for a model. Constants approximate
/// TensorFlow 1.x SavedModel checkpoints: the data file carries float32
/// parameters plus a small framing overhead; index entries cost ~100 bytes
/// per tensor; the graph-def meta file has a fixed preamble plus a few KB
/// per variable (ops, shapes, names, and the training-graph copies).
CheckpointSizes checkpoint_sizes(const CnnModel& model);

}  // namespace cmdare::nn
