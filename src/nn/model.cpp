#include "nn/model.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cmdare::nn {

const char* architecture_name(Architecture arch) {
  switch (arch) {
    case Architecture::kResNet:
      return "resnet";
    case Architecture::kShakeShake:
      return "shake-shake";
    case Architecture::kCustom:
      return "custom";
  }
  return "?";
}

CnnModel::CnnModel(std::string name, Architecture arch,
                   std::vector<Layer> layers)
    : name_(std::move(name)), arch_(arch), layers_(std::move(layers)) {
  if (name_.empty()) throw std::invalid_argument("CnnModel: empty name");
  if (layers_.empty()) throw std::invalid_argument("CnnModel: no layers");
  for (const Layer& layer : layers_) {
    forward_flops_ += forward_flops(layer);
    parameters_ += ::cmdare::nn::parameter_count(layer);
    tensors_ += ::cmdare::nn::tensor_count(layer);
  }
}

std::string CnnModel::summary() const {
  std::ostringstream oss;
  oss << name_ << " (" << architecture_name(arch_) << "): "
      << layers_.size() << " layers, "
      << util::format_double(gflops(), 2) << " GFLOPs/image (train), "
      << parameters_ << " params, " << tensors_ << " tensors";
  return oss.str();
}

}  // namespace cmdare::nn
