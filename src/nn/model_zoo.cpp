#include "nn/model_zoo.hpp"

#include <stdexcept>

namespace cmdare::nn {
namespace {

constexpr int kImageSize = 32;
constexpr int kClasses = 10;

void add_conv_bn_relu(std::vector<Layer>& layers, int in_ch, int out_ch,
                      int kernel, int stride, int size) {
  layers.push_back(Conv2d{in_ch, out_ch, kernel, stride, size, size});
  const int out_size = (size + stride - 1) / stride;
  layers.push_back(BatchNorm{out_ch, out_size, out_size});
  layers.push_back(Elementwise{out_ch, out_size, out_size, 1});  // ReLU
}

void add_residual_block(std::vector<Layer>& layers, int in_ch, int out_ch,
                        int stride, int size) {
  const int out_size = (size + stride - 1) / stride;
  add_conv_bn_relu(layers, in_ch, out_ch, 3, stride, size);
  layers.push_back(Conv2d{out_ch, out_ch, 3, 1, out_size, out_size});
  layers.push_back(BatchNorm{out_ch, out_size, out_size});
  if (stride != 1 || in_ch != out_ch) {
    // Projection shortcut.
    layers.push_back(Conv2d{in_ch, out_ch, 1, stride, size, size});
  }
  layers.push_back(Elementwise{out_ch, out_size, out_size, 1});  // add
  layers.push_back(Elementwise{out_ch, out_size, out_size, 1});  // ReLU
}

void add_shake_branch(std::vector<Layer>& layers, int in_ch, int out_ch,
                      int stride, int size) {
  const int out_size = (size + stride - 1) / stride;
  layers.push_back(Elementwise{in_ch, size, size, 1});  // pre-activation ReLU
  layers.push_back(Conv2d{in_ch, out_ch, 3, stride, size, size});
  layers.push_back(BatchNorm{out_ch, out_size, out_size});
  layers.push_back(Elementwise{out_ch, out_size, out_size, 1});  // ReLU
  layers.push_back(Conv2d{out_ch, out_ch, 3, 1, out_size, out_size});
  layers.push_back(BatchNorm{out_ch, out_size, out_size});
}

void add_shake_block(std::vector<Layer>& layers, int in_ch, int out_ch,
                     int stride, int size) {
  const int out_size = (size + stride - 1) / stride;
  add_shake_branch(layers, in_ch, out_ch, stride, size);
  add_shake_branch(layers, in_ch, out_ch, stride, size);
  // alpha * b1 + (1 - alpha) * b2: ~3 FLOPs per element.
  layers.push_back(Elementwise{out_ch, out_size, out_size, 3});
  if (stride != 1 || in_ch != out_ch) {
    layers.push_back(Conv2d{in_ch, out_ch, 1, stride, size, size});
  }
  layers.push_back(Elementwise{out_ch, out_size, out_size, 1});  // add
}

void add_classifier(std::vector<Layer>& layers, int channels, int size) {
  layers.push_back(Pool{channels, size, size, size, size});  // global avg
  layers.push_back(Dense{channels, kClasses});
}

}  // namespace

CnnModel make_resnet(const std::string& name, int blocks_per_stage,
                     int base_width) {
  if (blocks_per_stage < 1 || base_width < 1) {
    throw std::invalid_argument("make_resnet: invalid configuration");
  }
  std::vector<Layer> layers;
  add_conv_bn_relu(layers, 3, base_width, 3, 1, kImageSize);
  int in_ch = base_width;
  int size = kImageSize;
  for (int stage = 0; stage < 3; ++stage) {
    const int out_ch = base_width << stage;
    const int stride = stage == 0 ? 1 : 2;
    add_residual_block(layers, in_ch, out_ch, stride, size);
    size = (size + stride - 1) / stride;
    for (int b = 1; b < blocks_per_stage; ++b) {
      add_residual_block(layers, out_ch, out_ch, 1, size);
    }
    in_ch = out_ch;
  }
  add_classifier(layers, in_ch, size);
  return CnnModel(name, Architecture::kResNet, std::move(layers));
}

CnnModel make_shake_shake(const std::string& name, int blocks_per_stage,
                          int base_width) {
  if (blocks_per_stage < 1 || base_width < 1) {
    throw std::invalid_argument("make_shake_shake: invalid configuration");
  }
  std::vector<Layer> layers;
  add_conv_bn_relu(layers, 3, 16, 3, 1, kImageSize);
  int in_ch = 16;
  int size = kImageSize;
  for (int stage = 0; stage < 3; ++stage) {
    const int out_ch = base_width << stage;
    const int stride = stage == 0 ? 1 : 2;
    add_shake_block(layers, in_ch, out_ch, stride, size);
    size = (size + stride - 1) / stride;
    for (int b = 1; b < blocks_per_stage; ++b) {
      add_shake_block(layers, out_ch, out_ch, 1, size);
    }
    in_ch = out_ch;
  }
  add_classifier(layers, in_ch, size);
  return CnnModel(name, Architecture::kShakeShake, std::move(layers));
}

// Base widths below are calibration constants: they are chosen so the
// analytically computed training GFLOPs match the complexities the paper
// reports in Table I (0.59 / 1.54 / 2.41 / 21.3 GFLOPs).
CnnModel resnet15() { return make_resnet("resnet-15", 2, 31); }
CnnModel resnet32() { return make_resnet("resnet-32", 5, 31); }
CnnModel shake_shake_small() {
  return make_shake_shake("shake-shake-small", 4, 31);
}
CnnModel shake_shake_big() { return make_shake_shake("shake-shake-big", 4, 93); }

std::vector<CnnModel> canonical_models() {
  std::vector<CnnModel> models;
  models.push_back(resnet15());
  models.push_back(resnet32());
  models.push_back(shake_shake_small());
  models.push_back(shake_shake_big());
  return models;
}

std::vector<CnnModel> custom_models() {
  // Sixteen depth/width variants spanning ~0.2 to ~27 GFLOPs, mirroring the
  // paper's "varying the number of hidden layers and the size of each
  // hidden layer".
  std::vector<CnnModel> models;
  const auto add_resnet = [&](int n, int w) {
    models.push_back(make_resnet(
        "resnet-d" + std::to_string(6 * n + 2) + "-w" + std::to_string(w), n,
        w));
  };
  const auto add_ss = [&](int n, int w) {
    models.push_back(make_shake_shake(
        "shake-d" + std::to_string(n) + "-w" + std::to_string(w), n, w));
  };
  // Complexities chosen to cover ~0.2 to ~27 GFLOPs without large gaps,
  // which is what lets the regression study interpolate (Section III-A:
  // the custom models exist "to better observe how model complexity
  // impacts training time").
  add_resnet(2, 16);
  add_resnet(3, 16);
  add_resnet(5, 20);
  add_resnet(5, 40);
  add_resnet(7, 24);
  add_resnet(7, 48);
  add_resnet(9, 32);
  add_resnet(9, 64);
  add_resnet(12, 48);
  add_resnet(12, 64);
  add_ss(2, 16);
  add_ss(3, 24);
  add_ss(4, 48);
  add_ss(5, 64);
  add_ss(6, 72);
  add_ss(6, 80);
  return models;
}

std::vector<CnnModel> all_models() {
  std::vector<CnnModel> models = canonical_models();
  std::vector<CnnModel> custom = custom_models();
  models.insert(models.end(), std::make_move_iterator(custom.begin()),
                std::make_move_iterator(custom.end()));
  return models;
}

CnnModel model_by_name(const std::string& name) {
  for (CnnModel& m : all_models()) {
    if (m.name() == name) return std::move(m);
  }
  throw std::invalid_argument("model_by_name: unknown model " + name);
}

}  // namespace cmdare::nn
