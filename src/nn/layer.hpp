// Layer descriptors and per-layer FLOPs / parameter / tensor accounting.
//
// The paper computes model complexity ("FLOPs required to train on one
// image") with the built-in TensorFlow profiler. This module is our
// substitute: given a layer stack, it computes forward FLOPs analytically
// (multiply + add counted separately, i.e. 2 FLOPs per MAC), derives
// training FLOPs with the standard backward ~= 2x forward approximation,
// and counts trainable parameters and variable tensors (the inputs to the
// checkpoint size model of Section IV).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cmdare::nn {

/// 3x3-style 2D convolution over a HxW feature map.
struct Conv2d {
  int in_channels;
  int out_channels;
  int kernel;       // square kernel size
  int stride = 1;   // output H, W = ceil(H/stride)
  int height;       // input spatial height
  int width;        // input spatial width
  bool bias = false;
};

/// Fully connected layer.
struct Dense {
  int inputs;
  int outputs;
  bool bias = true;
};

/// Batch normalization over `channels` maps of `height` x `width`.
struct BatchNorm {
  int channels;
  int height;
  int width;
};

/// Average or max pooling; contributes FLOPs but no parameters.
struct Pool {
  int channels;
  int height;  // input spatial size
  int width;
  int kernel;
  int stride;
};

/// Element-wise op over a feature map (residual add, shake-shake blend,
/// activation); FLOPs only.
struct Elementwise {
  int channels;
  int height;
  int width;
  /// FLOPs per element (1 for add/ReLU, 3 for a shake-shake blend).
  int flops_per_element = 1;
};

using Layer = std::variant<Conv2d, Dense, BatchNorm, Pool, Elementwise>;

/// Forward-pass FLOPs for one image (multiply-add = 2 FLOPs).
std::uint64_t forward_flops(const Layer& layer);

/// Trainable parameter count.
std::uint64_t parameter_count(const Layer& layer);

/// Number of variable tensors the layer contributes to a checkpoint
/// (e.g. a conv with bias has 2: kernel + bias; batch-norm has 4:
/// gamma, beta, moving mean, moving variance).
int tensor_count(const Layer& layer);

/// Human-readable one-liner ("conv3x3 16->32 /2 @32x32").
std::string describe(const Layer& layer);

}  // namespace cmdare::nn
