#include "nn/checkpoint_size.hpp"

namespace cmdare::nn {

CheckpointSizes checkpoint_sizes(const CnnModel& model) {
  const auto tensors = static_cast<std::uint64_t>(model.tensor_count());
  CheckpointSizes sizes;
  // float32 values + per-tensor framing + file header.
  sizes.data_bytes = model.parameter_bytes() + 64 * tensors + 4096;
  // One index entry (name, shape, offset, checksum) per tensor.
  sizes.index_bytes = 96 * tensors + 1024;
  // Graph definition: fixed preamble plus per-variable ops/metadata.
  sizes.meta_bytes = 131072 + 2048 * tensors;
  return sizes;
}

}  // namespace cmdare::nn
