#include "la/matrix.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cmdare::la {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(std::span<const double> values) {
  Matrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

Matrix Matrix::from_rows(std::size_t rows, std::size_t cols,
                         std::span<const double> data) {
  if (data.size() != rows * cols) {
    throw std::invalid_argument("Matrix::from_rows: size mismatch");
  }
  Matrix m(rows, cols);
  m.data_.assign(data.begin(), data.end());
  return m;
}

void Matrix::check(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix: index (" + std::to_string(r) + ", " +
                            std::to_string(c) + ") out of " +
                            std::to_string(rows_) + "x" +
                            std::to_string(cols_));
  }
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  check(r, c);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  check(r, c);
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  check(r, 0);
  return std::span<double>(data_.data() + r * cols_, cols_);
}

std::span<const double> Matrix::row(std::size_t r) const {
  check(r, 0);
  return std::span<const double>(data_.data() + r * cols_, cols_);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (!same_shape(rhs)) {
    throw std::invalid_argument("Matrix::operator+: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (!same_shape(rhs)) {
    throw std::invalid_argument("Matrix::operator-: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (!same_shape(other)) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

std::vector<double> Matrix::to_vector() const {
  if (rows_ != 1 && cols_ != 1) {
    throw std::logic_error("Matrix::to_vector: not a vector");
  }
  return data_;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream oss;
  for (std::size_t r = 0; r < rows_; ++r) {
    oss << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) oss << ", ";
      oss << util::format_double((*this)(r, c), precision);
    }
    oss << "]\n";
  }
  return oss.str();
}

}  // namespace cmdare::la
