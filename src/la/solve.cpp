#include "la/solve.hpp"

#include <cmath>
#include <stdexcept>

namespace cmdare::la {
namespace {

constexpr double kSingularEps = 1e-12;

}  // namespace

Matrix solve_gaussian(Matrix a, Matrix b) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    throw std::invalid_argument("solve_gaussian: A must be square");
  }
  if (b.rows() != n) {
    throw std::invalid_argument("solve_gaussian: b row mismatch");
  }
  const std::size_t m = b.cols();

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < kSingularEps) {
      throw std::runtime_error("solve_gaussian: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      for (std::size_t c = 0; c < m; ++c) std::swap(b(col, c), b(pivot, c));
    }
    const double inv_pivot = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv_pivot;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      for (std::size_t c = 0; c < m; ++c) b(r, c) -= factor * b(col, c);
    }
  }

  // Back substitution.
  Matrix x(n, m);
  for (std::size_t ri = n; ri-- > 0;) {
    for (std::size_t c = 0; c < m; ++c) {
      double sum = b(ri, c);
      for (std::size_t k = ri + 1; k < n; ++k) sum -= a(ri, k) * x(k, c);
      x(ri, c) = sum / a(ri, ri);
    }
  }
  return x;
}

Matrix cholesky_factor(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    throw std::invalid_argument("cholesky_factor: A must be square");
  }
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::runtime_error("cholesky_factor: matrix not SPD");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

Matrix solve_cholesky(const Matrix& a, const Matrix& b) {
  const Matrix l = cholesky_factor(a);
  const std::size_t n = a.rows();
  if (b.rows() != n) {
    throw std::invalid_argument("solve_cholesky: b row mismatch");
  }
  const std::size_t m = b.cols();

  // Forward substitution: L y = b.
  Matrix y(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < m; ++c) {
      double sum = b(i, c);
      for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y(k, c);
      y(i, c) = sum / l(i, i);
    }
  }
  // Back substitution: L^T x = y.
  Matrix x(n, m);
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t c = 0; c < m; ++c) {
      double sum = y(ii, c);
      for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x(k, c);
      x(ii, c) = sum / l(ii, ii);
    }
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  return solve_gaussian(a, Matrix::identity(a.rows()));
}

}  // namespace cmdare::la
