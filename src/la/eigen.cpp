#include "la/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cmdare::la {

EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    throw std::invalid_argument("eigen_symmetric: matrix must be square");
  }
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      scale = std::max(scale, std::abs(a(i, j)));
    }
  }
  const double sym_tol = 1e-9 * std::max(scale, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::abs(a(i, j) - a(j, i)) > sym_tol) {
        throw std::invalid_argument("eigen_symmetric: matrix not symmetric");
      }
    }
  }

  Matrix d = a;
  Matrix v = Matrix::identity(n);
  const double stop_tol = 1e-14 * std::max(scale, 1.0);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += std::abs(d(p, q));
    }
    if (off <= stop_tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= stop_tol) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // tan of the rotation angle, choosing the smaller rotation.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply the Givens rotation G(p, q) on both sides of d and
        // accumulate into v.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return d(i, i) > d(j, j);
  });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t col = 0; col < n; ++col) {
    const std::size_t src = order[col];
    out.values[col] = d(src, src);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, col) = v(r, src);
  }
  return out;
}

}  // namespace cmdare::la
