// Linear system solvers used by ordinary least squares.
#pragma once

#include "la/matrix.hpp"

namespace cmdare::la {

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// A must be square, b a column vector with matching rows. Throws
/// std::runtime_error when A is (numerically) singular.
Matrix solve_gaussian(Matrix a, Matrix b);

/// Solves A x = b for symmetric positive-definite A via Cholesky. Throws
/// std::runtime_error when A is not SPD. Used for OLS normal equations,
/// where X^T X is SPD whenever the design matrix has full column rank.
Matrix solve_cholesky(const Matrix& a, const Matrix& b);

/// Lower-triangular Cholesky factor L with A = L L^T. Throws when A is
/// not symmetric positive-definite.
Matrix cholesky_factor(const Matrix& a);

/// Inverse via Gaussian elimination; for small matrices only.
Matrix inverse(const Matrix& a);

}  // namespace cmdare::la
