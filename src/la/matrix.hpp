// Dense row-major matrix for the regression/PCA stack.
//
// The modeling workloads here are tiny (tens of rows, a handful of
// features), so this is deliberately a simple, bounds-checked dense matrix
// rather than an expression-template library. Sizes are signed-free
// std::size_t; all accesses are checked in debug-friendly fashion
// (at() always checks; operator() checks via assert-like throw).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace cmdare::la {

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);
  /// From nested initializer list; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  static Matrix identity(std::size_t n);
  /// Column vector from a span.
  static Matrix column(std::span<const double> values);
  /// Builds from row-major data. Requires data.size() == rows*cols.
  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::span<const double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Row slice as a span (row-major storage makes this contiguous).
  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double scalar);
  friend Matrix operator*(double scalar, Matrix m) {
    m *= scalar;
    return m;
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Max absolute element difference; matrices must have the same shape.
  double max_abs_diff(const Matrix& other) const;

  /// Flattens a 1-column or 1-row matrix into a vector.
  std::vector<double> to_vector() const;

  std::string to_string(int precision = 4) const;

 private:
  void check(std::size_t r, std::size_t c) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace cmdare::la
