// Symmetric eigendecomposition (cyclic Jacobi), used by PCA.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace cmdare::la {

struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
/// Throws std::invalid_argument when `a` is not square or not symmetric
/// (tolerance 1e-9 relative to the largest element).
EigenDecomposition eigen_symmetric(const Matrix& a, int max_sweeps = 64);

}  // namespace cmdare::la
