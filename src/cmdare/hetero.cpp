#include "cmdare/hetero.hpp"

#include <cmath>
#include <stdexcept>

namespace cmdare::core {

double predict_cluster_speed(const StepTimePredictor& predictor,
                             const std::vector<train::WorkerSpec>& workers,
                             double gflops) {
  if (workers.empty()) {
    throw std::invalid_argument("predict_cluster_speed: no workers");
  }
  double speed = 0.0;
  for (const train::WorkerSpec& w : workers) {
    speed += predictor.predict_speed(w.gpu, gflops);
  }
  return speed;
}

TrainingTimeEstimate estimate_training_time(
    double cluster_speed, const TrainingTimeParams& params,
    const std::vector<const stats::Ecdf*>& worker_lifetime_cdfs,
    int iterations) {
  if (cluster_speed <= 0.0) {
    throw std::invalid_argument("estimate_training_time: speed must be > 0");
  }
  if (params.total_steps <= 0.0) {
    throw std::invalid_argument("estimate_training_time: N_w must be > 0");
  }
  if (iterations < 1) {
    throw std::invalid_argument("estimate_training_time: iterations < 1");
  }

  TrainingTimeEstimate est;
  est.compute_seconds = params.total_steps / cluster_speed;
  est.checkpoint_seconds =
      params.checkpoint_interval_steps > 0
          ? std::ceil(params.total_steps /
                      static_cast<double>(params.checkpoint_interval_steps)) *
                params.checkpoint_seconds
          : 0.0;

  // Fixed-point iteration: N_r depends on the training duration, which
  // includes the revocation overhead N_r introduces.
  double total = est.compute_seconds + est.checkpoint_seconds;
  for (int it = 0; it < iterations; ++it) {
    double n_r = 0.0;
    for (const stats::Ecdf* cdf : worker_lifetime_cdfs) {
      if (cdf == nullptr) {
        throw std::invalid_argument("estimate_training_time: null CDF");
      }
      n_r += (*cdf)(total);  // Pr(lifetime <= training duration)
    }
    est.expected_revocations = n_r;
    est.revocation_seconds =
        n_r * (params.provision_seconds + params.replacement_seconds);
    total = est.compute_seconds + est.checkpoint_seconds +
            est.revocation_seconds;
  }
  est.total_seconds = total;
  return est;
}

}  // namespace cmdare::core
