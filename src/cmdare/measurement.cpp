#include "cmdare/measurement.hpp"

#include <stdexcept>

#include "nn/checkpoint_size.hpp"
#include "simcore/simulator.hpp"
#include "stats/descriptive.hpp"
#include "train/session.hpp"

namespace cmdare::core {

std::vector<StepTimeMeasurement> measure_step_times(
    const std::vector<nn::CnnModel>& models,
    const std::vector<cloud::GpuType>& gpus, util::Rng& rng, long steps,
    long discard) {
  if (steps <= discard) {
    throw std::invalid_argument("measure_step_times: steps <= discard");
  }
  std::vector<StepTimeMeasurement> out;
  for (const nn::CnnModel& model : models) {
    for (cloud::GpuType gpu : gpus) {
      simcore::Simulator sim;
      train::SessionConfig config;
      config.max_steps = steps;
      train::TrainingSession session(
          sim, model, config,
          rng.fork("measure-" + model.name() + "-" + cloud::gpu_name(gpu)));
      train::WorkerSpec spec;
      spec.gpu = gpu;
      spec.label = model.name();
      session.add_worker(spec);
      sim.run();

      const auto intervals = session.trace().worker_step_intervals(
          0, static_cast<std::size_t>(discard));
      StepTimeMeasurement m;
      m.model = model.name();
      m.gpu = gpu;
      m.gflops = model.gflops();
      m.gpu_tflops = cloud::gpu_spec(gpu).tflops;
      m.mean_step_seconds = stats::mean(intervals);
      m.sd_step_seconds = intervals.size() >= 2 ? stats::stddev(intervals) : 0;
      m.steps_measured = static_cast<long>(intervals.size());
      out.push_back(m);
    }
  }
  return out;
}

std::vector<StepTimeMeasurement> filter_gpu(
    const std::vector<StepTimeMeasurement>& measurements, cloud::GpuType gpu) {
  std::vector<StepTimeMeasurement> out;
  for (const auto& m : measurements) {
    if (m.gpu == gpu) out.push_back(m);
  }
  return out;
}

namespace {

double min_max_scale(double v, double lo, double hi) {
  return hi == lo ? 0.0 : (v - lo) / (hi - lo);
}

}  // namespace

ml::Dataset step_dataset_cnorm(
    const std::vector<StepTimeMeasurement>& measurements) {
  if (measurements.empty()) {
    throw std::invalid_argument("step_dataset_cnorm: no measurements");
  }
  double lo = measurements.front().computation_ratio();
  double hi = lo;
  for (const auto& m : measurements) {
    lo = std::min(lo, m.computation_ratio());
    hi = std::max(hi, m.computation_ratio());
  }
  ml::Dataset data({"c_norm"});
  for (const auto& m : measurements) {
    data.add({min_max_scale(m.computation_ratio(), lo, hi)},
             m.mean_step_seconds);
  }
  return data;
}

ml::Dataset step_dataset_cm_cgpu(
    const std::vector<StepTimeMeasurement>& measurements) {
  if (measurements.empty()) {
    throw std::invalid_argument("step_dataset_cm_cgpu: no measurements");
  }
  double clo = measurements.front().gflops, chi = clo;
  double glo = measurements.front().gpu_tflops, ghi = glo;
  for (const auto& m : measurements) {
    clo = std::min(clo, m.gflops);
    chi = std::max(chi, m.gflops);
    glo = std::min(glo, m.gpu_tflops);
    ghi = std::max(ghi, m.gpu_tflops);
  }
  ml::Dataset data({"c_m", "c_gpu"});
  for (const auto& m : measurements) {
    data.add({min_max_scale(m.gflops, clo, chi),
              min_max_scale(m.gpu_tflops, glo, ghi)},
             m.mean_step_seconds);
  }
  return data;
}

ml::Dataset step_dataset_cm(
    const std::vector<StepTimeMeasurement>& measurements) {
  if (measurements.empty()) {
    throw std::invalid_argument("step_dataset_cm: no measurements");
  }
  double lo = measurements.front().gflops, hi = lo;
  for (const auto& m : measurements) {
    lo = std::min(lo, m.gflops);
    hi = std::max(hi, m.gflops);
  }
  ml::Dataset data({"c_m"});
  for (const auto& m : measurements) {
    data.add({min_max_scale(m.gflops, lo, hi)}, m.mean_step_seconds);
  }
  return data;
}

std::vector<CheckpointMeasurement> measure_checkpoint_times(
    const std::vector<nn::CnnModel>& models, util::Rng& rng, int repeats) {
  if (repeats < 1) {
    throw std::invalid_argument("measure_checkpoint_times: repeats < 1");
  }
  std::vector<CheckpointMeasurement> out;
  for (const nn::CnnModel& model : models) {
    const auto sizes = nn::checkpoint_sizes(model);
    util::Rng local = rng.fork("ckpt-" + model.name());
    std::vector<double> durations;
    durations.reserve(static_cast<std::size_t>(repeats));
    for (int r = 0; r < repeats; ++r) {
      durations.push_back(
          cloud::sample_checkpoint_seconds(sizes.total_bytes(), local));
    }
    CheckpointMeasurement m;
    m.model = model.name();
    m.data_mb = static_cast<double>(sizes.data_bytes) / 1e6;
    m.meta_mb = static_cast<double>(sizes.meta_bytes) / 1e6;
    m.index_mb = static_cast<double>(sizes.index_bytes) / 1e6;
    m.total_mb = static_cast<double>(sizes.total_bytes()) / 1e6;
    m.mean_seconds = stats::mean(durations);
    m.sd_seconds = durations.size() >= 2 ? stats::stddev(durations) : 0.0;
    m.cov = m.mean_seconds > 0 ? m.sd_seconds / m.mean_seconds : 0.0;
    m.repeats = repeats;
    out.push_back(m);
  }
  return out;
}

ml::Dataset checkpoint_dataset_total(
    const std::vector<CheckpointMeasurement>& measurements) {
  ml::Dataset data({"s_c_mb"});
  for (const auto& m : measurements) data.add({m.total_mb}, m.mean_seconds);
  return data;
}

ml::Dataset checkpoint_dataset_data_meta(
    const std::vector<CheckpointMeasurement>& measurements) {
  ml::Dataset data({"s_d_mb", "s_m_mb"});
  for (const auto& m : measurements) {
    data.add({m.data_mb, m.meta_mb}, m.mean_seconds);
  }
  return data;
}

ml::Dataset checkpoint_dataset_all(
    const std::vector<CheckpointMeasurement>& measurements) {
  ml::Dataset data({"s_d_mb", "s_m_mb", "s_i_mb"});
  for (const auto& m : measurements) {
    data.add({m.data_mb, m.meta_mb, m.index_mb}, m.mean_seconds);
  }
  return data;
}

}  // namespace cmdare::core
