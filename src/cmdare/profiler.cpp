#include "cmdare/profiler.hpp"

#include <stdexcept>

namespace cmdare::core {

PerformanceProfiler::PerformanceProfiler(long window_steps)
    : window_(window_steps) {
  if (window_steps < 1) {
    throw std::invalid_argument("PerformanceProfiler: window < 1");
  }
}

void PerformanceProfiler::attach(train::TrainingSession& session) {
  chained_ = std::move(session.on_step);
  session.on_step = [this](long step, simcore::SimTime at) {
    on_step(step, at);
    if (chained_) chained_(step, at);
  };
  last_window_step_ = session.global_step();
}

void PerformanceProfiler::on_step(long step, simcore::SimTime at) {
  if (step < last_window_step_) {
    // Rollback (vanilla-TF recompute): restart the current window.
    last_window_step_ = step;
    last_window_time_ = at;
    return;
  }
  if (step - last_window_step_ < window_) return;
  const double elapsed = at - last_window_time_;
  if (elapsed > 0.0) {
    samples_.push_back(SpeedSample{
        step, at, static_cast<double>(step - last_window_step_) / elapsed});
  }
  last_window_step_ = step;
  last_window_time_ = at;
}

std::optional<double> PerformanceProfiler::latest_speed() const {
  if (samples_.empty()) return std::nullopt;
  return samples_.back().steps_per_second;
}

std::optional<double> PerformanceProfiler::mean_speed_since(
    simcore::SimTime t) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const SpeedSample& s : samples_) {
    if (s.at >= t) {
      sum += s.steps_per_second;
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

}  // namespace cmdare::core
