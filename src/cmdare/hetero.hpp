// Heterogeneous cluster speed prediction and end-to-end training time
// estimation (Section VI-A, Equations 4 and 5).
//
// Key empirical facts the composition relies on (Section III-C): adding
// workers of different GPU types to an asynchronous session does not
// change existing workers' speeds, so cluster speed is the sum of
// individual predicted speeds, sp = sum_i sp_i. The total training time
// for N_w steps is then
//
//   T = N_w / sp + ceil(N_w / I_c) * T_c + N_r * (T_p + T_s)       (Eq. 4)
//   N_r = sum_i Pr(R_i)                                            (Eq. 5)
//
// with I_c the checkpoint interval, T_c the predicted checkpoint time,
// T_p / T_s the provisioning and worker-replacement times (running
// averages of historical measurements), and Pr(R_i) the probability that
// worker i is revoked during the training, read off the empirical
// lifetime CDFs (Figure 8).
#pragma once

#include <vector>

#include "cloud/gpu.hpp"
#include "cmdare/speed_modeling.hpp"
#include "stats/ecdf.hpp"
#include "train/cluster.hpp"

namespace cmdare::core {

/// Predicted cluster speed: sum over workers of the per-GPU predicted
/// single-worker speed for a model of complexity `gflops`.
double predict_cluster_speed(const StepTimePredictor& predictor,
                             const std::vector<train::WorkerSpec>& workers,
                             double gflops);

struct TrainingTimeParams {
  double total_steps = 0.0;             // N_w
  long checkpoint_interval_steps = 0;   // I_c (0 = no checkpointing)
  double checkpoint_seconds = 0.0;      // T_c
  double provision_seconds = 0.0;       // T_p
  double replacement_seconds = 0.0;     // T_s
};

struct TrainingTimeEstimate {
  double total_seconds = 0.0;
  double compute_seconds = 0.0;
  double checkpoint_seconds = 0.0;
  double revocation_seconds = 0.0;
  double expected_revocations = 0.0;  // N_r
};

/// Evaluates Equations 4-5. `worker_lifetime_cdfs` holds one empirical
/// lifetime CDF per worker (seconds); pass an empty vector for a
/// revocation-free estimate. Pr(R_i) is evaluated at the estimated
/// training duration, which itself depends on N_r, so the estimate is
/// iterated to a fixed point (`iterations` passes; 2 suffices in
/// practice).
TrainingTimeEstimate estimate_training_time(
    double cluster_speed, const TrainingTimeParams& params,
    const std::vector<const stats::Ecdf*>& worker_lifetime_cdfs,
    int iterations = 2);

}  // namespace cmdare::core
