// Online performance profiler (CM-DARE architecture, Section II).
//
// Subscribes to a training session's per-step callback and maintains the
// windowed cluster-speed series (steps/second per 100 steps, the paper's
// reporting convention) with simulation timestamps, so controllers can ask
// "what is the measured speed right now?" — the input to bottleneck
// detection (Section VI-B).
#pragma once

#include <optional>
#include <vector>

#include "simcore/simulator.hpp"
#include "train/session.hpp"

namespace cmdare::core {

class PerformanceProfiler {
 public:
  explicit PerformanceProfiler(long window_steps = 100);

  /// Subscribes to the session's on_step hook (replacing any previous
  /// subscriber; the profiler forwards to the prior hook if one existed).
  void attach(train::TrainingSession& session);

  struct SpeedSample {
    long step_end = 0;              // global step closing the window
    simcore::SimTime at = 0.0;      // when the window closed
    double steps_per_second = 0.0;
  };

  const std::vector<SpeedSample>& samples() const { return samples_; }

  /// Most recent window speed, if any window has closed.
  std::optional<double> latest_speed() const;

  /// Mean speed over windows that closed at or after `t` (for "measured
  /// speed since warmup ended" queries).
  std::optional<double> mean_speed_since(simcore::SimTime t) const;

  long window_steps() const { return window_; }

 private:
  void on_step(long step, simcore::SimTime at);

  long window_;
  long last_window_step_ = 0;
  simcore::SimTime last_window_time_ = 0.0;
  std::vector<SpeedSample> samples_;
  std::function<void(long, simcore::SimTime)> chained_;
};

}  // namespace cmdare::core
