#include "cmdare/planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace cmdare::core {

namespace {

// The adaptive checkpoint controller feeds these planners from *live*
// estimates (profiler speed, decayed hazard rate, observed checkpoint
// durations), any of which can be NaN or negative mid-warmup. NaN slides
// through ordinary `<= 0` guards (every comparison is false) and casting
// it to long is undefined behaviour, so every field is validated
// explicitly: garbage in must fail loudly, never produce a NaN plan.
void validate_plan_params(const CheckpointPlanParams& params,
                          const char* where) {
  const auto require = [where](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument(std::string(where) + ": " + what);
    }
  };
  require(std::isfinite(params.total_steps) && params.total_steps > 0.0,
          "total_steps must be finite and > 0");
  require(std::isfinite(params.cluster_speed) && params.cluster_speed > 0.0,
          "cluster_speed must be finite and > 0");
  require(std::isfinite(params.checkpoint_seconds) &&
              params.checkpoint_seconds >= 0.0,
          "checkpoint_seconds must be finite and >= 0");
  require(std::isfinite(params.chief_revocations_per_hour) &&
              params.chief_revocations_per_hour >= 0.0,
          "chief_revocations_per_hour must be finite and >= 0");
  require(std::isfinite(params.provision_seconds) &&
              params.provision_seconds >= 0.0,
          "provision_seconds must be finite and >= 0");
  require(std::isfinite(params.replacement_seconds) &&
              params.replacement_seconds >= 0.0,
          "replacement_seconds must be finite and >= 0");
}

}  // namespace

double expected_time_with_interval(long interval_steps,
                                   const CheckpointPlanParams& params,
                                   int iterations) {
  if (interval_steps < 1) {
    throw std::invalid_argument(
        "expected_time_with_interval: interval must be >= 1");
  }
  if (iterations < 1) {
    throw std::invalid_argument(
        "expected_time_with_interval: iterations must be >= 1");
  }
  validate_plan_params(params, "expected_time_with_interval");
  const double compute = params.total_steps / params.cluster_speed;
  const double checkpoints =
      std::ceil(params.total_steps / static_cast<double>(interval_steps)) *
      params.checkpoint_seconds;
  const double per_revocation =
      params.provision_seconds + params.replacement_seconds +
      (static_cast<double>(interval_steps) / 2.0) / params.cluster_speed;

  double total = compute + checkpoints;
  for (int it = 0; it < iterations; ++it) {
    const double revocations =
        params.chief_revocations_per_hour * total / 3600.0;
    total = compute + checkpoints + revocations * per_revocation;
  }
  return total;
}

CheckpointPlan plan_checkpoint_interval(const CheckpointPlanParams& params,
                                        long min_interval, int candidates) {
  if (candidates < 2) {
    throw std::invalid_argument("plan_checkpoint_interval: candidates < 2");
  }
  validate_plan_params(params, "plan_checkpoint_interval");
  const auto max_interval = static_cast<long>(params.total_steps);
  if (min_interval < 1 || min_interval > max_interval) {
    throw std::invalid_argument(
        "plan_checkpoint_interval: min_interval out of range");
  }

  CheckpointPlan plan;
  plan.expected_seconds = std::numeric_limits<double>::infinity();
  const double log_lo = std::log(static_cast<double>(min_interval));
  const double log_hi = std::log(static_cast<double>(max_interval));
  long previous = 0;
  for (int c = 0; c < candidates; ++c) {
    const double frac = static_cast<double>(c) / (candidates - 1);
    auto interval = static_cast<long>(
        std::lround(std::exp(log_lo + frac * (log_hi - log_lo))));
    interval = std::clamp(interval, min_interval, max_interval);
    if (interval == previous) continue;
    previous = interval;
    const double expected = expected_time_with_interval(interval, params);
    plan.scanned.emplace_back(interval, expected);
    if (expected < plan.expected_seconds) {
      plan.expected_seconds = expected;
      plan.interval_steps = interval;
    }
  }
  return plan;
}

std::vector<LaunchPlan> rank_launch_plans(const cloud::RevocationModel& model,
                                          cloud::GpuType gpu,
                                          double duration_hours) {
  if (duration_hours <= 0.0) {
    throw std::invalid_argument("rank_launch_plans: duration must be > 0");
  }
  std::vector<LaunchPlan> plans;
  for (const auto& target : cloud::revocation_targets()) {
    if (target.gpu != gpu) continue;
    for (int hour = 0; hour < 24; ++hour) {
      LaunchPlan plan;
      plan.region = target.region;
      plan.local_hour = hour;
      plan.revocation_probability = model.revocation_probability(
          target.region, gpu, static_cast<double>(hour),
          std::min(duration_hours, 24.0));
      plans.push_back(plan);
    }
  }
  if (plans.empty()) {
    throw std::invalid_argument("rank_launch_plans: GPU offered nowhere");
  }
  std::stable_sort(plans.begin(), plans.end(),
                   [](const LaunchPlan& a, const LaunchPlan& b) {
                     return a.revocation_probability <
                            b.revocation_probability;
                   });
  return plans;
}

LaunchPlan best_launch_plan(const cloud::RevocationModel& model,
                            cloud::GpuType gpu, double duration_hours) {
  return rank_launch_plans(model, gpu, duration_hours).front();
}

}  // namespace cmdare::core
