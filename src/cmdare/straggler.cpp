#include "cmdare/straggler.hpp"

#include <algorithm>
#include <map>

#include "stats/descriptive.hpp"

namespace cmdare::core {

std::vector<WorkerAssessment> detect_stragglers(
    const train::TrainingSession& session,
    const StepTimePredictor* predictor, bool ps_saturated,
    const StragglerConfig& config) {
  const train::TrainingTrace& trace = session.trace();

  // Measure every active worker with enough history.
  std::vector<WorkerAssessment> assessments;
  for (train::WorkerId w = 0; w < session.worker_count(); ++w) {
    if (!session.worker_active(w)) continue;
    if (w >= trace.worker_count()) continue;
    const auto intervals =
        trace.worker_step_intervals(w, config.discard_steps);
    if (intervals.size() < config.min_steps) continue;
    WorkerAssessment assessment;
    assessment.worker = w;
    assessment.gpu = session.worker_spec(w).gpu;
    assessment.mean_step_seconds = stats::mean(intervals);
    assessments.push_back(assessment);
  }

  // Peer medians per GPU type.
  std::map<cloud::GpuType, std::vector<double>> by_gpu;
  for (const auto& a : assessments) {
    by_gpu[a.gpu].push_back(a.mean_step_seconds);
  }

  for (auto& a : assessments) {
    const auto& peers = by_gpu[a.gpu];
    if (peers.size() >= 2) {
      a.peer_median_seconds = stats::median(peers);
      a.flagged_vs_peers =
          a.mean_step_seconds >
          *a.peer_median_seconds * (1.0 + config.threshold);
    }
    if (predictor != nullptr && predictor->supports(a.gpu) &&
        !ps_saturated) {
      a.predicted_seconds = predictor->predict_step_seconds(
          a.gpu, session.model().gflops());
      a.flagged_vs_model =
          a.mean_step_seconds >
          *a.predicted_seconds * (1.0 + config.threshold);
    }
  }
  return assessments;
}

}  // namespace cmdare::core
