// Step-time regression study and deployable predictor (Section III-B,
// Table II).
//
// evaluate_step_time_models() reruns the paper's protocol: eight models —
// GPU-agnostic univariate (C_norm) and multivariate (C_m, C_gpu), plus
// per-GPU univariate / polynomial-SVR / RBF-SVR for K80 and P100 — each
// evaluated with a 4:1 train/test split, k-fold cross-validated MAE on the
// training data, and MAE/MAPE on the held-out test set. SVR
// hyperparameters are grid-searched over the paper's ranges.
//
// StepTimePredictor is the deployable artifact: a per-GPU tuned RBF-SVR
// (the Table II winner) that predicts step time for unseen CNN models from
// their complexity, used by the heterogeneous-cluster predictor and the
// bottleneck detector (Section VI).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cmdare/measurement.hpp"
#include "ml/crossval.hpp"
#include "ml/scaler.hpp"
#include "ml/svr.hpp"

namespace cmdare::core {

struct RegressionEval {
  std::string name;
  std::string features;
  double kfold_mae = 0.0;
  double kfold_mae_sd = 0.0;
  double test_mae = 0.0;
  double test_mape = 0.0;  // percent
};

/// Reruns the Table II comparison on the given measurements (expects all
/// three GPUs present; the per-GPU rows use K80 and P100, as the paper
/// does). `folds` is the k of k-fold CV.
std::vector<RegressionEval> evaluate_step_time_models(
    const std::vector<StepTimeMeasurement>& measurements, util::Rng& rng,
    std::size_t folds = 8);

class StepTimePredictor {
 public:
  /// Trains one grid-searched RBF-SVR per GPU type present in
  /// `measurements`.
  static StepTimePredictor train(
      const std::vector<StepTimeMeasurement>& measurements, util::Rng& rng,
      std::size_t folds = 8);

  /// Predicted mean step time (seconds) for a model of the given
  /// complexity on one GPU worker. Throws if the GPU was not trained.
  double predict_step_seconds(cloud::GpuType gpu, double gflops) const;

  /// Predicted training speed (steps/second) of a single worker.
  double predict_speed(cloud::GpuType gpu, double gflops) const;

  bool supports(cloud::GpuType gpu) const;

 private:
  struct PerGpu {
    ml::MinMaxScaler scaler;  // over C_m
    std::shared_ptr<ml::SupportVectorRegression> model;
  };
  std::map<cloud::GpuType, PerGpu> per_gpu_;
};

}  // namespace cmdare::core
