#include "cmdare/controller.hpp"

#include "cmdare/hetero.hpp"

#include <algorithm>

#include <stdexcept>

#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace cmdare::core {

Controller::Controller(TransientTrainingRun& run,
                       const StepTimePredictor& predictor,
                       ControllerConfig config)
    : run_(&run),
      predictor_(&predictor),
      config_(config),
      detector_(config.bottleneck) {
  if (config_.check_period_seconds <= 0.0) {
    throw std::invalid_argument("Controller: check period must be > 0");
  }
  if (config_.max_parameter_servers < 1) {
    throw std::invalid_argument("Controller: max PS must be >= 1");
  }
  for (const auto& worker : run.config().workers) {
    if (!predictor.supports(worker.gpu)) {
      throw std::invalid_argument(
          std::string("Controller: predictor lacks a model for ") +
          cloud::gpu_name(worker.gpu));
    }
  }
}

double Controller::predicted_speed() const {
  return predict_cluster_speed(*predictor_, run_->config().workers,
                               run_->model().gflops());
}

void Controller::start() {
  if (started_) throw std::logic_error("Controller: already started");
  started_ = true;
  session_started_at_ = run_->simulator().now();
  run_->simulator().schedule_after(
      config_.check_period_seconds, [this] { check(); }, "controller.check");
}

void Controller::check() {
  if (run_->finished()) return;

  const double now = run_->simulator().now();
  const bool in_cooldown = now < earliest_next_mitigation_;
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("controller.checks_total").inc();
  }

  // Only judge a full-strength cluster: while workers are still cold-
  // starting (or a revoked one has not been replaced yet), the speed
  // deficit is expected and says nothing about the parameter servers.
  // Abandoned slots (persistent launch failures) lower the bar — the run
  // will never refill them, so waiting for the configured count would
  // silence the controller forever.
  const std::size_t expected = run_->expected_worker_count();
  if (run_->session().active_worker_count() < expected) {
    full_strength_since_ = -1.0;
    run_->simulator().schedule_after(
        config_.check_period_seconds, [this] { check(); }, "controller.check");
    return;
  }
  if (full_strength_since_ < 0.0) full_strength_since_ = now;

  // The detector's warmup is relative to the *current* session reaching
  // full strength: a freshly (re)started cluster must not be judged on
  // its warmup windows.
  const auto measured = run_->profiler().mean_speed_since(
      std::max(session_started_at_, full_strength_since_) +
      detector_.config().warmup_seconds);

  if (measured && !in_cooldown) {
    BottleneckReport report;
    report.predicted_speed = predicted_speed();
    report.measured_speed = *measured;
    report.deficit_fraction =
        (report.predicted_speed - report.measured_speed) /
        report.predicted_speed;
    report.flagged =
        report.deficit_fraction > detector_.config().threshold;
    report.advice = report.flagged ? "provision an additional parameter "
                                     "server and restart the session"
                                   : "within threshold";
    reports_.push_back(report);
    if (obs::Registry* registry = obs::registry()) {
      registry->gauge("controller.deficit_fraction")
          .set(report.deficit_fraction);
      registry->gauge("controller.measured_speed").set(report.measured_speed);
      registry->gauge("controller.predicted_speed")
          .set(report.predicted_speed);
    }

    if (report.flagged &&
        run_->current_ps_count() < config_.max_parameter_servers) {
      const int new_ps = run_->current_ps_count() + 1;
      LOG_INFO << "controller: bottleneck (deficit "
               << report.deficit_fraction << "), restarting with " << new_ps
               << " parameter servers";
      run_->restart_with_ps_count(new_ps);
      ++mitigations_;
      session_started_at_ = run_->simulator().now();
      earliest_next_mitigation_ =
          session_started_at_ + config_.post_restart_cooldown_seconds;
      if (obs::Tracer* tracer = obs::tracer()) {
        tracer->instant(tracer->track("controller"), "controller.mitigation",
                        "cmdare", run_->simulator().now(),
                        {{"ps_count", std::to_string(new_ps)}});
      }
      if (obs::Registry* registry = obs::registry()) {
        registry->counter("controller.mitigations_total").inc();
      }
    }
  }

  run_->simulator().schedule_after(
      config_.check_period_seconds, [this] { check(); }, "controller.check");
}

}  // namespace cmdare::core
