#include "cmdare/resource_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "cloud/calibration.hpp"
#include "cmdare/planner.hpp"
#include "obs/obs.hpp"
#include "train/replacement.hpp"
#include "util/logging.hpp"

namespace cmdare::core {

TransientTrainingRun::TransientTrainingRun(cloud::CloudProvider& provider,
                                           nn::CnnModel model,
                                           RunConfig config, util::Rng rng,
                                           cloud::ObjectStore* store)
    : provider_(&provider),
      store_(store),
      model_(std::move(model)),
      config_(std::move(config)),
      rng_(rng),
      resilience_rng_(rng.fork("resilience")) {
  if (config_.workers.empty()) {
    throw std::invalid_argument("TransientTrainingRun: no workers");
  }
  if (config_.session.max_steps < 1) {
    throw std::invalid_argument(
        "TransientTrainingRun: max_steps must be >= 1");
  }
  target_steps_ = config_.session.max_steps;
  ps_count_ = config_.session.ps_count;
  if (config_.supervision.elastic.enabled && !config_.supervision.enabled) {
    throw std::invalid_argument(
        "TransientTrainingRun: elastic membership requires supervision");
  }
  if (config_.supervision.enabled) {
    // fork() is const, so building the supervisor leaves every other
    // stream of this run untouched: enabling supervision perturbs no
    // existing draw.
    supervisor_ = std::make_unique<supervise::Supervisor>(
        provider, config_.supervision, rng_.fork("supervise"));
    supervisor_->on_failure_detected = [this](cloud::InstanceId id) {
      handle_failure_detected(id);
    };
    supervisor_->on_retune = [this] { retune_checkpoint_interval(); };
    if (config_.supervision.elastic.enabled) {
      // Every breaker state change is worth a ledger line: the analyzer
      // pairs open/close transitions with elastic shrink/grow events to
      // attribute degraded-capacity time.
      supervisor_->breaker().on_transition =
          [this](cloud::Region region, cloud::GpuType gpu,
                 supervise::BreakerState from, supervise::BreakerState to,
                 double at) {
            if (obs::Registry* registry = obs::registry()) {
              registry
                  ->counter("supervise.breaker_transitions_total",
                            {{"to", supervise::breaker_state_name(to)}})
                  .inc();
            }
            if (obs::Ledger* ledger = obs::ledger()) {
              obs::LedgerEvent event;
              event.kind = obs::LedgerEventKind::kBreakerTransition;
              event.at = at;
              event.source = "run";
              event.detail = {{"region", cloud::region_name(region)},
                              {"gpu", cloud::gpu_name(gpu)},
                              {"from", supervise::breaker_state_name(from)},
                              {"to", supervise::breaker_state_name(to)}};
              ledger->record(std::move(event));
            }
          };
    }
  }
  make_session(target_steps_);
}

void TransientTrainingRun::make_session(long remaining_steps) {
  train::SessionConfig session_config = config_.session;
  session_config.ps_count = ps_count_;
  session_config.max_steps = remaining_steps;
  // Carry the last adaptive retune across session restarts.
  if (adaptive_interval_ > 0) {
    session_config.checkpoint_interval_steps = adaptive_interval_;
  }
  session_ = std::make_unique<train::TrainingSession>(
      provider_->simulator(), model_, session_config,
      rng_.fork("session-" + std::to_string(restarts_)), store_);
  segment_started_at_ = provider_->simulator().now();
  session_->on_complete = [this] { finish(); };
  profiler_.attach(*session_);
}

void TransientTrainingRun::emit_ps_billing(double seconds) {
  if (seconds <= 0.0) return;
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kBilling;
    event.at = provider_->simulator().now();
    event.source = "run";
    event.seconds = seconds;
    event.usd = ps_count_ * kPsHourlyCost * seconds / 3600.0;
    event.detail = {{"component", "ps"},
                    {"ps_count", std::to_string(ps_count_)}};
    ledger->record(std::move(event));
  }
}

void TransientTrainingRun::finish() {
  finished_ = true;
  if (supervisor_) supervisor_->halt();
  finished_at_ = provider_->simulator().now();
  ps_cost_accrued_ += ps_count_ * kPsHourlyCost *
                      (finished_at_ - segment_started_at_) / 3600.0;
  emit_ps_billing(finished_at_ - segment_started_at_);
  // Release every still-alive instance of this run.
  for (const auto& [instance, placement] : placements_) {
    (void)placement;
    if (provider_->record(instance).alive()) provider_->terminate(instance);
  }
  if (on_complete) on_complete();
}

void TransientTrainingRun::start() {
  if (started_at_ >= 0.0) {
    throw std::logic_error("TransientTrainingRun: already started");
  }
  started_at_ = provider_->simulator().now();
  segment_started_at_ = started_at_;
  for (const train::WorkerSpec& spec : config_.workers) {
    launch_worker(spec, cloud::RequestContext::kNormal);
  }
}

void TransientTrainingRun::restart_with_ps_count(int ps_count) {
  if (ps_count < 1) {
    throw std::invalid_argument("restart_with_ps_count: ps_count must be >= 1");
  }
  if (finished_) return;

  // Stop the current session; its events become no-ops.
  session_->halt();
  completed_offset_ += session_->global_step();
  ps_cost_accrued_ +=
      ps_count_ * kPsHourlyCost *
      (provider_->simulator().now() - segment_started_at_) / 3600.0;
  emit_ps_billing(provider_->simulator().now() - segment_started_at_);
  retired_sessions_.push_back(std::move(session_));

  ps_count_ = ps_count;
  ++restarts_;
  const long remaining = std::max<long>(1, target_steps_ - completed_offset_);
  make_session(remaining);
  LOG_INFO << "session restart #" << restarts_ << " with " << ps_count
           << " parameter servers at t=" << provider_->simulator().now();

  // Live workers rejoin the new session after the restart overhead.
  for (auto& [instance, placement] : placements_) {
    if (!placement.worker) continue;  // still booting; joins on RUNNING
    const auto& record = provider_->record(instance);
    if (!record.alive() || record.state != cloud::InstanceState::kRunning) {
      placement.worker.reset();
      continue;
    }
    placement.worker =
        session_->add_worker(placement.spec, kSessionRestartSeconds);
    if (obs::Ledger* ledger = obs::ledger()) {
      // Re-bind the slot in the new session's worker-id space; the
      // analyzer resets its worker->instance map at session_restart.
      obs::LedgerEvent event;
      event.kind = obs::LedgerEventKind::kAssign;
      event.at = provider_->simulator().now();
      event.source = "run";
      event.instance = static_cast<long long>(instance);
      event.worker = static_cast<long long>(*placement.worker);
      event.seconds = kSessionRestartSeconds;
      event.detail = {{"restart", "true"}};
      ledger->record(std::move(event));
    }
  }
}

long TransientTrainingRun::completed_steps() const {
  return completed_offset_ + session_->global_step();
}

cloud::InstanceId TransientTrainingRun::launch_worker(
    const train::WorkerSpec& spec, cloud::RequestContext context,
    double recovering_since, std::optional<cloud::InstanceId> replaces) {
  Placement placement;
  placement.spec = spec;
  placement.original_spec = spec;
  placement.context = context;
  placement.cold = context != cloud::RequestContext::kNormal;
  placement.recovering_since = recovering_since;
  placement.replaces = replaces;
  return request_slot(std::move(placement));
}

cloud::InstanceId TransientTrainingRun::request_slot(Placement placement) {
  cloud::InstanceRequest request;
  request.gpu = placement.spec.gpu;
  request.region = placement.spec.region;
  request.transient = placement.spec.transient;
  request.context = placement.context;

  cloud::InstanceCallbacks callbacks;
  callbacks.on_running = [this](cloud::InstanceId id) { handle_running(id); };
  callbacks.on_revoked = [this](cloud::InstanceId id) { handle_revoked(id); };
  // The preemption notice is transient-TensorFlow's hook to tell the
  // parameter server / controller about the upcoming revocation. Abrupt
  // kills (injected) never fire it.
  callbacks.on_preemption_notice = [this](cloud::InstanceId id) {
    ++notices_;
    auto it = placements_.find(id);
    if (it != placements_.end()) it->second.notice_received = true;
    LOG_DEBUG << "preemption notice for instance " << id << " at t="
              << provider_->simulator().now();
  };
  callbacks.on_request_failed = [this](cloud::InstanceId id,
                                       cloud::RequestFailureReason reason) {
    handle_request_failed(id, reason);
  };

  const cloud::InstanceId id =
      provider_->request_instance(request, std::move(callbacks));
  placements_.emplace(id, std::move(placement));
  return id;
}

void TransientTrainingRun::count_stale_event(const char* event,
                                             cloud::InstanceId instance) {
  ++stale_events_;
  LOG_WARN << "ignoring " << event << " for instance " << instance
           << " (late or duplicate lifecycle event)";
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("resilience.stale_events_total", {{"event", event}})
        .inc();
  }
}

void TransientTrainingRun::handle_running(cloud::InstanceId instance) {
  if (finished_) {
    provider_->terminate(instance);
    return;
  }
  auto it = placements_.find(instance);
  if (it == placements_.end()) {
    // A lifecycle event for an instance this run never placed (or whose
    // placement was dropped) must not abort the run — log and move on.
    count_stale_event("running", instance);
    return;
  }
  Placement& placement = it->second;
  if (placement.worker || placement.revoked || placement.cancelled) {
    count_stale_event("running", instance);
    return;
  }
  // Every fresh VM pays the cold-start environment setup (initial workers
  // included: they also install the framework and download their shard).
  const double join_delay =
      train::sample_cold_replacement_seconds(model_, rng_);
  // Vanilla TF (Section V-E): a replacement claims the revoked chief's IP
  // when checkpoint duty is orphaned, and the session rolls the cluster
  // back to the newest restorable checkpoint on the claim. CM-DARE hands
  // checkpoint duty to a survivor instead, so the flag stays false there.
  const bool reuse_chief_ip =
      config_.session.mode == train::FaultToleranceMode::kVanillaTf &&
      placement.replaces.has_value() && !session_->checkpoint_owner();
  placement.worker =
      session_->add_worker(placement.spec, join_delay, reuse_chief_ip);
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kAssign;
    event.at = provider_->simulator().now();
    event.source = "run";
    event.instance = static_cast<long long>(instance);
    event.worker = static_cast<long long>(*placement.worker);
    event.seconds = join_delay;
    if (placement.replaces) {
      event.detail = {{"replaces", std::to_string(*placement.replaces)}};
    }
    ledger->record(std::move(event));
  }
  if (!supervisor_) return;

  supervisor_->watch_instance(instance);
  if (elastic_enabled()) {
    // A successful launch closes (or keeps closed) the pool's breaker;
    // a half-open probe success is exactly this call.
    supervisor_->breaker().record_success(placement.spec.region,
                                          placement.spec.gpu,
                                          provider_->simulator().now());
    if (placement.elastic_regrow) {
      placement.elastic_regrow = false;
      ++elastic_grows_;
      supervisor_->elastic().note_change(provider_->simulator().now());
      if (obs::Registry* registry = obs::registry()) {
        registry->counter("supervise.elastic.grows_total").inc();
        registry->gauge("supervise.elastic.deferred_slots")
            .set(static_cast<double>(deferred_slots_.size()));
      }
      if (obs::Ledger* ledger = obs::ledger()) {
        obs::LedgerEvent event;
        event.kind = obs::LedgerEventKind::kElasticGrow;
        event.at = provider_->simulator().now();
        event.source = "run";
        event.instance = static_cast<long long>(instance);
        event.worker = static_cast<long long>(*placement.worker);
        event.detail = {
            {"region", cloud::region_name(placement.spec.region)},
            {"gpu", cloud::gpu_name(placement.spec.gpu)},
            {"deficit", std::to_string(deferred_slots_.size())}};
        ledger->record(std::move(event));
      }
      // More slots may be parked behind this probe.
      arm_regrow();
    }
  }
  if (placement.recovering_since >= 0.0) {
    // Recovery latency: slot death (or fencing) to the replacement
    // worker actually rejoining the session.
    const double recovery = provider_->simulator().now() + join_delay -
                            placement.recovering_since;
    recovery_seconds_.push_back(recovery);
    if (obs::Registry* registry = obs::registry()) {
      registry->histogram("supervise.recovery_seconds").observe(recovery);
    }
    if (obs::Ledger* ledger = obs::ledger()) {
      // Emitted when the replacement reaches RUNNING; the slot rejoins
      // the session at recovering_since + seconds (i.e. now + join
      // delay), which is what `seconds` measures end to end.
      obs::LedgerEvent event;
      event.kind = obs::LedgerEventKind::kCatchupComplete;
      event.at = provider_->simulator().now();
      event.source = "run";
      event.instance = static_cast<long long>(instance);
      event.worker = static_cast<long long>(*placement.worker);
      event.seconds = recovery;
      if (placement.replaces) {
        event.detail = {{"replaces", std::to_string(*placement.replaces)}};
      }
      ledger->record(std::move(event));
    }
    placement.recovering_since = -1.0;
  }
  if (placement.hedge_partner) {
    // This leg won the race: cancel the loser (terminate is safe in any
    // pre-terminal state and cancels its pending provider events). Both
    // legs keep whatever bill they accrued.
    const cloud::InstanceId partner_id = *placement.hedge_partner;
    placement.hedge_partner.reset();
    auto partner_it = placements_.find(partner_id);
    if (partner_it != placements_.end()) {
      Placement& partner = partner_it->second;
      partner.hedge_partner.reset();
      if (!partner.worker && !partner.revoked && !partner.cancelled) {
        partner.cancelled = true;
        ++hedges_cancelled_;
        if (provider_->record(partner_id).alive()) {
          provider_->terminate(partner_id);
        }
        if (obs::Registry* registry = obs::registry()) {
          registry->counter("supervise.hedge_cancels_total").inc();
        }
      }
    }
  }
}

void TransientTrainingRun::handle_revoked(cloud::InstanceId instance) {
  auto it = placements_.find(instance);
  if (it == placements_.end() || finished_) {
    count_stale_event("revoked", instance);
    return;
  }
  Placement& placement = it->second;
  if (placement.revoked || placement.cancelled) {
    count_stale_event("revoked", instance);
    return;
  }
  placement.revoked = true;
  ++revocations_;
  const bool abrupt =
      !placement.notice_received && provider_->record(instance).abrupt_kill;
  if (abrupt) {
    // Notice-less kill: the controller learns about the loss only now,
    // and any in-flight chief work dies with a stale checkpoint.
    ++abrupt_kills_;
    if (obs::Registry* registry = obs::registry()) {
      registry->counter("resilience.abrupt_kills_total").inc();
    }
  }
  if (supervisor_ && abrupt) {
    // Supervised run: nobody tells the control plane about a notice-less
    // kill. The dead worker stops contributing (its updates cease) but
    // the slot stays unfilled — dragging cluster speed — until the
    // heartbeat detector flags the silence; handle_failure_detected then
    // launches the replacement, so detection latency is a measured part
    // of every recovery.
    if (placement.worker) session_->revoke_worker(*placement.worker);
    placement.replacement_pending = true;
    placement.recovering_since = provider_->simulator().now();
    return;
  }
  if (supervisor_) {
    // Noticed revocation (or 24 h expiry): a graceful end as far as the
    // detector is concerned — forgetting the instance here is what keeps
    // a late heartbeat-timeout verdict from double-replacing the slot.
    supervisor_->forget_instance(instance);
    if (provider_->record(instance).state == cloud::InstanceState::kRevoked) {
      supervisor_->record_failure_event(placement.spec.region,
                                        placement.spec.gpu,
                                        supervise::FailureKind::kRevocation);
    }
  }
  if (placement.worker) {
    session_->revoke_worker(*placement.worker);
  }
  if (config_.auto_replace && !finished_) {
    if (supervisor_) {
      if (maybe_shrink(placement, instance, "revocation")) return;
      launch_replacement(placement.spec, provider_->simulator().now(),
                         instance);
    } else {
      ++replacements_;
      launch_worker(placement.spec, config_.replacement_context,
                    /*recovering_since=*/-1.0, instance);
    }
  }
}

void TransientTrainingRun::handle_failure_detected(
    cloud::InstanceId instance) {
  if (finished_) return;
  auto it = placements_.find(instance);
  if (it == placements_.end()) {
    count_stale_event("failure_detected", instance);
    return;
  }
  Placement& placement = it->second;
  if (placement.cancelled) {
    count_stale_event("failure_detected", instance);
    return;
  }
  if (placement.revoked) {
    if (!placement.replacement_pending) {
      // The revocation was noticed (or a duplicate verdict arrived) and
      // the slot already replaced — replacing again would double-fill it.
      count_stale_event("failure_detected", instance);
      return;
    }
    // Deferred abrupt-kill replacement: the detector finally noticed.
    placement.replacement_pending = false;
    ++detected_failures_;
    supervisor_->record_failure_event(placement.spec.region,
                                      placement.spec.gpu,
                                      supervise::FailureKind::kRevocation);
    const double recovering_since = placement.recovering_since;
    placement.recovering_since = -1.0;
    if (config_.auto_replace) {
      if (maybe_shrink(placement, instance, "detected_kill")) return;
      launch_replacement(placement.spec, recovering_since, instance);
    }
    return;
  }
  // Live instance flagged: a false positive. Fence it — terminate cancels
  // every pending provider event, including the real future revocation —
  // so the slot cannot double-replace later, then refill.
  ++detected_failures_;
  ++fenced_workers_;
  LOG_WARN << "fencing live instance " << instance
           << " after false-positive detection";
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("supervise.fenced_workers_total").inc();
  }
  const double fenced_at = provider_->simulator().now();
  if (provider_->record(instance).alive()) provider_->terminate(instance);
  placement.revoked = true;
  if (placement.worker) session_->revoke_worker(*placement.worker);
  if (config_.auto_replace) {
    launch_replacement(placement.spec, fenced_at, instance);
  }
}

void TransientTrainingRun::launch_replacement(
    const train::WorkerSpec& spec, double recovering_since,
    std::optional<cloud::InstanceId> replaces) {
  ++replacements_;
  const cloud::InstanceId first = launch_worker(
      spec, config_.replacement_context, recovering_since, replaces);
  if (supervisor_ && config_.supervision.hedged_replacement) {
    // Hedge: a second identical request races the first; whichever
    // reaches RUNNING first keeps the slot and cancels the other.
    const cloud::InstanceId second = launch_worker(
        spec, config_.replacement_context, recovering_since, replaces);
    placements_.at(first).hedge_partner = second;
    placements_.at(second).hedge_partner = first;
    if (obs::Registry* registry = obs::registry()) {
      registry->counter("supervise.hedged_launches_total").inc();
    }
  }
}

bool TransientTrainingRun::maybe_shrink(const Placement& placement,
                                        cloud::InstanceId instance,
                                        const char* trigger) {
  if (!elastic_enabled() || finished_) return false;
  const double now = provider_->simulator().now();
  const train::WorkerSpec& spec = placement.spec;
  // The lost slot still counts in expected_worker_count() until it is
  // deferred, so the cluster that remains without it is one smaller.
  const int live = static_cast<int>(expected_worker_count()) - 1;
  const bool breaker_allows =
      supervisor_->breaker().state(spec.region, spec.gpu, now) !=
      supervise::BreakerState::kOpen;
  const double hazard = supervisor_->estimator().rate_per_hour(
      spec.region, spec.gpu, now / 3600.0);
  const double overhead =
      provider_->startup_model().mean_stages(spec.gpu, spec.transient).total() +
      cloud::cold_replacement_seconds(model_);
  // latest_speed() is empty before the first profiler window closes; the
  // negative sentinel disables the deadline-urgency override.
  double remaining_work_s = -1.0;
  if (const auto speed = profiler_.latest_speed(); speed && *speed > 0.0) {
    remaining_work_s =
        static_cast<double>(std::max<long>(0, target_steps_ - completed_steps())) /
        *speed;
  }
  const supervise::ElasticDecision decision =
      supervisor_->elastic().on_worker_lost(breaker_allows, hazard, overhead,
                                            live, now, remaining_work_s);
  if (decision.replace) return false;

  ++elastic_shrinks_;
  deferred_slots_.push_back(placement.original_spec);
  supervisor_->elastic().note_change(now);
  LOG_INFO << "elastic shrink (" << decision.reason << ", " << trigger
           << "): slot deferred, cluster degrades to "
           << expected_worker_count() << " workers";
  if (obs::Registry* registry = obs::registry()) {
    registry
        ->counter("supervise.elastic.shrinks_total",
                  {{"reason", decision.reason}})
        .inc();
    registry->gauge("supervise.elastic.deferred_slots")
        .set(static_cast<double>(deferred_slots_.size()));
  }
  if (obs::Ledger* ledger = obs::ledger()) {
    obs::LedgerEvent event;
    event.kind = obs::LedgerEventKind::kElasticShrink;
    event.at = now;
    event.source = "run";
    event.instance = static_cast<long long>(instance);
    event.detail = {{"reason", decision.reason},
                    {"trigger", trigger},
                    {"region", cloud::region_name(spec.region)},
                    {"gpu", cloud::gpu_name(spec.gpu)},
                    {"deficit", std::to_string(deferred_slots_.size())}};
    ledger->record(std::move(event));
  }
  arm_regrow();
  return true;
}

void TransientTrainingRun::arm_regrow() {
  if (regrow_armed_ || finished_ || deferred_slots_.empty()) return;
  regrow_armed_ = true;
  const double period =
      std::max(1.0, config_.supervision.elastic.grow_hysteresis_s);
  provider_->simulator().schedule_after(
      period, [this] { run_regrow(); }, "elastic.regrow");
}

void TransientTrainingRun::run_regrow() {
  regrow_armed_ = false;
  if (finished_ || deferred_slots_.empty()) return;
  const double now = provider_->simulator().now();
  supervise::ElasticPolicy& policy = supervisor_->elastic();
  const train::WorkerSpec spec = deferred_slots_.front();
  const double hazard = supervisor_->estimator().rate_per_hour(
      spec.region, spec.gpu, now / 3600.0);
  const double overhead =
      provider_->startup_model().mean_stages(spec.gpu, spec.transient).total() +
      cloud::cold_replacement_seconds(model_);
  if (policy.may_grow(now) && policy.regrow_economical(hazard, overhead) &&
      supervisor_->breaker().allow_request(spec.region, spec.gpu, now)) {
    // Probe: one deferred slot relaunched through the breaker's
    // half-open window (a closed breaker admits it directly). Success
    // lands in handle_running, failure in handle_request_failed.
    deferred_slots_.erase(deferred_slots_.begin());
    policy.note_change(now);
    if (obs::Registry* registry = obs::registry()) {
      registry->counter("supervise.elastic.grow_attempts_total").inc();
    }
    const cloud::InstanceId id =
        launch_worker(spec, config_.replacement_context);
    placements_.at(id).elastic_regrow = true;
  }
  arm_regrow();
}

bool TransientTrainingRun::advance_fallback(Placement& placement) {
  const ResiliencePolicy& policy = config_.resilience;
  const train::WorkerSpec& original = placement.original_spec;
  // With health scoring enabled the ladder prefers the candidate with the
  // lowest decayed penalty; the strict `<` keeps the original first-match
  // order whenever scores tie (in particular when all are zero, which is
  // exactly the unsupervised behaviour).
  const bool scored = supervisor_ != nullptr &&
                      config_.supervision.score_replacement;
  while (placement.ladder_stage < 3) {
    ++placement.ladder_stage;
    if (placement.ladder_stage == 1 && policy.allow_region_fallback) {
      // Same GPU in another region that offers it transiently.
      std::optional<cloud::Region> best;
      double best_score = 0.0;
      for (const cloud::Region region : cloud::kAllRegions) {
        if (region == original.region) continue;
        if (!cloud::gpu_offered_in_region(region, original.gpu)) continue;
        const double score =
            scored ? supervisor_->penalty_score(region, original.gpu) : 0.0;
        if (!best || score < best_score) {
          best = region;
          best_score = score;
        }
      }
      if (best) {
        placement.spec = original;
        placement.spec.region = *best;
        return true;
      }
    } else if (placement.ladder_stage == 2 && policy.allow_gpu_fallback) {
      // Another GPU type in the slot's configured region.
      std::optional<cloud::GpuType> best;
      double best_score = 0.0;
      for (const cloud::GpuType gpu : cloud::kAllGpuTypes) {
        if (gpu == original.gpu) continue;
        if (!cloud::gpu_offered_in_region(original.region, gpu)) continue;
        const double score =
            scored ? supervisor_->penalty_score(original.region, gpu) : 0.0;
        if (!best || score < best_score) {
          best = gpu;
          best_score = score;
        }
      }
      if (best) {
        placement.spec = original;
        placement.spec.gpu = *best;
        return true;
      }
    } else if (placement.ladder_stage == 3 &&
               policy.allow_on_demand_fallback) {
      // Last rung: an on-demand server — costs more, but preemptible
      // capacity stockouts cannot touch it.
      placement.spec = original;
      placement.spec.transient = false;
      return true;
    }
  }
  return false;
}

void TransientTrainingRun::handle_request_failed(
    cloud::InstanceId instance, cloud::RequestFailureReason reason) {
  auto it = placements_.find(instance);
  if (it == placements_.end()) {
    count_stale_event("request_failed", instance);
    return;
  }
  if (finished_) return;
  if (it->second.cancelled) {
    // A hedge leg cancelled (or ceded) while its failure response was in
    // flight: the slot is someone else's problem now.
    return;
  }
  if (supervisor_) {
    supervisor_->record_failure_event(
        it->second.spec.region, it->second.spec.gpu,
        reason == cloud::RequestFailureReason::kStockout
            ? supervise::FailureKind::kStockout
            : supervise::FailureKind::kLaunchError);
  }
  if (elastic_enabled()) {
    supervisor_->breaker().record_failure(it->second.spec.region,
                                          it->second.spec.gpu,
                                          provider_->simulator().now());
    if (it->second.elastic_regrow) {
      // Failed regrow probe: the breaker just re-opened with a grown
      // backoff. The slot goes back to the deferred queue and waits for
      // the next probe window instead of entering the retry chain.
      deferred_slots_.push_back(it->second.original_spec);
      if (obs::Registry* registry = obs::registry()) {
        registry->counter("supervise.elastic.probe_failures_total").inc();
        registry->gauge("supervise.elastic.deferred_slots")
            .set(static_cast<double>(deferred_slots_.size()));
      }
      arm_regrow();
      return;
    }
  }
  const ResiliencePolicy& policy = config_.resilience;
  // The failed placement stays in the map (its record is terminal); the
  // slot's retry state rides along into the next request.
  Placement retry = it->second;
  retry.worker.reset();
  retry.revoked = false;
  retry.notice_received = false;
  if (retry.hedge_partner) {
    const cloud::InstanceId partner_id = *retry.hedge_partner;
    auto partner_it = placements_.find(partner_id);
    Placement* partner =
        partner_it != placements_.end() ? &partner_it->second : nullptr;
    const bool partner_viable =
        partner != nullptr && !partner->cancelled && !partner->revoked &&
        (partner->worker.has_value() || provider_->record(partner_id).alive());
    if (partner_viable) {
      // The other leg of the hedge is still in the race: let it carry the
      // slot instead of retrying this one (two independent retry chains
      // would eventually fill the slot twice).
      it->second.cancelled = true;
      return;
    }
    // Both legs failed: this leg retries alone, unhedged; the partner's
    // own failure response must not start a second chain.
    if (partner != nullptr) {
      partner->cancelled = true;
      partner->hedge_partner.reset();
    }
    it->second.hedge_partner.reset();
    retry.hedge_partner.reset();
  }

  if (reason == cloud::RequestFailureReason::kStockout) {
    ++retry.consecutive_stockouts;
    if (retry.consecutive_stockouts >= policy.stockouts_before_fallback &&
        advance_fallback(retry)) {
      retry.consecutive_stockouts = 0;
      ++fallbacks_;
      const char* stage = retry.ladder_stage == 1   ? "region"
                          : retry.ladder_stage == 2 ? "gpu"
                                                    : "on_demand";
      LOG_INFO << "stockout persists for instance " << instance
               << ", falling back to " << stage;
      if (obs::Registry* registry = obs::registry()) {
        registry->counter("resilience.fallbacks_total", {{"kind", stage}})
            .inc();
      }
      if (obs::Ledger* ledger = obs::ledger()) {
        obs::LedgerEvent event;
        event.kind = obs::LedgerEventKind::kFallback;
        event.at = provider_->simulator().now();
        event.source = "run";
        event.instance = static_cast<long long>(instance);
        event.detail = {{"stage", stage}};
        ledger->record(std::move(event));
      }
    }
  } else {
    retry.consecutive_stockouts = 0;
  }

  // Elastic alternative to grinding the retry chain into a struck pool:
  // once the breaker opens (or replacement turns uneconomical), park the
  // slot instead of burning attempts toward permanent abandonment.
  if (reason == cloud::RequestFailureReason::kStockout &&
      maybe_shrink(retry, instance, "stockout")) {
    return;
  }

  if (retry.attempt >= policy.max_launch_attempts) {
    ++slots_abandoned_;
    LOG_WARN << "worker slot abandoned after " << retry.attempt
             << " launch attempts (last failure: "
             << cloud::request_failure_reason_name(reason)
             << ") — run degrades to " << expected_worker_count()
             << " workers";
    if (obs::Registry* registry = obs::registry()) {
      registry->counter("resilience.slots_abandoned_total").inc();
    }
    return;
  }
  ++retry.attempt;
  ++launch_retries_;

  // Capped exponential backoff with jitter before the next attempt.
  double delay = policy.backoff_base_seconds *
                 std::pow(policy.backoff_multiplier, retry.attempt - 2);
  delay = std::min(delay, policy.backoff_max_seconds);
  if (policy.backoff_jitter > 0.0) {
    delay *= 1.0 +
             policy.backoff_jitter * (2.0 * resilience_rng_.uniform() - 1.0);
  }
  delay = std::max(delay, 0.0);

  const simcore::SimTime failed_at = provider_->simulator().now();
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("resilience.retries_total", {{"kind", "launch"}}).inc();
    registry->histogram("resilience.backoff_seconds").observe(delay);
  }
  provider_->simulator().schedule_after(
      delay,
      [this, retry = std::move(retry), failed_at] {
        if (finished_) return;
        if (obs::Tracer* tracer = obs::tracer()) {
          tracer->complete(tracer->track("resilience"), "resilience.backoff",
                           "cmdare", failed_at, provider_->simulator().now(),
                           {{"attempt", std::to_string(retry.attempt)}},
                           /*async=*/true);
        }
        request_slot(retry);
      },
      "resilience.retry");
}

double TransientTrainingRun::observed_checkpoint_seconds() const {
  // Mean of the most recent (up to) eight completed checkpoints of the
  // current session; the calibrated mean stands in until one completes.
  const auto& checkpoints = session_->trace().checkpoints();
  double sum = 0.0;
  int count = 0;
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend() && count < 8;
       ++it, ++count) {
    sum += it->duration();
  }
  if (count == 0) {
    return cloud::mean_checkpoint_seconds(model_.parameter_bytes());
  }
  return sum / count;
}

void TransientTrainingRun::retune_checkpoint_interval() {
  if (finished_ || supervisor_ == nullptr) return;
  supervise::PlanInputs inputs;
  inputs.remaining_steps = static_cast<double>(
      std::max<long>(0, target_steps_ - completed_steps()));
  // latest_speed() is empty until the first profiler window closes; the
  // controller rejects the negative sentinel and skips the round.
  inputs.cluster_speed = profiler_.latest_speed().value_or(-1.0);
  inputs.checkpoint_seconds = observed_checkpoint_seconds();
  inputs.revocations_per_hour = supervisor_->watched_hazard_rate_per_hour();
  inputs.provision_seconds =
      provider_->startup_model()
          .mean_stages(config_.workers.front().gpu, /*transient=*/true)
          .total();
  inputs.replacement_seconds = cloud::cold_replacement_seconds(model_);

  const long current = adaptive_interval_ > 0
                           ? adaptive_interval_
                           : config_.session.checkpoint_interval_steps;
  const long min_interval = config_.supervision.checkpoint.min_interval_steps;
  const std::optional<long> planned = supervisor_->controller().decide(
      inputs, current, [min_interval](const supervise::PlanInputs& in) {
        CheckpointPlanParams params;
        params.total_steps = in.remaining_steps;
        params.cluster_speed = in.cluster_speed;
        params.checkpoint_seconds = in.checkpoint_seconds;
        params.chief_revocations_per_hour = in.revocations_per_hour;
        params.provision_seconds = in.provision_seconds;
        params.replacement_seconds = in.replacement_seconds;
        return plan_checkpoint_interval(params, min_interval).interval_steps;
      });
  if (!planned) return;
  adaptive_interval_ = *planned;
  session_->set_checkpoint_interval(*planned);
  LOG_INFO << "adaptive checkpoint retune: interval -> " << *planned
           << " steps (hazard " << inputs.revocations_per_hour
           << "/h, speed " << inputs.cluster_speed << " steps/s)";
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("supervise.retunes_total").inc();
    registry->gauge("supervise.checkpoint_interval_steps")
        .set(static_cast<double>(*planned));
  }
  if (obs::Tracer* tracer = obs::tracer()) {
    tracer->instant(tracer->track("supervise"), "supervise.retune",
                    "supervise", provider_->simulator().now(),
                    {{"interval", std::to_string(*planned)}});
  }
}

double TransientTrainingRun::mean_recovery_seconds() const {
  if (recovery_seconds_.empty()) return 0.0;
  double sum = 0.0;
  for (const double r : recovery_seconds_) sum += r;
  return sum / static_cast<double>(recovery_seconds_.size());
}

double TransientTrainingRun::cost_so_far() const {
  double cost = ps_cost_accrued_;
  for (const auto& [instance, placement] : placements_) {
    (void)placement;
    cost += provider_->instance_cost(instance);
  }
  if (!finished_ && started_at_ >= 0.0) {
    cost += ps_count_ * kPsHourlyCost *
            (provider_->simulator().now() - segment_started_at_) / 3600.0;
  }
  return cost;
}

void TransientTrainingRun::record_billing_tick() {
  if (finished_ || started_at_ < 0.0) return;
  emit_ps_billing(provider_->simulator().now() - segment_started_at_);
}

double TransientTrainingRun::elapsed_seconds() const {
  if (started_at_ < 0.0 || finished_at_ < 0.0) {
    throw std::logic_error("TransientTrainingRun: run not finished");
  }
  return finished_at_ - started_at_;
}

}  // namespace cmdare::core
