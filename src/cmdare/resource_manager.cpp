#include "cmdare/resource_manager.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"
#include "train/replacement.hpp"
#include "util/logging.hpp"

namespace cmdare::core {

TransientTrainingRun::TransientTrainingRun(cloud::CloudProvider& provider,
                                           nn::CnnModel model,
                                           RunConfig config, util::Rng rng,
                                           cloud::ObjectStore* store)
    : provider_(&provider),
      store_(store),
      model_(std::move(model)),
      config_(std::move(config)),
      rng_(rng),
      resilience_rng_(rng.fork("resilience")) {
  if (config_.workers.empty()) {
    throw std::invalid_argument("TransientTrainingRun: no workers");
  }
  if (config_.session.max_steps < 1) {
    throw std::invalid_argument(
        "TransientTrainingRun: max_steps must be >= 1");
  }
  target_steps_ = config_.session.max_steps;
  ps_count_ = config_.session.ps_count;
  make_session(target_steps_);
}

void TransientTrainingRun::make_session(long remaining_steps) {
  train::SessionConfig session_config = config_.session;
  session_config.ps_count = ps_count_;
  session_config.max_steps = remaining_steps;
  session_ = std::make_unique<train::TrainingSession>(
      provider_->simulator(), model_, session_config,
      rng_.fork("session-" + std::to_string(restarts_)), store_);
  segment_started_at_ = provider_->simulator().now();
  session_->on_complete = [this] { finish(); };
  profiler_.attach(*session_);
}

void TransientTrainingRun::finish() {
  finished_ = true;
  finished_at_ = provider_->simulator().now();
  ps_cost_accrued_ += ps_count_ * kPsHourlyCost *
                      (finished_at_ - segment_started_at_) / 3600.0;
  // Release every still-alive instance of this run.
  for (const auto& [instance, placement] : placements_) {
    (void)placement;
    if (provider_->record(instance).alive()) provider_->terminate(instance);
  }
  if (on_complete) on_complete();
}

void TransientTrainingRun::start() {
  if (started_at_ >= 0.0) {
    throw std::logic_error("TransientTrainingRun: already started");
  }
  started_at_ = provider_->simulator().now();
  segment_started_at_ = started_at_;
  for (const train::WorkerSpec& spec : config_.workers) {
    launch_worker(spec, cloud::RequestContext::kNormal);
  }
}

void TransientTrainingRun::restart_with_ps_count(int ps_count) {
  if (ps_count < 1) {
    throw std::invalid_argument("restart_with_ps_count: ps_count must be >= 1");
  }
  if (finished_) return;

  // Stop the current session; its events become no-ops.
  session_->halt();
  completed_offset_ += session_->global_step();
  ps_cost_accrued_ +=
      ps_count_ * kPsHourlyCost *
      (provider_->simulator().now() - segment_started_at_) / 3600.0;
  retired_sessions_.push_back(std::move(session_));

  ps_count_ = ps_count;
  ++restarts_;
  const long remaining = std::max<long>(1, target_steps_ - completed_offset_);
  make_session(remaining);
  LOG_INFO << "session restart #" << restarts_ << " with " << ps_count
           << " parameter servers at t=" << provider_->simulator().now();

  // Live workers rejoin the new session after the restart overhead.
  for (auto& [instance, placement] : placements_) {
    if (!placement.worker) continue;  // still booting; joins on RUNNING
    const auto& record = provider_->record(instance);
    if (!record.alive() || record.state != cloud::InstanceState::kRunning) {
      placement.worker.reset();
      continue;
    }
    placement.worker =
        session_->add_worker(placement.spec, kSessionRestartSeconds);
  }
}

long TransientTrainingRun::completed_steps() const {
  return completed_offset_ + session_->global_step();
}

void TransientTrainingRun::launch_worker(const train::WorkerSpec& spec,
                                         cloud::RequestContext context) {
  Placement placement;
  placement.spec = spec;
  placement.original_spec = spec;
  placement.context = context;
  placement.cold = context != cloud::RequestContext::kNormal;
  request_slot(std::move(placement));
}

void TransientTrainingRun::request_slot(Placement placement) {
  cloud::InstanceRequest request;
  request.gpu = placement.spec.gpu;
  request.region = placement.spec.region;
  request.transient = placement.spec.transient;
  request.context = placement.context;

  cloud::InstanceCallbacks callbacks;
  callbacks.on_running = [this](cloud::InstanceId id) { handle_running(id); };
  callbacks.on_revoked = [this](cloud::InstanceId id) { handle_revoked(id); };
  // The preemption notice is transient-TensorFlow's hook to tell the
  // parameter server / controller about the upcoming revocation. Abrupt
  // kills (injected) never fire it.
  callbacks.on_preemption_notice = [this](cloud::InstanceId id) {
    ++notices_;
    auto it = placements_.find(id);
    if (it != placements_.end()) it->second.notice_received = true;
    LOG_DEBUG << "preemption notice for instance " << id << " at t="
              << provider_->simulator().now();
  };
  callbacks.on_request_failed = [this](cloud::InstanceId id,
                                       cloud::RequestFailureReason reason) {
    handle_request_failed(id, reason);
  };

  const cloud::InstanceId id =
      provider_->request_instance(request, std::move(callbacks));
  placements_.emplace(id, std::move(placement));
}

void TransientTrainingRun::count_stale_event(const char* event,
                                             cloud::InstanceId instance) {
  ++stale_events_;
  LOG_WARN << "ignoring " << event << " for instance " << instance
           << " (late or duplicate lifecycle event)";
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("resilience.stale_events_total", {{"event", event}})
        .inc();
  }
}

void TransientTrainingRun::handle_running(cloud::InstanceId instance) {
  if (finished_) {
    provider_->terminate(instance);
    return;
  }
  auto it = placements_.find(instance);
  if (it == placements_.end()) {
    // A lifecycle event for an instance this run never placed (or whose
    // placement was dropped) must not abort the run — log and move on.
    count_stale_event("running", instance);
    return;
  }
  Placement& placement = it->second;
  if (placement.worker || placement.revoked) {
    count_stale_event("running", instance);
    return;
  }
  // Every fresh VM pays the cold-start environment setup (initial workers
  // included: they also install the framework and download their shard).
  const double join_delay =
      train::sample_cold_replacement_seconds(model_, rng_);
  placement.worker = session_->add_worker(placement.spec, join_delay);
}

void TransientTrainingRun::handle_revoked(cloud::InstanceId instance) {
  auto it = placements_.find(instance);
  if (it == placements_.end() || finished_) {
    count_stale_event("revoked", instance);
    return;
  }
  Placement& placement = it->second;
  if (placement.revoked) {
    count_stale_event("revoked", instance);
    return;
  }
  placement.revoked = true;
  ++revocations_;
  if (!placement.notice_received &&
      provider_->record(instance).abrupt_kill) {
    // Notice-less kill: the controller learns about the loss only now,
    // and any in-flight chief work dies with a stale checkpoint.
    ++abrupt_kills_;
    if (obs::Registry* registry = obs::registry()) {
      registry->counter("resilience.abrupt_kills_total").inc();
    }
  }
  if (placement.worker) {
    session_->revoke_worker(*placement.worker);
  }
  if (config_.auto_replace && !finished_) {
    ++replacements_;
    launch_worker(placement.spec, config_.replacement_context);
  }
}

bool TransientTrainingRun::advance_fallback(Placement& placement) {
  const ResiliencePolicy& policy = config_.resilience;
  const train::WorkerSpec& original = placement.original_spec;
  while (placement.ladder_stage < 3) {
    ++placement.ladder_stage;
    if (placement.ladder_stage == 1 && policy.allow_region_fallback) {
      // Same GPU in another region that offers it transiently.
      for (const cloud::Region region : cloud::kAllRegions) {
        if (region == original.region) continue;
        if (!cloud::gpu_offered_in_region(region, original.gpu)) continue;
        placement.spec = original;
        placement.spec.region = region;
        return true;
      }
    } else if (placement.ladder_stage == 2 && policy.allow_gpu_fallback) {
      // Another GPU type in the slot's configured region.
      for (const cloud::GpuType gpu : cloud::kAllGpuTypes) {
        if (gpu == original.gpu) continue;
        if (!cloud::gpu_offered_in_region(original.region, gpu)) continue;
        placement.spec = original;
        placement.spec.gpu = gpu;
        return true;
      }
    } else if (placement.ladder_stage == 3 &&
               policy.allow_on_demand_fallback) {
      // Last rung: an on-demand server — costs more, but preemptible
      // capacity stockouts cannot touch it.
      placement.spec = original;
      placement.spec.transient = false;
      return true;
    }
  }
  return false;
}

void TransientTrainingRun::handle_request_failed(
    cloud::InstanceId instance, cloud::RequestFailureReason reason) {
  auto it = placements_.find(instance);
  if (it == placements_.end()) {
    count_stale_event("request_failed", instance);
    return;
  }
  if (finished_) return;
  const ResiliencePolicy& policy = config_.resilience;
  // The failed placement stays in the map (its record is terminal); the
  // slot's retry state rides along into the next request.
  Placement retry = it->second;
  retry.worker.reset();
  retry.revoked = false;
  retry.notice_received = false;

  if (reason == cloud::RequestFailureReason::kStockout) {
    ++retry.consecutive_stockouts;
    if (retry.consecutive_stockouts >= policy.stockouts_before_fallback &&
        advance_fallback(retry)) {
      retry.consecutive_stockouts = 0;
      ++fallbacks_;
      const char* stage = retry.ladder_stage == 1   ? "region"
                          : retry.ladder_stage == 2 ? "gpu"
                                                    : "on_demand";
      LOG_INFO << "stockout persists for instance " << instance
               << ", falling back to " << stage;
      if (obs::Registry* registry = obs::registry()) {
        registry->counter("resilience.fallbacks_total", {{"kind", stage}})
            .inc();
      }
    }
  } else {
    retry.consecutive_stockouts = 0;
  }

  if (retry.attempt >= policy.max_launch_attempts) {
    ++slots_abandoned_;
    LOG_WARN << "worker slot abandoned after " << retry.attempt
             << " launch attempts (last failure: "
             << cloud::request_failure_reason_name(reason)
             << ") — run degrades to " << expected_worker_count()
             << " workers";
    if (obs::Registry* registry = obs::registry()) {
      registry->counter("resilience.slots_abandoned_total").inc();
    }
    return;
  }
  ++retry.attempt;
  ++launch_retries_;

  // Capped exponential backoff with jitter before the next attempt.
  double delay = policy.backoff_base_seconds *
                 std::pow(policy.backoff_multiplier, retry.attempt - 2);
  delay = std::min(delay, policy.backoff_max_seconds);
  if (policy.backoff_jitter > 0.0) {
    delay *= 1.0 +
             policy.backoff_jitter * (2.0 * resilience_rng_.uniform() - 1.0);
  }
  delay = std::max(delay, 0.0);

  const simcore::SimTime failed_at = provider_->simulator().now();
  if (obs::Registry* registry = obs::registry()) {
    registry->counter("resilience.retries_total", {{"kind", "launch"}}).inc();
    registry->histogram("resilience.backoff_seconds").observe(delay);
  }
  provider_->simulator().schedule_after(
      delay,
      [this, retry = std::move(retry), failed_at] {
        if (finished_) return;
        if (obs::Tracer* tracer = obs::tracer()) {
          tracer->complete(tracer->track("resilience"), "resilience.backoff",
                           "cmdare", failed_at, provider_->simulator().now(),
                           {{"attempt", std::to_string(retry.attempt)}},
                           /*async=*/true);
        }
        request_slot(retry);
      },
      "resilience.retry");
}

double TransientTrainingRun::cost_so_far() const {
  double cost = ps_cost_accrued_;
  for (const auto& [instance, placement] : placements_) {
    (void)placement;
    cost += provider_->instance_cost(instance);
  }
  if (!finished_ && started_at_ >= 0.0) {
    cost += ps_count_ * kPsHourlyCost *
            (provider_->simulator().now() - segment_started_at_) / 3600.0;
  }
  return cost;
}

double TransientTrainingRun::elapsed_seconds() const {
  if (started_at_ < 0.0 || finished_at_ < 0.0) {
    throw std::logic_error("TransientTrainingRun: run not finished");
  }
  return finished_at_ - started_at_;
}

}  // namespace cmdare::core
