#include "cmdare/resource_manager.hpp"

#include <stdexcept>

#include "train/replacement.hpp"
#include "util/logging.hpp"

namespace cmdare::core {

TransientTrainingRun::TransientTrainingRun(cloud::CloudProvider& provider,
                                           nn::CnnModel model,
                                           RunConfig config, util::Rng rng,
                                           cloud::ObjectStore* store)
    : provider_(&provider),
      store_(store),
      model_(std::move(model)),
      config_(std::move(config)),
      rng_(rng) {
  if (config_.workers.empty()) {
    throw std::invalid_argument("TransientTrainingRun: no workers");
  }
  if (config_.session.max_steps < 1) {
    throw std::invalid_argument(
        "TransientTrainingRun: max_steps must be >= 1");
  }
  target_steps_ = config_.session.max_steps;
  ps_count_ = config_.session.ps_count;
  make_session(target_steps_);
}

void TransientTrainingRun::make_session(long remaining_steps) {
  train::SessionConfig session_config = config_.session;
  session_config.ps_count = ps_count_;
  session_config.max_steps = remaining_steps;
  session_ = std::make_unique<train::TrainingSession>(
      provider_->simulator(), model_, session_config,
      rng_.fork("session-" + std::to_string(restarts_)), store_);
  segment_started_at_ = provider_->simulator().now();
  session_->on_complete = [this] { finish(); };
  profiler_.attach(*session_);
}

void TransientTrainingRun::finish() {
  finished_ = true;
  finished_at_ = provider_->simulator().now();
  ps_cost_accrued_ += ps_count_ * kPsHourlyCost *
                      (finished_at_ - segment_started_at_) / 3600.0;
  // Release every still-alive instance of this run.
  for (const auto& [instance, placement] : placements_) {
    (void)placement;
    if (provider_->record(instance).alive()) provider_->terminate(instance);
  }
  if (on_complete) on_complete();
}

void TransientTrainingRun::start() {
  if (started_at_ >= 0.0) {
    throw std::logic_error("TransientTrainingRun: already started");
  }
  started_at_ = provider_->simulator().now();
  segment_started_at_ = started_at_;
  for (const train::WorkerSpec& spec : config_.workers) {
    launch_worker(spec, cloud::RequestContext::kNormal);
  }
}

void TransientTrainingRun::restart_with_ps_count(int ps_count) {
  if (ps_count < 1) {
    throw std::invalid_argument("restart_with_ps_count: ps_count must be >= 1");
  }
  if (finished_) return;

  // Stop the current session; its events become no-ops.
  session_->halt();
  completed_offset_ += session_->global_step();
  ps_cost_accrued_ +=
      ps_count_ * kPsHourlyCost *
      (provider_->simulator().now() - segment_started_at_) / 3600.0;
  retired_sessions_.push_back(std::move(session_));

  ps_count_ = ps_count;
  ++restarts_;
  const long remaining = std::max<long>(1, target_steps_ - completed_offset_);
  make_session(remaining);
  LOG_INFO << "session restart #" << restarts_ << " with " << ps_count
           << " parameter servers at t=" << provider_->simulator().now();

  // Live workers rejoin the new session after the restart overhead.
  for (auto& [instance, placement] : placements_) {
    if (!placement.worker) continue;  // still booting; joins on RUNNING
    const auto& record = provider_->record(instance);
    if (!record.alive() || record.state != cloud::InstanceState::kRunning) {
      placement.worker.reset();
      continue;
    }
    placement.worker =
        session_->add_worker(placement.spec, kSessionRestartSeconds);
  }
}

long TransientTrainingRun::completed_steps() const {
  return completed_offset_ + session_->global_step();
}

void TransientTrainingRun::launch_worker(const train::WorkerSpec& spec,
                                         cloud::RequestContext context) {
  cloud::InstanceRequest request;
  request.gpu = spec.gpu;
  request.region = spec.region;
  request.transient = spec.transient;
  request.context = context;

  cloud::InstanceCallbacks callbacks;
  callbacks.on_running = [this](cloud::InstanceId id) { handle_running(id); };
  callbacks.on_revoked = [this](cloud::InstanceId id) { handle_revoked(id); };
  // The preemption notice is transient-TensorFlow's hook to tell the
  // parameter server / controller about the upcoming revocation.
  callbacks.on_preemption_notice = [this](cloud::InstanceId id) {
    LOG_DEBUG << "preemption notice for instance " << id << " at t="
              << provider_->simulator().now();
  };

  const cloud::InstanceId id =
      provider_->request_instance(request, std::move(callbacks));
  Placement placement;
  placement.spec = spec;
  placement.cold = context != cloud::RequestContext::kNormal;
  placements_.emplace(id, std::move(placement));
}

void TransientTrainingRun::handle_running(cloud::InstanceId instance) {
  if (finished_) {
    provider_->terminate(instance);
    return;
  }
  auto it = placements_.find(instance);
  if (it == placements_.end()) {
    throw std::logic_error("TransientTrainingRun: unknown instance running");
  }
  Placement& placement = it->second;
  // Every fresh VM pays the cold-start environment setup (initial workers
  // included: they also install the framework and download their shard).
  const double join_delay =
      train::sample_cold_replacement_seconds(model_, rng_);
  placement.worker = session_->add_worker(placement.spec, join_delay);
}

void TransientTrainingRun::handle_revoked(cloud::InstanceId instance) {
  auto it = placements_.find(instance);
  if (it == placements_.end()) return;
  Placement& placement = it->second;
  ++revocations_;
  if (placement.worker) {
    session_->revoke_worker(*placement.worker);
  }
  if (config_.auto_replace && !finished_) {
    ++replacements_;
    launch_worker(placement.spec, config_.replacement_context);
  }
}

double TransientTrainingRun::cost_so_far() const {
  double cost = ps_cost_accrued_;
  for (const auto& [instance, placement] : placements_) {
    (void)placement;
    cost += provider_->instance_cost(instance);
  }
  if (!finished_ && started_at_ >= 0.0) {
    cost += ps_count_ * kPsHourlyCost *
            (provider_->simulator().now() - segment_started_at_) / 3600.0;
  }
  return cost;
}

double TransientTrainingRun::elapsed_seconds() const {
  if (started_at_ < 0.0 || finished_at_ < 0.0) {
    throw std::logic_error("TransientTrainingRun: run not finished");
  }
  return finished_at_ - started_at_;
}

}  // namespace cmdare::core
