// Slow-worker (straggler) detection — Section VI-B's closing remark:
// "Similar approaches can be used to detect slower GPU workers as well."
//
// Two complementary signals, both computed from the session trace:
//
//   * peer comparison — a worker whose mean step time exceeds the median
//     of same-GPU-type peers by more than the threshold. Robust to
//     parameter-server saturation (all peers inflate together).
//   * model comparison — a worker slower than the per-GPU predicted step
//     time by more than the threshold. Works without peers, but only
//     meaningful when the PS is not the bottleneck (pass
//     `ps_saturated = true` to suppress it).
#pragma once

#include <optional>
#include <vector>

#include "cmdare/speed_modeling.hpp"
#include "train/session.hpp"

namespace cmdare::core {

struct StragglerConfig {
  /// Relative slowdown (measured/median - 1 or measured/predicted - 1)
  /// that flags a worker; the paper's empirical 6.7% threshold.
  double threshold = 0.067;
  /// Per-worker steps discarded as warmup before measuring.
  std::size_t discard_steps = 100;
  /// Minimum post-warmup steps required to judge a worker.
  std::size_t min_steps = 50;
};

struct WorkerAssessment {
  train::WorkerId worker = 0;
  cloud::GpuType gpu = cloud::GpuType::kK80;
  double mean_step_seconds = 0.0;
  /// Median step time of same-GPU active peers (nullopt when alone).
  std::optional<double> peer_median_seconds;
  /// Predicted per-GPU step time (nullopt when predictor lacks the GPU).
  std::optional<double> predicted_seconds;
  bool flagged_vs_peers = false;
  bool flagged_vs_model = false;

  bool flagged() const { return flagged_vs_peers || flagged_vs_model; }
};

/// Assesses every active worker with enough measured steps. `predictor`
/// may be null (peer comparison only). Set `ps_saturated` when the
/// cluster-level bottleneck detector has flagged the PS, to suppress the
/// model comparison (every worker is slow then, through no fault of its
/// own).
std::vector<WorkerAssessment> detect_stragglers(
    const train::TrainingSession& session,
    const StepTimePredictor* predictor = nullptr, bool ps_saturated = false,
    const StragglerConfig& config = {});

}  // namespace cmdare::core
