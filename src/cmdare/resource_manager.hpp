// CM-DARE resource manager / controller substrate (Section II, Figure 1).
//
// TransientTrainingRun is the framework facade that ties everything
// together the way the paper's workflow describes: it (2) sets up the
// training cluster through the cloud provider, (3) starts transient-aware
// training once workers come up, (5) lets the chief checkpoint to cloud
// storage, (7-9) reacts to revocations — CM-DARE mode hands checkpointing
// to a survivor — and (10) fulfills cluster reconfigurations decided by
// the controller: a revoked worker is replaced immediately by default
// (Section V-B shows immediate requests carry no availability penalty),
// and the whole session can be restarted with more parameter servers
// (Section VI-B; TensorFlow cannot add a PS live, so the restart costs
// ~10 seconds and cumulative progress is carried across sessions).
// It also does the billing arithmetic for the cost-advisor use case.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/provider.hpp"
#include "cloud/storage.hpp"
#include "cmdare/profiler.hpp"
#include "train/cluster.hpp"
#include "train/session.hpp"

namespace cmdare::core {

/// Hourly price of one (on-demand, CPU-only) parameter server; an
/// n1-standard-4, matching the paper's PS configuration.
inline constexpr double kPsHourlyCost = 0.19;

/// Session-restart overhead when reconfiguring the cluster (Section VI-B:
/// "about 10 seconds").
inline constexpr double kSessionRestartSeconds = 10.0;

struct RunConfig {
  train::SessionConfig session;
  std::vector<train::WorkerSpec> workers;
  /// Request a replacement transient worker whenever one is revoked.
  bool auto_replace = true;
  /// How replacements are requested (immediate by default; Section V-B).
  cloud::RequestContext replacement_context =
      cloud::RequestContext::kImmediateAfterRevocation;
};

class TransientTrainingRun {
 public:
  /// `store` may be null (checkpoint durations sampled, blobs not kept).
  TransientTrainingRun(cloud::CloudProvider& provider, nn::CnnModel model,
                       RunConfig config, util::Rng rng,
                       cloud::ObjectStore* store = nullptr);

  /// Requests the initial cluster. Drive the provider's simulator to make
  /// progress; on_complete fires when the cumulative step count reaches
  /// the configured max_steps.
  void start();

  /// Halts the current session and starts a fresh one with `ps_count`
  /// parameter servers. Cumulative progress is preserved; live workers
  /// rejoin after the ~10 s restart overhead. No-op if already finished.
  void restart_with_ps_count(int ps_count);

  train::TrainingSession& session() { return *session_; }
  const train::TrainingSession& session() const { return *session_; }

  /// Steps completed across all sessions of this run.
  long completed_steps() const;
  long target_steps() const { return target_steps_; }
  bool finished() const { return finished_; }
  int current_ps_count() const { return ps_count_; }
  int restarts() const { return restarts_; }

  /// Windowed cluster-speed profiler, re-attached across restarts.
  const PerformanceProfiler& profiler() const { return profiler_; }

  int revocations_seen() const { return revocations_; }
  int replacements_requested() const { return replacements_; }

  /// Worker GPU-hours cost so far plus parameter-server cost.
  double cost_so_far() const;

  /// Wall-clock (simulated) duration from start() to completion; requires
  /// the run to have finished.
  double elapsed_seconds() const;

  const nn::CnnModel& model() const { return model_; }
  const RunConfig& config() const { return config_; }
  simcore::Simulator& simulator() { return provider_->simulator(); }

  std::function<void()> on_complete;

 private:
  void make_session(long remaining_steps);
  void launch_worker(const train::WorkerSpec& spec,
                     cloud::RequestContext context);
  void handle_running(cloud::InstanceId instance);
  void handle_revoked(cloud::InstanceId instance);
  void finish();

  cloud::CloudProvider* provider_;
  cloud::ObjectStore* store_;
  nn::CnnModel model_;
  RunConfig config_;
  util::Rng rng_;

  // The active session plus halted predecessors (kept alive because
  // in-flight simulator events reference them).
  std::unique_ptr<train::TrainingSession> session_;
  std::vector<std::unique_ptr<train::TrainingSession>> retired_sessions_;
  PerformanceProfiler profiler_;

  struct Placement {
    train::WorkerSpec spec;
    std::optional<train::WorkerId> worker;  // id within the *current* session
    bool cold = false;                      // replacement (cold start)
  };
  std::map<cloud::InstanceId, Placement> placements_;

  long target_steps_ = 0;
  long completed_offset_ = 0;
  int ps_count_ = 1;
  int restarts_ = 0;
  bool finished_ = false;
  double started_at_ = -1.0;
  double finished_at_ = -1.0;
  double ps_cost_accrued_ = 0.0;   // USD, for completed session segments
  double segment_started_at_ = 0.0;
  int revocations_ = 0;
  int replacements_ = 0;
};

}  // namespace cmdare::core
